/**
 * @file
 * Virtual-clock replay of a traffic trace through the full serving
 * path: SessionCache + ShardStore-backed sharded sessions +
 * BatchScheduler with admission control and deadlines.
 *
 * The driver walks the trace on a **virtual clock** that advances in
 * fixed drain ticks (ReplayConfig::drainPeriodSeconds): before each
 * tick it submits every event whose arrival time has come, then
 * calls BatchScheduler::drain() once. A request's queue wait is
 * virtual — drain-tick time minus arrival time — and deadline
 * outcomes are judged against that virtual wait, so deadline hit
 * rates, shed rates, and wait percentiles depend only on the trace
 * and the config, never on machine speed. That is what allows
 * bench/trace_replay metrics to be CI-gated and required to be
 * bit-identical across two runs at the same seed.
 *
 * Division of labor with the scheduler's own wall-clock machinery:
 * admission (queue depth, per-session cap, cost budget) runs for
 * real inside submit() and produces the shed counts; the
 * scheduler's *wall-clock* deadline path is exercised with a
 * generous schedulerDeadlineSeconds budget so its bookkeeping runs
 * without ever shedding nondeterministically. For the same reason
 * the replay admission policy must not set targetLatencySeconds
 * (adaptive depth keys off real service time); replayTrace()
 * fatal()s if it does.
 *
 * Realistic failure handling is part of the loop: the Zipf tail plus
 * a finite cache budget means sessions get evicted while queries for
 * them are queued or arriving. Arrivals against a stale handle
 * re-bind the session from its deterministic content stream (the
 * ShardStore turns these into live-handle or spill-restore hits —
 * the store hit rate is a headline metric). A drain completion that
 * still reports SessionUnbound — the binding was evicted by a
 * hotter session's bind while the request was queued — is recovered
 * by re-binding and answering the query directly against the fresh
 * backend (bit-identical to the engine path, counted in
 * recoveredDirect), so no query is ever lost to eviction churn;
 * failedQueries counts only unrecoverable errors and CI gates it at
 * zero.
 */

#ifndef A3_TRACE_REPLAY_HPP
#define A3_TRACE_REPLAY_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "attention/backend.hpp"
#include "attention/types.hpp"
#include "engine/engine.hpp"
#include "serving/admission.hpp"
#include "serving/shard_store.hpp"
#include "tensor/matrix.hpp"
#include "trace/trace.hpp"

namespace a3 {

/** Knobs for replayTrace(). */
struct ReplayConfig
{
    /** Engine config for session binds. */
    EngineConfig engine;

    /** Key/value dimensionality of generated content. */
    std::size_t dims = 32;

    /** Virtual seconds between drain ticks; also the maximum
     *  service capacity is maxBatch / drainPeriodSeconds. */
    double drainPeriodSeconds = 0.05;

    /** Per-drain batch cap handed to the BatchScheduler; 0 drains
     *  everything pending. */
    std::size_t maxBatch = 32;

    /** Admission limits. targetLatencySeconds must stay 0: adaptive
     *  depth keys off wall-clock service time and would make the
     *  replay nondeterministic (enforced with fatal()). */
    AdmissionPolicy admission;

    /** SessionCache byte budget; 0 = unlimited (no eviction
     *  churn). */
    std::size_t cacheByteBudget = 0;

    /** Shard capacity of session binds; 0 binds unsharded. */
    std::size_t shardRows = 0;

    /** Cross-session shard registry (borrowed); nullptr disables
     *  sharing. Requires shardRows > 0. */
    ShardStore *store = nullptr;

    /** Generous *wall-clock* deadline handed to the scheduler so
     *  its deadline machinery runs without nondeterministic sheds;
     *  0 submits without one. */
    double schedulerDeadlineSeconds = 30.0;

    /** Tag submits with the session style ("rag"/"chat") as the
     *  request class, exercising per-class drain lanes. */
    bool classifyByStyle = true;

    /** Retain every served AttentionResult in completion order
     *  (ReplayReport::results) — for bit-identity tests; off by
     *  default to keep big replays lean. */
    bool captureResults = false;
};

/** Everything one replay measured. All counters and percentiles
 *  are virtual-clock-deterministic unless noted. */
struct ReplayReport
{
    // -- traffic accounting -------------------------------------
    std::uint64_t events = 0;
    std::uint64_t binds = 0;
    std::uint64_t appends = 0;
    std::uint64_t queries = 0;

    /** Evicted sessions re-bound from their content stream (at
     *  arrival of a query, or on a SessionUnbound completion). */
    std::uint64_t rebinds = 0;

    /** Queries answered with a result (including recoveredDirect). */
    std::uint64_t served = 0;

    /** Served queries whose binding was evicted while they were
     *  queued: re-bound and answered directly against the fresh
     *  backend (bit-identical to the engine path). */
    std::uint64_t recoveredDirect = 0;

    /** Submits shed by the admission policy, by limit. */
    std::uint64_t shedQueueFull = 0;
    std::uint64_t shedSessionCap = 0;
    std::uint64_t shedCostBudget = 0;
    std::uint64_t shedOther = 0;

    /** Queries lost to unrecoverable errors. Zero in a healthy
     *  replay (CI gates on this). */
    std::uint64_t failedQueries = 0;

    /** Served queries judged against their virtual deadline. */
    std::uint64_t deadlineMet = 0;
    std::uint64_t deadlineMissed = 0;

    /** deadlineMet / (deadlineMet + deadlineMissed); 1 when no
     *  served query carried a deadline. */
    double deadlineHitRate = 1.0;

    /** All admission sheds. */
    std::uint64_t shed() const
    {
        return shedQueueFull + shedSessionCap + shedCostBudget +
               shedOther;
    }

    /** shed() / queries submitted. */
    double shedRate = 0.0;

    // -- virtual latency ----------------------------------------
    /** Virtual queue wait (arrival to the serving drain tick),
     *  milliseconds, nearest-rank percentiles over served
     *  queries. */
    double queueWaitP50Ms = 0.0;
    double queueWaitP95Ms = 0.0;
    double queueWaitP99Ms = 0.0;
    double queueWaitMaxMs = 0.0;

    /** Largest scheduler backlog observed at a tick. */
    std::size_t maxPending = 0;

    /** Drain ticks executed. */
    std::uint64_t drainTicks = 0;

    /** Virtual time when the last completion landed. */
    double virtualSeconds = 0.0;

    // -- serving-tier state -------------------------------------
    std::uint64_t cacheHits = 0;
    std::uint64_t cacheMisses = 0;
    std::uint64_t cacheEvictions = 0;

    /** ShardStore deltas over the replay (0s without a store). */
    std::uint64_t storeLiveHits = 0;
    std::uint64_t storeSpillRestores = 0;
    std::uint64_t storeColdBinds = 0;

    /** (liveHits + spillRestores) / all shard acquisitions. */
    double storeHitRate = 0.0;

    /**
     * FNV-1a over every served result (output bits, kept
     * candidates, iteration count) in completion order: two replays
     * of one trace must produce equal hashes — the cheap whole-run
     * bit-identity check.
     */
    std::uint64_t resultHash = 0;

    /** Served results in completion order (captureResults only). */
    std::vector<AttentionResult> results;
};

/**
 * Deterministic content generation. Row r of a stream's matrix is
 * always the same regardless of the total row count requested, so
 * appends extend a session's matrix without rewriting history and a
 * re-bind at the grown size reproduces the exact bytes — which is
 * what lets the ShardStore dedup and spill-restore across binds.
 */
Matrix traceContentMatrix(std::uint64_t seed, std::size_t rows,
                          std::size_t dims);

/** Rows [firstRow, firstRow + count) of a content stream — what an
 *  append event presents without regenerating the prefix. */
Matrix traceContentRows(std::uint64_t seed, std::size_t firstRow,
                        std::size_t count, std::size_t dims);

/** The value-matrix stream of a content seed (distinct from the
 *  key stream). */
Matrix traceValueMatrix(std::uint64_t seed, std::size_t rows,
                        std::size_t dims);

/** Rows [firstRow, firstRow + count) of the value stream. */
Matrix traceValueRows(std::uint64_t seed, std::size_t firstRow,
                      std::size_t count, std::size_t dims);

/** Deterministic query vector for a query event's payloadSeed. */
Vector traceQueryVector(std::uint64_t seed, std::size_t dims);

/** Fold one result into a running FNV-1a hash (exposed so tests
 *  can recompute ReplayReport::resultHash). */
std::uint64_t hashAttentionResult(std::uint64_t hash,
                                  const AttentionResult &result);

/**
 * Replay `trace` through a fresh SessionCache + BatchScheduler on
 * `engine` under `config`. The ShardStore (if any) is borrowed and
 * may be shared across replays; the report's store counters are
 * deltas over this replay.
 */
ReplayReport replayTrace(const Trace &trace, AttentionEngine &engine,
                         const ReplayConfig &config);

}  // namespace a3

#endif  // A3_TRACE_REPLAY_HPP
