/**
 * @file
 * Seeded, deterministic traffic-trace generation.
 *
 * generateTrace() turns a TraceConfig into a time-sorted event list
 * (trace/trace.hpp) with production-shaped structure:
 *
 *  - **Session popularity** is Zipf-distributed: a handful of hot
 *    sessions take most of the queries, with a long tail of
 *    one-shot sessions — the shape that makes LRU eviction and
 *    per-session admission caps earn their keep.
 *  - **Arrivals** follow a Poisson process whose rate is constant,
 *    diurnally modulated (sinusoid), or bursty (square wave with a
 *    configurable burst factor), realized by thinning a homogeneous
 *    process at the peak rate. The configured `arrivalsPerSecond`
 *    is the *mean* rate in every mode, so scenarios with different
 *    shapes stay comparable at equal offered load.
 *  - **Context lengths** mix discrete buckets (e.g. 128 / 1k / 4k
 *    rows) by weight, so small chats and huge documents share one
 *    queue.
 *  - **Session styles** split RAG-like (bind a shared catalog
 *    document once, query many times) from chat-like (private
 *    context, appended every few queries).
 *
 * Everything derives from TraceConfig::seed through the repo's
 * xoshiro Rng: the same config produces a bit-identical Trace on
 * every platform, which is what lets replay metrics be CI-gated.
 */

#ifndef A3_TRACE_GENERATOR_HPP
#define A3_TRACE_GENERATOR_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/random.hpp"

namespace a3 {

/** How query arrival times are distributed over the trace. */
enum class ArrivalProcess : std::uint8_t {
    /** Homogeneous Poisson arrivals at `arrivalsPerSecond`. */
    Poisson,
    /** Poisson with a sinusoidal rate: rate(t) = mean *
     *  (1 + amplitude * sin(2*pi*t / period)). */
    Diurnal,
    /** Square-wave bursts: `burstFactor`x the baseline rate for
     *  `burstDutyCycle` of every `burstPeriodSeconds`, baseline
     *  otherwise; the time-averaged rate stays at
     *  `arrivalsPerSecond`. */
    Bursty,
};

/** Stable lowercase name ("poisson", "diurnal", "bursty"). */
const char *arrivalProcessName(ArrivalProcess process);

/** One context-length choice and its selection weight. */
struct ContextBucket
{
    std::uint32_t rows = 0;
    double weight = 1.0;
};

/** Knobs for generateTrace(). Defaults give a small mixed trace. */
struct TraceConfig
{
    /** Master seed; every derived stream forks from it. */
    std::uint64_t seed = 1;

    /** Virtual trace length in seconds. */
    double durationSeconds = 30.0;

    /** Mean query arrival rate over the duration (all modes). */
    double arrivalsPerSecond = 50.0;

    ArrivalProcess arrivals = ArrivalProcess::Poisson;

    /** Bursty: on-window rate multiplier (> 1). */
    double burstFactor = 4.0;

    /** Bursty: fraction of each period spent at the burst rate. */
    double burstDutyCycle = 0.25;

    /** Bursty: square-wave period in seconds. */
    double burstPeriodSeconds = 8.0;

    /** Diurnal: sinusoid period in seconds. */
    double diurnalPeriodSeconds = 30.0;

    /** Diurnal: modulation depth in [0, 1). */
    double diurnalAmplitude = 0.8;

    /** Distinct sessions; query traffic is Zipf-skewed over them
     *  (session 0 hottest). */
    std::uint32_t sessionCount = 64;

    /** Zipf exponent for session popularity (larger = hotter
     *  head). */
    double zipfExponent = 1.1;

    /** Shared RAG document catalog size. */
    std::uint32_t documentCount = 12;

    /** Zipf exponent for document popularity across RAG
     *  sessions. */
    double documentZipfExponent = 1.1;

    /** Fraction of sessions that are RAG-style (rest are chat). */
    double ragFraction = 0.6;

    /** Chat sessions append once every this many queries. */
    std::uint32_t appendEveryQueries = 4;

    /** Rows appended per chat append event. */
    std::uint32_t appendRows = 64;

    /**
     * Context-window cap: a chat session stops appending once the
     * next append would push it past this many rows (a serving
     * system's KV window). 0 = unbounded — beware that unbounded
     * hot-session growth makes replay cost superlinear in trace
     * duration.
     */
    std::uint32_t maxContextRows = 2048;

    /** Context-length mixture for documents and chat contexts. */
    std::vector<ContextBucket> contextRows = {
        {128, 0.6}, {512, 0.3}, {1536, 0.1}};

    /** Fraction of queries carrying the tight deadline. */
    double tightDeadlineFraction = 0.5;

    /** Virtual-time budget of tight-deadline queries (seconds);
     *  0 disables. */
    double tightDeadlineSeconds = 0.2;

    /** Virtual-time budget of the remaining queries; 0 disables. */
    double looseDeadlineSeconds = 1.0;
};

/**
 * Zipf(s) sampler over ranks [0, n) via a precomputed CDF and
 * binary search: P(rank k) ~ 1 / (k + 1)^s. Deterministic given
 * the caller's Rng stream.
 */
class ZipfSampler
{
public:
    ZipfSampler(std::size_t n, double exponent);

    /** Draw one rank in [0, n). */
    std::size_t sample(Rng &rng) const;

    /** Exact probability mass of `rank`. */
    double probability(std::size_t rank) const;

    std::size_t size() const { return cdf_.size(); }

private:
    std::vector<double> cdf_;
};

/**
 * Instantaneous arrival rate at virtual time `t` (queries/sec)
 * for the configured process. Exposed so tests can check the
 * realized arrivals against the intended intensity.
 */
double arrivalRateAt(const TraceConfig &config, double t);

/** Peak of arrivalRateAt over the trace (the thinning bound). */
double peakArrivalRate(const TraceConfig &config);

/**
 * Generate a trace. Events are sorted by time; each session's Bind
 * precedes its first Query, and chat appends precede the query
 * that triggered them. fatal()s on nonsensical configs (empty
 * bucket list, non-positive rate/duration, zero sessions).
 */
Trace generateTrace(const TraceConfig &config);

}  // namespace a3

#endif  // A3_TRACE_GENERATOR_HPP
