#include "trace/trace.hpp"

#include <algorithm>

namespace a3 {

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
    case TraceEventKind::Bind:
        return "bind";
    case TraceEventKind::Append:
        return "append";
    case TraceEventKind::Query:
        return "query";
    }
    return "unknown";
}

const char *
sessionStyleName(SessionStyle style)
{
    switch (style) {
    case SessionStyle::Rag:
        return "rag";
    case SessionStyle::Chat:
        return "chat";
    }
    return "unknown";
}

std::size_t
Trace::countOf(TraceEventKind kind) const
{
    return static_cast<std::size_t>(std::count_if(
        events.begin(), events.end(),
        [kind](const TraceEvent &e) { return e.kind == kind; }));
}

}  // namespace a3
