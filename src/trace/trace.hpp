/**
 * @file
 * Production-shaped traffic traces for the serving tier.
 *
 * The workload layer (babi/squad/wikimovies analogues) exercises
 * *accuracy*; a trace exercises *traffic shape* — the thing that
 * actually breaks schedulers at scale: Zipf-skewed session
 * popularity, bursty and diurnal arrival processes, contexts mixing
 * three orders of magnitude of rows, and session lifecycles ranging
 * from RAG-style (bind one shared document, query it many times) to
 * chat-style (small private context, appended over and over).
 *
 * A Trace is a flat, time-sorted list of TraceEvents — bind, append,
 * query — that a replay driver (trace/replay.hpp) feeds through the
 * real SessionCache + ShardStore + BatchScheduler on a virtual
 * clock. Traces are generated deterministically from a seed
 * (trace/generator.hpp): the same config yields the bit-identical
 * event list on every machine, so traffic-shape behavior (shed
 * rates, deadline hit rates, tail waits, store hit rates) is a
 * regression-testable property, not a demo.
 *
 * Events carry no tensor data. Content is derived on demand from
 * `payloadSeed` (see traceContentMatrix / traceQueryVector in
 * trace/replay.hpp), which keeps traces tiny, makes two sessions
 * bound to the same document byte-identical (the prefix-sharing
 * tier dedups their shards), and lets a replay regenerate the exact
 * rows of an evicted session when it re-binds.
 */

#ifndef A3_TRACE_TRACE_HPP
#define A3_TRACE_TRACE_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace a3 {

/** What one trace event does to its session. */
enum class TraceEventKind : std::uint8_t {
    /** Bind the session's initial context (`rows` rows). Emitted
     *  exactly once per session, before its first query. */
    Bind,
    /** Extend the session's context by `rows` rows (chat-style
     *  growth). The appended rows continue the session's
     *  deterministic content stream. */
    Append,
    /** One attention query against the bound session, carrying an
     *  optional virtual-time deadline. */
    Query,
};

/** Stable lowercase name ("bind", "append", "query"). */
const char *traceEventKindName(TraceEventKind kind);

/** Session lifecycle archetype. */
enum class SessionStyle : std::uint8_t {
    /** Bind-once-query-many over a *shared* document from the trace
     *  catalog: the retrieval-augmented-generation shape that makes
     *  cross-session prefix sharing pay. */
    Rag,
    /** Append-heavy private context: the chat shape whose growth
     *  concentrates in the mutable tail shard. */
    Chat,
};

/** Stable lowercase name ("rag", "chat"). */
const char *sessionStyleName(SessionStyle style);

/** `document` value of sessions with private (unshared) content. */
constexpr std::uint32_t kPrivateDocument = 0xffffffffu;

/** One timestamped operation against one session. */
struct TraceEvent
{
    /** Virtual arrival time, seconds from trace start. */
    double timeSeconds = 0.0;

    /** Session index in [0, Trace::sessionCount). */
    std::uint32_t session = 0;

    TraceEventKind kind = TraceEventKind::Query;

    /** The session's archetype (constant across its events). */
    SessionStyle style = SessionStyle::Rag;

    /**
     * Shared-catalog document backing the session's context, or
     * kPrivateDocument for private content. Sessions with the same
     * document bind byte-identical matrices.
     */
    std::uint32_t document = kPrivateDocument;

    /** Bind: initial context rows. Append: rows added. Query: 0. */
    std::uint32_t rows = 0;

    /**
     * Content seed: on Bind, the session's context stream (shared by
     * every session of the same document); on Query, the query
     * vector's seed. Append events reuse the Bind seed — the
     * appended rows are the next slice of the same stream.
     */
    std::uint64_t payloadSeed = 0;

    /**
     * Virtual-time latency budget from arrival to completion;
     * 0 = no deadline. Evaluated by the replay driver against the
     * virtual clock, so deadline outcomes are deterministic.
     */
    double deadlineSeconds = 0.0;
};

/** A generated traffic trace: time-sorted events plus its shape. */
struct Trace
{
    /** Seed the trace was generated from (provenance). */
    std::uint64_t seed = 0;

    /** Virtual length of the trace in seconds. */
    double durationSeconds = 0.0;

    /** Distinct sessions that may appear in the events. */
    std::uint32_t sessionCount = 0;

    /** Time-sorted events (ties keep generation order: a session's
     *  Bind precedes its first Query at the same timestamp). */
    std::vector<TraceEvent> events;

    /** Events of one kind (O(events)). */
    std::size_t countOf(TraceEventKind kind) const;
};

}  // namespace a3

#endif  // A3_TRACE_TRACE_HPP
