#include "trace/replay.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <unordered_map>

#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"
#include "util/stats.hpp"

namespace a3 {

namespace {

constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ull;

/** Salt separating a content seed's value stream from its key
 *  stream, and query seeds from content seeds. */
constexpr std::uint64_t kValueSalt = 0x5851f42d4c957f2dull;
constexpr std::uint64_t kQuerySalt = 0x14057b7ef767814full;

std::uint64_t
fnvBytes(std::uint64_t hash, const void *data, std::size_t bytes)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < bytes; ++i) {
        hash ^= p[i];
        hash *= kFnvPrime;
    }
    return hash;
}

/** Replay-side view of one session across the run. The content
 *  matrices are memoized so rebinds after eviction present the
 *  exact bytes again without regenerating them. */
struct SessionRuntime
{
    SessionHandle handle;
    std::uint64_t contentSeed = 0;
    std::uint32_t rows = 0;
    SessionStyle style = SessionStyle::Rag;
    bool everBound = false;
    Matrix key;
    Matrix value;
};

/** Bookkeeping for one admitted query until its completion. */
struct InflightQuery
{
    double arrivalSeconds = 0.0;
    double deadlineSeconds = 0.0;
    std::uint32_t session = 0;
    Vector query;
};

}  // namespace

Matrix
traceContentRows(std::uint64_t seed, std::size_t firstRow,
                 std::size_t count, std::size_t dims)
{
    // Each row is seeded independently from (seed, row index), so
    // row r's values do not depend on the total row count requested
    // or on where generation starts: a larger matrix extends a
    // smaller one byte-for-byte, and an append's slice can be
    // produced without regenerating the prefix.
    Matrix m(count, dims);
    for (std::size_t r = 0; r < count; ++r) {
        const auto row = static_cast<std::uint64_t>(firstRow + r);
        Rng rng(fnvBytes(fnvBytes(kFnvOffset, &seed, sizeof seed),
                         &row, sizeof row));
        for (std::size_t c = 0; c < dims; ++c)
            m.at(r, c) = static_cast<float>(rng.uniform(-1.0, 1.0));
    }
    return m;
}

Matrix
traceContentMatrix(std::uint64_t seed, std::size_t rows,
                   std::size_t dims)
{
    return traceContentRows(seed, 0, rows, dims);
}

Matrix
traceValueRows(std::uint64_t seed, std::size_t firstRow,
               std::size_t count, std::size_t dims)
{
    return traceContentRows(seed ^ kValueSalt, firstRow, count, dims);
}

Matrix
traceValueMatrix(std::uint64_t seed, std::size_t rows,
                 std::size_t dims)
{
    return traceValueRows(seed, 0, rows, dims);
}

Vector
traceQueryVector(std::uint64_t seed, std::size_t dims)
{
    Rng rng(seed ^ kQuerySalt);
    Vector q(dims);
    for (float &value : q)
        value = static_cast<float>(rng.uniform(-1.0, 1.0));
    return q;
}

std::uint64_t
hashAttentionResult(std::uint64_t hash, const AttentionResult &result)
{
    for (float value : result.output) {
        std::uint32_t bits = 0;
        std::memcpy(&bits, &value, sizeof bits);
        hash = fnvBytes(hash, &bits, sizeof bits);
    }
    for (std::uint32_t kept : result.kept)
        hash = fnvBytes(hash, &kept, sizeof kept);
    const auto iterations =
        static_cast<std::uint64_t>(result.iterations);
    return fnvBytes(hash, &iterations, sizeof iterations);
}

ReplayReport
replayTrace(const Trace &trace, AttentionEngine &engine,
            const ReplayConfig &config)
{
    if (config.dims == 0)
        fatal("replayTrace: dims must be nonzero");
    if (config.drainPeriodSeconds <= 0.0)
        fatal("replayTrace: drainPeriodSeconds must be positive");
    if (config.admission.targetLatencySeconds != 0.0)
        fatal("replayTrace: targetLatencySeconds uses wall-clock "
              "service time and would make the replay "
              "nondeterministic; leave it 0");
    if (config.store != nullptr && config.shardRows == 0)
        fatal("replayTrace: a ShardStore requires shardRows > 0");

    SessionCacheConfig cacheConfig;
    cacheConfig.byteBudget = config.cacheByteBudget;
    cacheConfig.engine = config.engine;
    cacheConfig.shardRows = config.shardRows;
    cacheConfig.store = config.store;
    SessionCache cache(cacheConfig);
    BatchScheduler scheduler(engine, cache, config.maxBatch,
                             config.admission);

    const ShardStoreStats storeBefore =
        config.store ? config.store->stats() : ShardStoreStats{};

    ReplayReport report;
    report.resultHash = kFnvOffset;
    report.events = trace.events.size();

    std::vector<SessionRuntime> sessions(trace.sessionCount);
    std::unordered_map<std::uint64_t, InflightQuery> inflight;
    std::vector<double> waits;

    auto sessionId = [](std::uint32_t s) {
        return "s" + std::to_string(s);
    };

    auto bindFresh = [&](std::uint32_t s) {
        SessionRuntime &rt = sessions[s];
        rt.handle =
            cache.bindSession(sessionId(s), rt.key, rt.value).handle;
    };

    // A live handle for `s`, re-binding if its binding was evicted.
    auto ensureBound = [&](std::uint32_t s) -> SessionHandle & {
        SessionRuntime &rt = sessions[s];
        if (rt.handle.backend() == nullptr) {
            rt.handle = cache.lookupSession(sessionId(s));
            if (rt.handle.backend() == nullptr) {
                bindFresh(s);
                ++report.rebinds;
            }
        }
        return rt.handle;
    };

    auto submitQuery = [&](std::uint32_t s, Vector query,
                           double arrival, double deadline,
                           SessionStyle style) {
        SubmitOptions options;
        options.deadlineSeconds = config.schedulerDeadlineSeconds;
        if (config.classifyByStyle)
            options.requestClass = sessionStyleName(style);
        const SessionHandle &handle = ensureBound(s);
        AdmissionOutcome outcome =
            scheduler.submit(handle, query, options);
        if (outcome.admitted()) {
            InflightQuery info;
            info.arrivalSeconds = arrival;
            info.deadlineSeconds = deadline;
            info.session = s;
            info.query = std::move(query);
            inflight.emplace(outcome.ticket, std::move(info));
            return;
        }
        switch (outcome.decision) {
        case AdmissionDecision::RejectedQueueFull:
            ++report.shedQueueFull;
            break;
        case AdmissionDecision::RejectedSessionCap:
            ++report.shedSessionCap;
            break;
        case AdmissionDecision::RejectedCostBudget:
            ++report.shedCostBudget;
            break;
        default:
            ++report.shedOther;
            break;
        }
    };

    auto handleEvent = [&](const TraceEvent &event) {
        SessionRuntime &rt = sessions[event.session];
        switch (event.kind) {
        case TraceEventKind::Bind:
            ++report.binds;
            rt.contentSeed = event.payloadSeed;
            rt.rows = event.rows;
            rt.style = event.style;
            rt.everBound = true;
            rt.key = traceContentMatrix(rt.contentSeed, rt.rows,
                                        config.dims);
            rt.value = traceValueMatrix(rt.contentSeed, rt.rows,
                                        config.dims);
            bindFresh(event.session);
            break;
        case TraceEventKind::Append: {
            ++report.appends;
            const SessionHandle &handle = ensureBound(event.session);
            const Matrix keyRows = traceContentRows(
                rt.contentSeed, rt.rows, event.rows, config.dims);
            const Matrix valueRows = traceValueRows(
                rt.contentSeed, rt.rows, event.rows, config.dims);
            rt.key.appendRows(keyRows);
            rt.value.appendRows(valueRows);
            rt.rows += event.rows;
            AppendOutcome appended =
                cache.appendSession(handle, keyRows, valueRows);
            if (!appended.ok()) {
                // Evicted between ensureBound and the append;
                // re-bind at the grown size keeps the content
                // stream consistent.
                bindFresh(event.session);
                ++report.rebinds;
            }
            break;
        }
        case TraceEventKind::Query:
            ++report.queries;
            submitQuery(event.session,
                        traceQueryVector(event.payloadSeed,
                                         config.dims),
                        event.timeSeconds, event.deadlineSeconds,
                        event.style);
            break;
        }
    };

    const double dt = config.drainPeriodSeconds;
    double now = 0.0;
    std::size_t next = 0;
    while (next < trace.events.size() || scheduler.pending() > 0) {
        while (next < trace.events.size() &&
               trace.events[next].timeSeconds <= now) {
            handleEvent(trace.events[next]);
            ++next;
        }

        report.maxPending =
            std::max(report.maxPending, scheduler.pending());
        if (scheduler.pending() > 0) {
            ++report.drainTicks;
            for (ServingResult &done : scheduler.drain()) {
                auto it = inflight.find(done.ticket);
                if (it == inflight.end())
                    fatal("replayTrace: completion for an unknown "
                          "ticket");
                InflightQuery &info = it->second;
                if (!done.ok()) {
                    if (done.error != ServingError::SessionUnbound) {
                        ++report.failedQueries;
                        inflight.erase(it);
                        continue;
                    }
                    // The binding was evicted while the request
                    // was queued. Re-bind and answer directly
                    // against the fresh backend — bit-identical to
                    // the engine path — so eviction churn never
                    // loses a query.
                    const SessionHandle &handle =
                        ensureBound(info.session);
                    const std::shared_ptr<AttentionBackend> backend =
                        handle.backend();
                    if (backend == nullptr) {
                        ++report.failedQueries;
                        inflight.erase(it);
                        continue;
                    }
                    backend->runInto(info.query, done.result);
                    done.error = ServingError::None;
                    ++report.recoveredDirect;
                }
                ++report.served;
                const double wait = now - info.arrivalSeconds;
                waits.push_back(wait);
                if (info.deadlineSeconds > 0.0) {
                    if (wait <= info.deadlineSeconds)
                        ++report.deadlineMet;
                    else
                        ++report.deadlineMissed;
                }
                report.resultHash = hashAttentionResult(
                    report.resultHash, done.result);
                if (config.captureResults)
                    report.results.push_back(std::move(done.result));
                inflight.erase(it);
            }
        }

        if (next >= trace.events.size() && scheduler.pending() == 0)
            break;

        // Advance one tick; when idle, jump to the tick the next
        // arrival lands in (same grid, fewer empty iterations).
        now += dt;
        if (scheduler.pending() == 0 && next < trace.events.size() &&
            trace.events[next].timeSeconds > now) {
            const double target = trace.events[next].timeSeconds;
            now = dt * std::ceil(target / dt);
            if (now < target)
                now = target;
        }
    }
    report.virtualSeconds = now;

    if (!inflight.empty())
        fatal("replayTrace: queries left in flight after the final "
              "drain");

    std::sort(waits.begin(), waits.end());
    report.queueWaitP50Ms = percentileSorted(waits, 0.50) * 1e3;
    report.queueWaitP95Ms = percentileSorted(waits, 0.95) * 1e3;
    report.queueWaitP99Ms = percentileSorted(waits, 0.99) * 1e3;
    report.queueWaitMaxMs = waits.empty() ? 0.0 : waits.back() * 1e3;

    const std::uint64_t judged =
        report.deadlineMet + report.deadlineMissed;
    report.deadlineHitRate =
        judged == 0 ? 1.0
                    : static_cast<double>(report.deadlineMet) /
                          static_cast<double>(judged);
    report.shedRate =
        report.queries == 0
            ? 0.0
            : static_cast<double>(report.shed()) /
                  static_cast<double>(report.queries);

    const SessionCacheStats cacheStats = cache.stats();
    report.cacheHits = cacheStats.hits;
    report.cacheMisses = cacheStats.misses;
    report.cacheEvictions = cacheStats.evictions;

    if (config.store != nullptr) {
        const ShardStoreStats after = config.store->stats();
        report.storeLiveHits = after.liveHits - storeBefore.liveHits;
        report.storeSpillRestores =
            after.spillRestores - storeBefore.spillRestores;
        report.storeColdBinds =
            after.coldBinds - storeBefore.coldBinds;
        const std::uint64_t acquisitions = report.storeLiveHits +
                                           report.storeSpillRestores +
                                           report.storeColdBinds;
        report.storeHitRate =
            acquisitions == 0
                ? 0.0
                : static_cast<double>(report.storeLiveHits +
                                      report.storeSpillRestores) /
                      static_cast<double>(acquisitions);
    }
    return report;
}

}  // namespace a3
