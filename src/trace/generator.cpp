#include "trace/generator.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.hpp"

namespace a3 {

namespace {

/** FNV-1a over a few integers: stable seed derivation that keeps
 *  content streams independent of event ordering. */
std::uint64_t
mixSeed(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t hash = 0xcbf29ce484222325ull;
    const std::uint64_t words[3] = {a, b, c};
    for (std::uint64_t word : words) {
        for (int byte = 0; byte < 8; ++byte) {
            hash ^= (word >> (8 * byte)) & 0xffu;
            hash *= 0x100000001b3ull;
        }
    }
    return hash;
}

/** Static per-session plan, fixed before any arrivals are drawn so
 *  a session looks the same no matter when it first fires. */
struct SessionPlan
{
    SessionStyle style = SessionStyle::Rag;
    std::uint32_t document = kPrivateDocument;
    std::uint32_t initialRows = 0;
    std::uint64_t contentSeed = 0;
};

std::uint32_t
sampleBucketRows(const TraceConfig &config, Rng &rng)
{
    double total = 0.0;
    for (const ContextBucket &bucket : config.contextRows)
        total += bucket.weight;
    double pick = rng.uniform() * total;
    for (const ContextBucket &bucket : config.contextRows) {
        pick -= bucket.weight;
        if (pick < 0.0)
            return bucket.rows;
    }
    return config.contextRows.back().rows;
}

void
validateConfig(const TraceConfig &config)
{
    if (config.durationSeconds <= 0.0)
        fatal("generateTrace: durationSeconds must be positive");
    if (config.arrivalsPerSecond <= 0.0)
        fatal("generateTrace: arrivalsPerSecond must be positive");
    if (config.sessionCount == 0)
        fatal("generateTrace: sessionCount must be nonzero");
    if (config.contextRows.empty())
        fatal("generateTrace: contextRows must be non-empty");
    for (const ContextBucket &bucket : config.contextRows)
        if (bucket.rows == 0 || bucket.weight <= 0.0)
            fatal("generateTrace: contextRows entries need nonzero "
                  "rows and positive weight");
    if (config.arrivals == ArrivalProcess::Bursty) {
        if (config.burstFactor < 1.0)
            fatal("generateTrace: burstFactor must be >= 1");
        if (config.burstDutyCycle <= 0.0 ||
            config.burstDutyCycle >= 1.0)
            fatal("generateTrace: burstDutyCycle must be in (0,1)");
        if (config.burstPeriodSeconds <= 0.0)
            fatal("generateTrace: burstPeriodSeconds must be "
                  "positive");
    }
    if (config.arrivals == ArrivalProcess::Diurnal) {
        if (config.diurnalAmplitude < 0.0 ||
            config.diurnalAmplitude >= 1.0)
            fatal("generateTrace: diurnalAmplitude must be in "
                  "[0,1)");
        if (config.diurnalPeriodSeconds <= 0.0)
            fatal("generateTrace: diurnalPeriodSeconds must be "
                  "positive");
    }
}

}  // namespace

const char *
arrivalProcessName(ArrivalProcess process)
{
    switch (process) {
    case ArrivalProcess::Poisson:
        return "poisson";
    case ArrivalProcess::Diurnal:
        return "diurnal";
    case ArrivalProcess::Bursty:
        return "bursty";
    }
    return "unknown";
}

ZipfSampler::ZipfSampler(std::size_t n, double exponent)
{
    if (n == 0)
        fatal("ZipfSampler: n must be nonzero");
    cdf_.resize(n);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        total += 1.0 / std::pow(static_cast<double>(k + 1), exponent);
        cdf_[k] = total;
    }
    for (double &value : cdf_)
        value /= total;
    cdf_.back() = 1.0;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        --it;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::probability(std::size_t rank) const
{
    if (rank >= cdf_.size())
        return 0.0;
    return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

double
arrivalRateAt(const TraceConfig &config, double t)
{
    const double mean = config.arrivalsPerSecond;
    switch (config.arrivals) {
    case ArrivalProcess::Poisson:
        return mean;
    case ArrivalProcess::Diurnal: {
        const double phase =
            2.0 * M_PI * t / config.diurnalPeriodSeconds;
        return mean *
               (1.0 + config.diurnalAmplitude * std::sin(phase));
    }
    case ArrivalProcess::Bursty: {
        // Baseline rate chosen so the duty-cycle-weighted average
        // equals the configured mean.
        const double base =
            mean / (config.burstDutyCycle * config.burstFactor +
                    (1.0 - config.burstDutyCycle));
        const double phase =
            std::fmod(t, config.burstPeriodSeconds) /
            config.burstPeriodSeconds;
        return phase < config.burstDutyCycle
                   ? base * config.burstFactor
                   : base;
    }
    }
    return mean;
}

double
peakArrivalRate(const TraceConfig &config)
{
    switch (config.arrivals) {
    case ArrivalProcess::Poisson:
        return config.arrivalsPerSecond;
    case ArrivalProcess::Diurnal:
        return config.arrivalsPerSecond *
               (1.0 + config.diurnalAmplitude);
    case ArrivalProcess::Bursty:
        return arrivalRateAt(config, 0.0);
    }
    return config.arrivalsPerSecond;
}

Trace
generateTrace(const TraceConfig &config)
{
    validateConfig(config);

    // Independent streams so changing one aspect of the config
    // (say, the arrival process) does not reshuffle the others.
    Rng planRng(mixSeed(config.seed, 0x706c616eull, 0));
    Rng arrivalRng(mixSeed(config.seed, 0x61727276ull, 0));
    Rng trafficRng(mixSeed(config.seed, 0x74726166ull, 0));

    // Per-document rows + content: sessions sharing a document bind
    // byte-identical matrices, which is what the ShardStore dedups.
    std::vector<std::uint32_t> documentRows(
        std::max<std::uint32_t>(config.documentCount, 1));
    for (std::size_t d = 0; d < documentRows.size(); ++d)
        documentRows[d] = sampleBucketRows(config, planRng);

    ZipfSampler documentZipf(documentRows.size(),
                             config.documentZipfExponent);

    std::vector<SessionPlan> plans(config.sessionCount);
    for (std::uint32_t s = 0; s < config.sessionCount; ++s) {
        SessionPlan &plan = plans[s];
        const bool rag = config.documentCount > 0 &&
                         planRng.bernoulli(config.ragFraction);
        if (rag) {
            plan.style = SessionStyle::Rag;
            plan.document = static_cast<std::uint32_t>(
                documentZipf.sample(planRng));
            plan.initialRows = documentRows[plan.document];
            plan.contentSeed =
                mixSeed(config.seed, 0x646f63ull, plan.document);
        } else {
            plan.style = SessionStyle::Chat;
            plan.document = kPrivateDocument;
            plan.initialRows = sampleBucketRows(config, planRng);
            plan.contentSeed = mixSeed(config.seed, 0x63686174ull, s);
        }
    }

    // Arrival times via thinning: draw a homogeneous process at the
    // peak rate, keep each point with probability rate(t)/peak.
    const double peak = peakArrivalRate(config);
    std::vector<double> arrivals;
    arrivals.reserve(static_cast<std::size_t>(
        config.arrivalsPerSecond * config.durationSeconds * 1.25));
    double t = 0.0;
    while (true) {
        const double u = std::max(arrivalRng.uniform(), 1e-12);
        t += -std::log(u) / peak;
        if (t >= config.durationSeconds)
            break;
        if (arrivalRng.uniform() * peak <= arrivalRateAt(config, t))
            arrivals.push_back(t);
    }

    ZipfSampler sessionZipf(config.sessionCount, config.zipfExponent);

    Trace trace;
    trace.seed = config.seed;
    trace.durationSeconds = config.durationSeconds;
    trace.sessionCount = config.sessionCount;
    trace.events.reserve(arrivals.size() * 2);

    std::vector<std::uint32_t> queriesSeen(config.sessionCount, 0);
    std::vector<std::uint32_t> sessionRows(config.sessionCount, 0);
    std::vector<bool> bound(config.sessionCount, false);

    for (double when : arrivals) {
        const auto session = static_cast<std::uint32_t>(
            sessionZipf.sample(trafficRng));
        const SessionPlan &plan = plans[session];

        if (!bound[session]) {
            bound[session] = true;
            sessionRows[session] = plan.initialRows;
            TraceEvent bind;
            bind.timeSeconds = when;
            bind.session = session;
            bind.kind = TraceEventKind::Bind;
            bind.style = plan.style;
            bind.document = plan.document;
            bind.rows = plan.initialRows;
            bind.payloadSeed = plan.contentSeed;
            trace.events.push_back(bind);
        } else if (plan.style == SessionStyle::Chat &&
                   config.appendEveryQueries > 0 &&
                   queriesSeen[session] % config.appendEveryQueries ==
                       0 &&
                   (config.maxContextRows == 0 ||
                    sessionRows[session] + config.appendRows <=
                        config.maxContextRows)) {
            sessionRows[session] += config.appendRows;
            TraceEvent append;
            append.timeSeconds = when;
            append.session = session;
            append.kind = TraceEventKind::Append;
            append.style = plan.style;
            append.document = plan.document;
            append.rows = config.appendRows;
            append.payloadSeed = plan.contentSeed;
            trace.events.push_back(append);
        }

        TraceEvent query;
        query.timeSeconds = when;
        query.session = session;
        query.kind = TraceEventKind::Query;
        query.style = plan.style;
        query.document = plan.document;
        query.payloadSeed = trafficRng();
        const bool tight =
            trafficRng.bernoulli(config.tightDeadlineFraction);
        query.deadlineSeconds = tight ? config.tightDeadlineSeconds
                                      : config.looseDeadlineSeconds;
        trace.events.push_back(query);
        ++queriesSeen[session];
    }

    return trace;
}

}  // namespace a3
