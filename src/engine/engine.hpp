/**
 * @file
 * Batched, multi-threaded attention execution.
 *
 * The paper's accelerator wins by exploiting the independence between
 * queries: BERT answers n token queries against one shared key matrix,
 * multi-head attention runs h independent heads, and a deployed QA
 * service streams questions against one loaded story. AttentionEngine
 * is the software substrate for that parallelism: it takes batches of
 * queries (and multi-head / multi-sequence request groups) against
 * preprocessed AttentionBackend tasks and fans them out over a
 * reusable ThreadPool.
 *
 * Guarantees:
 *  - results come back in request order regardless of thread count;
 *  - batched outputs are bit-identical to sequential per-query run()
 *    calls (each query executes exactly the sequential code path and
 *    writes only its own slot);
 *  - the sorted-key / datapath preprocessing of a backend is performed
 *    once per key/value pair and shared by every query in the batch.
 */

#ifndef A3_ENGINE_ENGINE_HPP
#define A3_ENGINE_ENGINE_HPP

#include <cstddef>
#include <functional>
#include <vector>

#include "attention/backend.hpp"
#include "attention/multi_hop.hpp"
#include "attention/self_attention.hpp"
#include "engine/thread_pool.hpp"

namespace a3 {

/**
 * One batch of queries sharing a preprocessed backend — a sequence, a
 * head, or one episode of a request stream. The backend is borrowed
 * and must outlive the engine call.
 */
struct AttentionRequestGroup
{
    const AttentionBackend *backend = nullptr;
    std::vector<Vector> queries;
};

/**
 * Per-group completion callback of runGroupsInto(): invoked exactly
 * once per non-empty group, by whichever pool lane finishes the
 * group's last query, with the group's index and its service time in
 * seconds measured from the start of the batch pass. Callbacks for
 * different groups may run concurrently, so the hook must be
 * thread-safe across groups (within one group it is never invoked
 * twice). Groups with no queries are not reported.
 */
using GroupCompletionHook =
    std::function<void(std::size_t group, double seconds)>;

/** Batched executor over AttentionBackend tasks. */
class AttentionEngine
{
  public:
    /**
     * @param threads total parallel lanes (including the calling
     *        thread); 0 picks std::thread::hardware_concurrency().
     */
    explicit AttentionEngine(std::size_t threads = 0);

    /** Parallel lanes the engine dispatches over. */
    std::size_t threads() const { return pool_.threadCount(); }

    /**
     * Answer a batch of queries against one backend. result[i] is
     * bit-identical to backend.run(queries[i]).
     */
    std::vector<AttentionResult>
    run(const AttentionBackend &backend,
        const std::vector<Vector> &queries) const;

    /**
     * Allocation-free batch variant: answers into `results`, resizing
     * it to queries.size() and reusing every slot's buffers. A serving
     * loop that keeps one results vector performs zero steady-state
     * heap allocations once the batch size and task shape have been
     * seen (each lane's transients live in its thread-local Scratch).
     */
    void runInto(const AttentionBackend &backend,
                 const std::vector<Vector> &queries,
                 std::vector<AttentionResult> &results) const;

    /**
     * Answer several request groups (multi-head or multi-sequence):
     * every (group, query) pair is decomposed into its backend's
     * work units (AttentionBackend::workUnitCount() — one per shard
     * for a sharded backend, one total for a plain one) and all the
     * units are flattened into one work list, so small groups cannot
     * strand lanes and shard partials from many queries share the
     * same lanes with no nested pool. The list interleaves the
     * groups round-robin — query q of every group before query q+1
     * of any — so one huge group cannot monopolize the first lanes
     * and small groups complete early (the batch-formation order the
     * serving tier's fairness rides on). Single-unit queries execute
     * the sequential runInto() path and multi-unit queries merge
     * their partials serially in fixed unit order, so result[g][i]
     * is bit-identical to groups[g].backend->
     * run(groups[g].queries[i]) regardless of the interleave.
     */
    std::vector<std::vector<AttentionResult>>
    runGroups(const std::vector<AttentionRequestGroup> &groups) const;

    /**
     * Buffer-reusing variant of runGroups(): answers into `results`,
     * resizing it to groups.size() and reusing every slot's buffers —
     * the steady-state path of the serving BatchScheduler, which keeps
     * one results vector across drains.
     */
    void runGroupsInto(
        const std::vector<AttentionRequestGroup> &groups,
        std::vector<std::vector<AttentionResult>> &results) const;

    /**
     * runGroupsInto() with per-group service-time telemetry:
     * `onGroupDone` fires as each group's last query completes (see
     * GroupCompletionHook for the threading contract). The serving
     * BatchScheduler feeds its latency reservoirs through this hook;
     * the results are unchanged by its presence.
     */
    void runGroupsInto(
        const std::vector<AttentionRequestGroup> &groups,
        std::vector<std::vector<AttentionResult>> &results,
        const GroupCompletionHook &onGroupDone) const;

    /**
     * Batched self-attention: preprocess (key, value) once, then
     * answer one query per row of `queries` in parallel (Section IV-A
     * amortization). Equivalent to — and bit-identical with — the
     * sequential selfAttention() free function.
     */
    SelfAttentionResult selfAttention(const Matrix &key,
                                      const Matrix &value,
                                      const Matrix &queries,
                                      const ApproxConfig &config) const;

    /**
     * Batched multi-hop attention: hops are sequential within one
     * query chain (u^{k+1} = u^k + o^k), chains run in parallel.
     */
    std::vector<MultiHopResult>
    runMultiHop(const MultiHopAttention &attention,
                const std::vector<Vector> &queries) const;

    /** The underlying pool, for consumers with custom loop shapes. */
    const ThreadPool &pool() const { return pool_; }

    /**
     * Process-wide engine sized to the hardware, used by the
     * convenience layers (selfAttention(), MultiHopAttention::
     * runBatch()) so every caller gets batching without plumbing an
     * engine through.
     */
    static AttentionEngine &shared();

  private:
    ThreadPool pool_;
};

}  // namespace a3

#endif  // A3_ENGINE_ENGINE_HPP
