#include "engine/thread_pool.hpp"

#include <algorithm>

namespace a3 {

namespace {

/** Pool whose job body the current thread is executing, if any. */
thread_local const ThreadPool *currentPool = nullptr;

/** RAII marker for "this thread is inside a job of `pool`". */
struct JobScope
{
    explicit JobScope(const ThreadPool *pool) : previous(currentPool)
    {
        currentPool = pool;
    }
    ~JobScope() { currentPool = previous; }
    const ThreadPool *previous;
};

}  // namespace

ThreadPool::ThreadPool(std::size_t threads)
{
    std::size_t lanes = threads;
    if (lanes == 0) {
        lanes = std::max<std::size_t>(
            1, std::thread::hardware_concurrency());
    }
    workers_.reserve(lanes - 1);
    for (std::size_t i = 0; i + 1 < lanes; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    wake_.notify_all();
    for (std::thread &worker : workers_)
        worker.join();
}

void
ThreadPool::drain(const std::function<void(std::size_t)> &body) const
{
    const JobScope scope(this);
    for (;;) {
        const std::size_t index =
            next_.fetch_add(1, std::memory_order_relaxed);
        if (index >= count_)
            return;
        body(index);
    }
}

void
ThreadPool::parallelFor(
    std::size_t count,
    const std::function<void(std::size_t)> &body) const
{
    if (count == 0)
        return;
    // Run inline when there is nothing to fan out to, when the batch
    // is a single item, or when this thread is already inside one of
    // this pool's job bodies (a nested dispatch would deadlock on the
    // caller lock while the outer job waits for this lane).
    if (workers_.empty() || count == 1 || currentPool == this) {
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    std::lock_guard<std::mutex> callerLock(callerMutex_);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        body_ = &body;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        ++generation_;
    }
    wake_.notify_all();

    // The caller is one of the lanes.
    drain(body);

    // Wait for workers still inside the job; workers that never woke
    // have not incremented active_ and will see a null job slot.
    std::unique_lock<std::mutex> lock(mutex_);
    done_.wait(lock, [this] {
        return active_ == 0 &&
               next_.load(std::memory_order_relaxed) >= count_;
    });
    body_ = nullptr;
}

void
ThreadPool::workerLoop()
{
    std::uint64_t seenGeneration = 0;
    for (;;) {
        const std::function<void(std::size_t)> *body = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            wake_.wait(lock, [this, seenGeneration] {
                return stop_ || (body_ != nullptr &&
                                 generation_ != seenGeneration);
            });
            if (stop_)
                return;
            seenGeneration = generation_;
            body = body_;
            ++active_;
        }
        drain(*body);
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --active_;
        }
        done_.notify_one();
    }
}

}  // namespace a3
