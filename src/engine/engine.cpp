#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <utility>

#include "util/logging.hpp"

namespace a3 {

namespace {

/**
 * One borrowed group of a flattened pass: the backend, its queries,
 * and the result slots they answer into. runInto() and
 * runGroupsInto() both reduce to a span of these, so the single-
 * backend and multi-group entry points share one execution core.
 */
struct GroupView
{
    const AttentionBackend *backend = nullptr;
    const std::vector<Vector> *queries = nullptr;
    std::vector<AttentionResult> *results = nullptr;
};

/**
 * The flattened execution core: decompose every (group, query) into
 * the backend's work units (workUnitCount() — one per shard for a
 * sharded backend, one total for a plain one), run all units of the
 * whole batch on one work list, and have the lane that finishes a
 * query's last unit merge its partials serially in unit order
 * (mergeUnitsInto). Single-unit queries take the backend's exact
 * runInto() path, so bit-identity with sequential run() calls is
 * preserved for every kind — including the quantized backends, whose
 * partial roundtrip is only ULP-bounded. No backend ever borrows a
 * nested pool: shard partials from many queries share these lanes.
 */
void
runFlattened(const ThreadPool &pool,
             const std::vector<GroupView> &views,
             const GroupCompletionHook &onGroupDone)
{
    struct WorkUnit
    {
        std::uint32_t group;
        std::uint32_t query;
        std::uint32_t unit;
    };

    std::size_t maxQueries = 0;
    std::size_t totalUnits = 0;
    std::vector<std::size_t> unitCount(views.size());
    /** Flat query index: queryBase[g] + q addresses the partial
     *  slots and unit countdown of (g, q). */
    std::vector<std::size_t> queryBase(views.size() + 1, 0);
    for (std::size_t g = 0; g < views.size(); ++g) {
        const GroupView &view = views[g];
        a3Assert(view.backend != nullptr,
                 "request group ", g, " has no backend");
        view.results->resize(view.queries->size());
        unitCount[g] = view.backend->workUnitCount();
        a3Assert(unitCount[g] > 0,
                 "backend of group ", g, " reports zero work units");
        maxQueries = std::max(maxQueries, view.queries->size());
        totalUnits += unitCount[g] * view.queries->size();
        queryBase[g + 1] = queryBase[g] + view.queries->size();
    }

    // Round-robin batch formation at query granularity: every unit
    // of query q of every group lands in the list before query q+1
    // of any, so a huge group cannot monopolize the first lanes and
    // every group's per-query cost is spread evenly across the pass.
    // Units of one query stay adjacent, keeping a query's shard
    // passes temporally close (their merge runs as soon as the last
    // one lands). The interleave only reorders which lane picks up
    // which unit — the merge order is fixed — so results are
    // bit-identical to any other order.
    std::vector<WorkUnit> work;
    work.reserve(totalUnits);
    for (std::size_t q = 0; q < maxQueries; ++q)
        for (std::size_t g = 0; g < views.size(); ++g)
            if (q < views[g].queries->size())
                for (std::size_t u = 0; u < unitCount[g]; ++u)
                    work.push_back({static_cast<std::uint32_t>(g),
                                    static_cast<std::uint32_t>(q),
                                    static_cast<std::uint32_t>(u)});

    // Per-query partial slots and unit countdowns, only materialized
    // for multi-unit groups; the lane that takes a query's counter
    // to zero saw every other lane's partial (acq_rel) and owns the
    // serial merge.
    const std::size_t totalQueries = queryBase.back();
    std::vector<std::vector<PartialResult>> partials(totalQueries);
    std::vector<std::atomic<std::size_t>> unitsLeft(totalQueries);
    for (std::size_t g = 0; g < views.size(); ++g) {
        if (unitCount[g] == 1)
            continue;
        for (std::size_t q = 0; q < views[g].queries->size(); ++q) {
            const std::size_t f = queryBase[g] + q;
            partials[f].resize(unitCount[g]);
            unitsLeft[f].store(unitCount[g],
                               std::memory_order_relaxed);
        }
    }

    // Per-group countdowns for the completion hook: the lane that
    // takes a group's counter to zero finished its last query and
    // owns the single report for that group.
    std::vector<std::atomic<std::size_t>> remaining(
        onGroupDone ? views.size() : 0);
    for (std::size_t g = 0; g < remaining.size(); ++g)
        remaining[g].store(views[g].queries->size(),
                           std::memory_order_relaxed);
    const auto passStart = std::chrono::steady_clock::now();

    pool.parallelFor(work.size(), [&](std::size_t i) {
        const WorkUnit &item = work[i];
        const GroupView &view = views[item.group];
        const Vector &query = (*view.queries)[item.query];
        AttentionResult &slot = (*view.results)[item.query];
        if (unitCount[item.group] == 1) {
            // The backend's exact sequential path — required for the
            // single-unit bit-identity guarantee.
            view.backend->runInto(query, slot);
        } else {
            const std::size_t f = queryBase[item.group] + item.query;
            view.backend->runUnitPartialInto(item.unit, query,
                                             partials[f][item.unit]);
            if (unitsLeft[f].fetch_sub(
                    1, std::memory_order_acq_rel) != 1)
                return;
            view.backend->mergeUnitsInto(partials[f], slot);
        }
        if (onGroupDone &&
            remaining[item.group].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - passStart;
            onGroupDone(item.group, elapsed.count());
        }
    });
}

}  // namespace

AttentionEngine::AttentionEngine(std::size_t threads) : pool_(threads)
{
}

AttentionEngine &
AttentionEngine::shared()
{
    static AttentionEngine engine;
    return engine;
}

std::vector<AttentionResult>
AttentionEngine::run(const AttentionBackend &backend,
                     const std::vector<Vector> &queries) const
{
    std::vector<AttentionResult> results;
    runInto(backend, queries, results);
    return results;
}

void
AttentionEngine::runInto(const AttentionBackend &backend,
                         const std::vector<Vector> &queries,
                         std::vector<AttentionResult> &results) const
{
    results.resize(queries.size());
    if (backend.workUnitCount() == 1) {
        // Single-unit fast path: one query per pool job, no work
        // list. One-pointer capture so the closure fits
        // std::function's small-object buffer; each lane writes only
        // its own slot through its own thread-local Scratch arena.
        // With a reused `results` vector the whole batch is
        // allocation-free in steady state.
        struct Ctx
        {
            const AttentionBackend *backend;
            const std::vector<Vector> *queries;
            std::vector<AttentionResult> *results;
        } ctx{&backend, &queries, &results};
        pool_.parallelFor(queries.size(), [&ctx](std::size_t i) {
            ctx.backend->runInto((*ctx.queries)[i], (*ctx.results)[i]);
        });
        return;
    }
    // Multi-unit backend (a sharded session): flatten every (query,
    // shard) unit of the batch into one work list so shard partials
    // from all the queries share the pool lanes.
    const std::vector<GroupView> views{{&backend, &queries, &results}};
    runFlattened(pool_, views, GroupCompletionHook());
}

std::vector<std::vector<AttentionResult>>
AttentionEngine::runGroups(
    const std::vector<AttentionRequestGroup> &groups) const
{
    std::vector<std::vector<AttentionResult>> results;
    runGroupsInto(groups, results);
    return results;
}

void
AttentionEngine::runGroupsInto(
    const std::vector<AttentionRequestGroup> &groups,
    std::vector<std::vector<AttentionResult>> &results) const
{
    runGroupsInto(groups, results, GroupCompletionHook());
}

void
AttentionEngine::runGroupsInto(
    const std::vector<AttentionRequestGroup> &groups,
    std::vector<std::vector<AttentionResult>> &results,
    const GroupCompletionHook &onGroupDone) const
{
    results.resize(groups.size());
    std::vector<GroupView> views(groups.size());
    for (std::size_t g = 0; g < groups.size(); ++g)
        views[g] = {groups[g].backend, &groups[g].queries,
                    &results[g]};
    runFlattened(pool_, views, onGroupDone);
}

SelfAttentionResult
AttentionEngine::selfAttention(const Matrix &key, const Matrix &value,
                               const Matrix &queries,
                               const ApproxConfig &config) const
{
    a3Assert(queries.cols() == key.cols(),
             "query width must match the key dimension");
    // One preprocessing pass (the column sort of Section IV-A) shared
    // by every token query.
    const ApproxAttention backend(key, value, config);

    const std::size_t tokens = queries.rows();
    std::vector<Vector> perToken(tokens);
    for (std::size_t t = 0; t < tokens; ++t)
        perToken[t].assign(queries.row(t).begin(),
                           queries.row(t).end());
    std::vector<AttentionResult> batched = run(backend, perToken);

    SelfAttentionResult result;
    result.outputs = Matrix(tokens, key.cols());
    result.perToken.reserve(tokens);
    double candSum = 0.0;
    double keptSum = 0.0;
    for (std::size_t t = 0; t < tokens; ++t) {
        AttentionResult &r = batched[t];
        for (std::size_t j = 0; j < key.cols(); ++j)
            result.outputs(t, j) = r.output[j];
        candSum += static_cast<double>(r.candidates.size());
        keptSum += static_cast<double>(r.kept.size());
        result.perToken.push_back(std::move(r));
    }
    if (tokens > 0) {
        result.avgCandidates = candSum / static_cast<double>(tokens);
        result.avgKept = keptSum / static_cast<double>(tokens);
    }
    return result;
}

std::vector<MultiHopResult>
AttentionEngine::runMultiHop(const MultiHopAttention &attention,
                             const std::vector<Vector> &queries) const
{
    std::vector<MultiHopResult> results(queries.size());
    pool_.parallelFor(queries.size(), [&](std::size_t i) {
        results[i] = attention.run(queries[i]);
    });
    return results;
}

}  // namespace a3
