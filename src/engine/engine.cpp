#include "engine/engine.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <utility>

#include "util/logging.hpp"

namespace a3 {

AttentionEngine::AttentionEngine(std::size_t threads) : pool_(threads)
{
}

AttentionEngine &
AttentionEngine::shared()
{
    static AttentionEngine engine;
    return engine;
}

std::vector<AttentionResult>
AttentionEngine::run(const AttentionBackend &backend,
                     const std::vector<Vector> &queries) const
{
    std::vector<AttentionResult> results;
    runInto(backend, queries, results);
    return results;
}

void
AttentionEngine::runInto(const AttentionBackend &backend,
                         const std::vector<Vector> &queries,
                         std::vector<AttentionResult> &results) const
{
    results.resize(queries.size());
    // One-pointer capture so the closure fits std::function's
    // small-object buffer; each lane writes only its own slot through
    // its own thread-local Scratch arena. With a reused `results`
    // vector the whole batch is allocation-free in steady state.
    struct Ctx
    {
        const AttentionBackend *backend;
        const std::vector<Vector> *queries;
        std::vector<AttentionResult> *results;
    } ctx{&backend, &queries, &results};
    pool_.parallelFor(queries.size(), [&ctx](std::size_t i) {
        ctx.backend->runInto((*ctx.queries)[i], (*ctx.results)[i]);
    });
}

std::vector<std::vector<AttentionResult>>
AttentionEngine::runGroups(
    const std::vector<AttentionRequestGroup> &groups) const
{
    std::vector<std::vector<AttentionResult>> results;
    runGroupsInto(groups, results);
    return results;
}

void
AttentionEngine::runGroupsInto(
    const std::vector<AttentionRequestGroup> &groups,
    std::vector<std::vector<AttentionResult>> &results) const
{
    runGroupsInto(groups, results, GroupCompletionHook());
}

void
AttentionEngine::runGroupsInto(
    const std::vector<AttentionRequestGroup> &groups,
    std::vector<std::vector<AttentionResult>> &results,
    const GroupCompletionHook &onGroupDone) const
{
    // Flatten all (group, query) pairs into one work list so the lanes
    // stay busy across group boundaries.
    struct WorkItem
    {
        std::size_t group;
        std::size_t query;
    };
    std::vector<WorkItem> work;
    results.resize(groups.size());
    std::size_t maxQueries = 0;
    std::size_t total = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        a3Assert(groups[g].backend != nullptr,
                 "request group ", g, " has no backend");
        results[g].resize(groups[g].queries.size());
        maxQueries = std::max(maxQueries, groups[g].queries.size());
        total += groups[g].queries.size();
    }
    // Round-robin batch formation: query q of every group lands in
    // the list before query q+1 of any, so a huge group cannot
    // monopolize the first lanes and every group's per-query cost is
    // spread evenly across the pass. The interleave only reorders
    // which lane picks up which query — each writes its own slot, so
    // the results are bit-identical to a group-major order.
    work.reserve(total);
    for (std::size_t q = 0; q < maxQueries; ++q)
        for (std::size_t g = 0; g < groups.size(); ++g)
            if (q < groups[g].queries.size())
                work.push_back({g, q});

    // Per-group countdowns for the completion hook: the lane that
    // takes a group's counter to zero ran its last query and owns the
    // single report for that group.
    std::vector<std::atomic<std::size_t>> remaining(
        onGroupDone ? groups.size() : 0);
    for (std::size_t g = 0; g < remaining.size(); ++g)
        remaining[g].store(groups[g].queries.size(),
                           std::memory_order_relaxed);
    const auto passStart = std::chrono::steady_clock::now();

    pool_.parallelFor(work.size(), [&](std::size_t i) {
        const WorkItem &item = work[i];
        const AttentionRequestGroup &group = groups[item.group];
        group.backend->runInto(group.queries[item.query],
                               results[item.group][item.query]);
        if (onGroupDone &&
            remaining[item.group].fetch_sub(
                1, std::memory_order_acq_rel) == 1) {
            const std::chrono::duration<double> elapsed =
                std::chrono::steady_clock::now() - passStart;
            onGroupDone(item.group, elapsed.count());
        }
    });
}

SelfAttentionResult
AttentionEngine::selfAttention(const Matrix &key, const Matrix &value,
                               const Matrix &queries,
                               const ApproxConfig &config) const
{
    a3Assert(queries.cols() == key.cols(),
             "query width must match the key dimension");
    // One preprocessing pass (the column sort of Section IV-A) shared
    // by every token query.
    const ApproxAttention backend(key, value, config);

    const std::size_t tokens = queries.rows();
    std::vector<Vector> perToken(tokens);
    for (std::size_t t = 0; t < tokens; ++t)
        perToken[t].assign(queries.row(t).begin(),
                           queries.row(t).end());
    std::vector<AttentionResult> batched = run(backend, perToken);

    SelfAttentionResult result;
    result.outputs = Matrix(tokens, key.cols());
    result.perToken.reserve(tokens);
    double candSum = 0.0;
    double keptSum = 0.0;
    for (std::size_t t = 0; t < tokens; ++t) {
        AttentionResult &r = batched[t];
        for (std::size_t j = 0; j < key.cols(); ++j)
            result.outputs(t, j) = r.output[j];
        candSum += static_cast<double>(r.candidates.size());
        keptSum += static_cast<double>(r.kept.size());
        result.perToken.push_back(std::move(r));
    }
    if (tokens > 0) {
        result.avgCandidates = candSum / static_cast<double>(tokens);
        result.avgKept = keptSum / static_cast<double>(tokens);
    }
    return result;
}

std::vector<MultiHopResult>
AttentionEngine::runMultiHop(const MultiHopAttention &attention,
                             const std::vector<Vector> &queries) const
{
    std::vector<MultiHopResult> results(queries.size());
    pool_.parallelFor(queries.size(), [&](std::size_t i) {
        results[i] = attention.run(queries[i]);
    });
    return results;
}

}  // namespace a3
