/**
 * @file
 * Reusable worker pool for data-parallel attention batches.
 *
 * The pool models the paper's core parallelism claim in software: A3
 * exploits independence across queries and heads, so the engine fans a
 * batch out as an index-parallel loop. Work is handed out through one
 * shared atomic cursor (dynamic load balancing — approximate queries
 * have data-dependent cost), and every index writes only its own
 * output slot, which is what makes batched results deterministic and
 * bit-identical to a sequential run regardless of thread count.
 */

#ifndef A3_ENGINE_THREAD_POOL_HPP
#define A3_ENGINE_THREAD_POOL_HPP

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace a3 {

/**
 * Fixed-size pool of persistent workers driving parallelFor() loops.
 * The calling thread always participates as one lane, so a pool built
 * with `threads == 1` runs everything inline with zero overhead and a
 * pool with N lanes uses N-1 background threads.
 */
class ThreadPool
{
  public:
    /**
     * @param threads total parallel lanes including the caller;
     *        0 means std::thread::hardware_concurrency().
     */
    explicit ThreadPool(std::size_t threads = 0);

    /** Joins all workers; outstanding parallelFor() calls finish first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Total lanes (background workers + the calling thread). */
    std::size_t threadCount() const { return workers_.size() + 1; }

    /**
     * Run body(0) .. body(count - 1), distributing indices over the
     * lanes, and return when all have finished. body must not throw
     * (the library reports errors via fatal()/panic()) and must write
     * only per-index state. Concurrent parallelFor() calls from
     * different threads are serialized; a nested call from inside one
     * of this pool's own job bodies runs inline on the calling lane
     * instead of deadlocking on the serialization lock.
     */
    void parallelFor(std::size_t count,
                     const std::function<void(std::size_t)> &body) const;

  private:
    void workerLoop();

    /** Claim indices from the shared cursor until the job is drained. */
    void drain(const std::function<void(std::size_t)> &body) const;

    /** Serializes whole parallelFor() calls. */
    mutable std::mutex callerMutex_;

    /** Guards the job slot below. */
    mutable std::mutex mutex_;
    mutable std::condition_variable wake_;
    mutable std::condition_variable done_;
    mutable const std::function<void(std::size_t)> *body_ = nullptr;
    mutable std::size_t count_ = 0;
    mutable std::atomic<std::size_t> next_{0};
    mutable std::size_t active_ = 0;
    mutable std::uint64_t generation_ = 0;
    bool stop_ = false;

    std::vector<std::thread> workers_;
};

}  // namespace a3

#endif  // A3_ENGINE_THREAD_POOL_HPP
