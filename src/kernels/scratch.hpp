/**
 * @file
 * Reusable per-thread workspace for the attention hot paths.
 *
 * Every AttentionBackend::runInto() call needs short-lived buffers —
 * candidate row lists, per-candidate scores, softmax workspace, the
 * greedy-search heaps, the quantized pipeline's integer lanes. Before
 * this arena existed each run() allocated them fresh; now each thread
 * (each AttentionEngine lane) owns one Scratch whose buffers are
 * grown to the task size on first use and then reused, so
 * steady-state serving performs zero heap allocations per query.
 *
 * Buffer ownership is static per call path, so nested stages never
 * alias:
 *  - sub:                  subsetAttentionInto() softmax workspace
 *  - candScores:           approx flows' candidate dot products
 *  - rowIds:               candidate rows (or the full-row iota)
 *  - kept:                 post-scoring survivors
 *  - greedy/maxHeap/minHeap: efficientGreedySearch working state
 *  - queryQ/dotQ/scoreQ/outQ: quantized pipeline lanes
 *  - queryQ8/dotQ32:        packed-kernel lanes of the same pipeline
 *
 * Scratch is deliberately value-only state: reusing it changes which
 * bytes of memory are written, never the values computed, so batched
 * results stay bit-identical to sequential ones.
 */

#ifndef A3_KERNELS_SCRATCH_HPP
#define A3_KERNELS_SCRATCH_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace a3 {

/**
 * One element-wise product in flight inside the greedy search: its
 * value, the matrix coordinates it came from, and its position in the
 * sorted column (the pointer of Figure 7).
 */
struct GreedyHeapEntry
{
    double score;
    std::uint32_t rowId;
    std::uint32_t colId;
    std::int64_t pos;
};

/** Per-thread reusable buffers for one in-flight attention query. */
struct Scratch
{
    /** Softmax workspace over the kept-row subset (length m). */
    std::vector<float> sub;

    /** Candidate dot-product scores (length = candidate count). */
    std::vector<float> candScores;

    /** Candidate row ids, or the full-row iota for exact flows. */
    std::vector<std::uint32_t> rowIds;

    /** Post-scoring survivors. */
    std::vector<std::uint32_t> kept;

    /** Greedy accumulator per row (length n, double precision). */
    std::vector<double> greedy;

    /** Max-side priority heap of the efficient greedy search. */
    std::vector<GreedyHeapEntry> maxHeap;

    /** Min-side priority heap. */
    std::vector<GreedyHeapEntry> minHeap;

    /** Quantized query lane (length d). */
    std::vector<std::int64_t> queryQ;

    /** Packed-path query lane: the same quantized words as int8. */
    std::vector<std::int8_t> queryQ8;

    /** Quantized dot-product lane (length = row count). */
    std::vector<std::int64_t> dotQ;

    /** Packed-kernel dot accumulators (length = row count). */
    std::vector<std::int32_t> dotQ32;

    /** Quantized exponent-score lane (length = row count). */
    std::vector<std::int64_t> scoreQ;

    /** Quantized output accumulators (length d). */
    std::vector<std::int64_t> outQ;

    /**
     * Grow every buffer to the capacity an (n x d) task can need, so
     * later runInto() calls on this thread never reallocate. Called by
     * backends at bind time for the binding thread; other threads
     * warm up on their first query.
     */
    void reserveTask(std::size_t rows, std::size_t dims);

    /**
     * The calling thread's arena. Thread-local: the engine's pool
     * threads each own one, which lives as long as the thread.
     */
    static Scratch &forThread();
};

}  // namespace a3

#endif  // A3_KERNELS_SCRATCH_HPP
