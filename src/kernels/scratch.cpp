#include "kernels/scratch.hpp"

namespace a3 {

namespace {

template <typename T>
void
reserveAtLeast(std::vector<T> &v, std::size_t n)
{
    if (v.capacity() < n)
        v.reserve(n);
}

}  // namespace

void
Scratch::reserveTask(std::size_t rows, std::size_t dims)
{
    reserveAtLeast(sub, rows);
    reserveAtLeast(candScores, rows);
    reserveAtLeast(rowIds, rows);
    reserveAtLeast(kept, rows);
    reserveAtLeast(greedy, rows);
    // Each greedy heap holds at most one entry per column, plus the
    // one being pushed while another is popped.
    reserveAtLeast(maxHeap, dims + 1);
    reserveAtLeast(minHeap, dims + 1);
    reserveAtLeast(queryQ, dims);
    reserveAtLeast(queryQ8, dims);
    reserveAtLeast(dotQ, rows);
    reserveAtLeast(dotQ32, rows);
    reserveAtLeast(scoreQ, rows);
    reserveAtLeast(outQ, dims);
}

Scratch &
Scratch::forThread()
{
    thread_local Scratch scratch;
    return scratch;
}

}  // namespace a3
