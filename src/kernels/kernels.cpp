#include "kernels/kernels.hpp"

#include <atomic>
#include <cstdlib>

#include "kernels/kernels_impl.hpp"
#include "util/logging.hpp"

namespace a3 {

const char *
kernelIsaName(KernelIsa isa)
{
    switch (isa) {
      case KernelIsa::Scalar:
        return "scalar";
      case KernelIsa::Sse2:
        return "sse2";
      case KernelIsa::Avx2:
        return "avx2";
      case KernelIsa::Neon:
        return "neon";
    }
    panic("unknown kernel ISA");
}

const Kernels &
scalarKernels()
{
    using namespace kernel_detail;
    static const Kernels table{
        KernelIsa::Scalar, dotScalar,      axpyScalar,
        maxReduceScalar,   expSumInPlaceScalar, scaleScalar,
        divideByScalar,    gatherDotScalar, gatherWeightedSumScalar,
        dotI8Scalar,       gatherDotI8Scalar,
        dotI4Scalar,       gatherDotI4Scalar,
        axpyI8Scalar,      axpyI4Scalar,
    };
    return table;
}

std::vector<KernelIsa>
availableKernelIsas()
{
    std::vector<KernelIsa> isas{KernelIsa::Scalar};
    if (sse2Kernels() != nullptr)
        isas.push_back(KernelIsa::Sse2);
    if (neonKernels() != nullptr)
        isas.push_back(KernelIsa::Neon);
    if (avx2Kernels() != nullptr)
        isas.push_back(KernelIsa::Avx2);
    return isas;
}

const Kernels &
kernelsFor(KernelIsa isa)
{
    const Kernels *table = nullptr;
    switch (isa) {
      case KernelIsa::Scalar:
        return scalarKernels();
      case KernelIsa::Sse2:
        table = sse2Kernels();
        break;
      case KernelIsa::Avx2:
        table = avx2Kernels();
        break;
      case KernelIsa::Neon:
        table = neonKernels();
        break;
    }
    return table != nullptr ? *table : scalarKernels();
}

namespace {

/** A3_FORCE_SCALAR_KERNELS set to anything but "0" pins scalar. */
bool
envForcesScalar()
{
    const char *value = std::getenv("A3_FORCE_SCALAR_KERNELS");
    return value != nullptr && value[0] != '\0' &&
           !(value[0] == '0' && value[1] == '\0');
}

}  // namespace

const Kernels &
selectKernels()
{
    if (envForcesScalar())
        return scalarKernels();
    if (const Kernels *table = avx2Kernels())
        return *table;
    if (const Kernels *table = neonKernels())
        return *table;
    if (const Kernels *table = sse2Kernels())
        return *table;
    return scalarKernels();
}

namespace {

std::atomic<const Kernels *> g_active{nullptr};

}  // namespace

const Kernels &
activeKernels()
{
    const Kernels *table = g_active.load(std::memory_order_acquire);
    if (table == nullptr) {
        // Benign race: selectKernels() is deterministic, so concurrent
        // first calls store the same pointer.
        table = &selectKernels();
        g_active.store(table, std::memory_order_release);
    }
    return *table;
}

void
setActiveKernels(const Kernels &kernels)
{
    g_active.store(&kernels, std::memory_order_release);
}

}  // namespace a3
