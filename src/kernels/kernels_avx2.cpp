/**
 * @file
 * AVX2+FMA kernel table (x86). This TU is the only one compiled with
 * -mavx2 -mfma (see CMakeLists.txt); everything it exports is reached
 * only after avx2Kernels() verifies at runtime that the CPU supports
 * both extensions, so the rest of the library stays runnable on any
 * x86-64. Tails reuse the shared scalar bodies from kernels_impl.hpp,
 * keeping the order-preserving ops bit-identical to the scalar table;
 * FMA appears only inside the tolerance-class kernels (dot, gatherDot,
 * and the polynomial exp of expSumInPlace).
 */

#include "kernels/kernels.hpp"

#include "kernels/kernels_impl.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace a3 {
namespace {

using namespace kernel_detail;

float
hsum256(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
}

float
hmax256(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 m = _mm_max_ps(lo, hi);
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x1));
    return _mm_cvtss_f32(m);
}

/**
 * Vectorized e^x (Cephes expf polynomial, the classic avx_mathfun
 * constants): range-reduce x = n ln2 + r, evaluate a degree-5
 * polynomial on r, and scale by 2^n via exponent insertion. Maximum
 * relative error ~2 ulp versus libm — inside the 1e-6 tolerance
 * contract for the reassociating kernels.
 */
__m256
exp256(__m256 x)
{
    const __m256 hi = _mm256_set1_ps(88.3762626647949f);
    const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
    const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
    const __m256 c1 = _mm256_set1_ps(0.693359375f);
    const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
    const __m256 one = _mm256_set1_ps(1.0f);

    x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);

    // n = round(x / ln2), via floor(x log2e + 0.5).
    __m256 fx = _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f));
    fx = _mm256_floor_ps(fx);
    // r = x - n ln2, with ln2 split in two for extra precision.
    x = _mm256_fnmadd_ps(fx, c1, x);
    x = _mm256_fnmadd_ps(fx, c2, x);

    __m256 y = _mm256_set1_ps(1.9875691500e-4f);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
    const __m256 z = _mm256_mul_ps(x, x);
    y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, one));

    // 2^n by building the float exponent directly.
    __m256i n = _mm256_cvttps_epi32(fx);
    n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
    n = _mm256_slli_epi32(n, 23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

float
expSumInPlaceAvx2(float *v, std::size_t n, float maxVal)
{
    const __m256 vmax = _mm256_set1_ps(maxVal);
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 e =
            exp256(_mm256_sub_ps(_mm256_loadu_ps(v + i), vmax));
        _mm256_storeu_ps(v + i, e);
        acc = _mm256_add_ps(acc, e);
    }
    float sum = hsum256(acc);
    for (; i < n; ++i) {
        v[i] = std::exp(v[i] - maxVal);
        sum += v[i];
    }
    return sum;
}

float
dotAvx2(const float *a, const float *b, std::size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    if (i + 8 <= n) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        i += 8;
    }
    float sum = hsum256(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
axpyAvx2(float a, const float *x, float *y, std::size_t n)
{
    // Explicit mul + add (not fmadd): bit-identical to the scalar loop.
    const __m256 va = _mm256_set1_ps(a);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
    }
    axpyScalar(a, x + i, y + i, n - i);
}

float
maxReduceAvx2(const float *v, std::size_t n)
{
    std::size_t i = 0;
    float best;
    if (n >= 8) {
        __m256 acc = _mm256_loadu_ps(v);
        for (i = 8; i + 8 <= n; i += 8)
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(v + i));
        best = hmax256(acc);
    } else {
        best = maxReduceScalar(v, 0);  // -inf seed
    }
    for (; i < n; ++i)
        best = best < v[i] ? v[i] : best;
    return best;
}

void
scaleAvx2(float *v, std::size_t n, float factor)
{
    const __m256 vf = _mm256_set1_ps(factor);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(v + i,
                         _mm256_mul_ps(_mm256_loadu_ps(v + i), vf));
    scaleScalar(v + i, n - i, factor);
}

void
divideByAvx2(float *v, std::size_t n, float denom)
{
    const __m256 vd = _mm256_set1_ps(denom);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(v + i,
                         _mm256_div_ps(_mm256_loadu_ps(v + i), vd));
    divideByScalar(v + i, n - i, denom);
}

void
gatherDotAvx2(const float *mat, std::size_t dims,
              const std::uint32_t *rows, std::size_t count,
              const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotAvx2(mat + rows[i] * dims, q, dims);
}

void
gatherWeightedSumAvx2(const float *mat, std::size_t dims,
                      const std::uint32_t *rows, std::size_t count,
                      const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        const __m256 vw = _mm256_set1_ps(w[i]);
        std::size_t j = 0;
        for (; j + 8 <= dims; j += 8) {
            const __m256 prod =
                _mm256_mul_ps(vw, _mm256_loadu_ps(row + j));
            _mm256_storeu_ps(
                out + j, _mm256_add_ps(_mm256_loadu_ps(out + j), prod));
        }
        for (; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

std::int32_t
hsumEpi32Avx2(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(1, 0, 3, 2)));
    s = _mm_add_epi32(s, _mm_shuffle_epi32(s, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(s);
}

/**
 * Pairwise i32 sums of x[i]*y[i] over 32 int8 lanes. maddubs wants an
 * unsigned left operand, so move x's sign onto y (|x| * sign(x)*y ==
 * x*y); the pair sums stay below 2*127*127 and cannot saturate the
 * i16 intermediate because the quantized lanes never reach -128.
 */
__m256i
mulSumI8Avx2(__m256i x, __m256i y)
{
    const __m256i ax = _mm256_sign_epi8(x, x);
    const __m256i sy = _mm256_sign_epi8(y, x);
    const __m256i pairs = _mm256_maddubs_epi16(ax, sy);
    return _mm256_madd_epi16(pairs, _mm256_set1_epi16(1));
}

std::int32_t
dotI8Avx2(const std::int8_t *a, const std::int8_t *b, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        acc = _mm256_add_epi32(acc, mulSumI8Avx2(va, vb));
    }
    return hsumEpi32Avx2(acc) + dotI8Scalar(a + i, b + i, n - i);
}

void
gatherDotI8Avx2(const std::int8_t *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const std::int8_t *q, std::int32_t *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI8Avx2(mat + rows[i] * dims, q, dims);
}

/** Unpack 16 packed bytes into 32 sign-extended nibble lanes. */
__m256i
unpackNibbles32Avx2(const std::uint8_t *p)
{
    const __m128i bytes = _mm_loadu_si128(
        reinterpret_cast<const __m128i *>(p));
    const __m128i maskF = _mm_set1_epi8(0xF);
    const __m128i lo = _mm_and_si128(bytes, maskF);
    const __m128i hi =
        _mm_and_si128(_mm_srli_epi16(bytes, 4), maskF);
    // Interleaving restores element order: 0..15 low, 16..31 high.
    const __m128i il = _mm_unpacklo_epi8(lo, hi);
    const __m128i ih = _mm_unpackhi_epi8(lo, hi);
    __m256i v = _mm256_set_m128i(ih, il);
    const __m256i eight = _mm256_set1_epi8(8);
    return _mm256_sub_epi8(_mm256_xor_si256(v, eight), eight);
}

std::int32_t
dotI4Avx2(const std::uint8_t *a, const std::int8_t *q, std::size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    std::size_t i = 0;
    for (; i + 32 <= n; i += 32) {
        const __m256i va = unpackNibbles32Avx2(a + i / 2);
        const __m256i vq = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(q + i));
        acc = _mm256_add_epi32(acc, mulSumI8Avx2(va, vq));
    }
    // i is even, so the tail starts on a byte boundary at a + i/2.
    return hsumEpi32Avx2(acc) + dotI4Scalar(a + i / 2, q + i, n - i);
}

void
gatherDotI4Avx2(const std::uint8_t *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const std::int8_t *q, std::int32_t *out)
{
    const std::size_t rowBytes = (dims + 1) / 2;
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI4Avx2(mat + rows[i] * rowBytes, q, dims);
}

/**
 * y[j] += w * x[j] for 8 int8 lanes widened to int64. |w| < 2^24
 * (kernel contract) keeps the 32-bit products exact.
 */
void
accumWiden8Avx2(std::int64_t w, __m128i x8, std::int64_t *y)
{
    const __m256i vw =
        _mm256_set1_epi32(static_cast<std::int32_t>(w));
    const __m256i x32 = _mm256_cvtepi8_epi32(x8);
    const __m256i p32 = _mm256_mullo_epi32(x32, vw);
    const __m256i p64lo =
        _mm256_cvtepi32_epi64(_mm256_castsi256_si128(p32));
    const __m256i p64hi =
        _mm256_cvtepi32_epi64(_mm256_extracti128_si256(p32, 1));
    __m256i *y0 = reinterpret_cast<__m256i *>(y);
    __m256i *y1 = reinterpret_cast<__m256i *>(y + 4);
    _mm256_storeu_si256(
        y0, _mm256_add_epi64(_mm256_loadu_si256(y0), p64lo));
    _mm256_storeu_si256(
        y1, _mm256_add_epi64(_mm256_loadu_si256(y1), p64hi));
}

void
axpyI8Avx2(std::int64_t w, const std::int8_t *x, std::int64_t *y,
           std::size_t n)
{
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        accumWiden8Avx2(
            w,
            _mm_loadl_epi64(reinterpret_cast<const __m128i *>(x + j)),
            y + j);
    axpyI8Scalar(w, x + j, y + j, n - j);
}

void
axpyI4Avx2(std::int64_t w, const std::uint8_t *x, std::int64_t *y,
           std::size_t n)
{
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const __m128i bytes = _mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(x + j / 2));
        const __m128i maskF = _mm_set1_epi8(0xF);
        const __m128i lo = _mm_and_si128(bytes, maskF);
        const __m128i hi =
            _mm_and_si128(_mm_srli_epi16(bytes, 4), maskF);
        __m128i v = _mm_unpacklo_epi8(lo, hi);
        const __m128i eight = _mm_set1_epi8(8);
        v = _mm_sub_epi8(_mm_xor_si128(v, eight), eight);
        accumWiden8Avx2(w, v, y + j);
        accumWiden8Avx2(w, _mm_srli_si128(v, 8), y + j + 8);
    }
    axpyI4Scalar(w, x + j / 2, y + j, n - j);
}

}  // namespace

const Kernels *
avx2Kernels()
{
    if (!__builtin_cpu_supports("avx2") ||
        !__builtin_cpu_supports("fma"))
        return nullptr;
    static const Kernels table{
        KernelIsa::Avx2,   dotAvx2,
        axpyAvx2,          maxReduceAvx2,
        expSumInPlaceAvx2, scaleAvx2,
        divideByAvx2,      gatherDotAvx2,
        gatherWeightedSumAvx2,
        dotI8Avx2,         gatherDotI8Avx2,
        dotI4Avx2,         gatherDotI4Avx2,
        axpyI8Avx2,        axpyI4Avx2,
    };
    return &table;
}

}  // namespace a3

#else  // !(__AVX2__ && __FMA__)

namespace a3 {

const Kernels *
avx2Kernels()
{
    return nullptr;
}

}  // namespace a3

#endif
