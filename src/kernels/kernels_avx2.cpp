/**
 * @file
 * AVX2+FMA kernel table (x86). This TU is the only one compiled with
 * -mavx2 -mfma (see CMakeLists.txt); everything it exports is reached
 * only after avx2Kernels() verifies at runtime that the CPU supports
 * both extensions, so the rest of the library stays runnable on any
 * x86-64. Tails reuse the shared scalar bodies from kernels_impl.hpp,
 * keeping the order-preserving ops bit-identical to the scalar table;
 * FMA appears only inside the tolerance-class kernels (dot, gatherDot,
 * and the polynomial exp of expSumInPlace).
 */

#include "kernels/kernels.hpp"

#include "kernels/kernels_impl.hpp"

#if defined(__AVX2__) && defined(__FMA__)

#include <immintrin.h>

namespace a3 {
namespace {

using namespace kernel_detail;

float
hsum256(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 s = _mm_add_ps(lo, hi);
    s = _mm_add_ps(s, _mm_movehl_ps(s, s));
    s = _mm_add_ss(s, _mm_shuffle_ps(s, s, 0x1));
    return _mm_cvtss_f32(s);
}

float
hmax256(__m256 v)
{
    const __m128 lo = _mm256_castps256_ps128(v);
    const __m128 hi = _mm256_extractf128_ps(v, 1);
    __m128 m = _mm_max_ps(lo, hi);
    m = _mm_max_ps(m, _mm_movehl_ps(m, m));
    m = _mm_max_ss(m, _mm_shuffle_ps(m, m, 0x1));
    return _mm_cvtss_f32(m);
}

/**
 * Vectorized e^x (Cephes expf polynomial, the classic avx_mathfun
 * constants): range-reduce x = n ln2 + r, evaluate a degree-5
 * polynomial on r, and scale by 2^n via exponent insertion. Maximum
 * relative error ~2 ulp versus libm — inside the 1e-6 tolerance
 * contract for the reassociating kernels.
 */
__m256
exp256(__m256 x)
{
    const __m256 hi = _mm256_set1_ps(88.3762626647949f);
    const __m256 lo = _mm256_set1_ps(-88.3762626647949f);
    const __m256 log2e = _mm256_set1_ps(1.44269504088896341f);
    const __m256 c1 = _mm256_set1_ps(0.693359375f);
    const __m256 c2 = _mm256_set1_ps(-2.12194440e-4f);
    const __m256 one = _mm256_set1_ps(1.0f);

    x = _mm256_min_ps(_mm256_max_ps(x, lo), hi);

    // n = round(x / ln2), via floor(x log2e + 0.5).
    __m256 fx = _mm256_fmadd_ps(x, log2e, _mm256_set1_ps(0.5f));
    fx = _mm256_floor_ps(fx);
    // r = x - n ln2, with ln2 split in two for extra precision.
    x = _mm256_fnmadd_ps(fx, c1, x);
    x = _mm256_fnmadd_ps(fx, c2, x);

    __m256 y = _mm256_set1_ps(1.9875691500e-4f);
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.3981999507e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(8.3334519073e-3f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(4.1665795894e-2f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(1.6666665459e-1f));
    y = _mm256_fmadd_ps(y, x, _mm256_set1_ps(5.0000001201e-1f));
    const __m256 z = _mm256_mul_ps(x, x);
    y = _mm256_fmadd_ps(y, z, _mm256_add_ps(x, one));

    // 2^n by building the float exponent directly.
    __m256i n = _mm256_cvttps_epi32(fx);
    n = _mm256_add_epi32(n, _mm256_set1_epi32(0x7f));
    n = _mm256_slli_epi32(n, 23);
    return _mm256_mul_ps(y, _mm256_castsi256_ps(n));
}

float
expSumInPlaceAvx2(float *v, std::size_t n, float maxVal)
{
    const __m256 vmax = _mm256_set1_ps(maxVal);
    __m256 acc = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 e =
            exp256(_mm256_sub_ps(_mm256_loadu_ps(v + i), vmax));
        _mm256_storeu_ps(v + i, e);
        acc = _mm256_add_ps(acc, e);
    }
    float sum = hsum256(acc);
    for (; i < n; ++i) {
        v[i] = std::exp(v[i] - maxVal);
        sum += v[i];
    }
    return sum;
}

float
dotAvx2(const float *a, const float *b, std::size_t n)
{
    __m256 acc0 = _mm256_setzero_ps();
    __m256 acc1 = _mm256_setzero_ps();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                               _mm256_loadu_ps(b + i + 8), acc1);
    }
    if (i + 8 <= n) {
        acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i),
                               _mm256_loadu_ps(b + i), acc0);
        i += 8;
    }
    float sum = hsum256(_mm256_add_ps(acc0, acc1));
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
axpyAvx2(float a, const float *x, float *y, std::size_t n)
{
    // Explicit mul + add (not fmadd): bit-identical to the scalar loop.
    const __m256 va = _mm256_set1_ps(a);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256 prod = _mm256_mul_ps(va, _mm256_loadu_ps(x + i));
        _mm256_storeu_ps(y + i,
                         _mm256_add_ps(_mm256_loadu_ps(y + i), prod));
    }
    axpyScalar(a, x + i, y + i, n - i);
}

float
maxReduceAvx2(const float *v, std::size_t n)
{
    std::size_t i = 0;
    float best;
    if (n >= 8) {
        __m256 acc = _mm256_loadu_ps(v);
        for (i = 8; i + 8 <= n; i += 8)
            acc = _mm256_max_ps(acc, _mm256_loadu_ps(v + i));
        best = hmax256(acc);
    } else {
        best = maxReduceScalar(v, 0);  // -inf seed
    }
    for (; i < n; ++i)
        best = best < v[i] ? v[i] : best;
    return best;
}

void
scaleAvx2(float *v, std::size_t n, float factor)
{
    const __m256 vf = _mm256_set1_ps(factor);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(v + i,
                         _mm256_mul_ps(_mm256_loadu_ps(v + i), vf));
    scaleScalar(v + i, n - i, factor);
}

void
divideByAvx2(float *v, std::size_t n, float denom)
{
    const __m256 vd = _mm256_set1_ps(denom);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_ps(v + i,
                         _mm256_div_ps(_mm256_loadu_ps(v + i), vd));
    divideByScalar(v + i, n - i, denom);
}

void
gatherDotAvx2(const float *mat, std::size_t dims,
              const std::uint32_t *rows, std::size_t count,
              const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotAvx2(mat + rows[i] * dims, q, dims);
}

void
gatherWeightedSumAvx2(const float *mat, std::size_t dims,
                      const std::uint32_t *rows, std::size_t count,
                      const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        const __m256 vw = _mm256_set1_ps(w[i]);
        std::size_t j = 0;
        for (; j + 8 <= dims; j += 8) {
            const __m256 prod =
                _mm256_mul_ps(vw, _mm256_loadu_ps(row + j));
            _mm256_storeu_ps(
                out + j, _mm256_add_ps(_mm256_loadu_ps(out + j), prod));
        }
        for (; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

}  // namespace

const Kernels *
avx2Kernels()
{
    if (!__builtin_cpu_supports("avx2") ||
        !__builtin_cpu_supports("fma"))
        return nullptr;
    static const Kernels table{
        KernelIsa::Avx2,   dotAvx2,
        axpyAvx2,          maxReduceAvx2,
        expSumInPlaceAvx2, scaleAvx2,
        divideByAvx2,      gatherDotAvx2,
        gatherWeightedSumAvx2,
    };
    return &table;
}

}  // namespace a3

#else  // !(__AVX2__ && __FMA__)

namespace a3 {

const Kernels *
avx2Kernels()
{
    return nullptr;
}

}  // namespace a3

#endif
