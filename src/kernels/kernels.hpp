/**
 * @file
 * Hot-loop primitives with runtime SIMD dispatch.
 *
 * The attention backends spend essentially all of their per-query time
 * in a small fixed vocabulary of loops: dot products between a query
 * and (gathered) key rows, the softmax reductions (max, exp-sum,
 * normalize), and the weighted accumulation of value rows. This layer
 * gives each of those loops a scalar reference implementation plus
 * SIMD variants (AVX2/FMA and SSE2 on x86, NEON on AArch64), bundled
 * into a `Kernels` function table that is selected once at startup by
 * CPUID-style runtime detection — the library itself is compiled
 * without `-march=native` and runs on any host, picking the widest ISA
 * the CPU actually supports.
 *
 * Determinism contract:
 *  - The scalar table performs exactly the element-at-a-time loops the
 *    backends used before this layer existed, so forcing it (see
 *    below) reproduces historical results bit for bit. Caveat: that
 *    historical pin assumes a baseline compile with no FMA
 *    contraction, which holds on x86-64 (no FMA in the baseline ISA);
 *    on AArch64 the pre-layer loops contracted to fmla under GCC's
 *    default -ffp-contract=fast while kernel TUs pin contraction off,
 *    so there the scalar table is last-ulp different from pre-layer
 *    builds (but still fixed and self-consistent).
 *  - Order-preserving ops — axpy, maxReduce, scale, divideBy,
 *    gatherWeightedSum — are bit-identical across every table: their
 *    SIMD forms keep the scalar evaluation order per element (max is
 *    exact under reassociation; multiply/divide are correctly rounded
 *    per lane; accumulations run in the same row order without FMA
 *    contraction).
 *  - dot / gatherDot reassociate the reduction (multiple SIMD
 *    accumulators, FMA), and expSumInPlace may use a vectorized
 *    polynomial exp. These agree with the scalar kernel to ~1e-6
 *    relative error and are themselves run-to-run deterministic for a
 *    fixed table choice.
 *  - The packed integer kernels — dotI8 / gatherDotI8 / dotI4 /
 *    gatherDotI4 / axpyI8 / axpyI4 — compute exact integer sums, so
 *    despite reassociating they are bit-identical across every table
 *    (integer addition is associative). They form a third, strongest
 *    class: exact on all ISAs, not merely order-preserving.
 *
 * All kernels assume finite inputs (the attention library never feeds
 * them NaN or infinity); behavior on non-finite values is unspecified
 * and may differ between tables — e.g. x86 MAXPS and std::max resolve
 * NaN operands differently.
 *
 * Setting the environment variable A3_FORCE_SCALAR_KERNELS to any
 * value other than "0" forces the scalar table regardless of CPU,
 * which is how the bit-exactness CI job pins results.
 */

#ifndef A3_KERNELS_KERNELS_HPP
#define A3_KERNELS_KERNELS_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

namespace a3 {

/** Instruction set a kernel table is implemented with. */
enum class KernelIsa {
    Scalar,  ///< portable reference loops, always available
    Sse2,    ///< 4-wide x86 (baseline on x86-64)
    Avx2,    ///< 8-wide x86 with FMA
    Neon,    ///< 4-wide AArch64
};

/** Stable lowercase name ("scalar", "sse2", "avx2", "neon"). */
const char *kernelIsaName(KernelIsa isa);

/**
 * One complete set of hot-loop primitives. All pointers are non-null
 * in every table. Sizes are element counts; matrices are row-major
 * with `dims` contiguous floats per row.
 */
struct Kernels
{
    KernelIsa isa = KernelIsa::Scalar;

    /** sum_i a[i] * b[i] (reassociating; tolerance-class). */
    float (*dot)(const float *a, const float *b, std::size_t n);

    /** y[i] += a * x[i] (order-preserving). */
    void (*axpy)(float a, const float *x, float *y, std::size_t n);

    /** max_i v[i]; -inf for n == 0 (order-preserving: max is exact). */
    float (*maxReduce)(const float *v, std::size_t n);

    /**
     * v[i] = exp(v[i] - maxVal); returns sum_i of the results
     * (tolerance-class: SIMD tables may use a polynomial exp and a
     * reassociated sum).
     */
    float (*expSumInPlace)(float *v, std::size_t n, float maxVal);

    /** v[i] *= factor (order-preserving). */
    void (*scale)(float *v, std::size_t n, float factor);

    /** v[i] /= denom (order-preserving; IEEE division per lane). */
    void (*divideBy)(float *v, std::size_t n, float denom);

    /**
     * Gathered-row dot products: out[i] = dot(mat row rows[i], q) for
     * i in [0, count). Same tolerance class as dot.
     */
    void (*gatherDot)(const float *mat, std::size_t dims,
                      const std::uint32_t *rows, std::size_t count,
                      const float *q, float *out);

    /**
     * Gathered weighted accumulation: out[j] += sum_i w[i] *
     * mat[rows[i]][j], accumulated row by row in index order
     * (order-preserving). `out` is not cleared first.
     */
    void (*gatherWeightedSum)(const float *mat, std::size_t dims,
                              const std::uint32_t *rows,
                              std::size_t count, const float *w,
                              float *out);

    /*
     * Packed low-bit kernels. These MAC directly on the packed int8 /
     * nibble-packed int4 K/V lanes of the quantized backends and
     * dequantize only at the accumulator. All of them compute exact
     * integer sums and are bit-identical across every table.
     *
     * Preconditions (guaranteed by the quantized storage layer):
     * lanes lie in the symmetric range [-127, 127] (int8) or [-7, 7]
     * (int4) — -128 never occurs, so the AVX2 maddubs sign-trick
     * pairing cannot saturate — and the quantized dot format
     * (2i + ceil(log2 d) int bits, 2f frac bits) fits 32 bits, so an
     * int32 accumulator cannot overflow. Nibble rows use the layout
     * of fixed/packed.hpp: element 2k in the low nibble, 2k+1 in the
     * high nibble of byte k, odd tail in a low nibble with the high
     * nibble zero.
     */

    /** sum_i a[i] * b[i] over signed bytes (exact on every table). */
    std::int32_t (*dotI8)(const std::int8_t *a, const std::int8_t *b,
                          std::size_t n);

    /** out[i] = dotI8(mat row rows[i], q); rows hold dims bytes. */
    void (*gatherDotI8)(const std::int8_t *mat, std::size_t dims,
                        const std::uint32_t *rows, std::size_t count,
                        const std::int8_t *q, std::int32_t *out);

    /** Nibble-packed dot: a holds ceil(n/2) bytes, q unpacked int8. */
    std::int32_t (*dotI4)(const std::uint8_t *a, const std::int8_t *q,
                          std::size_t n);

    /** out[i] = dotI4(mat row rows[i], q); ceil(dims/2)-byte rows. */
    void (*gatherDotI4)(const std::uint8_t *mat, std::size_t dims,
                        const std::uint32_t *rows, std::size_t count,
                        const std::int8_t *q, std::int32_t *out);

    /**
     * Weighted packed-row accumulation y[j] += w * x[j] into 64-bit
     * output lanes (exact; |w| must stay below 2^24 so SIMD tables
     * may form the per-lane products in 32 bits — the weight format
     * (0, 2f) guarantees this for every packable configuration).
     */
    void (*axpyI8)(std::int64_t w, const std::int8_t *x,
                   std::int64_t *y, std::size_t n);

    /** Nibble-packed variant of axpyI8 (x holds ceil(n/2) bytes). */
    void (*axpyI4)(std::int64_t w, const std::uint8_t *x,
                   std::int64_t *y, std::size_t n);
};

/** The portable reference table (always available). */
const Kernels &scalarKernels();

/** SSE2 table, or nullptr when the build/CPU cannot run it. */
const Kernels *sse2Kernels();

/** AVX2+FMA table, or nullptr when the build/CPU cannot run it. */
const Kernels *avx2Kernels();

/** NEON table, or nullptr when the build/CPU cannot run it. */
const Kernels *neonKernels();

/** Every table the current process can run, widest last. */
std::vector<KernelIsa> availableKernelIsas();

/** Table for `isa`, falling back to scalar when unavailable. */
const Kernels &kernelsFor(KernelIsa isa);

/**
 * Detection policy, evaluated fresh on every call (no caching):
 * honors A3_FORCE_SCALAR_KERNELS, otherwise returns the widest table
 * the CPU supports.
 */
const Kernels &selectKernels();

/**
 * The process-wide active table the backends dispatch through.
 * Resolved via selectKernels() on first use and cached; thread-safe.
 */
const Kernels &activeKernels();

/**
 * Override the active table (benchmarks measuring scalar-vs-SIMD,
 * tests). The table must outlive its use; the built-in tables are
 * static. Not thread-safe against concurrent attention runs.
 */
void setActiveKernels(const Kernels &kernels);

}  // namespace a3

#endif  // A3_KERNELS_KERNELS_HPP
