/**
 * @file
 * SSE2 kernel table (x86). SSE2 is part of the x86-64 baseline, so
 * this TU needs no special flags and serves as the fallback tier when
 * the CPU lacks AVX2. SSE2 has no FMA, so dot uses mul+add with two
 * accumulators — still reassociating (tolerance-class) relative to the
 * scalar kernel. Order-preserving ops share the scalar tail bodies.
 */

#include "kernels/kernels.hpp"

#include "kernels/kernels_impl.hpp"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))

#include <emmintrin.h>

namespace a3 {
namespace {

using namespace kernel_detail;

float
hsum128(__m128 v)
{
    v = _mm_add_ps(v, _mm_movehl_ps(v, v));
    v = _mm_add_ss(v, _mm_shuffle_ps(v, v, 0x1));
    return _mm_cvtss_f32(v);
}

float
hmax128(__m128 v)
{
    v = _mm_max_ps(v, _mm_movehl_ps(v, v));
    v = _mm_max_ss(v, _mm_shuffle_ps(v, v, 0x1));
    return _mm_cvtss_f32(v);
}

float
dotSse2(const float *a, const float *b, std::size_t n)
{
    __m128 acc0 = _mm_setzero_ps();
    __m128 acc1 = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_loadu_ps(a + i + 4),
                                           _mm_loadu_ps(b + i + 4)));
    }
    if (i + 4 <= n) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
        i += 4;
    }
    float sum = hsum128(_mm_add_ps(acc0, acc1));
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
axpySse2(float a, const float *x, float *y, std::size_t n)
{
    const __m128 va = _mm_set1_ps(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 prod = _mm_mul_ps(va, _mm_loadu_ps(x + i));
        _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i), prod));
    }
    axpyScalar(a, x + i, y + i, n - i);
}

float
maxReduceSse2(const float *v, std::size_t n)
{
    std::size_t i = 0;
    float best;
    if (n >= 4) {
        __m128 acc = _mm_loadu_ps(v);
        for (i = 4; i + 4 <= n; i += 4)
            acc = _mm_max_ps(acc, _mm_loadu_ps(v + i));
        best = hmax128(acc);
    } else {
        best = maxReduceScalar(v, 0);  // -inf seed
    }
    for (; i < n; ++i)
        best = best < v[i] ? v[i] : best;
    return best;
}

void
scaleSse2(float *v, std::size_t n, float factor)
{
    const __m128 vf = _mm_set1_ps(factor);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(v + i, _mm_mul_ps(_mm_loadu_ps(v + i), vf));
    scaleScalar(v + i, n - i, factor);
}

void
divideBySse2(float *v, std::size_t n, float denom)
{
    const __m128 vd = _mm_set1_ps(denom);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(v + i, _mm_div_ps(_mm_loadu_ps(v + i), vd));
    divideByScalar(v + i, n - i, denom);
}

void
gatherDotSse2(const float *mat, std::size_t dims,
              const std::uint32_t *rows, std::size_t count,
              const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotSse2(mat + rows[i] * dims, q, dims);
}

void
gatherWeightedSumSse2(const float *mat, std::size_t dims,
                      const std::uint32_t *rows, std::size_t count,
                      const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        const __m128 vw = _mm_set1_ps(w[i]);
        std::size_t j = 0;
        for (; j + 4 <= dims; j += 4) {
            const __m128 prod = _mm_mul_ps(vw, _mm_loadu_ps(row + j));
            _mm_storeu_ps(out + j,
                          _mm_add_ps(_mm_loadu_ps(out + j), prod));
        }
        for (; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

}  // namespace

const Kernels *
sse2Kernels()
{
    static const Kernels table{
        KernelIsa::Sse2, dotSse2,
        axpySse2,        maxReduceSse2,
        kernel_detail::expSumInPlaceScalar,
        scaleSse2,       divideBySse2,
        gatherDotSse2,   gatherWeightedSumSse2,
    };
    return &table;
}

}  // namespace a3

#else  // !__SSE2__

namespace a3 {

const Kernels *
sse2Kernels()
{
    return nullptr;
}

}  // namespace a3

#endif
