/**
 * @file
 * SSE2 kernel table (x86). SSE2 is part of the x86-64 baseline, so
 * this TU needs no special flags and serves as the fallback tier when
 * the CPU lacks AVX2. SSE2 has no FMA, so dot uses mul+add with two
 * accumulators — still reassociating (tolerance-class) relative to the
 * scalar kernel. Order-preserving ops share the scalar tail bodies.
 */

#include "kernels/kernels.hpp"

#include "kernels/kernels_impl.hpp"

#if defined(__SSE2__) || (defined(_M_X64) && !defined(_M_ARM64EC))

#include <emmintrin.h>

namespace a3 {
namespace {

using namespace kernel_detail;

float
hsum128(__m128 v)
{
    v = _mm_add_ps(v, _mm_movehl_ps(v, v));
    v = _mm_add_ss(v, _mm_shuffle_ps(v, v, 0x1));
    return _mm_cvtss_f32(v);
}

float
hmax128(__m128 v)
{
    v = _mm_max_ps(v, _mm_movehl_ps(v, v));
    v = _mm_max_ss(v, _mm_shuffle_ps(v, v, 0x1));
    return _mm_cvtss_f32(v);
}

float
dotSse2(const float *a, const float *b, std::size_t n)
{
    __m128 acc0 = _mm_setzero_ps();
    __m128 acc1 = _mm_setzero_ps();
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
        acc1 = _mm_add_ps(acc1, _mm_mul_ps(_mm_loadu_ps(a + i + 4),
                                           _mm_loadu_ps(b + i + 4)));
    }
    if (i + 4 <= n) {
        acc0 = _mm_add_ps(acc0, _mm_mul_ps(_mm_loadu_ps(a + i),
                                           _mm_loadu_ps(b + i)));
        i += 4;
    }
    float sum = hsum128(_mm_add_ps(acc0, acc1));
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
axpySse2(float a, const float *x, float *y, std::size_t n)
{
    const __m128 va = _mm_set1_ps(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128 prod = _mm_mul_ps(va, _mm_loadu_ps(x + i));
        _mm_storeu_ps(y + i, _mm_add_ps(_mm_loadu_ps(y + i), prod));
    }
    axpyScalar(a, x + i, y + i, n - i);
}

float
maxReduceSse2(const float *v, std::size_t n)
{
    std::size_t i = 0;
    float best;
    if (n >= 4) {
        __m128 acc = _mm_loadu_ps(v);
        for (i = 4; i + 4 <= n; i += 4)
            acc = _mm_max_ps(acc, _mm_loadu_ps(v + i));
        best = hmax128(acc);
    } else {
        best = maxReduceScalar(v, 0);  // -inf seed
    }
    for (; i < n; ++i)
        best = best < v[i] ? v[i] : best;
    return best;
}

void
scaleSse2(float *v, std::size_t n, float factor)
{
    const __m128 vf = _mm_set1_ps(factor);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(v + i, _mm_mul_ps(_mm_loadu_ps(v + i), vf));
    scaleScalar(v + i, n - i, factor);
}

void
divideBySse2(float *v, std::size_t n, float denom)
{
    const __m128 vd = _mm_set1_ps(denom);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_ps(v + i, _mm_div_ps(_mm_loadu_ps(v + i), vd));
    divideByScalar(v + i, n - i, denom);
}

void
gatherDotSse2(const float *mat, std::size_t dims,
              const std::uint32_t *rows, std::size_t count,
              const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotSse2(mat + rows[i] * dims, q, dims);
}

std::int32_t
hsumEpi32(__m128i v)
{
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(1, 0, 3, 2)));
    v = _mm_add_epi32(v, _mm_shuffle_epi32(v, _MM_SHUFFLE(2, 3, 0, 1)));
    return _mm_cvtsi128_si32(v);
}

/**
 * Sign-extend 16 packed int8 lanes to two int16x8 halves. SSE2 has no
 * pmovsxbw (SSE4.1) or pmaddubsw (SSSE3), so build the sign mask with
 * a compare and interleave it in.
 */
void
widenS8Sse2(__m128i v, __m128i &lo, __m128i &hi)
{
    const __m128i sign = _mm_cmpgt_epi8(_mm_setzero_si128(), v);
    lo = _mm_unpacklo_epi8(v, sign);
    hi = _mm_unpackhi_epi8(v, sign);
}

std::int32_t
dotI8Sse2(const std::int8_t *a, const std::int8_t *b, std::size_t n)
{
    __m128i acc = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        __m128i alo, ahi, blo, bhi;
        widenS8Sse2(va, alo, ahi);
        widenS8Sse2(vb, blo, bhi);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, blo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(ahi, bhi));
    }
    return hsumEpi32(acc) + dotI8Scalar(a + i, b + i, n - i);
}

void
gatherDotI8Sse2(const std::int8_t *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const std::int8_t *q, std::int32_t *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI8Sse2(mat + rows[i] * dims, q, dims);
}

/** Unpack 8 packed bytes into 16 sign-extended nibble lanes. */
__m128i
unpackNibbles16Sse2(const std::uint8_t *p)
{
    const __m128i bytes = _mm_loadl_epi64(
        reinterpret_cast<const __m128i *>(p));
    const __m128i maskF = _mm_set1_epi8(0xF);
    const __m128i lo = _mm_and_si128(bytes, maskF);
    const __m128i hi =
        _mm_and_si128(_mm_srli_epi16(bytes, 4), maskF);
    // Interleaving low/high nibbles restores element order 0..15.
    __m128i v = _mm_unpacklo_epi8(lo, hi);
    // Two's-complement sign extension of 4-bit lanes: (v ^ 8) - 8.
    const __m128i eight = _mm_set1_epi8(8);
    return _mm_sub_epi8(_mm_xor_si128(v, eight), eight);
}

std::int32_t
dotI4Sse2(const std::uint8_t *a, const std::int8_t *q, std::size_t n)
{
    __m128i acc = _mm_setzero_si128();
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16) {
        const __m128i va = unpackNibbles16Sse2(a + i / 2);
        const __m128i vq = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(q + i));
        __m128i alo, ahi, qlo, qhi;
        widenS8Sse2(va, alo, ahi);
        widenS8Sse2(vq, qlo, qhi);
        acc = _mm_add_epi32(acc, _mm_madd_epi16(alo, qlo));
        acc = _mm_add_epi32(acc, _mm_madd_epi16(ahi, qhi));
    }
    // i is even, so the tail starts on a byte boundary at a + i/2.
    return hsumEpi32(acc) + dotI4Scalar(a + i / 2, q + i, n - i);
}

void
gatherDotI4Sse2(const std::uint8_t *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const std::int8_t *q, std::int32_t *out)
{
    const std::size_t rowBytes = (dims + 1) / 2;
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI4Sse2(mat + rows[i] * rowBytes, q, dims);
}

void
gatherWeightedSumSse2(const float *mat, std::size_t dims,
                      const std::uint32_t *rows, std::size_t count,
                      const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        const __m128 vw = _mm_set1_ps(w[i]);
        std::size_t j = 0;
        for (; j + 4 <= dims; j += 4) {
            const __m128 prod = _mm_mul_ps(vw, _mm_loadu_ps(row + j));
            _mm_storeu_ps(out + j,
                          _mm_add_ps(_mm_loadu_ps(out + j), prod));
        }
        for (; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

}  // namespace

const Kernels *
sse2Kernels()
{
    // axpyI8/axpyI4 widen to int64 lanes, which SSE2 has no usable
    // multiply for; the fallback tier shares the scalar bodies (still
    // exact, still bit-identical — the class is unaffected).
    static const Kernels table{
        KernelIsa::Sse2, dotSse2,
        axpySse2,        maxReduceSse2,
        kernel_detail::expSumInPlaceScalar,
        scaleSse2,       divideBySse2,
        gatherDotSse2,   gatherWeightedSumSse2,
        dotI8Sse2,       gatherDotI8Sse2,
        dotI4Sse2,       gatherDotI4Sse2,
        kernel_detail::axpyI8Scalar,
        kernel_detail::axpyI4Scalar,
    };
    return &table;
}

}  // namespace a3

#else  // !__SSE2__

namespace a3 {

const Kernels *
sse2Kernels()
{
    return nullptr;
}

}  // namespace a3

#endif
