/**
 * @file
 * Shared scalar bodies for the kernel tables (internal header).
 *
 * Every kernel TU — scalar, SSE2, AVX2, NEON — includes these inline
 * loops: the scalar table uses them directly, and the SIMD tables use
 * them for sub-vector tails. Sharing one definition is what makes the
 * order-preserving ops bit-identical across tables, so do not fork
 * per-TU copies. All kernel TUs are compiled with -ffp-contract=off
 * (see CMakeLists.txt) so a compiler with FMA cannot contract the
 * multiply-add pairs differently in different TUs.
 */

#ifndef A3_KERNELS_KERNELS_IMPL_HPP
#define A3_KERNELS_KERNELS_IMPL_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace a3 {
namespace kernel_detail {

inline float
dotScalar(const float *a, const float *b, std::size_t n)
{
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

inline void
axpyScalar(float a, const float *x, float *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

inline float
maxReduceScalar(const float *v, std::size_t n)
{
    float best = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < n; ++i)
        best = std::max(best, v[i]);
    return best;
}

inline float
expSumInPlaceScalar(float *v, std::size_t n, float maxVal)
{
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - maxVal);
        sum += v[i];
    }
    return sum;
}

inline void
scaleScalar(float *v, std::size_t n, float factor)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] *= factor;
}

inline void
divideByScalar(float *v, std::size_t n, float denom)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] /= denom;
}

inline void
gatherDotScalar(const float *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotScalar(mat + rows[i] * dims, q, dims);
}

inline void
gatherWeightedSumScalar(const float *mat, std::size_t dims,
                        const std::uint32_t *rows, std::size_t count,
                        const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        for (std::size_t j = 0; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

}  // namespace kernel_detail
}  // namespace a3

#endif  // A3_KERNELS_KERNELS_IMPL_HPP
