/**
 * @file
 * Shared scalar bodies for the kernel tables (internal header).
 *
 * Every kernel TU — scalar, SSE2, AVX2, NEON — includes these inline
 * loops: the scalar table uses them directly, and the SIMD tables use
 * them for sub-vector tails. Sharing one definition is what makes the
 * order-preserving ops bit-identical across tables, so do not fork
 * per-TU copies. All kernel TUs are compiled with -ffp-contract=off
 * (see CMakeLists.txt) so a compiler with FMA cannot contract the
 * multiply-add pairs differently in different TUs.
 */

#ifndef A3_KERNELS_KERNELS_IMPL_HPP
#define A3_KERNELS_KERNELS_IMPL_HPP

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

#include "fixed/packed.hpp"

namespace a3 {
namespace kernel_detail {

inline float
dotScalar(const float *a, const float *b, std::size_t n)
{
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

inline void
axpyScalar(float a, const float *x, float *y, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += a * x[i];
}

inline float
maxReduceScalar(const float *v, std::size_t n)
{
    float best = -std::numeric_limits<float>::infinity();
    for (std::size_t i = 0; i < n; ++i)
        best = std::max(best, v[i]);
    return best;
}

inline float
expSumInPlaceScalar(float *v, std::size_t n, float maxVal)
{
    float sum = 0.0f;
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = std::exp(v[i] - maxVal);
        sum += v[i];
    }
    return sum;
}

inline void
scaleScalar(float *v, std::size_t n, float factor)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] *= factor;
}

inline void
divideByScalar(float *v, std::size_t n, float denom)
{
    for (std::size_t i = 0; i < n; ++i)
        v[i] /= denom;
}

inline void
gatherDotScalar(const float *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotScalar(mat + rows[i] * dims, q, dims);
}

inline void
gatherWeightedSumScalar(const float *mat, std::size_t dims,
                        const std::uint32_t *rows, std::size_t count,
                        const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        for (std::size_t j = 0; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

/*
 * Packed integer bodies. These are exact (integer arithmetic), so the
 * SIMD tables reuse them for tails without any bit-identity caveat;
 * the sharing here is about one source of truth, not rounding.
 */

inline std::int32_t
dotI8Scalar(const std::int8_t *a, const std::int8_t *b, std::size_t n)
{
    std::int32_t sum = 0;
    for (std::size_t i = 0; i < n; ++i)
        sum += static_cast<std::int32_t>(a[i]) *
               static_cast<std::int32_t>(b[i]);
    return sum;
}

inline void
gatherDotI8Scalar(const std::int8_t *mat, std::size_t dims,
                  const std::uint32_t *rows, std::size_t count,
                  const std::int8_t *q, std::int32_t *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI8Scalar(mat + rows[i] * dims, q, dims);
}

inline std::int32_t
dotI4Scalar(const std::uint8_t *a, const std::int8_t *q, std::size_t n)
{
    std::int32_t sum = 0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const std::uint8_t byte = a[i / 2];
        sum += static_cast<std::int32_t>(unpackNibbleLow(byte)) *
               static_cast<std::int32_t>(q[i]);
        sum += static_cast<std::int32_t>(unpackNibbleHigh(byte)) *
               static_cast<std::int32_t>(q[i + 1]);
    }
    if (i < n)
        sum += static_cast<std::int32_t>(unpackNibbleLow(a[i / 2])) *
               static_cast<std::int32_t>(q[i]);
    return sum;
}

inline void
gatherDotI4Scalar(const std::uint8_t *mat, std::size_t dims,
                  const std::uint32_t *rows, std::size_t count,
                  const std::int8_t *q, std::int32_t *out)
{
    const std::size_t rowBytes = (dims + 1) / 2;
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI4Scalar(mat + rows[i] * rowBytes, q, dims);
}

inline void
axpyI8Scalar(std::int64_t w, const std::int8_t *x, std::int64_t *y,
             std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        y[i] += w * static_cast<std::int64_t>(x[i]);
}

inline void
axpyI4Scalar(std::int64_t w, const std::uint8_t *x, std::int64_t *y,
             std::size_t n)
{
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
        const std::uint8_t byte = x[i / 2];
        y[i] += w * static_cast<std::int64_t>(unpackNibbleLow(byte));
        y[i + 1] +=
            w * static_cast<std::int64_t>(unpackNibbleHigh(byte));
    }
    if (i < n)
        y[i] += w * static_cast<std::int64_t>(unpackNibbleLow(x[i / 2]));
}

}  // namespace kernel_detail
}  // namespace a3

#endif  // A3_KERNELS_KERNELS_IMPL_HPP
