/**
 * @file
 * NEON kernel table (AArch64, where NEON is architecturally
 * guaranteed). dot uses vfmaq (fused, reassociating — tolerance-class
 * like the x86 FMA path); the order-preserving ops use explicit
 * mul + add pairs and shared scalar tails, bit-identical to the
 * scalar table because every kernel TU is built with
 * -ffp-contract=off.
 */

#include "kernels/kernels.hpp"

#include "kernels/kernels_impl.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace a3 {
namespace {

using namespace kernel_detail;

float
dotNeon(const float *a, const float *b, std::size_t n)
{
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
        acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4),
                         vld1q_f32(b + i + 4));
    }
    if (i + 4 <= n) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
        i += 4;
    }
    float sum = vaddvq_f32(vaddq_f32(acc0, acc1));
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
axpyNeon(float a, const float *x, float *y, std::size_t n)
{
    // Explicit mul + add (not vfmaq): bit-identical to the scalar loop.
    const float32x4_t va = vdupq_n_f32(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t prod = vmulq_f32(va, vld1q_f32(x + i));
        vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
    }
    axpyScalar(a, x + i, y + i, n - i);
}

float
maxReduceNeon(const float *v, std::size_t n)
{
    std::size_t i = 0;
    float best;
    if (n >= 4) {
        float32x4_t acc = vld1q_f32(v);
        for (i = 4; i + 4 <= n; i += 4)
            acc = vmaxq_f32(acc, vld1q_f32(v + i));
        best = vmaxvq_f32(acc);
    } else {
        best = maxReduceScalar(v, 0);  // -inf seed
    }
    for (; i < n; ++i)
        best = best < v[i] ? v[i] : best;
    return best;
}

void
scaleNeon(float *v, std::size_t n, float factor)
{
    const float32x4_t vf = vdupq_n_f32(factor);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(v + i, vmulq_f32(vld1q_f32(v + i), vf));
    scaleScalar(v + i, n - i, factor);
}

void
divideByNeon(float *v, std::size_t n, float denom)
{
    const float32x4_t vd = vdupq_n_f32(denom);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(v + i, vdivq_f32(vld1q_f32(v + i), vd));
    divideByScalar(v + i, n - i, denom);
}

void
gatherDotNeon(const float *mat, std::size_t dims,
              const std::uint32_t *rows, std::size_t count,
              const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotNeon(mat + rows[i] * dims, q, dims);
}

void
gatherWeightedSumNeon(const float *mat, std::size_t dims,
                      const std::uint32_t *rows, std::size_t count,
                      const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        const float32x4_t vw = vdupq_n_f32(w[i]);
        std::size_t j = 0;
        for (; j + 4 <= dims; j += 4) {
            const float32x4_t prod = vmulq_f32(vw, vld1q_f32(row + j));
            vst1q_f32(out + j, vaddq_f32(vld1q_f32(out + j), prod));
        }
        for (; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

/** Accumulate 16 int8 lane products into an i32 accumulator. */
int32x4_t
macI8Neon(int32x4_t acc, int8x16_t a, int8x16_t b)
{
#if defined(__ARM_FEATURE_DOTPROD)
    return vdotq_s32(acc, a, b);
#else
    const int16x8_t plo = vmull_s8(vget_low_s8(a), vget_low_s8(b));
    const int16x8_t phi = vmull_s8(vget_high_s8(a), vget_high_s8(b));
    return vpadalq_s16(vpadalq_s16(acc, plo), phi);
#endif
}

std::int32_t
dotI8Neon(const std::int8_t *a, const std::int8_t *b, std::size_t n)
{
    int32x4_t acc = vdupq_n_s32(0);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        acc = macI8Neon(acc, vld1q_s8(a + i), vld1q_s8(b + i));
    return vaddvq_s32(acc) + dotI8Scalar(a + i, b + i, n - i);
}

void
gatherDotI8Neon(const std::int8_t *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const std::int8_t *q, std::int32_t *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI8Neon(mat + rows[i] * dims, q, dims);
}

/** Unpack 8 packed bytes into 16 sign-extended nibble lanes. */
int8x16_t
unpackNibbles16Neon(const std::uint8_t *p)
{
    const uint8x8_t bytes = vld1_u8(p);
    const uint8x8_t lo = vand_u8(bytes, vdup_n_u8(0xF));
    const uint8x8_t hi = vshr_n_u8(bytes, 4);
    // Interleaving low/high nibbles restores element order 0..15.
    const uint8x8x2_t zipped = vzip_u8(lo, hi);
    int8x16_t v = vreinterpretq_s8_u8(
        vcombine_u8(zipped.val[0], zipped.val[1]));
    // Two's-complement sign extension of 4-bit lanes: (v ^ 8) - 8.
    const int8x16_t eight = vdupq_n_s8(8);
    return vsubq_s8(veorq_s8(v, eight), eight);
}

std::int32_t
dotI4Neon(const std::uint8_t *a, const std::int8_t *q, std::size_t n)
{
    int32x4_t acc = vdupq_n_s32(0);
    std::size_t i = 0;
    for (; i + 16 <= n; i += 16)
        acc = macI8Neon(acc, unpackNibbles16Neon(a + i / 2),
                        vld1q_s8(q + i));
    // i is even, so the tail starts on a byte boundary at a + i/2.
    return vaddvq_s32(acc) + dotI4Scalar(a + i / 2, q + i, n - i);
}

void
gatherDotI4Neon(const std::uint8_t *mat, std::size_t dims,
                const std::uint32_t *rows, std::size_t count,
                const std::int8_t *q, std::int32_t *out)
{
    const std::size_t rowBytes = (dims + 1) / 2;
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotI4Neon(mat + rows[i] * rowBytes, q, dims);
}

/**
 * y[j] += w * x[j] for 8 int8 lanes widened to int64. |w| < 2^24
 * (kernel contract) keeps the 32-bit products exact.
 */
void
accumWiden8Neon(int32x4_t vw, int8x8_t x8, std::int64_t *y)
{
    const int16x8_t x16 = vmovl_s8(x8);
    const int32x4_t plo = vmulq_s32(vmovl_s16(vget_low_s16(x16)), vw);
    const int32x4_t phi = vmulq_s32(vmovl_s16(vget_high_s16(x16)), vw);
    vst1q_s64(y, vaddw_s32(vld1q_s64(y), vget_low_s32(plo)));
    vst1q_s64(y + 2, vaddw_s32(vld1q_s64(y + 2), vget_high_s32(plo)));
    vst1q_s64(y + 4, vaddw_s32(vld1q_s64(y + 4), vget_low_s32(phi)));
    vst1q_s64(y + 6, vaddw_s32(vld1q_s64(y + 6), vget_high_s32(phi)));
}

void
axpyI8Neon(std::int64_t w, const std::int8_t *x, std::int64_t *y,
           std::size_t n)
{
    const int32x4_t vw = vdupq_n_s32(static_cast<std::int32_t>(w));
    std::size_t j = 0;
    for (; j + 8 <= n; j += 8)
        accumWiden8Neon(vw, vld1_s8(x + j), y + j);
    axpyI8Scalar(w, x + j, y + j, n - j);
}

void
axpyI4Neon(std::int64_t w, const std::uint8_t *x, std::int64_t *y,
           std::size_t n)
{
    const int32x4_t vw = vdupq_n_s32(static_cast<std::int32_t>(w));
    std::size_t j = 0;
    for (; j + 16 <= n; j += 16) {
        const int8x16_t v = unpackNibbles16Neon(x + j / 2);
        accumWiden8Neon(vw, vget_low_s8(v), y + j);
        accumWiden8Neon(vw, vget_high_s8(v), y + j + 8);
    }
    axpyI4Scalar(w, x + j / 2, y + j, n - j);
}

}  // namespace

const Kernels *
neonKernels()
{
    static const Kernels table{
        KernelIsa::Neon, dotNeon,
        axpyNeon,        maxReduceNeon,
        kernel_detail::expSumInPlaceScalar,
        scaleNeon,       divideByNeon,
        gatherDotNeon,   gatherWeightedSumNeon,
        dotI8Neon,       gatherDotI8Neon,
        dotI4Neon,       gatherDotI4Neon,
        axpyI8Neon,      axpyI4Neon,
    };
    return &table;
}

}  // namespace a3

#else  // !(__aarch64__ && __ARM_NEON)

namespace a3 {

const Kernels *
neonKernels()
{
    return nullptr;
}

}  // namespace a3

#endif
