/**
 * @file
 * NEON kernel table (AArch64, where NEON is architecturally
 * guaranteed). dot uses vfmaq (fused, reassociating — tolerance-class
 * like the x86 FMA path); the order-preserving ops use explicit
 * mul + add pairs and shared scalar tails, bit-identical to the
 * scalar table because every kernel TU is built with
 * -ffp-contract=off.
 */

#include "kernels/kernels.hpp"

#include "kernels/kernels_impl.hpp"

#if defined(__aarch64__) && defined(__ARM_NEON)

#include <arm_neon.h>

namespace a3 {
namespace {

using namespace kernel_detail;

float
dotNeon(const float *a, const float *b, std::size_t n)
{
    float32x4_t acc0 = vdupq_n_f32(0.0f);
    float32x4_t acc1 = vdupq_n_f32(0.0f);
    std::size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
        acc1 = vfmaq_f32(acc1, vld1q_f32(a + i + 4),
                         vld1q_f32(b + i + 4));
    }
    if (i + 4 <= n) {
        acc0 = vfmaq_f32(acc0, vld1q_f32(a + i), vld1q_f32(b + i));
        i += 4;
    }
    float sum = vaddvq_f32(vaddq_f32(acc0, acc1));
    for (; i < n; ++i)
        sum += a[i] * b[i];
    return sum;
}

void
axpyNeon(float a, const float *x, float *y, std::size_t n)
{
    // Explicit mul + add (not vfmaq): bit-identical to the scalar loop.
    const float32x4_t va = vdupq_n_f32(a);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const float32x4_t prod = vmulq_f32(va, vld1q_f32(x + i));
        vst1q_f32(y + i, vaddq_f32(vld1q_f32(y + i), prod));
    }
    axpyScalar(a, x + i, y + i, n - i);
}

float
maxReduceNeon(const float *v, std::size_t n)
{
    std::size_t i = 0;
    float best;
    if (n >= 4) {
        float32x4_t acc = vld1q_f32(v);
        for (i = 4; i + 4 <= n; i += 4)
            acc = vmaxq_f32(acc, vld1q_f32(v + i));
        best = vmaxvq_f32(acc);
    } else {
        best = maxReduceScalar(v, 0);  // -inf seed
    }
    for (; i < n; ++i)
        best = best < v[i] ? v[i] : best;
    return best;
}

void
scaleNeon(float *v, std::size_t n, float factor)
{
    const float32x4_t vf = vdupq_n_f32(factor);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(v + i, vmulq_f32(vld1q_f32(v + i), vf));
    scaleScalar(v + i, n - i, factor);
}

void
divideByNeon(float *v, std::size_t n, float denom)
{
    const float32x4_t vd = vdupq_n_f32(denom);
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4)
        vst1q_f32(v + i, vdivq_f32(vld1q_f32(v + i), vd));
    divideByScalar(v + i, n - i, denom);
}

void
gatherDotNeon(const float *mat, std::size_t dims,
              const std::uint32_t *rows, std::size_t count,
              const float *q, float *out)
{
    for (std::size_t i = 0; i < count; ++i)
        out[i] = dotNeon(mat + rows[i] * dims, q, dims);
}

void
gatherWeightedSumNeon(const float *mat, std::size_t dims,
                      const std::uint32_t *rows, std::size_t count,
                      const float *w, float *out)
{
    for (std::size_t i = 0; i < count; ++i) {
        const float *row = mat + rows[i] * dims;
        const float32x4_t vw = vdupq_n_f32(w[i]);
        std::size_t j = 0;
        for (; j + 4 <= dims; j += 4) {
            const float32x4_t prod = vmulq_f32(vw, vld1q_f32(row + j));
            vst1q_f32(out + j, vaddq_f32(vld1q_f32(out + j), prod));
        }
        for (; j < dims; ++j)
            out[j] += w[i] * row[j];
    }
}

}  // namespace

const Kernels *
neonKernels()
{
    static const Kernels table{
        KernelIsa::Neon, dotNeon,
        axpyNeon,        maxReduceNeon,
        kernel_detail::expSumInPlaceScalar,
        scaleNeon,       divideByNeon,
        gatherDotNeon,   gatherWeightedSumNeon,
    };
    return &table;
}

}  // namespace a3

#else  // !(__aarch64__ && __ARM_NEON)

namespace a3 {

const Kernels *
neonKernels()
{
    return nullptr;
}

}  // namespace a3

#endif
