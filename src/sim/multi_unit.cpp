#include "sim/multi_unit.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace a3 {

A3Cluster::A3Cluster(const SimConfig &config, std::size_t units)
{
    a3Assert(units >= 1, "cluster needs at least one unit");
    units_.reserve(units);
    for (std::size_t u = 0; u < units; ++u)
        units_.push_back(std::make_unique<A3Accelerator>(config));
}

void
A3Cluster::loadTask(const Matrix &key, const Matrix &value)
{
    for (auto &unit : units_)
        unit->loadTask(key, value);
}

void
A3Cluster::loadTasks(
    const std::vector<std::pair<Matrix, Matrix>> &tasks)
{
    a3Assert(tasks.size() == units_.size(),
             "need exactly one task per unit: ", tasks.size(), " vs ",
             units_.size());
    for (std::size_t u = 0; u < units_.size(); ++u)
        units_[u]->loadTask(tasks[u].first, tasks[u].second);
}

const A3Accelerator &
A3Cluster::unit(std::size_t index) const
{
    a3Assert(index < units_.size(), "unit index out of range");
    return *units_[index];
}

ClusterStats
A3Cluster::runAll(const std::vector<Vector> &queries)
{
    // Least-loaded dispatch; with identical units this is round-robin
    // but stays balanced if callers interleave runAll() invocations.
    std::vector<std::size_t> assigned(units_.size(), 0);
    std::vector<std::vector<Vector>> perUnit(units_.size());
    for (const Vector &q : queries) {
        const std::size_t target = static_cast<std::size_t>(
            std::min_element(assigned.begin(), assigned.end()) -
            assigned.begin());
        perUnit[target].push_back(q);
        ++assigned[target];
    }
    return runPerUnit(perUnit);
}

ClusterStats
A3Cluster::runPerUnit(
    const std::vector<std::vector<Vector>> &perUnit)
{
    a3Assert(perUnit.size() == units_.size(),
             "need one query list per unit: ", perUnit.size(), " vs ",
             units_.size());

    ClusterStats stats;
    stats.perUnitQueries.resize(units_.size(), 0);
    double latencyWeighted = 0.0;
    for (std::size_t u = 0; u < units_.size(); ++u) {
        if (perUnit[u].empty())
            continue;
        const RunStats unitStats = units_[u]->runAll(perUnit[u]);
        stats.makespan = std::max(stats.makespan,
                                  unitStats.totalCycles);
        stats.queries += unitStats.queries;
        stats.perUnitQueries[u] = unitStats.queries;
        latencyWeighted += unitStats.avgLatency *
                           static_cast<double>(unitStats.queries);
    }
    a3Assert(stats.queries > 0, "cluster run completed no queries");
    stats.avgLatency =
        latencyWeighted / static_cast<double>(stats.queries);
    const double seconds =
        static_cast<double>(stats.makespan) /
        (units_[0]->config().clockGhz * 1e9);
    stats.queriesPerSecond =
        seconds > 0.0 ? static_cast<double>(stats.queries) / seconds
                      : 0.0;
    return stats;
}

}  // namespace a3
