#include "sim/stage.hpp"

#include "util/logging.hpp"

namespace a3 {

void
Stage::accept(std::unique_ptr<QueryJob> job, Cycle now)
{
    a3Assert(idle(), "stage ", name_, " accepted a query while busy");
    a3Assert(job != nullptr, "stage ", name_, " accepted a null query");
    const Cycle service = serviceTime(*job);
    a3Assert(service > 0, "stage ", name_, " has zero service time");
    stats_.activeCycles += service;
    stats_.rowOps += rowOps(*job);
    stats_.auxCycles += auxTime(*job);
    doneAt_ = now + service;
    job_ = std::move(job);
}

std::unique_ptr<QueryJob>
Stage::release(Cycle now)
{
    a3Assert(done(now), "stage ", name_, " released an unfinished query");
    ++stats_.jobs;
    return std::move(job_);
}

}  // namespace a3
