#include "sim/host_interface.hpp"

#include <bit>

#include "util/logging.hpp"

namespace a3 {

HostInterface::HostInterface(A3Accelerator &device, Cycle cyclesPerWord)
    : device_(device), cyclesPerWord_(cyclesPerWord)
{
    a3Assert(cyclesPerWord_ >= 1, "link must cost at least one cycle");
}

void
HostInterface::writeWord(std::uint32_t word)
{
    linkCycles_ += cyclesPerWord_;
    switch (state_) {
      case State::Idle: {
        const auto op = static_cast<HostOpcode>(word);
        switch (op) {
          case HostOpcode::LoadKey:
          case HostOpcode::LoadValue:
            pendingOp_ = op;
            state_ = State::LoadShape;
            payload_.clear();
            expectWords_ = 2;
            break;
          case HostOpcode::Submit:
            pendingOp_ = op;
            state_ = State::SubmitPayload;
            payload_.clear();
            expectWords_ = device_.config().dims;
            break;
          case HostOpcode::ReadOutput: {
            device_.drain();
            outputWords_.clear();
            outputCursor_ = 0;
            if (auto job = device_.popOutput()) {
                for (float v : job->result.output)
                    outputWords_.push_back(std::bit_cast<std::uint32_t>(v));
            }
            break;
          }
          case HostOpcode::Status:
            // Status words: outputs ready to read, queries in flight.
            outputWords_ = {
                static_cast<std::uint32_t>(device_.pendingOutputs()),
                static_cast<std::uint32_t>(device_.inFlight()),
            };
            outputCursor_ = 0;
            break;
          default:
            fatal("unknown host opcode: ", word);
        }
        break;
      }
      case State::LoadShape:
        payload_.push_back(word);
        if (payload_.size() == 2) {
            shapeRows_ = payload_[0];
            shapeCols_ = payload_[1];
            a3Assert(shapeRows_ > 0 && shapeCols_ > 0,
                     "degenerate matrix shape over host link");
            payload_.clear();
            expectWords_ = shapeRows_ * shapeCols_;
            state_ = State::LoadPayload;
        }
        break;
      case State::LoadPayload:
        payload_.push_back(word);
        if (payload_.size() == expectWords_) {
            Matrix m(shapeRows_, shapeCols_);
            for (std::size_t r = 0; r < shapeRows_; ++r) {
                for (std::size_t c = 0; c < shapeCols_; ++c) {
                    m(r, c) = std::bit_cast<float>(
                        payload_[r * shapeCols_ + c]);
                }
            }
            if (pendingOp_ == HostOpcode::LoadKey)
                stagedKey_ = std::move(m);
            else
                stagedValue_ = std::move(m);
            finishLoadIfReady();
            state_ = State::Idle;
        }
        break;
      case State::SubmitPayload:
        payload_.push_back(word);
        if (payload_.size() == expectWords_) {
            Vector q(expectWords_);
            for (std::size_t i = 0; i < expectWords_; ++i)
                q[i] = std::bit_cast<float>(payload_[i]);
            device_.submitQuery(q);
            state_ = State::Idle;
        }
        break;
      case State::DrainOutput:
        panic("write during output drain");
    }
}

std::uint32_t
HostInterface::readWord()
{
    linkCycles_ += cyclesPerWord_;
    a3Assert(outputCursor_ < outputWords_.size(),
             "host read with no pending output words");
    return outputWords_[outputCursor_++];
}

void
HostInterface::finishLoadIfReady()
{
    if (!stagedKey_ || !stagedValue_)
        return;
    a3Assert(stagedKey_->rows() == stagedValue_->rows() &&
                 stagedKey_->cols() == stagedValue_->cols(),
             "key/value shape mismatch over host link");
    device_.loadTask(*stagedKey_, *stagedValue_);
    stagedKey_.reset();
    stagedValue_.reset();
}

void
HostInterface::loadTask(const Matrix &key, const Matrix &value)
{
    auto send = [this](HostOpcode op, const Matrix &m) {
        writeWord(static_cast<std::uint32_t>(op));
        writeWord(static_cast<std::uint32_t>(m.rows()));
        writeWord(static_cast<std::uint32_t>(m.cols()));
        for (float v : m.data())
            writeWord(std::bit_cast<std::uint32_t>(v));
    };
    send(HostOpcode::LoadKey, key);
    send(HostOpcode::LoadValue, value);
}

void
HostInterface::submitQuery(const Vector &query)
{
    a3Assert(query.size() == device_.config().dims,
             "query width must match the device dimension");
    writeWord(static_cast<std::uint32_t>(HostOpcode::Submit));
    for (float v : query)
        writeWord(std::bit_cast<std::uint32_t>(v));
}

std::optional<Vector>
HostInterface::readOutput()
{
    writeWord(static_cast<std::uint32_t>(HostOpcode::ReadOutput));
    if (outputWords_.empty())
        return std::nullopt;
    Vector out(outputWords_.size());
    for (std::size_t i = 0; i < out.size(); ++i)
        out[i] = std::bit_cast<float>(readWord());
    return out;
}

std::pair<std::uint32_t, std::uint32_t>
HostInterface::status()
{
    writeWord(static_cast<std::uint32_t>(HostOpcode::Status));
    const std::uint32_t pending = readWord();
    const std::uint32_t marker = readWord();
    return {pending, marker};
}

Cycle
HostInterface::queryTransferCycles() const
{
    // Opcode word plus d payload words.
    return cyclesPerWord_ *
           (1 + static_cast<Cycle>(device_.config().dims));
}

}  // namespace a3
