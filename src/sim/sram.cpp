#include "sim/sram.hpp"

#include "util/logging.hpp"

namespace a3 {

Sram::Sram(std::string name, std::size_t capacityBytes,
           std::size_t wordBytes)
    : name_(std::move(name)), capacityBytes_(capacityBytes),
      wordBytes_(wordBytes)
{
    a3Assert(wordBytes_ > 0, "SRAM word size must be positive");
    a3Assert(capacityBytes_ >= wordBytes_,
             "SRAM capacity smaller than one word");
}

void
Sram::read(std::size_t words)
{
    reads_ += words;
}

void
Sram::write(std::size_t words)
{
    writes_ += words;
}

void
Sram::fill(std::size_t bytes, std::size_t writeCycles)
{
    a3Assert(bytes <= capacityBytes_, "SRAM ", name_, " overflow: ",
             bytes, " bytes into ", capacityBytes_, "-byte buffer");
    liveBytes_ = bytes;
    write(writeCycles);
}

void
Sram::resetCounters()
{
    reads_ = 0;
    writes_ = 0;
}

}  // namespace a3
