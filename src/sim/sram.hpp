/**
 * @file
 * SRAM buffer model with access accounting.
 *
 * A3 keeps the key matrix, the value matrix, and (with approximation)
 * the column-sorted key matrix in on-chip SRAM (Table I lists 20 KB,
 * 20 KB and 40 KB instances). The simulator does not model bank
 * conflicts — the pipeline reads each structure strictly sequentially,
 * one row (or one sorted entry) per cycle — so a capacity check plus
 * read/write counters are sufficient for both correctness and the
 * Figure 15 energy accounting.
 */

#ifndef A3_SIM_SRAM_HPP
#define A3_SIM_SRAM_HPP

#include <cstdint>
#include <string>

namespace a3 {

/** A named on-chip SRAM instance with capacity and access counters. */
class Sram
{
  public:
    /**
     * @param name instance name for reports (e.g. "key_matrix").
     * @param capacityBytes total capacity; writes beyond it panic.
     * @param wordBytes width of one access in bytes.
     */
    Sram(std::string name, std::size_t capacityBytes,
         std::size_t wordBytes);

    /** Record `words` sequential word reads. */
    void read(std::size_t words = 1);

    /** Record `words` sequential word writes; checks capacity. */
    void write(std::size_t words = 1);

    /**
     * Mark the buffer as holding `bytes` of live data, written over
     * `writeCycles` wide row-granularity accesses (energy accounting
     * is per actively-accessed cycle, like the read counters).
     */
    void fill(std::size_t bytes, std::size_t writeCycles);

    /** Reset counters (not contents) between experiments. */
    void resetCounters();

    const std::string &name() const { return name_; }
    std::size_t capacityBytes() const { return capacityBytes_; }
    std::size_t wordBytes() const { return wordBytes_; }
    std::size_t liveBytes() const { return liveBytes_; }
    std::uint64_t reads() const { return reads_; }
    std::uint64_t writes() const { return writes_; }
    std::uint64_t accesses() const { return reads_ + writes_; }

  private:
    std::string name_;
    std::size_t capacityBytes_;
    std::size_t wordBytes_;
    std::size_t liveBytes_ = 0;
    std::uint64_t reads_ = 0;
    std::uint64_t writes_ = 0;
};

}  // namespace a3

#endif  // A3_SIM_SRAM_HPP
