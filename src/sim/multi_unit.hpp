/**
 * @file
 * Multiple A3 units (Section III-C, "Use of Multiple A3 Units").
 *
 * Two deployment patterns from the paper:
 *  - independent tasks: each unit holds its own key/value matrices
 *    (different attention heads, different stories);
 *  - shared task: several units replicate the same key/value matrices
 *    and split one query stream to multiply throughput — the
 *    configuration the paper invokes when arguing 6-7 conservative
 *    units overtake the Titan V on BERT.
 *
 * This model implements the shared-task pattern: queries are
 * dispatched to the least-loaded unit (ties to the lowest unit id),
 * every unit runs its own cycle-accurate pipeline, and the aggregate
 * statistics describe the cluster.
 */

#ifndef A3_SIM_MULTI_UNIT_HPP
#define A3_SIM_MULTI_UNIT_HPP

#include <memory>
#include <vector>

#include "sim/accelerator.hpp"

namespace a3 {

/** Aggregate statistics of a multi-unit run. */
struct ClusterStats
{
    /** Cycles until the last unit drained. */
    Cycle makespan = 0;

    /** Total queries completed across units. */
    std::uint64_t queries = 0;

    /** Aggregate throughput in queries/second at the sim clock. */
    double queriesPerSecond = 0.0;

    /** Mean pipeline latency across all queries, cycles. */
    double avgLatency = 0.0;

    /** Completed queries per unit (dispatch balance check). Use
     * clusterEnergy() in energy/power_model.hpp for joules. */
    std::vector<std::uint64_t> perUnitQueries;
};

/** A cluster of identical A3 units replicating one task. */
class A3Cluster
{
  public:
    /**
     * @param config per-unit configuration.
     * @param units number of replicas (>= 1).
     */
    A3Cluster(const SimConfig &config, std::size_t units);

    /** Load the same task into every unit (shared-task pattern). */
    void loadTask(const Matrix &key, const Matrix &value);

    /**
     * Independent-task pattern: give each unit its own key/value pair
     * (e.g. one attention head per unit). `tasks.size()` must equal
     * units().
     */
    void loadTasks(
        const std::vector<std::pair<Matrix, Matrix>> &tasks);

    /**
     * Dispatch each query to the unit with the fewest assigned
     * queries so far, run all units to completion, and aggregate.
     */
    ClusterStats runAll(const std::vector<Vector> &queries);

    /**
     * Independent-task companion to loadTasks(): unit u answers
     * `perUnitQueries[u]` against its own matrices; all units run
     * concurrently and the aggregate is returned.
     */
    ClusterStats runPerUnit(
        const std::vector<std::vector<Vector>> &perUnitQueries);

    std::size_t units() const { return units_.size(); }
    const A3Accelerator &unit(std::size_t index) const;

  private:
    std::vector<std::unique_ptr<A3Accelerator>> units_;
};

}  // namespace a3

#endif  // A3_SIM_MULTI_UNIT_HPP
