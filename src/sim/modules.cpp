#include "sim/modules.hpp"

#include "fixed/pipeline_formats.hpp"
#include "util/logging.hpp"

namespace a3 {

namespace {

/** ceil(a / b) for positive b. */
Cycle
ceilDiv(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

}  // namespace

Cycle
dotProductExtraCycles(std::size_t dims)
{
    // 1 multiplier register + adder-tree depth + 1 max compare +
    // 1 score-register write; 9 cycles at the paper's d = 64.
    return 1 + static_cast<Cycle>(ceilLog2(dims)) + 1 + 1;
}

Cycle
exponentExtraCycles()
{
    // 1 subtract + 2 LUT reads + 2 multiply + 2 accumulate + 2 handoff.
    return 9;
}

Cycle
outputExtraCycles()
{
    // 7-cycle divider + 2-cycle multiply-accumulate (Section III-A).
    return 9;
}

CandidateSelectionStage::CandidateSelectionStage(const SimConfig &config,
                                                 Sram *sortedKey)
    : Stage("candidate_selection"), config_(config),
      sortedKey_(sortedKey)
{
}

Cycle
CandidateSelectionStage::serviceTime(const QueryJob &job) const
{
    a3Assert(job.iterM > 0, "approx job without iteration count");
    const Cycle init = 1 + 4;  // pointer init + buffer fill
    const Cycle scan = ceilDiv(job.taskRows, config_.scanWidth);
    return init + static_cast<Cycle>(job.iterM) + scan;
}

std::uint64_t
CandidateSelectionStage::rowOps(const QueryJob &job) const
{
    // SRAM access accounting is in active cycles (Table I dynamic
    // power is per actively-accessed cycle): 4 wide fill cycles (2d
    // entries each via the borrowed multipliers) plus one cycle per
    // steady iteration (max- and min-side refills in parallel banks).
    if (sortedKey_)
        sortedKey_->read(4 + job.iterM);
    return job.iterM;
}

DotProductStage::DotProductStage(const SimConfig &config,
                                 Sram *keyMatrix, DramModel *dram)
    : Stage("dot_product"), config_(config), keyMatrix_(keyMatrix),
      dram_(dram)
{
}

Cycle
DotProductStage::serviceTime(const QueryJob &job) const
{
    Cycle stall = 0;
    if (dram_ && job.dramRows > 0) {
        stall = dram_->stallCycles(job.taskRows - job.dramRows,
                                   job.dramRows);
    }
    return static_cast<Cycle>(job.candidatesC) +
           dotProductExtraCycles(config_.dims) + stall;
}

std::uint64_t
DotProductStage::rowOps(const QueryJob &job) const
{
    // One row-wide access per cycle; DRAM-resident rows stream
    // through the prefetcher instead of the SRAM.
    const std::uint64_t sramRows = job.candidatesC - job.dramRows;
    if (keyMatrix_)
        keyMatrix_->read(sramRows);
    if (dram_)
        dram_->recordReads(job.dramRows);
    return job.candidatesC;
}

ExponentStage::ExponentStage(const SimConfig &config)
    : Stage("exponent"), config_(config)
{
}

Cycle
ExponentStage::serviceTime(const QueryJob &job) const
{
    Cycle postScoring = 0;
    if (config_.mode == A3Mode::Approx) {
        postScoring =
            ceilDiv(job.candidatesC, config_.postScoringWidth);
    }
    return postScoring + static_cast<Cycle>(job.keptK) +
           exponentExtraCycles();
}

std::uint64_t
ExponentStage::rowOps(const QueryJob &job) const
{
    return job.keptK;
}

Cycle
ExponentStage::auxTime(const QueryJob &job) const
{
    if (config_.mode != A3Mode::Approx)
        return 0;
    return ceilDiv(job.candidatesC, config_.postScoringWidth);
}

OutputStage::OutputStage(const SimConfig &config, Sram *valueMatrix,
                         DramModel *dram)
    : Stage("output"), config_(config), valueMatrix_(valueMatrix),
      dram_(dram)
{
}

Cycle
OutputStage::serviceTime(const QueryJob &job) const
{
    Cycle stall = 0;
    if (dram_ && job.dramRows > 0) {
        stall = dram_->stallCycles(job.taskRows - job.dramRows,
                                   job.dramRows);
    }
    return static_cast<Cycle>(job.keptK) + outputExtraCycles() +
           stall;
}

std::uint64_t
OutputStage::rowOps(const QueryJob &job) const
{
    const std::uint64_t sramRows = job.keptK - job.dramRows;
    if (valueMatrix_)
        valueMatrix_->read(sramRows);
    if (dram_)
        dram_->recordReads(job.dramRows);
    return job.keptK;
}

}  // namespace a3
