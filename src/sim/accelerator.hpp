/**
 * @file
 * Top-level A3 device model.
 *
 * Usage mirrors the paper's offloading mechanism (Section III-C): the
 * host copies a key matrix and a value matrix into the device SRAM at
 * comprehension time (loadTask), then submits query vectors which are
 * buffered in the query queue. The cycle loop moves queries through the
 * stage latches — candidate selection (approx mode only), dot product,
 * exponent (+ fused post-scoring), output — and completed outputs land
 * in the output queue with full timing records.
 *
 * Functional data comes from the bit-accurate fixed-point model, so a
 * simulated run returns the very vectors the RTL would produce, plus
 * per-stage activity for the Figure 15 energy model.
 */

#ifndef A3_SIM_ACCELERATOR_HPP
#define A3_SIM_ACCELERATOR_HPP

#include <deque>
#include <memory>
#include <optional>
#include <vector>

#include "attention/approx_attention.hpp"
#include "attention/quantized.hpp"
#include "sim/dram.hpp"
#include "sim/modules.hpp"
#include "sim/sram.hpp"
#include "sim/types.hpp"

namespace a3 {

/** Aggregate performance counters of one simulated run. */
struct RunStats
{
    /** Cycle the simulation stopped at (all queries drained). */
    Cycle totalCycles = 0;

    /** Number of completed queries. */
    std::uint64_t queries = 0;

    /** Mean pipeline latency per query in cycles (queueing excluded,
     * matching the paper's per-operation latency). */
    double avgLatency = 0.0;

    /** Mean candidates C per query (== n in base mode). */
    double avgCandidates = 0.0;

    /** Mean post-scoring survivors K per query. */
    double avgKept = 0.0;

    /** Sustained throughput in queries per second at the sim clock. */
    double queriesPerSecond = 0.0;

    /** Cycles between the first and last query completion, per query. */
    double cyclesPerQuery = 0.0;
};

/** One simulated A3 unit. */
class A3Accelerator
{
  public:
    explicit A3Accelerator(SimConfig config);

    /**
     * Copy a task's matrices into the device SRAM, preprocessing
     * (column sort) included in approx mode. Models comprehension-time
     * work; not charged to query latency (Section III-C).
     */
    void loadTask(const Matrix &key, const Matrix &value);

    /** Enqueue one query at the current cycle. */
    void submitQuery(const Vector &query);

    /** Advance one clock cycle. */
    void tick();

    /** Run until every submitted query has completed. */
    void drain();

    /** Pop the oldest completed query, if any. */
    std::optional<QueryJob> popOutput();

    /** Summarize timing over every query completed so far. */
    RunStats stats() const;

    /** Convenience: submit all queries, drain, and summarize. */
    RunStats runAll(const std::vector<Vector> &queries);

    const SimConfig &config() const { return config_; }
    Cycle now() const { return now_; }

    /** Completed outputs waiting in the output queue. */
    std::size_t pendingOutputs() const { return outputQueue_.size(); }

    /** Queries submitted but not yet completed. */
    std::uint64_t inFlight() const { return inFlight_; }

    const Sram &keySram() const { return keySram_; }
    const Sram &valueSram() const { return valueSram_; }
    const Sram &sortedKeySram() const { return sortedKeySram_; }

    /** DRAM spill model (Section III-C); idle unless rows > maxRows. */
    const DramModel &dram() const { return dram_; }

    /** Stage activity, in pipeline order (candidate stage only in
     * approx mode). */
    std::vector<const Stage *> stages() const;

    /** The bit-accurate fixed-point datapath model. */
    const QuantizedAttention &datapath() const { return *datapath_; }

  private:
    /** Resolve functional results and work sizes for a query. */
    std::unique_ptr<QueryJob> makeJob(const Vector &query);

    /** Try to move completed jobs downstream; returns true if moved. */
    void advancePipeline();

    SimConfig config_;
    Cycle now_ = 0;
    std::uint64_t nextId_ = 0;

    Sram keySram_;
    Sram valueSram_;
    Sram sortedKeySram_;
    DramModel dram_;

    std::unique_ptr<CandidateSelectionStage> candidateStage_;
    std::unique_ptr<DotProductStage> dotStage_;
    std::unique_ptr<ExponentStage> exponentStage_;
    std::unique_ptr<OutputStage> outputStage_;

    std::deque<std::unique_ptr<QueryJob>> queryQueue_;
    std::deque<QueryJob> outputQueue_;
    std::vector<QueryJob> completed_;

    std::optional<ApproxAttention> task_;
    std::unique_ptr<QuantizedAttention> datapath_;
    std::uint64_t inFlight_ = 0;
};

}  // namespace a3

#endif  // A3_SIM_ACCELERATOR_HPP
