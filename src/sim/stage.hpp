/**
 * @file
 * Pipeline-stage framework of the cycle-level simulator.
 *
 * Each hardware module is a Stage holding at most one QueryJob. The
 * cycle loop asks the most-downstream stage first whether its job has
 * completed and whether the next latch is free, so a query drains
 * through the pipeline with the same back-pressure behaviour as the
 * RTL: a stage cannot accept a new query until it has handed its
 * current one downstream.
 *
 * The per-query cycle breakdown inside a stage (its service time) is an
 * analytic function of the work sizes resolved by the functional model
 * (n, M, C, K); the paper's formulas — latency 3n + 27, throughput one
 * query per n + 9 cycles for the base design, M + C + 2K + alpha with
 * approximation — emerge from the interaction of these service times
 * with the latch back-pressure, and the tests assert them exactly.
 */

#ifndef A3_SIM_STAGE_HPP
#define A3_SIM_STAGE_HPP

#include <memory>
#include <string>

#include "sim/types.hpp"

namespace a3 {

/** Accumulated activity of one stage, consumed by the energy model. */
struct StageStats
{
    /** Cycles the stage was actively processing a query. */
    Cycle activeCycles = 0;

    /** Queries completed by this stage. */
    std::uint64_t jobs = 0;

    /** Total datapath row-operations performed (for sanity checks). */
    std::uint64_t rowOps = 0;

    /**
     * Cycles attributable to an auxiliary fused unit (the post-scoring
     * comparators inside the exponent stage); a subset of activeCycles
     * that the energy model charges at the auxiliary unit's power.
     */
    Cycle auxCycles = 0;
};

/** One pipeline module holding at most one in-flight query. */
class Stage
{
  public:
    explicit Stage(std::string name) : name_(std::move(name)) {}
    virtual ~Stage() = default;

    Stage(const Stage &) = delete;
    Stage &operator=(const Stage &) = delete;

    /** True when the stage can latch a new query this cycle. */
    bool idle() const { return !job_; }

    /** Latch a query; must be idle. Computes the completion cycle. */
    void accept(std::unique_ptr<QueryJob> job, Cycle now);

    /** True when the resident query has finished its service time. */
    bool done(Cycle now) const { return job_ && now >= doneAt_; }

    /** Release the completed query to the caller; must be done(). */
    std::unique_ptr<QueryJob> release(Cycle now);

    const std::string &name() const { return name_; }
    const StageStats &stats() const { return stats_; }

    /** Service time the stage would charge this job (exposed for tests). */
    virtual Cycle serviceTime(const QueryJob &job) const = 0;

  protected:
    /** Datapath rows this job streams through the stage. */
    virtual std::uint64_t rowOps(const QueryJob &job) const = 0;

    /** Cycles of serviceTime() spent in a fused auxiliary unit. */
    virtual Cycle auxTime(const QueryJob &) const { return 0; }

  private:
    std::string name_;
    std::unique_ptr<QueryJob> job_;
    Cycle doneAt_ = 0;
    StageStats stats_;
};

}  // namespace a3

#endif  // A3_SIM_STAGE_HPP
