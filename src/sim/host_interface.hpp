/**
 * @file
 * Host interface model (Section VI-D test chip).
 *
 * The A3 prototype talks to an ARMv8 host over a "custom JTAG-like
 * serial interface" driven by a device driver. This models that
 * word-oriented protocol: the host writes 32-bit command and payload
 * words, the device assembles them into matrices/queries and forwards
 * them to the accelerator, and outputs read back word by word. Each
 * word transfer costs a configurable number of core cycles, so the
 * model also answers "when does the host link, not the pipeline,
 * bound throughput?" — relevant because Section III-C argues only the
 * query vector transfer sits on the query-response path.
 *
 * Protocol (one command word, then its payload):
 *   LOAD_KEY   n d   then n*d value words   (row-major fixed-point)
 *   LOAD_VALUE n d   then n*d value words   (must match LOAD_KEY shape)
 *   SUBMIT     -     then d value words     (enqueues one query)
 *   READ_OUT   -     pops one output; then d reads return its words
 *   STATUS     -     next read returns {pending outputs, in flight}
 *
 * Value words travel as IEEE-754 bit patterns — the driver hands the
 * device floats and the device's own input stage quantizes them, so
 * host-side code never needs to know the fixed-point format.
 */

#ifndef A3_SIM_HOST_INTERFACE_HPP
#define A3_SIM_HOST_INTERFACE_HPP

#include <cstdint>
#include <optional>

#include "sim/accelerator.hpp"

namespace a3 {

/** Command opcodes of the serial protocol. */
enum class HostOpcode : std::uint32_t {
    LoadKey = 0x1,
    LoadValue = 0x2,
    Submit = 0x3,
    ReadOutput = 0x4,
    Status = 0x5,
};

/** Word-oriented host-side driver for one A3 device. */
class HostInterface
{
  public:
    /**
     * @param device the accelerator behind the link.
     * @param cyclesPerWord serial cost of one 32-bit word (the GPIO
     *        link of the test chip is slow; on-die integration would
     *        set this to ~1).
     */
    explicit HostInterface(A3Accelerator &device,
                           Cycle cyclesPerWord = 32);

    /** Convenience: marshal and load both matrices. */
    void loadTask(const Matrix &key, const Matrix &value);

    /** Convenience: marshal and submit one query. */
    void submitQuery(const Vector &query);

    /**
     * Convenience: run the device until idle and unmarshal the oldest
     * output vector; empty when nothing is pending.
     */
    std::optional<Vector> readOutput();

    /** Outputs waiting + queries in flight, as the STATUS word pair. */
    std::pair<std::uint32_t, std::uint32_t> status();

    /** Raw protocol access (exercised directly by tests). */
    void writeWord(std::uint32_t word);
    std::uint32_t readWord();

    /** Total serial-link cycles spent so far. */
    Cycle linkCycles() const { return linkCycles_; }

    /** Serial cycles a d-dimensional query transfer costs — the only
     * transfer on the query-response path (Section III-C). */
    Cycle queryTransferCycles() const;

  private:
    enum class State {
        Idle,
        LoadShape,    ///< expecting n, d
        LoadPayload,  ///< expecting n*d words
        SubmitPayload,
        DrainOutput,
    };

    void finishLoadIfReady();

    A3Accelerator &device_;
    Cycle cyclesPerWord_;
    Cycle linkCycles_ = 0;

    State state_ = State::Idle;
    HostOpcode pendingOp_ = HostOpcode::Status;
    std::size_t expectWords_ = 0;
    std::vector<std::uint32_t> payload_;
    std::size_t shapeRows_ = 0;
    std::size_t shapeCols_ = 0;

    std::optional<Matrix> stagedKey_;
    std::optional<Matrix> stagedValue_;
    std::vector<std::uint32_t> outputWords_;
    std::size_t outputCursor_ = 0;
};

}  // namespace a3

#endif  // A3_SIM_HOST_INTERFACE_HPP
