#include "sim/accelerator.hpp"

#include <algorithm>

#include "attention/post_scoring.hpp"
#include "util/logging.hpp"

namespace a3 {

namespace {

/** Bytes of one quantized matrix element ((i + f + 1)-bit word). */
std::size_t
elementBytes(const SimConfig &config)
{
    return (static_cast<std::size_t>(config.intBits) +
            static_cast<std::size_t>(config.fracBits) + 1 + 7) / 8;
}

/** Bytes of one sorted-key entry: element plus its row id. */
std::size_t
sortedEntryBytes(const SimConfig &config)
{
    const std::size_t idBytes =
        (static_cast<std::size_t>(ceilLog2(config.maxRows)) + 7) / 8;
    return elementBytes(config) + std::max<std::size_t>(idBytes, 1);
}

}  // namespace

A3Accelerator::A3Accelerator(SimConfig config)
    : config_(config),
      keySram_("key_matrix",
               config_.maxRows * config_.dims * elementBytes(config_),
               config_.dims * elementBytes(config_)),
      valueSram_("value_matrix",
                 config_.maxRows * config_.dims * elementBytes(config_),
                 config_.dims * elementBytes(config_)),
      sortedKeySram_("sorted_key_matrix",
                     config_.maxRows * config_.dims *
                         sortedEntryBytes(config_),
                     sortedEntryBytes(config_)),
      dram_(config.dramLatency, config.dramRowInterval)
{
    a3Assert(config_.maxRows > 0 && config_.dims > 0,
             "accelerator sized with empty dimensions");
    if (config_.mode == A3Mode::Approx) {
        candidateStage_ = std::make_unique<CandidateSelectionStage>(
            config_, &sortedKeySram_);
    }
    dotStage_ = std::make_unique<DotProductStage>(config_, &keySram_,
                                                  &dram_);
    exponentStage_ = std::make_unique<ExponentStage>(config_);
    outputStage_ = std::make_unique<OutputStage>(config_, &valueSram_,
                                                 &dram_);
    const std::size_t datapathRows =
        config_.maxRows +
        (config_.allowDramSpill ? config_.maxDramRows : 0);
    datapath_ = std::make_unique<QuantizedAttention>(
        config_.intBits, config_.fracBits, datapathRows,
        config_.dims);
}

void
A3Accelerator::loadTask(const Matrix &key, const Matrix &value)
{
    const std::size_t rowCapacity =
        config_.maxRows +
        (config_.allowDramSpill && config_.mode == A3Mode::Base
             ? config_.maxDramRows
             : 0);
    a3Assert(key.rows() <= rowCapacity,
             "task rows ", key.rows(), " exceed capacity ",
             rowCapacity,
             config_.mode == A3Mode::Approx
                 ? " (the sorted key must stay on chip, so approx "
                   "mode cannot spill to DRAM)"
                 : "");
    a3Assert(key.cols() == config_.dims,
             "task dimension ", key.cols(), " != datapath width ",
             config_.dims);
    a3Assert(inFlight_ == 0 && queryQueue_.empty(),
             "cannot reload the task while queries are in flight");

    ApproxConfig taskConfig = config_.mode == A3Mode::Approx
                                  ? config_.approx
                                  : ApproxConfig::exact();
    task_.emplace(key, value, taskConfig);

    // Matrices stream in one row per cycle at comprehension time; the
    // first maxRows rows land in SRAM, the remainder stays in DRAM.
    const std::size_t sramRows =
        std::min(key.rows(), config_.maxRows);
    const std::size_t bytes =
        sramRows * key.cols() * elementBytes(config_);
    keySram_.fill(bytes, sramRows);
    valueSram_.fill(bytes, sramRows);
    if (config_.mode == A3Mode::Approx) {
        sortedKeySram_.fill(
            key.rows() * key.cols() * sortedEntryBytes(config_),
            key.rows());
    }
}

std::unique_ptr<QueryJob>
A3Accelerator::makeJob(const Vector &query)
{
    a3Assert(task_.has_value(), "submitQuery before loadTask");
    a3Assert(query.size() == config_.dims,
             "query dimension ", query.size(), " != datapath width ",
             config_.dims);
    const std::size_t n = task_->rows();

    auto job = std::make_unique<QueryJob>();
    job->id = nextId_++;
    job->query = query;
    job->taskRows = n;
    job->dramRows = n > config_.maxRows ? n - config_.maxRows : 0;
    job->submitCycle = now_;

    if (config_.mode == A3Mode::Base) {
        job->result =
            datapath_->run(task_->key(), task_->value(), query);
        job->iterM = 0;
        job->candidatesC = n;
        job->keptK = n;
        return job;
    }

    // Approx mode: greedy selection, quantized dot products on the C
    // candidates, post-scoring on those fixed-point scores, and the
    // final pipeline pass over the K survivors.
    CandidateSearchResult search = task_->selectCandidates(query);
    std::vector<std::uint32_t> candidates = std::move(search.candidates);
    if (candidates.empty()) {
        const auto best = std::max_element(search.greedyScore.begin(),
                                           search.greedyScore.end());
        candidates.push_back(static_cast<std::uint32_t>(
            best - search.greedyScore.begin()));
    }

    AttentionResult candidatePass =
        datapath_->run(task_->key(), task_->value(), query, candidates);
    Vector candidateScores(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
        candidateScores[i] = candidatePass.scores[candidates[i]];
    std::vector<std::uint32_t> kept = postScoringSelect(
        candidates, candidateScores, config_.approx.scoreGap());
    a3Assert(!kept.empty(), "post-scoring must keep the max-score row");

    job->result =
        datapath_->run(task_->key(), task_->value(), query, kept);
    job->result.candidates = candidates;
    job->iterM = config_.approx.iterationsFor(n);
    job->result.iterations = job->iterM;
    job->candidatesC = candidates.size();
    job->keptK = kept.size();
    return job;
}

void
A3Accelerator::submitQuery(const Vector &query)
{
    queryQueue_.push_back(makeJob(query));
    ++inFlight_;
}

void
A3Accelerator::advancePipeline()
{
    // Downstream first, so a latch freed this cycle can accept a new
    // query in the same cycle (fully pipelined handoff).
    if (outputStage_->done(now_)) {
        QueryJob finished = std::move(*outputStage_->release(now_));
        finished.finishCycle = now_;
        completed_.push_back(finished);
        outputQueue_.push_back(std::move(finished));
        --inFlight_;
    }
    if (exponentStage_->done(now_) && outputStage_->idle())
        outputStage_->accept(exponentStage_->release(now_), now_);
    if (dotStage_->done(now_) && exponentStage_->idle())
        exponentStage_->accept(dotStage_->release(now_), now_);

    Stage *head = dotStage_.get();
    if (candidateStage_) {
        if (candidateStage_->done(now_) && dotStage_->idle())
            dotStage_->accept(candidateStage_->release(now_), now_);
        head = candidateStage_.get();
    }
    if (!queryQueue_.empty() && head->idle()) {
        auto job = std::move(queryQueue_.front());
        queryQueue_.pop_front();
        job->startCycle = now_;
        head->accept(std::move(job), now_);
    }
}

void
A3Accelerator::tick()
{
    advancePipeline();
    ++now_;
}

void
A3Accelerator::drain()
{
    while (inFlight_ > 0)
        tick();
    // Undo the final increment past the last completion so totalCycles
    // reflects the cycle the last output was produced.
    if (now_ > 0)
        --now_;
}

std::optional<QueryJob>
A3Accelerator::popOutput()
{
    if (outputQueue_.empty())
        return std::nullopt;
    QueryJob front = std::move(outputQueue_.front());
    outputQueue_.pop_front();
    return front;
}

RunStats
A3Accelerator::stats() const
{
    RunStats s;
    s.totalCycles = now_;
    s.queries = completed_.size();
    if (completed_.empty())
        return s;
    double latencySum = 0.0;
    double candSum = 0.0;
    double keptSum = 0.0;
    for (const QueryJob &job : completed_) {
        latencySum += static_cast<double>(job.pipelineLatency());
        candSum += static_cast<double>(job.candidatesC);
        keptSum += static_cast<double>(job.keptK);
    }
    const auto count = static_cast<double>(completed_.size());
    s.avgLatency = latencySum / count;
    s.avgCandidates = candSum / count;
    s.avgKept = keptSum / count;
    const double seconds = static_cast<double>(now_) /
                           (config_.clockGhz * 1e9);
    s.queriesPerSecond = seconds > 0.0 ? count / seconds : 0.0;
    if (completed_.size() > 1) {
        const Cycle first = completed_.front().finishCycle;
        const Cycle last = completed_.back().finishCycle;
        s.cyclesPerQuery =
            static_cast<double>(last - first) / (count - 1.0);
    } else {
        s.cyclesPerQuery = static_cast<double>(now_);
    }
    return s;
}

RunStats
A3Accelerator::runAll(const std::vector<Vector> &queries)
{
    for (const Vector &q : queries)
        submitQuery(q);
    drain();
    return stats();
}

std::vector<const Stage *>
A3Accelerator::stages() const
{
    std::vector<const Stage *> out;
    if (candidateStage_)
        out.push_back(candidateStage_.get());
    out.push_back(dotStage_.get());
    out.push_back(exponentStage_.get());
    out.push_back(outputStage_.get());
    return out;
}

}  // namespace a3
