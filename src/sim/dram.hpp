/**
 * @file
 * DRAM spill model for tasks larger than the on-chip SRAM
 * (Section III-C, "Choice of n and d").
 *
 * When n exceeds the SRAM capacity, A3 keeps the first maxRows rows
 * on chip and the remainder in DRAM. Because the dot-product and
 * output modules walk the matrices strictly sequentially, a stream
 * prefetcher knows the whole access pattern at query start: it has
 * the maxRows on-chip cycles as a head start, so DRAM latency is
 * fully hidden whenever maxRows >= dramLatency — the paper's "read
 * them from memory without exposing memory latency". The model
 * charges:
 *
 *   stall = max(0, dramLatency - min(taskRows, maxRows))   (ramp-up)
 *         + dramRows * (dramRowInterval - 1)               (bandwidth)
 *
 * per streaming stage, plus an access counter and a per-row energy
 * constant (DRAM is not in Table I; the constant is documented here).
 */

#ifndef A3_SIM_DRAM_HPP
#define A3_SIM_DRAM_HPP

#include <cstdint>

#include "sim/types.hpp"

namespace a3 {

/** Streamed-DRAM timing and energy model. */
class DramModel
{
  public:
    /**
     * @param latencyCycles first-access latency (row activate + CAS +
     *        transfer) at the 1 GHz core clock; default 100.
     * @param rowIntervalCycles sustained cycles per row once
     *        streaming; 1 means DRAM bandwidth matches the pipeline.
     */
    explicit DramModel(Cycle latencyCycles = 100,
                       Cycle rowIntervalCycles = 1);

    /**
     * Stall cycles one streaming stage pays for a query that reads
     * `dramRows` rows after `onChipRows` SRAM-resident ones.
     */
    Cycle stallCycles(std::size_t onChipRows,
                      std::size_t dramRows) const;

    /** Record `rows` streamed row reads. */
    void recordReads(std::uint64_t rows) { reads_ += rows; }

    std::uint64_t reads() const { return reads_; }

    /**
     * Energy per streamed 64-element row in joules. 64 bytes at
     * ~20 pJ/byte (LPDDR4-class stream reads) = 1.28 nJ/row; this
     * dwarfs the on-chip numbers, which is exactly why the paper
     * sizes the SRAM to hold the largest evaluated model.
     */
    static constexpr double energyPerRowJ = 1.28e-9;

    /** Total DRAM energy so far, joules. */
    double energyJ() const
    {
        return static_cast<double>(reads_) * energyPerRowJ;
    }

    Cycle latencyCycles() const { return latencyCycles_; }
    Cycle rowIntervalCycles() const { return rowIntervalCycles_; }

  private:
    Cycle latencyCycles_;
    Cycle rowIntervalCycles_;
    std::uint64_t reads_ = 0;
};

}  // namespace a3

#endif  // A3_SIM_DRAM_HPP
