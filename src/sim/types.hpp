/**
 * @file
 * Shared types of the A3 cycle-level simulator.
 *
 * The simulator is cycle-stepped: a global cycle counter advances one
 * cycle at a time and pipeline stages exchange queries through
 * single-entry latches, exactly one query resident per stage as in the
 * paper ("our proposed hardware can handle three queries at a time in a
 * pipelined manner"). Functional values are produced by the bit-accurate
 * fixed-point model in src/attention, so the simulator adds timing and
 * activity (energy) accounting on top of faithful data.
 */

#ifndef A3_SIM_TYPES_HPP
#define A3_SIM_TYPES_HPP

#include <cstdint>
#include <vector>

#include "attention/config.hpp"
#include "attention/types.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Operating mode of the accelerator. */
enum class A3Mode {
    Base,    ///< Section III pipeline, no approximation
    Approx,  ///< Section V pipeline with candidate + post-scoring stages
};

/** Static configuration of one A3 unit. */
struct SimConfig
{
    /** Maximum number of key/value rows the SRAM is sized for. */
    std::size_t maxRows = 320;

    /** Embedding dimension the datapath is sized for. */
    std::size_t dims = 64;

    /** Input quantization: integer bits (paper: 4). */
    int intBits = 4;

    /** Input quantization: fraction bits (paper: 4). */
    int fracBits = 4;

    /** Clock frequency in GHz (paper: 1 GHz). */
    double clockGhz = 1.0;

    /** Base or approximate pipeline. */
    A3Mode mode = A3Mode::Base;

    /** Approximation knobs (used in Approx mode). */
    ApproxConfig approx = ApproxConfig::conservative();

    /** Greedy-score scan width in entries per cycle (Section V-A). */
    std::size_t scanWidth = 16;

    /** Post-scoring comparator throughput in entries/cycle (V-B). */
    std::size_t postScoringWidth = 16;

    /**
     * Allow tasks with more rows than the SRAM holds; the overflow
     * streams from DRAM through a prefetcher (Section III-C). Base
     * mode only — the sorted-key structure must stay on chip.
     */
    bool allowDramSpill = true;

    /** Maximum rows accepted beyond maxRows when spilling. */
    std::size_t maxDramRows = 1024;

    /** DRAM first-access latency in core cycles. */
    Cycle dramLatency = 100;

    /** Sustained DRAM cycles per streamed row (1 = full bandwidth). */
    Cycle dramRowInterval = 1;
};

/**
 * One query's journey through the pipeline, with the per-stage work
 * sizes resolved by the functional model and every stage timestamped.
 */
struct QueryJob
{
    std::uint64_t id = 0;

    /** The query vector (retained for the output queue consumer). */
    Vector query;

    /** Functional result (bit-accurate fixed-point data). */
    AttentionResult result;

    /** Rows n of the loaded task (scan length for greedy scores). */
    std::size_t taskRows = 0;

    /** Rows resident in DRAM (taskRows minus the SRAM capacity). */
    std::size_t dramRows = 0;

    /** Work sizes: greedy iterations M (0 in base mode). */
    std::size_t iterM = 0;

    /** Candidate count C fed to the dot-product stage (n in base). */
    std::size_t candidatesC = 0;

    /** Post-scoring survivors K (n in base mode). */
    std::size_t keptK = 0;

    /** Cycle the query entered the device queue. */
    Cycle submitCycle = 0;

    /** Cycle the first stage accepted the query. */
    Cycle startCycle = 0;

    /** Cycle the output vector reached the output queue. */
    Cycle finishCycle = 0;

    /** End-to-end latency including device-queue wait. */
    Cycle latency() const { return finishCycle - submitCycle; }

    /** Pipeline latency from first-stage entry to output (what the
     * paper's Figure 14b reports — queueing excluded). */
    Cycle pipelineLatency() const { return finishCycle - startCycle; }
};

}  // namespace a3

#endif  // A3_SIM_TYPES_HPP
