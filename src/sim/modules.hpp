/**
 * @file
 * The four concrete A3 pipeline stages.
 *
 * Cycle breakdown per stage (d = 64, the paper's configuration):
 *
 *  Candidate selection (Section V-A):
 *      1 (pointer init) + 4 (component-buffer fill, borrowing the d
 *      multipliers of the dot-product and output modules: 8d products
 *      at 2d per cycle) + M (one greedy iteration per cycle in steady
 *      state, enabled by the c = 4 pipelined refill of the circular
 *      buffers) + ceil(n / 16) (linear scan of the greedy-score
 *      registers at 16 entries per cycle).
 *
 *  Dot product (Section III, Module 1):
 *      one key row per cycle for `rows` cycles, plus 1 (multiplier
 *      register) + ceil(log2 d) (adder tree) + 1 (max compare) +
 *      1 (score register write) = 9 extra cycles at d = 64.
 *
 *  Exponent computation (Section III Module 2; Section V-B):
 *      base mode: one score per cycle for `rows` cycles + 9 extra
 *      (1 subtract, 2 LUT reads, 2 multiply, 2 accumulate, 2 handoff).
 *      approx mode: ceil(C / 16) post-scoring compare cycles (16
 *      subtractor/comparator lanes) before the same per-row loop over
 *      the K survivors.
 *
 *  Output computation (Section III, Module 3):
 *      one value row per cycle for `rows` cycles, plus 7 (divider) +
 *      2 (multiply-accumulate) = 9 extra cycles — the paper's
 *      "longest latency of n + 9".
 *
 * With these service times the base pipeline shows exactly the paper's
 * end-to-end latency 3n + 27 and throughput n + 9 cycles per query.
 */

#ifndef A3_SIM_MODULES_HPP
#define A3_SIM_MODULES_HPP

#include "sim/dram.hpp"
#include "sim/sram.hpp"
#include "sim/stage.hpp"

namespace a3 {

/** Extra (non-row) cycles of the dot-product stage for dimension d. */
Cycle dotProductExtraCycles(std::size_t dims);

/** Extra cycles of the exponent stage (fixed datapath depth). */
Cycle exponentExtraCycles();

/** Extra cycles of the output stage (divider + MAC depth). */
Cycle outputExtraCycles();

/** Greedy candidate-selection module (Section V-A). */
class CandidateSelectionStage : public Stage
{
  public:
    CandidateSelectionStage(const SimConfig &config, Sram *sortedKey);

    Cycle serviceTime(const QueryJob &job) const override;

  protected:
    std::uint64_t rowOps(const QueryJob &job) const override;

  private:
    const SimConfig &config_;
    Sram *sortedKey_;
};

/** Dot-product module: d multipliers + adder tree (Section III).
 * Streams any DRAM-resident rows through the prefetcher model. */
class DotProductStage : public Stage
{
  public:
    DotProductStage(const SimConfig &config, Sram *keyMatrix,
                    DramModel *dram = nullptr);

    Cycle serviceTime(const QueryJob &job) const override;

  protected:
    std::uint64_t rowOps(const QueryJob &job) const override;

  private:
    const SimConfig &config_;
    Sram *keyMatrix_;
    DramModel *dram_;
};

/**
 * Exponent-computation module, with the post-scoring selection module
 * fused at its head in approximate mode (Section V-B: "This hardware is
 * integrated at the beginning of the exponent computation module").
 */
class ExponentStage : public Stage
{
  public:
    explicit ExponentStage(const SimConfig &config);

    Cycle serviceTime(const QueryJob &job) const override;

  protected:
    std::uint64_t rowOps(const QueryJob &job) const override;
    Cycle auxTime(const QueryJob &job) const override;

  private:
    const SimConfig &config_;
};

/** Output-computation module: divider + weighted accumulation.
 * Streams any DRAM-resident value rows through the prefetcher. */
class OutputStage : public Stage
{
  public:
    OutputStage(const SimConfig &config, Sram *valueMatrix,
                DramModel *dram = nullptr);

    Cycle serviceTime(const QueryJob &job) const override;

  protected:
    std::uint64_t rowOps(const QueryJob &job) const override;

  private:
    const SimConfig &config_;
    Sram *valueMatrix_;
    DramModel *dram_;
};

}  // namespace a3

#endif  // A3_SIM_MODULES_HPP
