#include "sim/dram.hpp"

#include "util/logging.hpp"

namespace a3 {

DramModel::DramModel(Cycle latencyCycles, Cycle rowIntervalCycles)
    : latencyCycles_(latencyCycles),
      rowIntervalCycles_(rowIntervalCycles)
{
    a3Assert(rowIntervalCycles_ >= 1,
             "DRAM row interval must be at least one cycle");
}

Cycle
DramModel::stallCycles(std::size_t onChipRows,
                       std::size_t dramRows) const
{
    if (dramRows == 0)
        return 0;
    // The prefetcher issues the first DRAM row when the query enters
    // the stage; the on-chip rows processed first hide up to
    // onChipRows cycles of its latency.
    const Cycle headStart = static_cast<Cycle>(onChipRows);
    const Cycle ramp =
        latencyCycles_ > headStart ? latencyCycles_ - headStart : 0;
    const Cycle bandwidth =
        static_cast<Cycle>(dramRows) * (rowIntervalCycles_ - 1);
    return ramp + bandwidth;
}

}  // namespace a3
