#include "harness/performance.hpp"

#include "baseline/device_models.hpp"
#include "engine/engine.hpp"
#include "sim/accelerator.hpp"
#include "util/logging.hpp"

namespace a3 {

namespace {

/** Build the query list one simulated episode submits. */
std::vector<Vector>
episodeQueries(const Workload &workload, const AttentionTask &task,
               const PerfOptions &options, Rng &rng)
{
    if (workload.selfAttention())
        return task.queries;  // all n tokens query the shared matrix

    // Single-question workloads: model a stream of questions against
    // the same loaded story/knowledge (how a deployed QA service uses
    // one A3 unit) by jittering the sampled query.
    std::vector<Vector> queries;
    queries.reserve(options.queriesPerEpisode);
    queries.push_back(task.queries.front());
    const double jitterScale = 0.1;
    while (queries.size() < options.queriesPerEpisode) {
        Vector q = task.queries.front();
        for (auto &x : q) {
            x += static_cast<float>(
                rng.normal(0.0, jitterScale *
                                    (std::abs(x) + 0.05)));
        }
        queries.push_back(std::move(q));
    }
    return queries;
}

/** One simulated episode's inputs and outputs. */
struct EpisodeRun
{
    AttentionTask task;
    std::vector<Vector> queries;
    RunStats stats;
    EnergyBreakdown energy;
    double clockHz = 0.0;
};

/** Simulate one A3 configuration over the sampled episodes. */
PerfResult
simulateA3(const Workload &workload, const PerfOptions &options,
           std::string label, A3Mode mode, const ApproxConfig &approx)
{
    Rng rng(options.seed);
    double periodSum = 0.0;    // seconds between completions
    double latencySum = 0.0;   // seconds per query
    double energySum = 0.0;    // joules
    double candSum = 0.0;
    double keptSum = 0.0;
    std::uint64_t totalQueries = 0;
    EnergyBreakdown breakdownSum;

    // Sampling consumes the RNG stream sequentially; the independent
    // cycle-level simulations then fan out over the shared engine's
    // thread pool, and accumulation below folds the per-episode
    // results back in episode order so the report is deterministic
    // for any thread count.
    std::vector<EpisodeRun> runs(options.episodes);
    for (EpisodeRun &run : runs) {
        run.task = workload.sample(rng);
        run.queries = episodeQueries(workload, run.task, options, rng);
    }
    AttentionEngine::shared().pool().parallelFor(
        runs.size(), [&](std::size_t e) {
            EpisodeRun &run = runs[e];
            SimConfig config;
            config.maxRows = 320;
            config.dims = run.task.key.cols();
            config.mode = mode;
            config.approx = approx;

            A3Accelerator acc(config);
            acc.loadTask(run.task.key, run.task.value);
            run.stats = acc.runAll(run.queries);
            run.energy = PowerModel::computeEnergy(acc);
            run.clockHz = config.clockGhz * 1e9;
        });

    for (const EpisodeRun &run : runs) {
        const RunStats &stats = run.stats;
        const EnergyBreakdown &energy = run.energy;
        const double clockHz = run.clockHz;
        periodSum += stats.cyclesPerQuery / clockHz *
                     static_cast<double>(stats.queries);
        latencySum += stats.avgLatency / clockHz *
                      static_cast<double>(stats.queries);
        candSum += stats.avgCandidates *
                   static_cast<double>(stats.queries);
        keptSum += stats.avgKept * static_cast<double>(stats.queries);
        totalQueries += stats.queries;

        energySum += energy.total();
        breakdownSum.candidateSelection += energy.candidateSelection;
        breakdownSum.dotProduct += energy.dotProduct;
        breakdownSum.exponentWithPostScoring +=
            energy.exponentWithPostScoring;
        breakdownSum.output += energy.output;
        breakdownSum.memory += energy.memory;
    }

    a3Assert(totalQueries > 0, "simulated run completed no queries");
    const auto count = static_cast<double>(totalQueries);
    double periodSec = periodSum / count;
    double latencySec = latencySum / count;

    // BERT-style self-attention: the key-matrix column sort happens on
    // the critical path and is amortized over the n queries sharing
    // the matrix (Section VI-C, "Preprocessing").
    if (workload.selfAttention() && mode == A3Mode::Approx) {
        const double perQuery =
            options.preprocessSeconds /
            static_cast<double>(workload.typicalRows());
        periodSec += perQuery;
        latencySec += perQuery;
    }

    PerfResult result;
    result.device = std::move(label);
    result.opsPerSecond = 1.0 / periodSec;
    result.latencySeconds = latencySec;
    result.energyPerOpJ = energySum / count;
    result.breakdown = breakdownSum;
    result.avgCandidates = candSum / count;
    result.avgKept = keptSum / count;
    return result;
}

}  // namespace

std::vector<PerfResult>
evaluatePerformance(const Workload &workload, const PerfOptions &options)
{
    const std::size_t n = workload.typicalRows();
    const std::size_t d = workload.dims();
    std::vector<PerfResult> rows;

    // CPU model: batched for self-attention, single-query otherwise.
    {
        CpuTimingModel cpu;
        PerfResult r;
        r.device = "CPU";
        const double secPerOp =
            workload.selfAttention()
                ? cpu.batchedSeconds(n, d, n)
                : cpu.singleQuerySeconds(n, d);
        r.opsPerSecond = 1.0 / secPerOp;
        r.latencySeconds = secPerOp;
        r.energyPerOpJ =
            PowerModel::referenceEnergy(xeonGold6128(), secPerOp);
        rows.push_back(r);
    }

    // GPU model: only the batched self-attention workload has a GPU
    // implementation (Section VI-C: "only used for BERT").
    {
        PerfResult r;
        r.device = "GPU";
        if (workload.selfAttention()) {
            GpuTimingModel gpu;
            const double secPerOp = gpu.batchedSeconds(n, d, n);
            r.opsPerSecond = 1.0 / secPerOp;
            r.latencySeconds = secPerOp;
            r.energyPerOpJ =
                PowerModel::referenceEnergy(titanV(), secPerOp);
        } else {
            r.available = false;
        }
        rows.push_back(r);
    }

    rows.push_back(simulateA3(workload, options, "Base A3",
                              A3Mode::Base, ApproxConfig::exact()));
    rows.push_back(simulateA3(workload, options,
                              "Approx A3 (conservative)", A3Mode::Approx,
                              ApproxConfig::conservative()));
    rows.push_back(simulateA3(workload, options,
                              "Approx A3 (aggressive)", A3Mode::Approx,
                              ApproxConfig::aggressive()));
    return rows;
}

double
unitsToMatch(double unitOpsPerSecond, double targetOps)
{
    a3Assert(unitOpsPerSecond > 0.0, "unit throughput must be positive");
    return targetOps / unitOpsPerSecond;
}

}  // namespace a3
