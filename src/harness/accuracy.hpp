/**
 * @file
 * Accuracy-evaluation harness (Section VI-B methodology).
 *
 * The paper integrates a software model of the approximation into each
 * workload's reference implementation and measures the task metric on
 * test inputs. This harness does the same over the synthetic
 * workloads: it samples episodes, answers every ground-truth query
 * with a configurable engine (exact or approximate, float or
 * bit-accurate fixed point), and aggregates the task metric plus the
 * selection-size statistics Figures 11b/12b/13b report.
 */

#ifndef A3_HARNESS_ACCURACY_HPP
#define A3_HARNESS_ACCURACY_HPP

#include <cstdint>

#include "attention/backend.hpp"
#include "attention/config.hpp"
#include "workloads/workload.hpp"

namespace a3 {

// EngineKind / EngineConfig (the engine selector this harness takes)
// now live with the backend interface in attention/backend.hpp; they
// are re-exported here so harness users keep compiling unchanged.

/** Aggregated accuracy results over many episodes. */
struct AccuracyReport
{
    /** Mean task metric (accuracy / MAP / F1 analogue). */
    double metric = 0.0;

    /** Mean candidates C / n (Figure 11b's normalized candidates). */
    double normalizedCandidates = 0.0;

    /** Mean kept K / n (Figure 12b's normalized selected entries). */
    double normalizedKept = 0.0;

    /** Mean top-k recall of true top rows (Figure 13b). */
    double recall = 0.0;

    std::size_t episodes = 0;
    std::size_t scoredQueries = 0;
};

/**
 * Run `episodes` sampled episodes of `workload` through `engine` and
 * aggregate. Deterministic in `seed`.
 */
AccuracyReport evaluateAccuracy(const Workload &workload,
                                const EngineConfig &engine,
                                std::size_t episodes,
                                std::uint64_t seed);

}  // namespace a3

#endif  // A3_HARNESS_ACCURACY_HPP
