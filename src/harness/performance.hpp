/**
 * @file
 * Performance / energy harness for Figures 14 and 15.
 *
 * For each workload this runs the cycle-level simulator in three
 * configurations (base A3, approximate conservative, approximate
 * aggressive), evaluates the analytic CPU and GPU models, and combines
 * simulated activity with the Table I power model. BERT-style
 * self-attention charges the amortized preprocessing overhead to the
 * approximate configurations, as Section VI-C does.
 */

#ifndef A3_HARNESS_PERFORMANCE_HPP
#define A3_HARNESS_PERFORMANCE_HPP

#include <string>
#include <vector>

#include "energy/power_model.hpp"
#include "workloads/workload.hpp"

namespace a3 {

/** One device/configuration row of the Figure 14/15 comparison. */
struct PerfResult
{
    /** "CPU", "GPU", "Base A3", "Approx A3 (conservative)", ... */
    std::string device;

    /** True when the device is not applicable (GPU on MemN2N). */
    bool available = true;

    /** Sustained attention operations per second. */
    double opsPerSecond = 0.0;

    /** Mean latency of one attention operation, seconds. */
    double latencySeconds = 0.0;

    /** Average energy per attention operation, joules. */
    double energyPerOpJ = 0.0;

    /** Module-level energy split (A3 configurations only). */
    EnergyBreakdown breakdown;

    /** Mean candidates C and survivors K (A3 approx configs). */
    double avgCandidates = 0.0;
    double avgKept = 0.0;
};

/** Harness options. */
struct PerfOptions
{
    /** Episodes simulated per configuration. */
    std::size_t episodes = 8;

    /** Queries submitted per episode for single-query workloads. */
    std::size_t queriesPerEpisode = 16;

    /** RNG seed. */
    std::uint64_t seed = 1234;

    /**
     * Wall-clock cost of sorting the 320 x 64 key matrix on the host
     * GPU for the BERT preprocessing path; amortized over the n
     * queries sharing the key matrix. Calibrated so the amortized
     * overhead costs the conservative configuration ~7% and the
     * aggressive one ~24% of throughput, as reported in Section VI-C.
     */
    double preprocessSeconds = 4.5e-6;
};

/**
 * Evaluate every device/configuration on `workload`. Rows come back in
 * presentation order: CPU, GPU, Base A3, Approx A3 (conservative),
 * Approx A3 (aggressive).
 */
std::vector<PerfResult> evaluatePerformance(const Workload &workload,
                                            const PerfOptions &options);

/** A3 units needed to reach `targetOps` given one unit's throughput. */
double unitsToMatch(double unitOpsPerSecond, double targetOps);

}  // namespace a3

#endif  // A3_HARNESS_PERFORMANCE_HPP
