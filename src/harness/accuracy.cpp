#include "harness/accuracy.hpp"

#include <memory>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "util/logging.hpp"
#include "workloads/metrics.hpp"

namespace a3 {

AccuracyReport
evaluateAccuracy(const Workload &workload, const EngineConfig &engine,
                 std::size_t episodes, std::uint64_t seed)
{
    a3Assert(episodes > 0, "accuracy evaluation needs episodes");
    Rng rng(seed);
    const AttentionEngine &executor = AttentionEngine::shared();

    AccuracyReport report;
    report.episodes = episodes;

    double metricSum = 0.0;
    double candFracSum = 0.0;
    double keptFracSum = 0.0;
    double recallSum = 0.0;

    for (std::size_t e = 0; e < episodes; ++e) {
        const AttentionTask task = workload.sample(rng);
        const std::size_t n = task.key.rows();

        const std::vector<std::size_t> scored =
            workload.scoredQueries(task);
        if (scored.empty())
            continue;  // only timing-only queries sampled
        std::vector<Vector> queries;
        queries.reserve(scored.size());
        for (std::size_t qi : scored)
            queries.push_back(task.queries[qi]);

        // One preprocessed backend per episode (sorted key / sized
        // datapath shared by every query), then the whole scored batch
        // through the engine at once.
        const std::unique_ptr<AttentionBackend> backend =
            makeBackend(engine, task.key, task.value);
        const std::vector<AttentionResult> results =
            executor.run(*backend, queries);

        // Exact float scores for the Figure 13b top-k recall, batched
        // the same way; the exact-float engine's own results already
        // are the reference, so skip the second pass there.
        const bool needExact = engine.kind != EngineKind::ExactFloat;
        std::vector<AttentionResult> exactResults;
        if (needExact) {
            const ReferenceAttention exact(task.key, task.value);
            exactResults = executor.run(exact, queries);
        }

        metricSum += workload.scoreBatch(task, scored, results);
        for (std::size_t i = 0; i < scored.size(); ++i) {
            const AttentionResult &result = results[i];
            candFracSum += static_cast<double>(
                               result.candidates.size()) /
                           static_cast<double>(n);
            keptFracSum += static_cast<double>(result.kept.size()) /
                           static_cast<double>(n);
            const Vector &exactScores =
                needExact ? exactResults[i].scores : result.scores;
            recallSum += topKRecall(exactScores, result.kept,
                                    workload.recallTopK());
            ++report.scoredQueries;
        }
    }

    a3Assert(report.scoredQueries > 0, "no scored queries sampled");
    const auto count = static_cast<double>(report.scoredQueries);
    report.metric = metricSum / count;
    report.normalizedCandidates = candFracSum / count;
    report.normalizedKept = keptFracSum / count;
    report.recall = recallSum / count;
    return report;
}

}  // namespace a3
