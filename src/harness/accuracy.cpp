#include "harness/accuracy.hpp"

#include <algorithm>
#include <optional>

#include "attention/approx_attention.hpp"
#include "attention/post_scoring.hpp"
#include "attention/quantized.hpp"
#include "attention/reference.hpp"
#include "util/logging.hpp"
#include "workloads/metrics.hpp"

namespace a3 {

namespace {

/**
 * Answer one query with the approximate fixed-point flow: float greedy
 * selection (pointer/comparator hardware), quantized dot products on
 * the candidates, post-scoring on those fixed-point scores, quantized
 * pipeline over the survivors — the same flow A3Accelerator models.
 */
AttentionResult
runApproxQuantized(const ApproxAttention &task,
                   const QuantizedAttention &datapath,
                   const Vector &query)
{
    CandidateSearchResult search = task.selectCandidates(query);
    std::vector<std::uint32_t> candidates = std::move(search.candidates);
    if (candidates.empty()) {
        const auto best = std::max_element(search.greedyScore.begin(),
                                           search.greedyScore.end());
        candidates.push_back(static_cast<std::uint32_t>(
            best - search.greedyScore.begin()));
    }
    AttentionResult pass =
        datapath.run(task.key(), task.value(), query, candidates);
    Vector scores(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i)
        scores[i] = pass.scores[candidates[i]];
    std::vector<std::uint32_t> kept = postScoringSelect(
        candidates, scores, task.config().scoreGap());
    AttentionResult result =
        datapath.run(task.key(), task.value(), query, kept);
    result.candidates = std::move(candidates);
    result.kept = std::move(kept);
    return result;
}

}  // namespace

AccuracyReport
evaluateAccuracy(const Workload &workload, const EngineConfig &engine,
                 std::size_t episodes, std::uint64_t seed)
{
    a3Assert(episodes > 0, "accuracy evaluation needs episodes");
    Rng rng(seed);

    AccuracyReport report;
    report.episodes = episodes;

    double metricSum = 0.0;
    double candFracSum = 0.0;
    double keptFracSum = 0.0;
    double recallSum = 0.0;

    for (std::size_t e = 0; e < episodes; ++e) {
        const AttentionTask task = workload.sample(rng);
        const std::size_t n = task.key.rows();

        // Engines with per-task state.
        std::optional<ApproxAttention> approxTask;
        std::optional<QuantizedAttention> datapath;
        const bool isApprox = engine.kind == EngineKind::ApproxFloat ||
                              engine.kind == EngineKind::ApproxQuantized;
        const bool isQuantized =
            engine.kind == EngineKind::ExactQuantized ||
            engine.kind == EngineKind::ApproxQuantized;
        if (isApprox)
            approxTask.emplace(task.key, task.value, engine.approx);
        if (isQuantized) {
            datapath.emplace(engine.intBits, engine.fracBits, n,
                             task.key.cols());
        }

        for (std::size_t qi = 0; qi < task.queries.size(); ++qi) {
            if (task.relevant[qi].empty())
                continue;  // timing-only query (SQuAD passage tokens)
            const Vector &query = task.queries[qi];

            AttentionResult result;
            switch (engine.kind) {
              case EngineKind::ExactFloat:
                result = referenceAttention(task.key, task.value, query);
                break;
              case EngineKind::ApproxFloat:
                result = approxTask->run(query);
                break;
              case EngineKind::ExactQuantized:
                result = datapath->run(task.key, task.value, query);
                break;
              case EngineKind::ApproxQuantized:
                result = runApproxQuantized(*approxTask, *datapath,
                                            query);
                break;
            }

            metricSum += workload.score(task, qi, result);
            candFracSum += static_cast<double>(
                               result.candidates.size()) /
                           static_cast<double>(n);
            keptFracSum += static_cast<double>(result.kept.size()) /
                           static_cast<double>(n);

            // Top-k recall against the exact float scores.
            const AttentionResult exact =
                referenceAttention(task.key, task.value, query);
            recallSum += topKRecall(exact.scores, result.kept,
                                    workload.recallTopK());
            ++report.scoredQueries;
        }
    }

    a3Assert(report.scoredQueries > 0, "no scored queries sampled");
    const auto count = static_cast<double>(report.scoredQueries);
    report.metric = metricSum / count;
    report.normalizedCandidates = candFracSum / count;
    report.normalizedKept = keptFracSum / count;
    report.recall = recallSum / count;
    return report;
}

}  // namespace a3
