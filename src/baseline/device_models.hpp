/**
 * @file
 * Analytic CPU / GPU timing models for the Figure 14/15 comparisons.
 *
 * The paper measures an Intel Xeon Gold 6128 and an NVIDIA Titan V; we
 * cannot, so these models encode the arithmetic-intensity arguments
 * that produce the paper's shape, with every calibration constant
 * explicit and documented:
 *
 *  - Single-query attention on a CPU (MemN2N, KV-MemN2N) is dominated
 *    by framework dispatch overhead: a matrix-vector kernel of a few
 *    thousand FLOPs costs tens of microseconds end to end in
 *    TensorFlow/Torch. This is why A3 shows orders-of-magnitude
 *    throughput gains there (Section VI-C).
 *  - Batched self-attention (BERT) is a batch matrix-matrix product:
 *    dispatch amortizes over the batch, the CPU reaches a reasonable
 *    fraction of peak, and the GPU — while far below peak on these
 *    small matrices — still beats a single A3 unit; the paper notes
 *    6-7 conservative A3 units reach GPU throughput.
 *
 * FLOP counting: one attention op is 2nd (score matvec) + 2nd
 * (weighted sum) = 4nd FLOPs, plus softmax (~5n) which we fold into a
 * 5% margin.
 */

#ifndef A3_BASELINE_DEVICE_MODELS_HPP
#define A3_BASELINE_DEVICE_MODELS_HPP

#include <cstddef>
#include <string>

namespace a3 {

/** FLOPs of one dense attention operation over an n x d task. */
double attentionFlops(std::size_t n, std::size_t d);

/** Analytic CPU (Xeon Gold 6128 class) attention timing. */
class CpuTimingModel
{
  public:
    /**
     * Framework dispatch overhead charged once per kernel invocation
     * (Python/framework layers around the GEMV); calibrated so a
     * 20 x 64 single-query attention lands near 15 us, reproducing the
     * orders-of-magnitude gap of Figure 14a.
     */
    static constexpr double dispatchOverheadSec = 15e-6;

    /** Effective FLOP rate for single-query (GEMV-bound) attention. */
    static constexpr double gemvFlops = 25e9;

    /** Effective FLOP rate for batched (GEMM-bound) attention. */
    static constexpr double gemmFlops = 100e9;

    /** Seconds per op when each query dispatches its own kernel. */
    double singleQuerySeconds(std::size_t n, std::size_t d) const;

    /** Seconds per op when `batch` queries share one dispatch. */
    double batchedSeconds(std::size_t n, std::size_t d,
                          std::size_t batch) const;
};

/** Analytic GPU (Titan V class) attention timing; batched only. */
class GpuTimingModel
{
  public:
    /** Kernel-launch latency charged once per batch. */
    static constexpr double launchOverheadSec = 5e-6;

    /**
     * Effective FLOP rate on small batched attention matrices — far
     * below the 14 TFLOP/s fp32 peak because the per-head matrices
     * (320 x 64) under-utilize the device, which is exactly the
     * paper's explanation for why a handful of tiny A3 units compete.
     */
    static constexpr double effectiveFlops = 4e12;

    /** Seconds per op when `batch` queries share one launch. */
    double batchedSeconds(std::size_t n, std::size_t d,
                          std::size_t batch) const;
};

/**
 * Figure 3 time-share model of one workload: attention time computed
 * from the CPU model, with the query-independent comprehension work
 * and the non-attention query work expressed relative to attention
 * time. The ratios are calibrated to the profile the paper reports
 * (attention >35% of inference and >70% of query-response time for the
 * memory networks) and documented per workload in workloads/profiles.
 */
struct TimeShareModel
{
    std::string workload;

    /** Attention seconds per query (CPU model). */
    double attentionSec = 0.0;

    /** Query-independent comprehension seconds, amortized per query. */
    double comprehensionSec = 0.0;

    /** Non-attention query-response seconds. */
    double otherQuerySec = 0.0;

    /** Attention share of the whole inference time. */
    double attentionShareTotal() const;

    /** Attention share of the query-response time only. */
    double attentionShareQueryTime() const;
};

}  // namespace a3

#endif  // A3_BASELINE_DEVICE_MODELS_HPP
