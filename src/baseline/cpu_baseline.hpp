/**
 * @file
 * Measured CPU baseline for the attention kernel.
 *
 * This times the exact floating-point attention kernel (the dense
 * matrix-vector implementation of Figure 1) on the host machine,
 * giving a real — if host-dependent — data point to compare against
 * the simulated A3 cycle counts. The analytic models in
 * device_models.hpp provide the paper-calibrated comparison used in
 * the Figure 14/15 benches; this measured path exists so the benches
 * can print both and be honest about what is measured vs modeled.
 */

#ifndef A3_BASELINE_CPU_BASELINE_HPP
#define A3_BASELINE_CPU_BASELINE_HPP

#include <cstddef>
#include <cstdint>

#include "tensor/matrix.hpp"

namespace a3 {

/** Result of timing the dense attention kernel on the host. */
struct CpuMeasurement
{
    /** Mean wall-clock seconds per attention operation. */
    double secondsPerOp = 0.0;

    /** Operations timed. */
    std::size_t operations = 0;

    /** Attention operations per second. */
    double opsPerSecond() const;
};

/**
 * Time `iterations` runs of exact attention on a random task of shape
 * n x d; a warm-up pass precedes timing and a checksum defeats
 * dead-code elimination.
 */
CpuMeasurement measureCpuAttention(std::size_t n, std::size_t d,
                                   std::size_t iterations,
                                   std::uint64_t seed = 7);

}  // namespace a3

#endif  // A3_BASELINE_CPU_BASELINE_HPP
