#include "baseline/device_models.hpp"

#include "util/logging.hpp"

namespace a3 {

double
attentionFlops(std::size_t n, std::size_t d)
{
    // 2nd MACs for the score matvec, 2nd for the weighted sum, and a
    // 5% margin covering softmax exponentials and normalization.
    return 1.05 * 4.0 * static_cast<double>(n) * static_cast<double>(d);
}

double
CpuTimingModel::singleQuerySeconds(std::size_t n, std::size_t d) const
{
    return dispatchOverheadSec + attentionFlops(n, d) / gemvFlops;
}

double
CpuTimingModel::batchedSeconds(std::size_t n, std::size_t d,
                               std::size_t batch) const
{
    a3Assert(batch > 0, "batched CPU model needs a positive batch");
    return dispatchOverheadSec / static_cast<double>(batch) +
           attentionFlops(n, d) / gemmFlops;
}

double
GpuTimingModel::batchedSeconds(std::size_t n, std::size_t d,
                               std::size_t batch) const
{
    a3Assert(batch > 0, "batched GPU model needs a positive batch");
    return launchOverheadSec / static_cast<double>(batch) +
           attentionFlops(n, d) / effectiveFlops;
}

double
TimeShareModel::attentionShareTotal() const
{
    const double total =
        attentionSec + comprehensionSec + otherQuerySec;
    a3Assert(total > 0.0, "time-share model with zero total time");
    return attentionSec / total;
}

double
TimeShareModel::attentionShareQueryTime() const
{
    const double queryTime = attentionSec + otherQuerySec;
    a3Assert(queryTime > 0.0, "time-share model with zero query time");
    return attentionSec / queryTime;
}

}  // namespace a3
