#include "baseline/cpu_baseline.hpp"

#include <chrono>

#include "attention/reference.hpp"
#include "util/logging.hpp"
#include "util/random.hpp"

namespace a3 {

double
CpuMeasurement::opsPerSecond() const
{
    a3Assert(secondsPerOp > 0.0, "measurement without timing data");
    return 1.0 / secondsPerOp;
}

CpuMeasurement
measureCpuAttention(std::size_t n, std::size_t d,
                    std::size_t iterations, std::uint64_t seed)
{
    a3Assert(n > 0 && d > 0 && iterations > 0,
             "degenerate CPU measurement request");
    Rng rng(seed);
    Matrix key(n, d);
    Matrix value(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    std::vector<Vector> queries(iterations);
    for (auto &q : queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }

    // Warm-up pass (caches, frequency scaling).
    float accumulator = 0.0f;
    accumulator +=
        referenceAttention(key, value, queries.front()).output[0];

    const auto start = std::chrono::steady_clock::now();
    for (const Vector &q : queries)
        accumulator += referenceAttention(key, value, q).output[0];
    const auto stop = std::chrono::steady_clock::now();
    // Defeat dead-code elimination without deprecated volatile ops.
    volatile float sink = accumulator;
    (void)sink;

    CpuMeasurement m;
    m.operations = iterations;
    m.secondsPerOp =
        std::chrono::duration<double>(stop - start).count() /
        static_cast<double>(iterations);
    return m;
}

}  // namespace a3
