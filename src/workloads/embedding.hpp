/**
 * @file
 * Synthetic embedding generation.
 *
 * The paper evaluates on embeddings produced by trained models
 * (MemN2N, KV-MemN2N, BERT). We cannot ship those checkpoints, so the
 * workloads synthesize key/value/query embeddings with the property
 * the approximation schemes actually depend on: a handful of rows
 * whose dot product with the query clearly exceeds the bulk, a noisy
 * margin so even exact attention is imperfect (matching the paper's
 * sub-1.0 no-approximation baselines), and distractor scores whose
 * post-softmax weights are near zero.
 *
 * Geometry: with per-component scale s = d^{-1/4}, the dot product of
 * two independent random embeddings is ~N(0, 1), so score margins are
 * directly interpretable in "sigmas of distractor noise".
 */

#ifndef A3_WORKLOADS_EMBEDDING_HPP
#define A3_WORKLOADS_EMBEDDING_HPP

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"
#include "util/random.hpp"

namespace a3 {

/** Controls the geometry of one synthetic retrieval episode. */
struct EmbeddingParams
{
    /** Embedding dimension (paper: 64 for all workloads). */
    std::size_t dims = 64;

    /**
     * Mean dot-product margin of a relevant row over the distractor
     * distribution, in units of the distractor score sigma.
     */
    double relevantMargin = 3.2;

    /** Std-dev of the margin across relevant rows / episodes. */
    double marginJitter = 1.0;

    /**
     * Number of embedding dimensions carrying the relevant-row
     * alignment (the query's strongest components). Trained encoders
     * concentrate topical agreement on a few feature dimensions, which
     * is precisely the structure the greedy candidate search exploits;
     * 0 spreads the alignment across all dimensions.
     */
    std::size_t alignDims = 6;

    /**
     * Probability that a distractor component carries a heavy-tailed
     * spike. Trained embeddings are leptokurtic; spiky distractor
     * components are exactly what makes the greedy search spend its
     * iteration budget on non-relevant rows, so without them candidate
     * selection would look unrealistically easy.
     */
    double spikeProb = 0.03;

    /** Spike magnitude in units of the component scale. */
    double spikeScale = 3.0;

    /** Per-component scale; default d^{-1/4} normalizes score noise. */
    double componentScale(std::size_t d) const;
};

/** A generated episode: matrices plus the planted relevant rows. */
struct EmbeddingEpisode
{
    Matrix key;
    Matrix value;
    Vector query;
    std::vector<std::uint32_t> relevantRows;
};

/**
 * Generate one episode with `rows` key/value rows of which
 * `relevantCount` (chosen at random positions) are aligned with the
 * query by relevantMargin +- marginJitter sigmas.
 */
EmbeddingEpisode generateEpisode(Rng &rng, const EmbeddingParams &params,
                                 std::size_t rows,
                                 std::size_t relevantCount);

/** Fill a vector with iid N(0, scale^2) components. */
Vector randomEmbedding(Rng &rng, std::size_t dims, double scale);

}  // namespace a3

#endif  // A3_WORKLOADS_EMBEDDING_HPP
