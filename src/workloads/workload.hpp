/**
 * @file
 * Workload abstraction: episodes of attention tasks with ground truth.
 *
 * Each workload is the synthetic analogue of one paper benchmark
 * (Section VI-A) and carries the shape parameters the paper reports:
 *
 *   MemN2N / bAbI QA          avg n = 20, max 50, d = 64, accuracy
 *   KV-MemN2N / WikiMovies    avg n = 186, d = 64, MAP
 *   BERT / SQuAD v1.1         n = 320 (self-attention), d = 64, F1
 *
 * plus the Figure 3 time-share profile and the paper's no-approximation
 * metric value used as the calibration target.
 */

#ifndef A3_WORKLOADS_WORKLOAD_HPP
#define A3_WORKLOADS_WORKLOAD_HPP

#include <memory>
#include <string>
#include <vector>

#include "attention/types.hpp"
#include "tensor/matrix.hpp"
#include "util/random.hpp"

namespace a3 {

/** One episode: a key/value task, its queries, and ground truth. */
struct AttentionTask
{
    Matrix key;
    Matrix value;

    /** Queries against this key/value pair (many for self-attention). */
    std::vector<Vector> queries;

    /**
     * Ground-truth relevant rows per query; empty for queries that run
     * for timing only and are excluded from the metric (e.g. non-
     * question tokens of the SQuAD-like workload).
     */
    std::vector<std::vector<std::uint32_t>> relevant;
};

/** Figure 3 profile: non-attention work relative to attention time. */
struct TimeShareProfile
{
    /** Comprehension (query-independent) time / attention time. */
    double comprehensionOverAttention = 0.0;

    /** Non-attention query-response time / attention time. */
    double otherQueryOverAttention = 0.0;
};

/** Interface of one synthetic benchmark workload. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Workload name, e.g. "MemN2N". */
    virtual std::string name() const = 0;

    /** Metric name, e.g. "accuracy", "MAP", "F1". */
    virtual std::string metricName() const = 0;

    /** Sample one episode. */
    virtual AttentionTask sample(Rng &rng) const = 0;

    /**
     * Score one query's attention result; only called for queries with
     * a non-empty relevant set.
     */
    virtual double score(const AttentionTask &task,
                         std::size_t queryIndex,
                         const AttentionResult &result) const = 0;

    /** Typical row count for performance modeling (paper's avg n). */
    virtual std::size_t typicalRows() const = 0;

    /** Embedding dimension. */
    virtual std::size_t dims() const { return 64; }

    /** True for self-attention (key reused across many queries). */
    virtual bool selfAttention() const { return false; }

    /** Top-k for the Figure 13b recall metric (2 bAbI, 5 others). */
    virtual std::size_t recallTopK() const = 0;

    /** Paper's no-approximation metric value (calibration target). */
    virtual double paperBaselineMetric() const = 0;

    /** Figure 3 time-share profile. */
    virtual TimeShareProfile timeShare() const = 0;

    /**
     * Indices of the queries that carry ground truth (non-empty
     * `relevant`) — the batch the harness actually scores; the rest
     * run for timing only.
     */
    std::vector<std::size_t> scoredQueries(const AttentionTask &task)
        const;

    /**
     * Sum of score() over `queryIndices`, folding results in index
     * order so accumulations stay deterministic under any engine
     * thread count. results[i] answers task.queries[queryIndices[i]].
     */
    double scoreBatch(const AttentionTask &task,
                      const std::vector<std::size_t> &queryIndices,
                      const std::vector<AttentionResult> &results)
        const;
};

/** The three paper workloads, in presentation order. */
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

}  // namespace a3

#endif  // A3_WORKLOADS_WORKLOAD_HPP
