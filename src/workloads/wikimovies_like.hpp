/**
 * @file
 * KV-MemN2N / WikiMovies-like workload.
 *
 * WikiMovies questions retrieve from a few hundred candidate knowledge
 * entries (the paper reports an average n of 186) of which several are
 * relevant; the paper scores with mean average precision. Our analogue
 * plants 2-6 relevant rows with a noisier margin than bAbI (movie
 * knowledge entries overlap heavily), calibrated so the exact-attention
 * MAP lands near the paper's 0.620 baseline.
 */

#ifndef A3_WORKLOADS_WIKIMOVIES_LIKE_HPP
#define A3_WORKLOADS_WIKIMOVIES_LIKE_HPP

#include "workloads/embedding.hpp"
#include "workloads/workload.hpp"

namespace a3 {

/** Synthetic stand-in for KV-MemN2N running WikiMovies. */
class WikiMoviesLikeWorkload : public Workload
{
  public:
    WikiMoviesLikeWorkload();

    std::string name() const override { return "KV-MemN2N"; }
    std::string metricName() const override { return "MAP"; }
    AttentionTask sample(Rng &rng) const override;
    double score(const AttentionTask &task, std::size_t queryIndex,
                 const AttentionResult &result) const override;
    std::size_t typicalRows() const override { return 186; }
    std::size_t recallTopK() const override { return 5; }
    double paperBaselineMetric() const override { return 0.620; }
    TimeShareProfile timeShare() const override;

  private:
    EmbeddingParams params_;
};

}  // namespace a3

#endif  // A3_WORKLOADS_WIKIMOVIES_LIKE_HPP
