#include "workloads/workload.hpp"

#include "workloads/babi_like.hpp"
#include "workloads/squad_like.hpp"
#include "workloads/wikimovies_like.hpp"

namespace a3 {

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    all.push_back(std::make_unique<BabiLikeWorkload>());
    all.push_back(std::make_unique<WikiMoviesLikeWorkload>());
    all.push_back(std::make_unique<SquadLikeWorkload>());
    return all;
}

}  // namespace a3
