#include "workloads/workload.hpp"

#include "util/logging.hpp"
#include "workloads/babi_like.hpp"
#include "workloads/squad_like.hpp"
#include "workloads/wikimovies_like.hpp"

namespace a3 {

std::vector<std::size_t>
Workload::scoredQueries(const AttentionTask &task) const
{
    std::vector<std::size_t> indices;
    indices.reserve(task.queries.size());
    for (std::size_t qi = 0; qi < task.queries.size(); ++qi) {
        if (!task.relevant[qi].empty())
            indices.push_back(qi);
    }
    return indices;
}

double
Workload::scoreBatch(const AttentionTask &task,
                     const std::vector<std::size_t> &queryIndices,
                     const std::vector<AttentionResult> &results) const
{
    a3Assert(queryIndices.size() == results.size(),
             "scoreBatch needs one result per scored query");
    double sum = 0.0;
    for (std::size_t i = 0; i < queryIndices.size(); ++i)
        sum += score(task, queryIndices[i], results[i]);
    return sum;
}

std::vector<std::unique_ptr<Workload>>
makeAllWorkloads()
{
    std::vector<std::unique_ptr<Workload>> all;
    all.push_back(std::make_unique<BabiLikeWorkload>());
    all.push_back(std::make_unique<WikiMoviesLikeWorkload>());
    all.push_back(std::make_unique<SquadLikeWorkload>());
    return all;
}

}  // namespace a3
