/**
 * @file
 * Task metrics used by the accuracy evaluation (Section VI-B).
 *
 * The paper reports accuracy for bAbI, mean average precision for
 * WikiMovies, and F1 for SQuAD; Figure 13b additionally reports the
 * portion of the true top-2/top-5 entries retained by approximation.
 * Our synthetic analogues score attention results against the planted
 * relevant rows with the same metric families.
 */

#ifndef A3_WORKLOADS_METRICS_HPP
#define A3_WORKLOADS_METRICS_HPP

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace a3 {

/** Indices of the k largest entries of `values`, descending. */
std::vector<std::uint32_t> topKIndices(const Vector &values,
                                       std::size_t k);

/** 1.0 when the argmax of `weights` is a relevant row, else 0.0. */
double argmaxAccuracy(const Vector &weights,
                      const std::vector<std::uint32_t> &relevant);

/**
 * Average precision of ranking rows by `weights` against the relevant
 * set (the per-query term of MAP).
 */
double averagePrecision(const Vector &weights,
                        const std::vector<std::uint32_t> &relevant);

/**
 * F1 between the top-k rows of `weights` and the relevant set
 * (our SQuAD-like span-overlap analogue).
 */
double f1TopK(const Vector &weights,
              const std::vector<std::uint32_t> &relevant, std::size_t k);

/**
 * Fraction of the true top-k rows (by exact score) present in the
 * `selected` row set — Figure 13b's "portion of top entries selected".
 */
double topKRecall(const Vector &exactScores,
                  const std::vector<std::uint32_t> &selected,
                  std::size_t k);

}  // namespace a3

#endif  // A3_WORKLOADS_METRICS_HPP
