#include "workloads/wikimovies_like.hpp"

#include "workloads/metrics.hpp"

namespace a3 {

WikiMoviesLikeWorkload::WikiMoviesLikeWorkload()
{
    params_.dims = 64;
    // Noisier margins than bAbI: several partially-relevant knowledge
    // entries, calibrated for an exact-attention MAP near 0.620.
    params_.relevantMargin = 2.85;
    params_.marginJitter = 0.9;
}

AttentionTask
WikiMoviesLikeWorkload::sample(Rng &rng) const
{
    // Knowledge-set size around the paper's average of 186 entries.
    const auto n =
        static_cast<std::size_t>(rng.uniformInt(80, 292));
    const auto relevantCount =
        static_cast<std::size_t>(rng.uniformInt(2, 6));

    EmbeddingEpisode ep =
        generateEpisode(rng, params_, n, relevantCount);
    AttentionTask task;
    task.key = std::move(ep.key);
    task.value = std::move(ep.value);
    task.queries.push_back(std::move(ep.query));
    task.relevant.push_back(std::move(ep.relevantRows));
    return task;
}

double
WikiMoviesLikeWorkload::score(const AttentionTask &task,
                              std::size_t queryIndex,
                              const AttentionResult &result) const
{
    return averagePrecision(result.weights, task.relevant[queryIndex]);
}

TimeShareProfile
WikiMoviesLikeWorkload::timeShare() const
{
    // Calibrated to Figure 3: attention ~45% of whole inference and
    // ~75% of query-response time for KV-MemN2N.
    return {0.89, 0.33};
}

}  // namespace a3
