#include "workloads/babi_like.hpp"

#include <algorithm>
#include <cmath>

#include "workloads/metrics.hpp"

namespace a3 {

BabiLikeWorkload::BabiLikeWorkload()
{
    params_.dims = 64;
    // Calibrated so exact attention places the top weight on the
    // relevant statement ~82.6% of the time at n ~ 20.
    params_.relevantMargin = 3.5;
    params_.marginJitter = 1.1;
}

AttentionTask
BabiLikeWorkload::sample(Rng &rng) const
{
    // Episode length: exponential around the paper's average of 20
    // statements, clamped to [5, 50] (max 50 in the bAbI test set).
    const double drawn = 5.0 - 15.0 * std::log(1.0 - rng.uniform());
    const auto n = static_cast<std::size_t>(
        std::clamp(drawn, 5.0, 50.0));

    EmbeddingEpisode ep = generateEpisode(rng, params_, n, 1);
    AttentionTask task;
    task.key = std::move(ep.key);
    task.value = std::move(ep.value);
    task.queries.push_back(std::move(ep.query));
    task.relevant.push_back(std::move(ep.relevantRows));
    return task;
}

double
BabiLikeWorkload::score(const AttentionTask &task,
                        std::size_t queryIndex,
                        const AttentionResult &result) const
{
    return argmaxAccuracy(result.weights, task.relevant[queryIndex]);
}

TimeShareProfile
BabiLikeWorkload::timeShare() const
{
    // Calibrated to Figure 3: attention ~40% of whole inference and
    // ~80% of query-response time for MemN2N.
    return {1.25, 0.25};
}

}  // namespace a3
