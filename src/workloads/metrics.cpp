#include "workloads/metrics.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace a3 {

std::vector<std::uint32_t>
topKIndices(const Vector &values, std::size_t k)
{
    std::vector<std::uint32_t> order(values.size());
    std::iota(order.begin(), order.end(), 0u);
    k = std::min(k, values.size());
    std::partial_sort(order.begin(),
                      order.begin() + static_cast<std::ptrdiff_t>(k),
                      order.end(),
                      [&values](std::uint32_t a, std::uint32_t b) {
                          if (values[a] != values[b])
                              return values[a] > values[b];
                          return a < b;  // deterministic tie-break
                      });
    order.resize(k);
    return order;
}

double
argmaxAccuracy(const Vector &weights,
               const std::vector<std::uint32_t> &relevant)
{
    a3Assert(!weights.empty(), "accuracy of empty weight vector");
    const auto top = topKIndices(weights, 1);
    return std::find(relevant.begin(), relevant.end(), top[0]) !=
                   relevant.end()
               ? 1.0
               : 0.0;
}

namespace {

/** Keep only the positive-weight prefix of a ranking. Rows excluded by
 * approximation carry exactly zero weight and are never "retrieved",
 * so ties at zero must not enter the ranking. */
std::vector<std::uint32_t>
positivePrefix(const Vector &weights, std::vector<std::uint32_t> ranking)
{
    std::size_t live = 0;
    while (live < ranking.size() && weights[ranking[live]] > 0.0f)
        ++live;
    ranking.resize(live);
    return ranking;
}

}  // namespace

double
averagePrecision(const Vector &weights,
                 const std::vector<std::uint32_t> &relevant)
{
    a3Assert(!relevant.empty(), "average precision with no relevant rows");
    const auto ranking =
        positivePrefix(weights, topKIndices(weights, weights.size()));
    double hits = 0.0;
    double apSum = 0.0;
    for (std::size_t rank = 0; rank < ranking.size(); ++rank) {
        const bool hit =
            std::find(relevant.begin(), relevant.end(),
                      ranking[rank]) != relevant.end();
        if (hit) {
            hits += 1.0;
            apSum += hits / static_cast<double>(rank + 1);
        }
    }
    return apSum / static_cast<double>(relevant.size());
}

double
f1TopK(const Vector &weights,
       const std::vector<std::uint32_t> &relevant, std::size_t k)
{
    a3Assert(!relevant.empty(), "F1 with no relevant rows");
    const auto predicted = positivePrefix(weights, topKIndices(weights, k));
    if (predicted.empty())
        return 0.0;
    std::size_t overlap = 0;
    for (std::uint32_t p : predicted) {
        if (std::find(relevant.begin(), relevant.end(), p) !=
            relevant.end()) {
            ++overlap;
        }
    }
    if (overlap == 0)
        return 0.0;
    const double precision =
        static_cast<double>(overlap) /
        static_cast<double>(predicted.size());
    const double recall = static_cast<double>(overlap) /
                          static_cast<double>(relevant.size());
    return 2.0 * precision * recall / (precision + recall);
}

double
topKRecall(const Vector &exactScores,
           const std::vector<std::uint32_t> &selected, std::size_t k)
{
    a3Assert(!exactScores.empty(), "recall over empty score vector");
    const auto trueTop = topKIndices(exactScores, k);
    std::size_t found = 0;
    for (std::uint32_t row : trueTop) {
        if (std::find(selected.begin(), selected.end(), row) !=
            selected.end()) {
            ++found;
        }
    }
    return static_cast<double>(found) /
           static_cast<double>(trueTop.size());
}

}  // namespace a3
