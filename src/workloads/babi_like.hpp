/**
 * @file
 * MemN2N / bAbI-like workload.
 *
 * Facebook bAbI QA episodes contain a handful of short statements and
 * one question whose answer hinges on a single relevant statement
 * (Figure 2 of the paper). Our analogue plants one relevant row in a
 * small episode (average n = 20, maximum 50 as the paper reports for
 * the bAbI test set), and scores a query as correct when the largest
 * attention weight lands on that row — the retrieval step MemN2N's
 * answer depends on. The embedding margin is calibrated so exact
 * attention scores ~0.826, the paper's no-approximation accuracy.
 */

#ifndef A3_WORKLOADS_BABI_LIKE_HPP
#define A3_WORKLOADS_BABI_LIKE_HPP

#include "workloads/embedding.hpp"
#include "workloads/workload.hpp"

namespace a3 {

/** Synthetic stand-in for MemN2N running bAbI QA. */
class BabiLikeWorkload : public Workload
{
  public:
    BabiLikeWorkload();

    std::string name() const override { return "MemN2N"; }
    std::string metricName() const override { return "accuracy"; }
    AttentionTask sample(Rng &rng) const override;
    double score(const AttentionTask &task, std::size_t queryIndex,
                 const AttentionResult &result) const override;
    std::size_t typicalRows() const override { return 20; }
    std::size_t recallTopK() const override { return 2; }
    double paperBaselineMetric() const override { return 0.826; }
    TimeShareProfile timeShare() const override;

  private:
    EmbeddingParams params_;
};

}  // namespace a3

#endif  // A3_WORKLOADS_BABI_LIKE_HPP
