/**
 * @file
 * BERT / SQuAD-like self-attention workload.
 *
 * BERT-base processes a 320-token passage+question sequence with
 * self-attention: one shared key matrix answers n = 320 queries, which
 * is what amortizes A3's preprocessing (Sections IV-A and VI-C). Our
 * analogue builds a 320-token episode in which a block of question
 * tokens must attend to the answer span; the metric is the F1 overlap
 * between each question token's top-5 attended positions and the true
 * span — the span-retrieval step SQuAD F1 rides on. The remaining
 * tokens issue queries too (they dominate the timing) but carry no
 * ground truth and are excluded from the metric. Margins are
 * calibrated for an exact-attention F1 near the paper's 0.888.
 */

#ifndef A3_WORKLOADS_SQUAD_LIKE_HPP
#define A3_WORKLOADS_SQUAD_LIKE_HPP

#include "workloads/embedding.hpp"
#include "workloads/workload.hpp"

namespace a3 {

/** Synthetic stand-in for BERT-base running SQuAD v1.1. */
class SquadLikeWorkload : public Workload
{
  public:
    SquadLikeWorkload();

    std::string name() const override { return "BERT"; }
    std::string metricName() const override { return "F1"; }
    AttentionTask sample(Rng &rng) const override;
    double score(const AttentionTask &task, std::size_t queryIndex,
                 const AttentionResult &result) const override;
    std::size_t typicalRows() const override { return 320; }
    bool selfAttention() const override { return true; }
    std::size_t recallTopK() const override { return 5; }
    double paperBaselineMetric() const override { return 0.888; }
    TimeShareProfile timeShare() const override;

    /** Tokens in one sequence (the paper's n = 320). */
    static constexpr std::size_t sequenceLength = 320;

    /** Question tokens carrying ground truth per episode. */
    static constexpr std::size_t questionTokens = 16;

    /** Answer-span length. */
    static constexpr std::size_t spanLength = 5;

  private:
    EmbeddingParams params_;
};

}  // namespace a3

#endif  // A3_WORKLOADS_SQUAD_LIKE_HPP
