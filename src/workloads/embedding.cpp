#include "workloads/embedding.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace a3 {

double
EmbeddingParams::componentScale(std::size_t d) const
{
    return std::pow(static_cast<double>(d), -0.25);
}

Vector
randomEmbedding(Rng &rng, std::size_t dims, double scale)
{
    Vector v(dims);
    for (auto &x : v)
        x = static_cast<float>(rng.normal(0.0, scale));
    return v;
}

EmbeddingEpisode
generateEpisode(Rng &rng, const EmbeddingParams &params,
                std::size_t rows, std::size_t relevantCount)
{
    a3Assert(rows > 0, "episode needs at least one row");
    a3Assert(relevantCount <= rows,
             "more relevant rows than rows: ", relevantCount, " > ",
             rows);
    const std::size_t d = params.dims;
    const double s = params.componentScale(d);

    EmbeddingEpisode ep;
    ep.query = randomEmbedding(rng, d, s);

    // Alignment direction: the query restricted to its `alignDims`
    // strongest components (all components when alignDims == 0).
    // Adding (margin / |a|^2) * a to a key shifts its dot product with
    // the query by exactly `margin`, concentrated on those feature
    // dimensions the way trained embeddings concentrate agreement.
    Vector alignDir = ep.query;
    if (params.alignDims > 0 && params.alignDims < d) {
        std::vector<std::size_t> byMagnitude(d);
        for (std::size_t j = 0; j < d; ++j)
            byMagnitude[j] = j;
        std::sort(byMagnitude.begin(), byMagnitude.end(),
                  [&](std::size_t a, std::size_t b) {
                      return std::fabs(ep.query[a]) >
                             std::fabs(ep.query[b]);
                  });
        for (std::size_t rank = params.alignDims; rank < d; ++rank)
            alignDir[byMagnitude[rank]] = 0.0f;
    }
    double qNormSq = 0.0;
    for (float x : alignDir)
        qNormSq += static_cast<double>(x) * static_cast<double>(x);
    a3Assert(qNormSq > 0.0, "degenerate zero query");

    // Pick distinct relevant positions.
    std::vector<std::uint32_t> order(rows);
    for (std::size_t r = 0; r < rows; ++r)
        order[r] = static_cast<std::uint32_t>(r);
    rng.shuffle(order);
    ep.relevantRows.assign(order.begin(),
                           order.begin() +
                               static_cast<std::ptrdiff_t>(relevantCount));
    std::sort(ep.relevantRows.begin(), ep.relevantRows.end());

    ep.key = Matrix(rows, d);
    ep.value = Matrix(rows, d);
    for (std::size_t r = 0; r < rows; ++r) {
        Vector k = randomEmbedding(rng, d, s);
        // Heavy-tailed component spikes on every row (see spikeProb).
        for (std::size_t j = 0; j < d; ++j) {
            if (rng.bernoulli(params.spikeProb)) {
                k[j] += static_cast<float>(
                    rng.normal(0.0, params.spikeScale * s));
            }
        }
        const bool isRelevant =
            std::binary_search(ep.relevantRows.begin(),
                               ep.relevantRows.end(),
                               static_cast<std::uint32_t>(r));
        if (isRelevant) {
            const double margin = std::max(
                0.5, rng.normal(params.relevantMargin,
                                params.marginJitter));
            const double shift = margin / qNormSq;
            for (std::size_t j = 0; j < d; ++j) {
                k[j] += static_cast<float>(shift *
                                           static_cast<double>(
                                               alignDir[j]));
            }
        }
        Vector v = randomEmbedding(rng, d, s);
        for (std::size_t j = 0; j < d; ++j) {
            ep.key(r, j) = k[j];
            ep.value(r, j) = v[j];
        }
    }
    return ep;
}

}  // namespace a3
