#include "workloads/squad_like.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "workloads/metrics.hpp"

namespace a3 {

SquadLikeWorkload::SquadLikeWorkload()
{
    params_.dims = 64;
    // relevantMargin is the mean topic weight b of answer-span tokens;
    // question queries carry a fixed topic weight a = 2, so a span
    // token scores ~2b while distractors stay at sigma sqrt(1 + 4s^2).
    // Calibrated for an exact-attention F1 near the paper's 0.888.
    params_.relevantMargin = 2.55;
    params_.marginJitter = 0.3;
}

namespace {

/** Topic weight of question queries along the answer direction. */
constexpr double questionTopicWeight = 2.0;

}  // namespace

AttentionTask
SquadLikeWorkload::sample(Rng &rng) const
{
    const std::size_t n = sequenceLength;
    const std::size_t d = params_.dims;
    const double s = params_.componentScale(d);

    // Shared answer-topic direction: answer-span tokens and question
    // tokens both carry a component along this unit vector, the way a
    // trained encoder co-locates a question with its answer span.
    Vector topic(d);
    double topicNorm = 0.0;
    for (auto &x : topic) {
        x = static_cast<float>(rng.normal());
        topicNorm += static_cast<double>(x) * static_cast<double>(x);
    }
    topicNorm = std::sqrt(topicNorm);
    a3Assert(topicNorm > 0.0, "degenerate topic direction");
    for (auto &x : topic)
        x = static_cast<float>(static_cast<double>(x) / topicNorm);

    // Answer span: `spanLength` contiguous passage positions.
    const auto spanStart = static_cast<std::size_t>(rng.uniformInt(
        0, static_cast<std::int64_t>(n - questionTokens -
                                     spanLength)));
    const std::size_t questionStart = n - questionTokens;
    std::vector<std::uint32_t> span;
    for (std::size_t i = 0; i < spanLength; ++i)
        span.push_back(static_cast<std::uint32_t>(spanStart + i));

    AttentionTask task;
    task.key = Matrix(n, d);
    task.value = Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        Vector k = randomEmbedding(rng, d, s);
        const bool inSpan =
            r >= spanStart && r < spanStart + spanLength;
        if (inSpan) {
            const double b = std::max(
                1.0, rng.normal(params_.relevantMargin,
                                params_.marginJitter));
            for (std::size_t j = 0; j < d; ++j)
                k[j] += static_cast<float>(b * topic[j]);
        }
        const Vector v = randomEmbedding(rng, d, s);
        for (std::size_t j = 0; j < d; ++j) {
            task.key(r, j) = k[j];
            task.value(r, j) = v[j];
        }
    }

    // Question tokens occupy the tail of the sequence, as in BERT's
    // [passage ; question] packing; every token issues a query but
    // only question tokens carry ground truth.
    task.queries.resize(n);
    task.relevant.resize(n);
    for (std::size_t t = 0; t < n; ++t) {
        Vector q = randomEmbedding(rng, d, s);
        if (t >= questionStart) {
            for (std::size_t j = 0; j < d; ++j) {
                q[j] += static_cast<float>(questionTopicWeight *
                                           topic[j]);
            }
            task.relevant[t] = span;
        }
        task.queries[t] = std::move(q);
    }
    return task;
}

double
SquadLikeWorkload::score(const AttentionTask &task,
                         std::size_t queryIndex,
                         const AttentionResult &result) const
{
    return f1TopK(result.weights, task.relevant[queryIndex],
                  spanLength);
}

TimeShareProfile
SquadLikeWorkload::timeShare() const
{
    // BERT performs comprehension and query response in an integrated
    // manner (Figure 3 discussion): no separable comprehension phase,
    // attention ~36% of the end-to-end time.
    return {0.0, 1.78};
}

}  // namespace a3
