/**
 * @file
 * Section III-B bitwidth derivation for the A3 pipeline.
 *
 * Given the input format (i integer bits, f fraction bits) and the task
 * shape (n rows, d columns), this computes the format of every pipeline
 * stage such that no overflow and no precision loss can occur:
 *
 *   input       : ( i,                      f  )
 *   temp[][]    : ( 2i,                     2f )   products
 *   dot_product : ( 2i + ceil(log2 d),      2f )   adder-tree sum
 *   shifted dot : ( 2i + ceil(log2 d) + 1,  2f )   after max subtraction
 *   score       : ( 0,                      2f )   e^x with x <= 0
 *   expsum      : ( ceil(log2 n),           2f )   sum of n scores
 *   weight      : ( 0,                      2f )   score / expsum
 *   output      : ( i + ceil(log2 n),       3f )   weighted value sum
 */

#ifndef A3_FIXED_PIPELINE_FORMATS_HPP
#define A3_FIXED_PIPELINE_FORMATS_HPP

#include <cstddef>

#include "fixed/format.hpp"

namespace a3 {

/** ceil(log2(x)) for x >= 1; returns 0 for x == 1. */
int ceilLog2(std::size_t x);

/** All per-stage formats of the A3 fixed-point pipeline. */
struct PipelineFormats
{
    FixedFormat input;        ///< key / value / query elements
    FixedFormat product;      ///< element-wise products (temp[][])
    FixedFormat dotProduct;   ///< adder-tree output per row
    FixedFormat shiftedDot;   ///< dot product minus running max
    FixedFormat score;        ///< exponent output in [0, 1]
    FixedFormat expSum;       ///< accumulated softmax denominator
    FixedFormat weight;       ///< normalized score in [0, 1]
    FixedFormat output;       ///< final weighted-sum output

    /**
     * Derive the stage formats for a task of shape n x d with input
     * quantized to `intBits`.`fracBits`.
     */
    static PipelineFormats derive(int intBits, int fracBits,
                                  std::size_t n, std::size_t d);
};

}  // namespace a3

#endif  // A3_FIXED_PIPELINE_FORMATS_HPP
