#include "fixed/format.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace a3 {

std::int64_t
FixedFormat::maxRaw() const
{
    a3Assert(intBits + fracBits < 63, "fixed-point format too wide");
    return (std::int64_t{1} << (intBits + fracBits)) - 1;
}

std::int64_t
FixedFormat::minRaw() const
{
    // Symmetric range: -maxRaw rather than -(maxRaw + 1). Restricting
    // the most negative code keeps the product of two (i, f) words
    // inside (2i, 2f) even at the corner (-2^i) * (-2^i), the same
    // reason fixed-point accelerators quantize symmetrically.
    return -maxRaw();
}

double
FixedFormat::resolution() const
{
    return std::ldexp(1.0, -fracBits);
}

double
FixedFormat::maxValue() const
{
    return toDouble(maxRaw());
}

double
FixedFormat::minValue() const
{
    return toDouble(minRaw());
}

bool
FixedFormat::fits(std::int64_t raw) const
{
    return raw >= minRaw() && raw <= maxRaw();
}

std::int64_t
FixedFormat::quantize(double value) const
{
    const double scaled = std::ldexp(value, fracBits);
    // Round half to even, matching typical synthesized rounding logic.
    const double rounded = std::nearbyint(scaled);
    if (rounded >= static_cast<double>(maxRaw()))
        return maxRaw();
    if (rounded <= static_cast<double>(minRaw()))
        return minRaw();
    return static_cast<std::int64_t>(rounded);
}

double
FixedFormat::toDouble(std::int64_t raw) const
{
    return std::ldexp(static_cast<double>(raw), -fracBits);
}

std::int64_t
FixedFormat::saturate(std::int64_t raw) const
{
    if (raw > maxRaw())
        return maxRaw();
    if (raw < minRaw())
        return minRaw();
    return raw;
}

std::string
FixedFormat::str() const
{
    return "Q" + std::to_string(intBits) + "." + std::to_string(fracBits);
}

}  // namespace a3
