#include "fixed/pipeline_formats.hpp"

#include "util/logging.hpp"

namespace a3 {

int
ceilLog2(std::size_t x)
{
    a3Assert(x >= 1, "ceilLog2 of zero");
    int bits = 0;
    std::size_t capacity = 1;
    while (capacity < x) {
        capacity <<= 1;
        ++bits;
    }
    return bits;
}

PipelineFormats
PipelineFormats::derive(int intBits, int fracBits,
                        std::size_t n, std::size_t d)
{
    a3Assert(intBits >= 1 && fracBits >= 1,
             "pipeline formats need at least one integer and one "
             "fraction bit");
    a3Assert(n >= 1 && d >= 1, "pipeline formats need n, d >= 1");

    PipelineFormats pf;
    pf.input = {intBits, fracBits};
    pf.product = {2 * intBits, 2 * fracBits};
    pf.dotProduct = {2 * intBits + ceilLog2(d), 2 * fracBits};
    pf.shiftedDot = {pf.dotProduct.intBits + 1, 2 * fracBits};
    pf.score = {0, 2 * fracBits};
    pf.expSum = {ceilLog2(n), 2 * fracBits};
    pf.weight = {0, 2 * fracBits};
    pf.output = {intBits + ceilLog2(n), 3 * fracBits};
    return pf;
}

}  // namespace a3
