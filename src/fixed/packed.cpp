#include "fixed/packed.hpp"

#include "util/logging.hpp"

namespace a3 {

const char *
packedKvFormatName(PackedKvFormat format)
{
    switch (format) {
    case PackedKvFormat::Auto:
        return "auto";
    case PackedKvFormat::Word32:
        return "word32";
    case PackedKvFormat::Int8:
        return "int8";
    case PackedKvFormat::Int4:
        return "int4";
    }
    panic("unreachable PackedKvFormat");
}

int
packedKvLaneBits(PackedKvFormat format)
{
    switch (format) {
    case PackedKvFormat::Auto:
        return 0;
    case PackedKvFormat::Word32:
        return 32;
    case PackedKvFormat::Int8:
        return 8;
    case PackedKvFormat::Int4:
        return 4;
    }
    panic("unreachable PackedKvFormat");
}

PackedKvFormat
resolvePackedKvFormat(PackedKvFormat requested, int intBits,
                      int fracBits)
{
    const int word = intBits + fracBits + 1;
    if (requested == PackedKvFormat::Auto) {
        if (word <= 4)
            return PackedKvFormat::Int4;
        if (word <= 8)
            return PackedKvFormat::Int8;
        return PackedKvFormat::Word32;
    }
    const int lane = packedKvLaneBits(requested);
    if (word > lane) {
        fatal("packed K/V format ", packedKvFormatName(requested),
              " cannot hold a Q", intBits, ".", fracBits,
              " input word: ", word, " bits exceed the ", lane,
              "-bit packed lane (packing is lossless; widen the lane "
              "or narrow the format)");
    }
    return requested;
}

std::size_t
packedRowBytes(PackedKvFormat format, std::size_t dims)
{
    switch (format) {
    case PackedKvFormat::Auto:
        panic("packedRowBytes requires a resolved format");
    case PackedKvFormat::Word32:
        return dims * sizeof(std::int32_t);
    case PackedKvFormat::Int8:
        return dims;
    case PackedKvFormat::Int4:
        return (dims + 1) / 2;
    }
    panic("unreachable PackedKvFormat");
}

}  // namespace a3
