/**
 * @file
 * Two-half exponent lookup table (Section III, Module 2).
 *
 * A3 computes e^x for non-positive fixed-point x with a lookup table
 * instead of an exponent unit. To keep the table small it exploits
 *
 *     e^(0.10101111b) = e^(0.10100000b) x e^(0.00001111b),
 *
 * i.e. the input bit pattern is split into an upper and a lower half,
 * each indexes a small table, and the two fetched values are multiplied.
 * Because the pipeline subtracts the running maximum before this stage,
 * x <= 0 always holds, so e^x lies in [0, 1] and the result needs no
 * integer bits (Section III-B).
 *
 * Inputs whose magnitude exceeds the underflow threshold — where e^x is
 * smaller than half an output LSB — short-circuit to zero, which also
 * bounds the number of index bits the tables must cover.
 */

#ifndef A3_FIXED_EXP_LUT_HPP
#define A3_FIXED_EXP_LUT_HPP

#include <cstdint>
#include <vector>

#include "fixed/format.hpp"

namespace a3 {

/** Hardware-style exponent evaluator for non-positive fixed-point input. */
class ExpLut
{
  public:
    /**
     * Build the two half-tables.
     *
     * @param inputFracBits fraction bits of the (non-positive) input.
     * @param outputFracBits fraction bits of the produced score.
     */
    ExpLut(int inputFracBits, int outputFracBits);

    /**
     * Evaluate e^x for `rawInput` <= 0 interpreted with inputFracBits
     * fraction bits. Returns a raw score with outputFracBits fraction
     * bits, saturated into [0, 2^outputFracBits - 1] (i.e. Q0.f).
     */
    std::int64_t lookup(std::int64_t rawInput) const;

    /** Score format produced by lookup(). */
    FixedFormat outputFormat() const { return {0, outputFracBits_}; }

    /** Number of entries in the upper-half table. */
    std::size_t upperEntries() const { return upperTable_.size(); }

    /** Number of entries in the lower-half table. */
    std::size_t lowerEntries() const { return lowerTable_.size(); }

    /** Total index bits covered before the underflow short-circuit. */
    int indexBits() const { return upperBits_ + lowerBits_; }

    /**
     * Analytic bound on |lookup(x) - e^x| in real-value terms: two table
     * quantization errors plus the product truncation, in output LSBs.
     */
    double maxAbsError() const;

  private:
    int inputFracBits_;
    int outputFracBits_;
    int upperBits_;
    int lowerBits_;
    std::vector<std::int64_t> upperTable_;
    std::vector<std::int64_t> lowerTable_;
};

}  // namespace a3

#endif  // A3_FIXED_EXP_LUT_HPP
