/**
 * @file
 * Fixed-point value type with hardware-style width growth.
 *
 * Arithmetic follows what synthesized datapaths do: a multiply of
 * (i1, f1) x (i2, f2) produces an exact (i1+i2, f1+f2) result; an add of
 * two equal-fraction operands produces one extra integer bit. Section
 * III-B of the paper derives the A3 pipeline widths from exactly these
 * rules, and the tests assert that no stage ever saturates for in-range
 * inputs.
 */

#ifndef A3_FIXED_VALUE_HPP
#define A3_FIXED_VALUE_HPP

#include <cstdint>

#include "fixed/format.hpp"

namespace a3 {

/** A raw fixed-point word tagged with its format. */
struct FixedValue
{
    std::int64_t raw = 0;
    FixedFormat fmt;

    /** Real value represented by this word. */
    double toDouble() const { return fmt.toDouble(raw); }

    /** Quantize a real value into `fmt` (rounds and saturates). */
    static FixedValue fromDouble(double value, FixedFormat fmt);

    /** Zero in the given format. */
    static FixedValue zero(FixedFormat fmt) { return {0, fmt}; }
};

/**
 * Exact multiply: result has i1+i2 integer and f1+f2 fraction bits.
 * Never loses precision and never overflows the declared result format.
 */
FixedValue mulFull(const FixedValue &a, const FixedValue &b);

/**
 * Exact add: operands must share a fraction width; the result gains
 * one integer bit, so it cannot overflow.
 */
FixedValue addFull(const FixedValue &a, const FixedValue &b);

/** Exact subtract with the same width rules as addFull(). */
FixedValue subFull(const FixedValue &a, const FixedValue &b);

/**
 * Re-quantize `v` into `target`: shifts the binary point (truncating
 * toward negative infinity when narrowing, as a hardware right-shift
 * does) and saturates into the target range.
 */
FixedValue rescale(const FixedValue &v, FixedFormat target);

/**
 * Fixed-point division `num / den` producing `outFracBits` fraction bits
 * and `outIntBits` integer bits, truncated like a sequential hardware
 * divider. Requires den.raw != 0.
 */
FixedValue divide(const FixedValue &num, const FixedValue &den,
                  int outIntBits, int outFracBits);

}  // namespace a3

#endif  // A3_FIXED_VALUE_HPP
