#include "fixed/exp_lut.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace a3 {

ExpLut::ExpLut(int inputFracBits, int outputFracBits)
    : inputFracBits_(inputFracBits), outputFracBits_(outputFracBits)
{
    a3Assert(inputFracBits >= 1 && inputFracBits <= 24,
             "exp LUT input fraction bits out of range");
    a3Assert(outputFracBits >= 1 && outputFracBits <= 24,
             "exp LUT output fraction bits out of range");

    // Underflow threshold: once e^-x drops below half an output LSB the
    // quantized score is zero, so the tables only need to cover
    // magnitudes up to xMax = ln(2) * (outputFracBits + 1).
    const double xMax =
        std::log(2.0) * static_cast<double>(outputFracBits + 1);
    int intBitsNeeded = 1;
    while (std::ldexp(1.0, intBitsNeeded) < xMax)
        ++intBitsNeeded;

    const int totalBits = intBitsNeeded + inputFracBits_;
    upperBits_ = (totalBits + 1) / 2;
    lowerBits_ = totalBits - upperBits_;

    const double outScale = std::ldexp(1.0, outputFracBits_);
    const double inScale = std::ldexp(1.0, -inputFracBits_);

    // upperTable[p] ~ e^-(p << lowerBits) * 2^-inputFracBits,
    // lowerTable[p] ~ e^-(p * 2^-inputFracBits); both as Q0.out words.
    upperTable_.resize(std::size_t{1} << upperBits_);
    for (std::size_t p = 0; p < upperTable_.size(); ++p) {
        const double x =
            static_cast<double>(p << lowerBits_) * inScale;
        upperTable_[p] = static_cast<std::int64_t>(
            std::nearbyint(std::exp(-x) * outScale));
    }
    lowerTable_.resize(std::size_t{1} << lowerBits_);
    for (std::size_t p = 0; p < lowerTable_.size(); ++p) {
        const double x = static_cast<double>(p) * inScale;
        lowerTable_[p] = static_cast<std::int64_t>(
            std::nearbyint(std::exp(-x) * outScale));
    }
}

std::int64_t
ExpLut::lookup(std::int64_t rawInput) const
{
    a3Assert(rawInput <= 0,
             "exp LUT requires non-positive input, got raw ", rawInput);
    const std::uint64_t magnitude = static_cast<std::uint64_t>(-rawInput);
    const int totalBits = upperBits_ + lowerBits_;
    if (magnitude >> totalBits)
        return 0;  // underflow short-circuit

    const std::uint64_t upperIndex = magnitude >> lowerBits_;
    const std::uint64_t lowerIndex =
        magnitude & ((std::uint64_t{1} << lowerBits_) - 1);
    const std::int64_t product =
        upperTable_[upperIndex] * lowerTable_[lowerIndex];
    // Product is Q0.2out; truncate back to Q0.out like the hardware
    // multiplier, then saturate (e^0 would need the value 1.0 which the
    // zero-integer-bit score format cannot hold exactly).
    std::int64_t result = product >> outputFracBits_;
    const std::int64_t maxScore =
        (std::int64_t{1} << outputFracBits_) - 1;
    return result > maxScore ? maxScore : result;
}

double
ExpLut::maxAbsError() const
{
    // Each table entry is within 0.5 output LSB of the exact factor, the
    // factors are <= 1, and the final truncation adds < 1 LSB; the score
    // saturation at 1 - 2^-f adds one more LSB at x == 0.
    return std::ldexp(3.0, -outputFracBits_);
}

}  // namespace a3
