#include "fixed/value.hpp"

#include "util/logging.hpp"

namespace a3 {

FixedValue
FixedValue::fromDouble(double value, FixedFormat fmt)
{
    return {fmt.quantize(value), fmt};
}

FixedValue
mulFull(const FixedValue &a, const FixedValue &b)
{
    FixedFormat out{a.fmt.intBits + b.fmt.intBits,
                    a.fmt.fracBits + b.fmt.fracBits};
    a3Assert(out.totalBits() <= 63, "mulFull result too wide: ",
             out.str());
    FixedValue result{a.raw * b.raw, out};
    a3Assert(out.fits(result.raw), "mulFull overflow despite width rule");
    return result;
}

FixedValue
addFull(const FixedValue &a, const FixedValue &b)
{
    a3Assert(a.fmt.fracBits == b.fmt.fracBits,
             "addFull fraction mismatch: ", a.fmt.str(), " vs ",
             b.fmt.str());
    FixedFormat out{std::max(a.fmt.intBits, b.fmt.intBits) + 1,
                    a.fmt.fracBits};
    a3Assert(out.totalBits() <= 63, "addFull result too wide");
    return {a.raw + b.raw, out};
}

FixedValue
subFull(const FixedValue &a, const FixedValue &b)
{
    a3Assert(a.fmt.fracBits == b.fmt.fracBits,
             "subFull fraction mismatch: ", a.fmt.str(), " vs ",
             b.fmt.str());
    FixedFormat out{std::max(a.fmt.intBits, b.fmt.intBits) + 1,
                    a.fmt.fracBits};
    a3Assert(out.totalBits() <= 63, "subFull result too wide");
    return {a.raw - b.raw, out};
}

FixedValue
rescale(const FixedValue &v, FixedFormat target)
{
    std::int64_t raw = v.raw;
    const int shift = target.fracBits - v.fmt.fracBits;
    if (shift >= 0) {
        a3Assert(shift < 63, "rescale shift too large");
        raw <<= shift;
    } else {
        // Arithmetic right shift truncates toward negative infinity,
        // matching a hardware shifter that drops fraction bits.
        raw >>= -shift;
    }
    return {target.saturate(raw), target};
}

FixedValue
divide(const FixedValue &num, const FixedValue &den,
       int outIntBits, int outFracBits)
{
    a3Assert(den.raw != 0, "fixed-point division by zero");
    // value(num)/value(den) = (num.raw / den.raw) * 2^(fDen - fNum).
    // Pre-shift the numerator so the integer quotient carries
    // outFracBits + (fNum - fDen) extra bits of fraction.
    const int preShift =
        outFracBits + den.fmt.fracBits - num.fmt.fracBits;
    a3Assert(preShift >= 0 && preShift < 62,
             "divide pre-shift out of range: ", preShift);
    const std::int64_t scaledNum = num.raw << preShift;
    a3Assert((scaledNum >> preShift) == num.raw,
             "divide numerator overflow during pre-shift");
    std::int64_t quotient = scaledNum / den.raw;
    FixedFormat out{outIntBits, outFracBits};
    return {out.saturate(quotient), out};
}

}  // namespace a3
