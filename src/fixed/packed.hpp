/**
 * @file
 * Packed storage formats for the quantized K/V SRAM lanes.
 *
 * A quantized input word carries intBits + fracBits + 1 bits (sign
 * included), which for every deployable configuration is far below the
 * 32 bits the legacy one-word-per-lane layout spends on it. Packing
 * the words densely — one byte per lane, or two 4-bit lanes per byte
 * — shrinks the bound K/V footprint 4-8x: what the SessionCache
 * byte budget, the sharded streaming volume, and the memory-bound hot
 * loops actually pay for.
 *
 * Packing is always lossless: a lane stores the exact two's-complement
 * quantized word, so the packed pipelines are bit-identical to the
 * int32-word pipeline. Quantization is symmetric (FixedFormat's range
 * is [-maxRaw, maxRaw]), so the per-row metadata is a dequantization
 * scale with an implicit zero point of 0.
 */

#ifndef A3_FIXED_PACKED_HPP
#define A3_FIXED_PACKED_HPP

#include <cstddef>
#include <cstdint>

namespace a3 {

/** Storage layout of the quantized key/value lanes. */
enum class PackedKvFormat {
    Auto,    ///< narrowest lossless lane for the input format
    Word32,  ///< legacy layout: one int32 word per lane
    Int8,    ///< one byte per lane (input word <= 8 bits)
    Int4,    ///< two nibble lanes per byte (input word <= 4 bits)
};

/** Stable lowercase name ("auto", "word32", "int8", "int4"). */
const char *packedKvFormatName(PackedKvFormat format);

/** Lane width in bits (32 / 8 / 4); 0 for Auto. */
int packedKvLaneBits(PackedKvFormat format);

/**
 * Resolve the storage layout for an input format of intBits.fracBits:
 * Auto picks the narrowest lane the word fits losslessly; an explicit
 * Int8/Int4 request whose input word (intBits + fracBits + 1) exceeds
 * the lane width is a user error and fatal()s — packing never
 * requantizes, so a too-narrow lane cannot be honored.
 */
PackedKvFormat resolvePackedKvFormat(PackedKvFormat requested,
                                     int intBits, int fracBits);

/** Bytes one packed row of `dims` lanes occupies in `format`. */
std::size_t packedRowBytes(PackedKvFormat format, std::size_t dims);

/**
 * Nibble layout: element 2k lives in the low nibble and element 2k+1
 * in the high nibble of byte k; a trailing odd element leaves the high
 * nibble zero. Nibbles are two's complement, so lanes span [-8, 7]
 * (the symmetric quantizer only ever produces [-7, 7]).
 */
inline std::uint8_t
packNibblePair(std::int8_t low, std::int8_t high)
{
    return static_cast<std::uint8_t>((low & 0xF) |
                                     ((high & 0xF) << 4));
}

/**
 * Sign-extended low-nibble lane of a packed byte. The xor-sub form
 * ((v ^ 8) - 8 over the 4-bit value) is the same sign extension the
 * SIMD nibble paths use.
 */
inline std::int8_t
unpackNibbleLow(std::uint8_t byte)
{
    return static_cast<std::int8_t>(((byte & 0xF) ^ 8) - 8);
}

/** Sign-extended high-nibble lane of a packed byte. */
inline std::int8_t
unpackNibbleHigh(std::uint8_t byte)
{
    return static_cast<std::int8_t>(((byte >> 4) ^ 8) - 8);
}

}  // namespace a3

#endif  // A3_FIXED_PACKED_HPP
