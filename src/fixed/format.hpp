/**
 * @file
 * Runtime-parameterized fixed-point formats.
 *
 * A3 quantizes floating-point inputs to `i` integer bits and `f` fraction
 * bits plus a sign bit (Section III-B), then widens the format stage by
 * stage through the pipeline so that no precision is lost and no overflow
 * can occur. Formats are runtime values (not template parameters) because
 * the derived widths depend on the runtime n and d of the attention task.
 */

#ifndef A3_FIXED_FORMAT_HPP
#define A3_FIXED_FORMAT_HPP

#include <cstdint>
#include <string>

namespace a3 {

/**
 * A signed fixed-point format with `intBits` integer bits and `fracBits`
 * fraction bits plus an implicit sign bit. A raw value `r` represents the
 * real number `r * 2^-fracBits`.
 */
struct FixedFormat
{
    int intBits = 0;
    int fracBits = 0;

    /** Total storage width including the sign bit. */
    int totalBits() const { return intBits + fracBits + 1; }

    /** Largest representable raw value: 2^(intBits+fracBits) - 1. */
    std::int64_t maxRaw() const;

    /** Smallest representable raw value: -maxRaw() (symmetric range,
     * so products never outgrow the doubled-width format). */
    std::int64_t minRaw() const;

    /** Value of one least-significant bit. */
    double resolution() const;

    /** Largest representable real value. */
    double maxValue() const;

    /** Smallest (most negative) representable real value. */
    double minValue() const;

    /** True when `raw` fits this format without saturation. */
    bool fits(std::int64_t raw) const;

    /**
     * Quantize a real value: round-to-nearest-even at the format
     * resolution, then saturate to the representable range.
     */
    std::int64_t quantize(double value) const;

    /** Reconstruct the real value of a raw word. */
    double toDouble(std::int64_t raw) const;

    /** Saturate an arbitrary raw word into this format. */
    std::int64_t saturate(std::int64_t raw) const;

    /** Human-readable form like "Q4.4" (intBits.fracBits). */
    std::string str() const;

    bool operator==(const FixedFormat &other) const = default;
};

}  // namespace a3

#endif  // A3_FIXED_FORMAT_HPP
