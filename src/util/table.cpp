#include "util/table.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "util/logging.hpp"

namespace a3 {

Table::Table(std::string title) : title_(std::move(title)) {}

void
Table::setHeader(std::vector<std::string> cells)
{
    a3Assert(rows_.empty(), "table header must precede rows");
    header_ = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    a3Assert(header_.empty() || cells.size() == header_.size(),
             "row width ", cells.size(), " != header width ",
             header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::num(double value, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << value;
    return os.str();
}

std::string
Table::ratio(double value, int precision)
{
    return num(value, precision) + "x";
}

std::string
Table::percent(double fraction, int precision)
{
    return num(100.0 * fraction, precision) + "%";
}

std::string
Table::render() const
{
    // Compute column widths over header and all rows.
    std::vector<std::size_t> widths(header_.size(), 0);
    auto fold = [&widths](const std::vector<std::string> &cells) {
        if (widths.size() < cells.size())
            widths.resize(cells.size(), 0);
        for (std::size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    fold(header_);
    for (const auto &row : rows_)
        fold(row);

    std::ostringstream os;
    os << "== " << title_ << " ==\n";
    auto emitRow = [&os, &widths](const std::vector<std::string> &cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            os << std::left << std::setw(static_cast<int>(widths[i]) + 2)
               << cells[i];
        }
        os << "\n";
    };
    if (!header_.empty()) {
        emitRow(header_);
        std::size_t total = 0;
        for (auto w : widths)
            total += w + 2;
        os << std::string(total, '-') << "\n";
    }
    for (const auto &row : rows_)
        emitRow(row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fputc('\n', stdout);
}

}  // namespace a3
