/**
 * @file
 * Streaming statistics accumulators used by the experiment harness.
 */

#ifndef A3_UTIL_STATS_HPP
#define A3_UTIL_STATS_HPP

#include <cstddef>
#include <limits>
#include <vector>

namespace a3 {

/**
 * Single-pass mean / variance / extrema accumulator (Welford's algorithm),
 * numerically stable for long runs of accuracy or cycle samples.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double sample);

    /** Number of samples seen so far. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 when fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void clear();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width histogram over [lo, hi) with under/overflow buckets,
 * used to characterize score and weight distributions.
 */
class Histogram
{
  public:
    /** @param bins number of equal-width buckets between lo and hi. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double sample);

    /** Count in bucket `index` (0-based, excludes under/overflow). */
    std::size_t bucket(std::size_t index) const;

    /** Samples below the histogram range. */
    std::size_t underflow() const { return underflow_; }

    /** Samples at or above the histogram range. */
    std::size_t overflow() const { return overflow_; }

    /** Total samples recorded, including under/overflow. */
    std::size_t total() const { return total_; }

    /** Number of in-range buckets. */
    std::size_t bins() const { return counts_.size(); }

    /** Inclusive lower edge of bucket `index`. */
    double bucketLow(std::size_t index) const;

    /** Fraction of in-range mass at or below bucket `index`. */
    double cumulativeFraction(std::size_t index) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

/** Exact percentile (linear interpolation) of a sample vector; sorts a copy. */
double percentile(std::vector<double> samples, double fraction);

}  // namespace a3

#endif  // A3_UTIL_STATS_HPP
