/**
 * @file
 * Streaming statistics accumulators used by the experiment harness.
 */

#ifndef A3_UTIL_STATS_HPP
#define A3_UTIL_STATS_HPP

#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <vector>

namespace a3 {

/**
 * Single-pass mean / variance / extrema accumulator (Welford's algorithm),
 * numerically stable for long runs of accuracy or cycle samples.
 */
class RunningStat
{
  public:
    /** Fold one sample into the accumulator. */
    void add(double sample);

    /** Number of samples seen so far. */
    std::size_t count() const { return count_; }

    /** Arithmetic mean; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }

    /** Unbiased sample variance; 0 when fewer than two samples. */
    double variance() const;

    /** Sample standard deviation. */
    double stddev() const;

    /** Smallest sample; +inf when empty. */
    double min() const { return min_; }

    /** Largest sample; -inf when empty. */
    double max() const { return max_; }

    /** Sum of all samples. */
    double sum() const { return sum_; }

    /** Merge another accumulator into this one (parallel reduction). */
    void merge(const RunningStat &other);

    /** Reset to the empty state. */
    void clear();

  private:
    std::size_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Fixed-width histogram over [lo, hi) with under/overflow buckets,
 * used to characterize score and weight distributions.
 */
class Histogram
{
  public:
    /** @param bins number of equal-width buckets between lo and hi. */
    Histogram(double lo, double hi, std::size_t bins);

    /** Record one sample. */
    void add(double sample);

    /** Count in bucket `index` (0-based, excludes under/overflow). */
    std::size_t bucket(std::size_t index) const;

    /** Samples below the histogram range. */
    std::size_t underflow() const { return underflow_; }

    /** Samples at or above the histogram range. */
    std::size_t overflow() const { return overflow_; }

    /** Total samples recorded, including under/overflow. */
    std::size_t total() const { return total_; }

    /** Number of in-range buckets. */
    std::size_t bins() const { return counts_.size(); }

    /** Inclusive lower edge of bucket `index`. */
    double bucketLow(std::size_t index) const;

    /** Fraction of in-range mass at or below bucket `index`. */
    double cumulativeFraction(std::size_t index) const;

  private:
    double lo_;
    double hi_;
    double width_;
    std::vector<std::size_t> counts_;
    std::size_t underflow_ = 0;
    std::size_t overflow_ = 0;
    std::size_t total_ = 0;
};

/** Exact percentile (linear interpolation) of a sample vector; sorts a copy. */
double percentile(std::vector<double> samples, double fraction);

/** percentile() over an already-sorted ascending sample vector —
 *  multi-quantile readers sort once and interpolate per fraction. */
double percentileSorted(const std::vector<double> &sorted,
                        double fraction);

/**
 * Fixed-capacity sliding window over the most recent samples — the
 * bounded store behind the serving tier's latency percentiles. add()
 * is O(1) and never allocates after construction, so a scheduler can
 * record every request without unbounded growth; once `capacity`
 * samples have been seen, each add() overwrites the oldest retained
 * sample (a deterministic last-N window, not randomized reservoir
 * sampling, so seeded runs reproduce identical tails). percentile()
 * reads the retained window through a3::percentile().
 *
 * Thread-safe: every member takes an internal lock, so recorders
 * (drain threads, heartbeat threads) and percentile readers (stats
 * snapshots) may run concurrently. A reader sees some consistent
 * window — each sample is recorded atomically, and copies (the
 * stats-snapshot path) lock the source.
 */
class LatencyReservoir
{
  public:
    /** @param capacity retained window size (> 0). */
    explicit LatencyReservoir(std::size_t capacity);

    LatencyReservoir(const LatencyReservoir &other);
    LatencyReservoir &operator=(const LatencyReservoir &other);

    /** Record one sample, evicting the oldest when full. */
    void add(double sample);

    /** Retained window size. */
    std::size_t capacity() const { return capacity_; }

    /** Samples currently retained (<= capacity). */
    std::size_t size() const;

    /** Total samples ever recorded, including evicted ones. */
    std::uint64_t count() const;

    /**
     * Exact percentile over the retained window (linear
     * interpolation); 0 when no samples have been recorded, so a
     * stats snapshot taken before any traffic is well-defined.
     */
    double percentile(double fraction) const;

    /**
     * Several percentiles over one sorted copy of the window:
     * out[i] = percentile(fractions[i]), but the window is copied
     * and sorted once instead of per fraction — what a stats
     * snapshot reading p50/p95/p99 under a lock wants. Zeros when
     * empty.
     */
    void percentiles(const double *fractions, std::size_t count,
                     double *out) const;

    /** Drop every retained sample and zero the total count. */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::size_t capacity_ = 0;
    std::vector<double> samples_;
    /** Slot the next add() overwrites once the window is full. */
    std::size_t next_ = 0;
    std::size_t size_ = 0;
    std::uint64_t count_ = 0;
};

}  // namespace a3

#endif  // A3_UTIL_STATS_HPP
