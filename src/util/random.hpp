/**
 * @file
 * Deterministic pseudo-random number generation for workloads and tests.
 *
 * The generator is xoshiro256++ seeded through SplitMix64, which gives
 * reproducible streams across platforms (unlike std::default_random_engine)
 * while remaining far faster than std::mt19937_64. All experiment drivers
 * take an explicit seed so every table in EXPERIMENTS.md is replayable.
 */

#ifndef A3_UTIL_RANDOM_HPP
#define A3_UTIL_RANDOM_HPP

#include <cstdint>
#include <vector>

namespace a3 {

/**
 * xoshiro256++ generator. Satisfies UniformRandomBitGenerator so it can
 * also be handed to <random> distributions when convenient.
 */
class Rng
{
  public:
    using result_type = std::uint64_t;

    /** Construct from a 64-bit seed; any value (including 0) is valid. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ull; }

    /** Next raw 64-bit output. */
    result_type operator()();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [lo, hi] (inclusive); requires lo <= hi. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** Standard normal deviate (Box-Muller with caching). */
    double normal();

    /** Normal deviate with the given mean and standard deviation. */
    double normal(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

    /** A fresh vector of `count` standard-normal samples. */
    std::vector<double> normalVector(std::size_t count);

    /** Fisher-Yates shuffle of `values` in place. */
    template <typename T>
    void
    shuffle(std::vector<T> &values)
    {
        for (std::size_t i = values.size(); i > 1; --i) {
            std::size_t j = static_cast<std::size_t>(
                uniformInt(0, static_cast<std::int64_t>(i) - 1));
            std::swap(values[i - 1], values[j]);
        }
    }

    /** Derive an independent child stream (for per-trial generators). */
    Rng split();

  private:
    std::uint64_t state_[4];
    double cachedNormal_ = 0.0;
    bool hasCachedNormal_ = false;
};

}  // namespace a3

#endif  // A3_UTIL_RANDOM_HPP
