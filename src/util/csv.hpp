/**
 * @file
 * Minimal CSV writer so bench binaries can optionally dump machine-readable
 * results (one file per figure) next to the human-readable tables.
 */

#ifndef A3_UTIL_CSV_HPP
#define A3_UTIL_CSV_HPP

#include <fstream>
#include <string>
#include <vector>

namespace a3 {

/** Stream-style CSV writer with RFC-4180 quoting. */
class CsvWriter
{
  public:
    /** Open `path` for writing; fatal() on failure. */
    explicit CsvWriter(const std::string &path);

    /** Write one row of cells, quoting where necessary. */
    void writeRow(const std::vector<std::string> &cells);

    /** Flush and close the underlying stream. */
    void close();

    ~CsvWriter();

  private:
    static std::string escape(const std::string &cell);

    std::ofstream out_;
};

}  // namespace a3

#endif  // A3_UTIL_CSV_HPP
