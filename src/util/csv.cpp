#include "util/csv.hpp"

#include "util/logging.hpp"

namespace a3 {

CsvWriter::CsvWriter(const std::string &path) : out_(path)
{
    if (!out_)
        fatal("cannot open CSV output file: ", path);
}

std::string
CsvWriter::escape(const std::string &cell)
{
    const bool needsQuoting =
        cell.find_first_of(",\"\n\r") != std::string::npos;
    if (!needsQuoting)
        return cell;
    std::string quoted = "\"";
    for (char c : cell) {
        if (c == '"')
            quoted += '"';
        quoted += c;
    }
    quoted += '"';
    return quoted;
}

void
CsvWriter::writeRow(const std::vector<std::string> &cells)
{
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (i)
            out_ << ',';
        out_ << escape(cells[i]);
    }
    out_ << '\n';
}

void
CsvWriter::close()
{
    if (out_.is_open())
        out_.close();
}

CsvWriter::~CsvWriter()
{
    close();
}

}  // namespace a3
