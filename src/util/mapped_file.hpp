/**
 * @file
 * Read-only memory-mapped file (RAII).
 *
 * The spill tier's warm-restore path: a serialized shard image is
 * mapped instead of read, so re-binding a spilled shard costs page
 * faults on the bytes actually touched rather than an up-front copy
 * of the whole image. The mapping is private and read-only; the
 * kernel backs it with the page cache, which is exactly the second
 * tier of the two-tier cache.
 */

#ifndef A3_UTIL_MAPPED_FILE_HPP
#define A3_UTIL_MAPPED_FILE_HPP

#include <cstddef>
#include <cstdint>
#include <string>

namespace a3 {

/** One read-only mmap'ed file; unmapped on destruction. */
class MappedFile
{
  public:
    MappedFile() = default;
    ~MappedFile();

    MappedFile(MappedFile &&other) noexcept;
    MappedFile &operator=(MappedFile &&other) noexcept;
    MappedFile(const MappedFile &) = delete;
    MappedFile &operator=(const MappedFile &) = delete;

    /**
     * Map `path` read-only. Returns false (and stays unmapped) when
     * the file cannot be opened, stat'ed, or mapped — a missing or
     * concurrently evicted spill image is an expected miss, not an
     * error. A zero-length file maps successfully with size() == 0.
     */
    bool open(const std::string &path);

    /** Unmap; safe to call when not mapped. */
    void close();

    bool mapped() const { return open_; }
    const std::uint8_t *data() const { return data_; }
    std::size_t size() const { return size_; }

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    bool open_ = false;
};

}  // namespace a3

#endif  // A3_UTIL_MAPPED_FILE_HPP
