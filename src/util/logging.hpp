/**
 * @file
 * Lightweight logging utilities in the spirit of gem5's logging.hh.
 *
 * Four severities are provided:
 *  - inform(): status messages with no connotation of incorrect behaviour.
 *  - warn():   something may be wrong but the run can continue.
 *  - fatal():  the run cannot continue because of a user error
 *              (bad configuration, invalid arguments); exits with code 1.
 *  - panic():  an internal invariant was violated (a library bug); aborts.
 */

#ifndef A3_UTIL_LOGGING_HPP
#define A3_UTIL_LOGGING_HPP

#include <cstdlib>
#include <sstream>
#include <string>

namespace a3 {

/** Verbosity levels for the global logger. */
enum class LogLevel {
    Quiet = 0,  ///< only fatal/panic output
    Warn = 1,   ///< warnings and above
    Info = 2,   ///< informational messages and above
    Debug = 3,  ///< everything, including debug traces
};

/** Set the process-wide log verbosity. Thread-compatible, not thread-safe. */
void setLogLevel(LogLevel level);

/** Current process-wide log verbosity. */
LogLevel logLevel();

namespace detail {

/** Emit a formatted log line to stderr if `level` passes the filter. */
void emit(LogLevel level, const char *tag, const std::string &message);

/** Fold a parameter pack into a single string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

}  // namespace detail

/** Informational message (level Info). */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emit(LogLevel::Info, "info",
                 detail::concat(std::forward<Args>(args)...));
}

/** Debug trace (level Debug). */
template <typename... Args>
void
debug(Args &&...args)
{
    detail::emit(LogLevel::Debug, "debug",
                 detail::concat(std::forward<Args>(args)...));
}

/** Warning: possibly-incorrect behaviour that does not stop the run. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emit(LogLevel::Warn, "warn",
                 detail::concat(std::forward<Args>(args)...));
}

/**
 * Unrecoverable user error (bad inputs or configuration).
 * Prints the message and exits with status 1.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::emit(LogLevel::Quiet, "fatal",
                 detail::concat(std::forward<Args>(args)...));
    std::exit(1);
}

/**
 * Internal invariant violation (a bug in this library).
 * Prints the message and aborts so a core dump / debugger can take over.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    detail::emit(LogLevel::Quiet, "panic",
                 detail::concat(std::forward<Args>(args)...));
    std::abort();
}

/** panic() unless `cond` holds; usage: a3Assert(x > 0, "x was ", x). */
template <typename Cond, typename... Args>
void
a3Assert(const Cond &cond, Args &&...args)
{
    if (!cond)
        panic("assertion failed: ", std::forward<Args>(args)...);
}

}  // namespace a3

#endif  // A3_UTIL_LOGGING_HPP
