/**
 * @file
 * ASCII table rendering for benchmark output.
 *
 * Every bench binary prints the rows/series of the corresponding paper
 * table or figure through this printer so the output format is uniform
 * and easy to diff against EXPERIMENTS.md.
 */

#ifndef A3_UTIL_TABLE_HPP
#define A3_UTIL_TABLE_HPP

#include <string>
#include <vector>

namespace a3 {

/** A simple column-aligned text table with a title and header row. */
class Table
{
  public:
    /** @param title printed above the table, e.g. "Figure 11a". */
    explicit Table(std::string title);

    /** Set the header cells; must be called before the first row. */
    void setHeader(std::vector<std::string> cells);

    /** Append one row; its width must match the header. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with `precision` digits. */
    static std::string num(double value, int precision = 3);

    /** Convenience: format a value as "12.3x" speedup notation. */
    static std::string ratio(double value, int precision = 2);

    /** Convenience: format a fraction as a percentage, e.g. "83.1%". */
    static std::string percent(double fraction, int precision = 1);

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace a3

#endif  // A3_UTIL_TABLE_HPP
