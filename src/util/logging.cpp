#include "util/logging.hpp"

#include <cstdio>

namespace a3 {

namespace {

LogLevel globalLevel = LogLevel::Warn;

}  // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail {

void
emit(LogLevel level, const char *tag, const std::string &message)
{
    if (static_cast<int>(level) > static_cast<int>(globalLevel) &&
        level != LogLevel::Quiet) {
        return;
    }
    std::fprintf(stderr, "[a3:%s] %s\n", tag, message.c_str());
}

}  // namespace detail

}  // namespace a3
