#include "util/random.hpp"

#include <cmath>

#include "util/logging.hpp"

namespace a3 {

namespace {

/** SplitMix64 step; used only to expand the user seed into state. */
std::uint64_t
splitMix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t s = seed;
    for (auto &word : state_)
        word = splitMix64(s);
}

Rng::result_type
Rng::operator()()
{
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

double
Rng::uniform()
{
    // 53 high bits give a uniform double in [0, 1).
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    a3Assert(lo <= hi, "uniformInt range inverted: ", lo, " > ", hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0)  // full 64-bit range
        return static_cast<std::int64_t>((*this)());
    // Rejection sampling to remove modulo bias.
    const std::uint64_t limit = (~0ull / span) * span;
    std::uint64_t draw;
    do {
        draw = (*this)();
    } while (draw >= limit);
    return lo + static_cast<std::int64_t>(draw % span);
}

double
Rng::normal()
{
    if (hasCachedNormal_) {
        hasCachedNormal_ = false;
        return cachedNormal_;
    }
    // Box-Muller transform; u1 is bounded away from zero to keep log finite.
    double u1;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double radius = std::sqrt(-2.0 * std::log(u1));
    const double angle = 2.0 * M_PI * u2;
    cachedNormal_ = radius * std::sin(angle);
    hasCachedNormal_ = true;
    return radius * std::cos(angle);
}

double
Rng::normal(double mean, double stddev)
{
    return mean + stddev * normal();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

std::vector<double>
Rng::normalVector(std::size_t count)
{
    std::vector<double> out(count);
    for (auto &v : out)
        v = normal();
    return out;
}

Rng
Rng::split()
{
    return Rng((*this)());
}

}  // namespace a3
