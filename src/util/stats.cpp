#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace a3 {

void
RunningStat::add(double sample)
{
    ++count_;
    sum_ += sample;
    const double delta = sample - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (sample - mean_);
    min_ = std::min(min_, sample);
    max_ = std::max(max_, sample);
}

double
RunningStat::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

void
RunningStat::merge(const RunningStat &other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double total = static_cast<double>(count_ + other.count_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta *
           static_cast<double>(count_) * static_cast<double>(other.count_) /
           total;
    mean_ = (mean_ * static_cast<double>(count_) +
             other.mean_ * static_cast<double>(other.count_)) / total;
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
RunningStat::clear()
{
    *this = RunningStat();
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0)
{
    a3Assert(hi > lo, "histogram range inverted");
    a3Assert(bins > 0, "histogram needs at least one bin");
}

void
Histogram::add(double sample)
{
    ++total_;
    if (sample < lo_) {
        ++underflow_;
    } else if (sample >= hi_) {
        ++overflow_;
    } else {
        auto index = static_cast<std::size_t>((sample - lo_) / width_);
        index = std::min(index, counts_.size() - 1);
        ++counts_[index];
    }
}

std::size_t
Histogram::bucket(std::size_t index) const
{
    a3Assert(index < counts_.size(), "histogram bucket out of range");
    return counts_[index];
}

double
Histogram::bucketLow(std::size_t index) const
{
    return lo_ + width_ * static_cast<double>(index);
}

double
Histogram::cumulativeFraction(std::size_t index) const
{
    a3Assert(index < counts_.size(), "histogram bucket out of range");
    std::size_t inRange = total_ - underflow_ - overflow_;
    if (inRange == 0)
        return 0.0;
    std::size_t running = 0;
    for (std::size_t i = 0; i <= index; ++i)
        running += counts_[i];
    return static_cast<double>(running) / static_cast<double>(inRange);
}

LatencyReservoir::LatencyReservoir(std::size_t capacity)
    : capacity_(capacity)
{
    a3Assert(capacity > 0, "reservoir needs a positive capacity");
    samples_.reserve(capacity);
}

LatencyReservoir::LatencyReservoir(const LatencyReservoir &other)
{
    const std::lock_guard<std::mutex> lock(other.mutex_);
    capacity_ = other.capacity_;
    samples_ = other.samples_;
    next_ = other.next_;
    size_ = other.size_;
    count_ = other.count_;
}

LatencyReservoir &
LatencyReservoir::operator=(const LatencyReservoir &other)
{
    if (this == &other)
        return *this;
    // Lock both sides in a fixed address order so two threads
    // assigning reservoirs to each other cannot deadlock.
    std::mutex *first = &mutex_ < &other.mutex_ ? &mutex_
                                                : &other.mutex_;
    std::mutex *second = first == &mutex_ ? &other.mutex_ : &mutex_;
    const std::lock_guard<std::mutex> lockFirst(*first);
    const std::lock_guard<std::mutex> lockSecond(*second);
    capacity_ = other.capacity_;
    samples_ = other.samples_;
    next_ = other.next_;
    size_ = other.size_;
    count_ = other.count_;
    return *this;
}

void
LatencyReservoir::add(double sample)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (size_ < capacity_) {
        samples_.push_back(sample);
        ++size_;
    } else {
        samples_[next_] = sample;
    }
    next_ = (next_ + 1) % capacity_;
    ++count_;
}

std::size_t
LatencyReservoir::size() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return size_;
}

std::uint64_t
LatencyReservoir::count() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return count_;
}

double
LatencyReservoir::percentile(double fraction) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (size_ == 0)
        return 0.0;
    return a3::percentile(samples_, fraction);
}

void
LatencyReservoir::percentiles(const double *fractions,
                              std::size_t count, double *out) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    if (size_ == 0) {
        std::fill(out, out + count, 0.0);
        return;
    }
    std::vector<double> sorted = samples_;
    std::sort(sorted.begin(), sorted.end());
    for (std::size_t i = 0; i < count; ++i)
        out[i] = percentileSorted(sorted, fractions[i]);
}

void
LatencyReservoir::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
    next_ = 0;
    size_ = 0;
    count_ = 0;
}

double
percentile(std::vector<double> samples, double fraction)
{
    std::sort(samples.begin(), samples.end());
    return percentileSorted(samples, fraction);
}

double
percentileSorted(const std::vector<double> &sorted, double fraction)
{
    a3Assert(!sorted.empty(), "percentile of empty sample set");
    a3Assert(fraction >= 0.0 && fraction <= 1.0,
             "percentile fraction must lie in [0, 1]");
    const double rank = fraction * static_cast<double>(sorted.size() - 1);
    const auto below = static_cast<std::size_t>(rank);
    const double frac = rank - static_cast<double>(below);
    if (below + 1 >= sorted.size())
        return sorted.back();
    return sorted[below] * (1.0 - frac) + sorted[below + 1] * frac;
}

}  // namespace a3
