#include "util/mapped_file.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <utility>

namespace a3 {

MappedFile::~MappedFile()
{
    close();
}

MappedFile::MappedFile(MappedFile &&other) noexcept
    : data_(other.data_), size_(other.size_), open_(other.open_)
{
    other.data_ = nullptr;
    other.size_ = 0;
    other.open_ = false;
}

MappedFile &
MappedFile::operator=(MappedFile &&other) noexcept
{
    if (this != &other) {
        close();
        data_ = std::exchange(other.data_, nullptr);
        size_ = std::exchange(other.size_, std::size_t{0});
        open_ = std::exchange(other.open_, false);
    }
    return *this;
}

bool
MappedFile::open(const std::string &path)
{
    close();
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0)
        return false;
    struct stat st{};
    if (::fstat(fd, &st) != 0 || st.st_size < 0) {
        ::close(fd);
        return false;
    }
    const auto size = static_cast<std::size_t>(st.st_size);
    if (size == 0) {
        // mmap(0) is EINVAL; an empty file is a valid empty mapping.
        ::close(fd);
        size_ = 0;
        open_ = true;
        return true;
    }
    void *mapping =
        ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    // The mapping outlives the descriptor either way.
    ::close(fd);
    if (mapping == MAP_FAILED)
        return false;
    data_ = static_cast<const std::uint8_t *>(mapping);
    size_ = size;
    open_ = true;
    return true;
}

void
MappedFile::close()
{
    if (data_ != nullptr)
        ::munmap(const_cast<std::uint8_t *>(data_), size_);
    data_ = nullptr;
    size_ = 0;
    open_ = false;
}

}  // namespace a3
