#include "attention/reference.hpp"

#include <numeric>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"

namespace a3 {

void
softmaxInPlace(float *v, std::size_t n)
{
    a3Assert(n > 0, "softmax of empty vector");
    const Kernels &k = activeKernels();
    const float maxVal = k.maxReduce(v, n);
    const float sum = k.expSumInPlace(v, n, maxVal);
    k.divideBy(v, n, sum);
}

Vector
softmax(const Vector &input)
{
    Vector out = input;
    softmaxInPlace(out.data(), out.size());
    return out;
}

AttentionResult
referenceAttention(const Matrix &key, const Matrix &value,
                   const Vector &query)
{
    std::vector<std::uint32_t> all(key.rows());
    std::iota(all.begin(), all.end(), 0u);
    return subsetAttention(key, value, query, all);
}

AttentionResult
subsetAttention(const Matrix &key, const Matrix &value,
                const Vector &query,
                const std::vector<std::uint32_t> &rows)
{
    AttentionResult result;
    subsetAttentionInto(key, value, query, rows, result,
                        Scratch::forThread());
    return result;
}

namespace {

/**
 * Shared unnormalized core: scores, exp weights u_i = exp(s_i - max),
 * their sum, and the accumulation sum u_i * v_i, written straight
 * into caller-owned buffers — PartialResult fields on the partial
 * path, AttentionResult fields on the exact path (which then
 * normalizes in place, avoiding any staging copy).
 */
void
subsetPartialCore(const Matrix &key, const Matrix &value,
                  const Vector &query,
                  std::span<const std::uint32_t> rows, Vector &scores,
                  Vector &expWeights,
                  std::vector<std::uint32_t> &candidates,
                  std::vector<std::uint32_t> &kept, Vector &accum,
                  float &maxScore, float &expSum, Scratch &scratch)
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    a3Assert(query.size() == key.cols(), "query dimension mismatch");
    a3Assert(!rows.empty(), "attention over an empty row subset");

    const std::size_t n = key.rows();
    const std::size_t d = key.cols();
    const std::size_t m = rows.size();
    for (std::uint32_t r : rows)
        a3Assert(r < n, "row index out of range");

    const Kernels &k = activeKernels();
    scores.assign(n, 0.0f);
    expWeights.assign(n, 0.0f);
    candidates.assign(rows.begin(), rows.end());
    kept.assign(rows.begin(), rows.end());

    // Step 1: dot products for the selected rows only.
    scratch.sub.resize(m);
    k.gatherDot(key.data().data(), d, rows.data(), m, query.data(),
                scratch.sub.data());
    for (std::size_t i = 0; i < m; ++i)
        scores[rows[i]] = scratch.sub[i];

    // Step 2: unnormalized softmax terms over the subset.
    maxScore = k.maxReduce(scratch.sub.data(), m);
    expSum = k.expSumInPlace(scratch.sub.data(), m, maxScore);
    for (std::size_t i = 0; i < m; ++i)
        expWeights[rows[i]] = scratch.sub[i];

    // Step 3: unnormalized accumulation of the selected value rows.
    accum.assign(d, 0.0f);
    k.gatherWeightedSum(value.data().data(), d, rows.data(), m,
                        scratch.sub.data(), accum.data());
}

}  // namespace

void
subsetAttentionInto(const Matrix &key, const Matrix &value,
                    const Vector &query,
                    std::span<const std::uint32_t> rows,
                    AttentionResult &result, Scratch &scratch)
{
    // The single-shard specialization of the partial path: the same
    // core writes the unnormalized terms into result's own buffers
    // (weights holding u_i, output holding the accumulation), and
    // normalization happens in place.
    float maxScore = 0.0f;
    float expSum = 0.0f;
    subsetPartialCore(key, value, query, rows, result.scores,
                      result.weights, result.candidates, result.kept,
                      result.output, maxScore, expSum, scratch);
    result.iterations = 0;
    const Kernels &k = activeKernels();
    k.divideBy(result.weights.data(), result.weights.size(), expSum);
    k.divideBy(result.output.data(), result.output.size(), expSum);
}

void
subsetAttentionPartialInto(const Matrix &key, const Matrix &value,
                           const Vector &query,
                           std::span<const std::uint32_t> rows,
                           PartialResult &out, Scratch &scratch)
{
    subsetPartialCore(key, value, query, rows, out.scores,
                      out.expWeights, out.candidates, out.kept,
                      out.accum, out.maxScore, out.expSum, scratch);
    out.iterations = 0;
}

}  // namespace a3
