#include "attention/reference.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "util/logging.hpp"

namespace a3 {

Vector
softmax(const Vector &input)
{
    a3Assert(!input.empty(), "softmax of empty vector");
    float maxVal = -std::numeric_limits<float>::infinity();
    for (float v : input)
        maxVal = std::max(maxVal, v);
    Vector out(input.size());
    float sum = 0.0f;
    for (std::size_t i = 0; i < input.size(); ++i) {
        out[i] = std::exp(input[i] - maxVal);
        sum += out[i];
    }
    for (auto &v : out)
        v /= sum;
    return out;
}

AttentionResult
referenceAttention(const Matrix &key, const Matrix &value,
                   const Vector &query)
{
    std::vector<std::uint32_t> all(key.rows());
    std::iota(all.begin(), all.end(), 0u);
    return subsetAttention(key, value, query, all);
}

AttentionResult
subsetAttention(const Matrix &key, const Matrix &value,
                const Vector &query,
                const std::vector<std::uint32_t> &rows)
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    a3Assert(query.size() == key.cols(), "query dimension mismatch");
    a3Assert(!rows.empty(), "attention over an empty row subset");

    const std::size_t n = key.rows();
    const std::size_t d = key.cols();

    AttentionResult result;
    result.scores.assign(n, 0.0f);
    result.weights.assign(n, 0.0f);
    result.candidates = rows;
    result.kept = rows;

    // Step 1: dot products for the selected rows only.
    Vector subsetScores(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) {
        a3Assert(rows[i] < n, "row index out of range");
        subsetScores[i] = dot(key.row(rows[i]),
                              std::span<const float>(query));
        result.scores[rows[i]] = subsetScores[i];
    }

    // Step 2: softmax over the subset.
    const Vector subsetWeights = softmax(subsetScores);
    for (std::size_t i = 0; i < rows.size(); ++i)
        result.weights[rows[i]] = subsetWeights[i];

    // Step 3: weighted sum of the selected value rows.
    result.output.assign(d, 0.0f);
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto valueRow = value.row(rows[i]);
        for (std::size_t j = 0; j < d; ++j)
            result.output[j] += subsetWeights[i] * valueRow[j];
    }
    return result;
}

}  // namespace a3
