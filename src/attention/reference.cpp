#include "attention/reference.hpp"

#include <numeric>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"

namespace a3 {

void
softmaxInPlace(float *v, std::size_t n)
{
    a3Assert(n > 0, "softmax of empty vector");
    const Kernels &k = activeKernels();
    const float maxVal = k.maxReduce(v, n);
    const float sum = k.expSumInPlace(v, n, maxVal);
    k.divideBy(v, n, sum);
}

Vector
softmax(const Vector &input)
{
    Vector out = input;
    softmaxInPlace(out.data(), out.size());
    return out;
}

AttentionResult
referenceAttention(const Matrix &key, const Matrix &value,
                   const Vector &query)
{
    std::vector<std::uint32_t> all(key.rows());
    std::iota(all.begin(), all.end(), 0u);
    return subsetAttention(key, value, query, all);
}

AttentionResult
subsetAttention(const Matrix &key, const Matrix &value,
                const Vector &query,
                const std::vector<std::uint32_t> &rows)
{
    AttentionResult result;
    subsetAttentionInto(key, value, query, rows, result,
                        Scratch::forThread());
    return result;
}

void
subsetAttentionInto(const Matrix &key, const Matrix &value,
                    const Vector &query,
                    std::span<const std::uint32_t> rows,
                    AttentionResult &result, Scratch &scratch)
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    a3Assert(query.size() == key.cols(), "query dimension mismatch");
    a3Assert(!rows.empty(), "attention over an empty row subset");

    const std::size_t n = key.rows();
    const std::size_t d = key.cols();
    const std::size_t m = rows.size();
    for (std::uint32_t r : rows)
        a3Assert(r < n, "row index out of range");

    const Kernels &k = activeKernels();
    result.scores.assign(n, 0.0f);
    result.weights.assign(n, 0.0f);
    result.candidates.assign(rows.begin(), rows.end());
    result.kept.assign(rows.begin(), rows.end());
    result.iterations = 0;

    // Step 1: dot products for the selected rows only.
    scratch.sub.resize(m);
    k.gatherDot(key.data().data(), d, rows.data(), m, query.data(),
                scratch.sub.data());
    for (std::size_t i = 0; i < m; ++i)
        result.scores[rows[i]] = scratch.sub[i];

    // Step 2: softmax over the subset.
    softmaxInPlace(scratch.sub.data(), m);
    for (std::size_t i = 0; i < m; ++i)
        result.weights[rows[i]] = scratch.sub[i];

    // Step 3: weighted sum of the selected value rows.
    result.output.assign(d, 0.0f);
    k.gatherWeightedSum(value.data().data(), d, rows.data(), m,
                        scratch.sub.data(), result.output.data());
}

}  // namespace a3
