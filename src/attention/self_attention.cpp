#include "attention/self_attention.hpp"

#include "util/logging.hpp"

namespace a3 {

SelfAttentionResult
selfAttention(const Matrix &key, const Matrix &value,
              const Matrix &queries, const ApproxConfig &config)
{
    a3Assert(queries.cols() == key.cols(),
             "query width must match the key dimension");
    const ApproxAttention engine(key, value, config);

    SelfAttentionResult result;
    const std::size_t tokens = queries.rows();
    result.outputs = Matrix(tokens, key.cols());
    result.perToken.reserve(tokens);
    double candSum = 0.0;
    double keptSum = 0.0;
    for (std::size_t t = 0; t < tokens; ++t) {
        Vector q(queries.row(t).begin(), queries.row(t).end());
        AttentionResult r = engine.run(q);
        for (std::size_t j = 0; j < key.cols(); ++j)
            result.outputs(t, j) = r.output[j];
        candSum += static_cast<double>(r.candidates.size());
        keptSum += static_cast<double>(r.kept.size());
        result.perToken.push_back(std::move(r));
    }
    if (tokens > 0) {
        result.avgCandidates = candSum / static_cast<double>(tokens);
        result.avgKept = keptSum / static_cast<double>(tokens);
    }
    return result;
}

Matrix
zeroPadColumns(const Matrix &m, std::size_t targetCols)
{
    a3Assert(targetCols >= m.cols(),
             "zero-padding cannot shrink the matrix");
    Matrix out(m.rows(), targetCols);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            out(r, c) = m(r, c);
    return out;
}

Vector
zeroPad(const Vector &v, std::size_t targetDims)
{
    a3Assert(targetDims >= v.size(),
             "zero-padding cannot shrink the vector");
    Vector out(targetDims, 0.0f);
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = v[i];
    return out;
}

}  // namespace a3
