#include "attention/self_attention.hpp"

#include "engine/engine.hpp"
#include "util/logging.hpp"

namespace a3 {

SelfAttentionResult
selfAttention(const Matrix &key, const Matrix &value,
              const Matrix &queries, const ApproxConfig &config)
{
    // Route through the shared engine: preprocessing happens once and
    // the token queries are answered in parallel, with results in
    // token order and bit-identical to a sequential loop.
    return AttentionEngine::shared().selfAttention(key, value, queries,
                                                   config);
}

Matrix
zeroPadColumns(const Matrix &m, std::size_t targetCols)
{
    a3Assert(targetCols >= m.cols(),
             "zero-padding cannot shrink the matrix");
    Matrix out(m.rows(), targetCols);
    for (std::size_t r = 0; r < m.rows(); ++r)
        for (std::size_t c = 0; c < m.cols(); ++c)
            out(r, c) = m(r, c);
    return out;
}

Vector
zeroPad(const Vector &v, std::size_t targetDims)
{
    a3Assert(targetDims >= v.size(),
             "zero-padding cannot shrink the vector");
    Vector out(targetDims, 0.0f);
    for (std::size_t i = 0; i < v.size(); ++i)
        out[i] = v[i];
    return out;
}

}  // namespace a3
