#include "attention/multi_hop.hpp"

#include "engine/engine.hpp"
#include "util/logging.hpp"

namespace a3 {

MultiHopAttention::MultiHopAttention(Matrix key, Matrix value,
                                     ApproxConfig config,
                                     std::size_t hopCount)
    : engine_(std::move(key), std::move(value), config),
      hopCount_(hopCount)
{
    a3Assert(hopCount_ >= 1, "multi-hop attention needs >= 1 hop");
}

MultiHopResult
MultiHopAttention::run(const Vector &query) const
{
    MultiHopResult result;
    result.hops.reserve(hopCount_);
    Vector u = query;
    for (std::size_t hop = 0; hop < hopCount_; ++hop) {
        AttentionResult hopResult = engine_.run(u);
        // MemN2N query update: u^{k+1} = u^k + o^k.
        for (std::size_t j = 0; j < u.size(); ++j)
            u[j] += hopResult.output[j];
        result.hops.push_back(std::move(hopResult));
    }
    result.finalQuery = std::move(u);
    return result;
}

std::vector<MultiHopResult>
MultiHopAttention::runBatch(const std::vector<Vector> &queries) const
{
    return AttentionEngine::shared().runMultiHop(*this, queries);
}

}  // namespace a3
