#include "attention/approx_attention.hpp"

#include <algorithm>
#include <numeric>

#include "attention/post_scoring.hpp"
#include "attention/reference.hpp"
#include "util/logging.hpp"

namespace a3 {

ApproxAttention::ApproxAttention(Matrix key, Matrix value,
                                 ApproxConfig config)
    : key_(std::move(key)), value_(std::move(value)),
      config_(config)
{
    a3Assert(key_.rows() == value_.rows() &&
                 key_.cols() == value_.cols(),
             "key/value shape mismatch");
    a3Assert(key_.rows() > 0 && key_.cols() > 0,
             "attention task must be non-empty");
    if (config_.candidateSelection)
        sorted_ = SortedKey::build(key_);
}

CandidateSearchResult
ApproxAttention::selectCandidates(const Vector &query) const
{
    a3Assert(config_.candidateSelection,
             "candidate selection disabled in this configuration");
    return efficientGreedySearch(sorted_, query,
                                 config_.iterationsFor(key_.rows()),
                                 config_.skipHeuristic);
}

ApproxAttention::CandidateStage
ApproxAttention::candidateStage(const Vector &query) const
{
    CandidateStage stage;
    const std::size_t n = key_.rows();
    if (config_.candidateSelection) {
        CandidateSearchResult search = selectCandidates(query);
        stage.iterations = config_.iterationsFor(n);
        stage.rows = std::move(search.candidates);
        if (stage.rows.empty()) {
            // Degenerate case (all products non-positive): keep the row
            // with the largest greedy score so the softmax stays
            // well-defined; the paper's skip heuristic makes this rare.
            const auto best = std::max_element(
                search.greedyScore.begin(), search.greedyScore.end());
            stage.rows.push_back(static_cast<std::uint32_t>(
                best - search.greedyScore.begin()));
        }
    } else {
        stage.rows.resize(n);
        std::iota(stage.rows.begin(), stage.rows.end(), 0u);
    }
    return stage;
}

AttentionResult
ApproxAttention::run(const Vector &query) const
{
    a3Assert(query.size() == key_.cols(), "query dimension mismatch");

    // Stage 1: candidate selection.
    CandidateStage stage = candidateStage(query);
    std::vector<std::uint32_t> candidates = std::move(stage.rows);
    const std::size_t iterations = stage.iterations;

    // Stage 2: exact dot products for the candidates.
    Vector candidateScores(candidates.size());
    for (std::size_t i = 0; i < candidates.size(); ++i) {
        candidateScores[i] = dot(key_.row(candidates[i]),
                                 std::span<const float>(query));
    }

    // Stage 3: post-scoring selection.
    std::vector<std::uint32_t> kept;
    if (config_.postScoring) {
        kept = postScoringSelect(candidates, candidateScores,
                                 config_.scoreGap());
    } else {
        kept = candidates;
    }

    // Stages 4-5: softmax and weighted sum over the kept rows.
    AttentionResult result =
        subsetAttention(key_, value_, query, kept);
    result.candidates = std::move(candidates);
    result.kept = std::move(kept);
    result.iterations = iterations;
    // subsetAttention() only filled scores for kept rows; also record
    // the candidate scores that post-scoring inspected.
    for (std::size_t i = 0; i < result.candidates.size(); ++i)
        result.scores[result.candidates[i]] = candidateScores[i];
    return result;
}

}  // namespace a3
