#include "attention/approx_attention.hpp"

#include <numeric>
#include <utility>

#include "attention/post_scoring.hpp"
#include "attention/reference.hpp"
#include "attention/serialize.hpp"
#include "kernels/kernels.hpp"
#include "net/wire.hpp"
#include "util/logging.hpp"

namespace a3 {

ApproxAttention::ApproxAttention(Matrix key, Matrix value,
                                 ApproxConfig config)
    : key_(std::move(key)), value_(std::move(value)),
      config_(config)
{
    a3Assert(key_.rows() == value_.rows() &&
                 key_.cols() == value_.cols(),
             "key/value shape mismatch");
    a3Assert(key_.rows() > 0 && key_.cols() > 0,
             "attention task must be non-empty");
    if (config_.candidateSelection)
        sorted_ = SortedKey::build(key_);
    Scratch::forThread().reserveTask(key_.rows(), key_.cols());
}

void
ApproxAttention::append(const Matrix &keyRows, const Matrix &valueRows)
{
    a3Assert(keyRows.rows() == valueRows.rows() &&
                 keyRows.cols() == valueRows.cols(),
             "appended key/value shape mismatch");
    a3Assert(keyRows.cols() == key_.cols(),
             "appended rows must match the task dimension");
    const auto firstRowId = static_cast<std::uint32_t>(key_.rows());
    key_.appendRows(keyRows);
    value_.appendRows(valueRows);
    if (config_.candidateSelection)
        sorted_.append(keyRows, firstRowId);
    Scratch::forThread().reserveTask(key_.rows(), key_.cols());
}

std::size_t
ApproxAttention::memoryBytes() const
{
    return (key_.data().size() + value_.data().size()) * sizeof(float) +
           sorted_.storageBytes();
}

std::unique_ptr<AttentionBackend>
ApproxAttention::clone() const
{
    // Member-wise copy: matrices and the sorted columns are plain
    // vectors, so the clone answers queries bit-identically without
    // re-running the build() sort.
    return std::unique_ptr<AttentionBackend>(
        new ApproxAttention(*this));
}

std::size_t
ApproxAttention::compact()
{
    return key_.shrinkToFit() + value_.shrinkToFit() +
           sorted_.compact();
}

void
ApproxAttention::serializeState(WireWriter &out) const
{
    writeMatrix(out, key_);
    writeMatrix(out, value_);
    // The sorted orders travel verbatim — (vals, rowIds) per column —
    // so restore() skips the build() sort entirely.
    out.u8(config_.candidateSelection ? 1 : 0);
    if (!config_.candidateSelection)
        return;
    const std::size_t rows = sorted_.rows();
    const std::size_t cols = sorted_.cols();
    std::vector<float> vals(rows);
    std::vector<std::uint32_t> rowIds(rows);
    for (std::size_t c = 0; c < cols; ++c) {
        const auto &column = sorted_.columnEntries(c);
        for (std::size_t i = 0; i < rows; ++i) {
            vals[i] = column[i].val;
            rowIds[i] = column[i].rowId;
        }
        out.floats(vals.data(), rows);
        out.u32s(rowIds.data(), rows);
    }
}

std::unique_ptr<ApproxAttention>
ApproxAttention::restore(const ApproxConfig &config, WireReader &in)
{
    Matrix key;
    Matrix value;
    if (!readMatrix(in, key) || !readMatrix(in, value) ||
        key.rows() != value.rows() || key.cols() != value.cols())
        return nullptr;
    const std::uint8_t hasSorted = in.u8();
    if (!in.ok() ||
        (hasSorted != 0) != config.candidateSelection)
        return nullptr;

    auto backend =
        std::unique_ptr<ApproxAttention>(new ApproxAttention());
    backend->config_ = config;
    if (hasSorted != 0) {
        const std::size_t rows = key.rows();
        const std::size_t cols = key.cols();
        std::vector<std::vector<SortedKeyEntry>> columns(cols);
        std::vector<float> vals;
        std::vector<std::uint32_t> rowIds;
        for (std::size_t c = 0; c < cols; ++c) {
            in.floats(vals);
            in.u32s(rowIds);
            if (!in.ok() || vals.size() != rows ||
                rowIds.size() != rows)
                return nullptr;
            auto &column = columns[c];
            column.resize(rows);
            for (std::size_t i = 0; i < rows; ++i)
                column[i] = {vals[i], rowIds[i]};
        }
        backend->sorted_ =
            SortedKey::fromColumns(rows, cols, std::move(columns));
    }
    backend->key_ = std::move(key);
    backend->value_ = std::move(value);
    Scratch::forThread().reserveTask(backend->key_.rows(),
                                     backend->key_.cols());
    return backend;
}

CandidateSearchResult
ApproxAttention::selectCandidates(const Vector &query) const
{
    a3Assert(config_.candidateSelection,
             "candidate selection disabled in this configuration");
    return efficientGreedySearch(sorted_, query,
                                 config_.iterationsFor(key_.rows()),
                                 config_.skipHeuristic);
}

std::size_t
ApproxAttention::candidateRowsInto(const Vector &query,
                                   Scratch &scratch) const
{
    const std::size_t n = key_.rows();
    if (!config_.candidateSelection) {
        scratch.rowIds.resize(n);
        std::iota(scratch.rowIds.begin(), scratch.rowIds.end(), 0u);
        return 0;
    }
    const std::size_t iterations = config_.iterationsFor(n);
    efficientGreedySearchCore(sorted_, query, iterations,
                              config_.skipHeuristic, scratch);
    if (scratch.rowIds.empty()) {
        // Degenerate case (all products non-positive): keep the row
        // with the largest greedy score so the softmax stays
        // well-defined; the paper's skip heuristic makes this rare.
        // Compared in float, first-of-equals, exactly as the historic
        // max_element over the float greedyScore array did.
        std::uint32_t best = 0;
        float bestScore = static_cast<float>(scratch.greedy[0]);
        for (std::size_t r = 1; r < n; ++r) {
            const float g = static_cast<float>(scratch.greedy[r]);
            if (g > bestScore) {
                bestScore = g;
                best = static_cast<std::uint32_t>(r);
            }
        }
        scratch.rowIds.push_back(best);
    }
    return iterations;
}

/**
 * Stages 1-3 shared by runInto() and runPartialInto(): candidate
 * selection into scratch.rowIds, candidate dot products into
 * scratch.candScores, post-scoring survivors into scratch.kept.
 * Returns the greedy iterations executed.
 */
std::size_t
ApproxAttention::selectKeptInto(const Vector &query,
                                Scratch &scratch) const
{
    a3Assert(query.size() == key_.cols(), "query dimension mismatch");
    const Kernels &k = activeKernels();

    // Stage 1: candidate selection.
    const std::size_t iterations = candidateRowsInto(query, scratch);
    const std::size_t count = scratch.rowIds.size();

    // Stage 2: exact dot products for the candidates.
    scratch.candScores.resize(count);
    k.gatherDot(key_.data().data(), key_.cols(),
                scratch.rowIds.data(), count, query.data(),
                scratch.candScores.data());

    // Stage 3: post-scoring selection.
    if (config_.postScoring) {
        postScoringSelectInto(scratch.rowIds, scratch.candScores,
                              config_.scoreGap(), scratch.kept);
    } else {
        scratch.kept.assign(scratch.rowIds.begin(),
                            scratch.rowIds.end());
    }
    return iterations;
}

void
ApproxAttention::runInto(const Vector &query,
                         AttentionResult &out) const
{
    Scratch &scratch = Scratch::forThread();
    const std::size_t iterations = selectKeptInto(query, scratch);
    const std::size_t count = scratch.rowIds.size();

    // Stages 4-5: softmax and weighted sum over the kept rows.
    subsetAttentionInto(key_, value_, query, scratch.kept, out,
                        scratch);
    out.candidates.assign(scratch.rowIds.begin(),
                          scratch.rowIds.end());
    out.iterations = iterations;
    // subsetAttentionInto() only filled scores for kept rows; also
    // record the candidate scores that post-scoring inspected.
    for (std::size_t i = 0; i < count; ++i)
        out.scores[scratch.rowIds[i]] = scratch.candScores[i];
}

void
ApproxAttention::runPartialInto(const Vector &query,
                                PartialResult &out) const
{
    Scratch &scratch = Scratch::forThread();
    const std::size_t iterations = selectKeptInto(query, scratch);
    const std::size_t count = scratch.rowIds.size();

    // Stages 4-5, stopped before normalization: the log-sum-exp terms
    // over the kept rows are what a shard merge combines.
    subsetAttentionPartialInto(key_, value_, query, scratch.kept, out,
                               scratch);
    out.candidates.assign(scratch.rowIds.begin(),
                          scratch.rowIds.end());
    out.iterations = iterations;
    for (std::size_t i = 0; i < count; ++i)
        out.scores[scratch.rowIds[i]] = scratch.candScores[i];
}

}  // namespace a3
