/**
 * @file
 * Pre-sorted key matrix (Section IV-C preprocessing).
 *
 * Each column of the key matrix is sorted ascending by value, and every
 * entry carries the row index it came from in the original matrix —
 * exactly the (val, rowID) pair layout of the paper's sortedKey SRAM
 * (Figure 8). Preprocessing happens at comprehension time (off the
 * query critical path), or is amortized over many queries for
 * self-attention models like BERT.
 */

#ifndef A3_ATTENTION_SORTED_KEY_HPP
#define A3_ATTENTION_SORTED_KEY_HPP

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace a3 {

/** One word of the sorted-key SRAM: a key value plus its origin row. */
struct SortedKeyEntry
{
    float val = 0.0f;
    std::uint32_t rowId = 0;
};

/** Column-sorted view of a key matrix. */
class SortedKey
{
  public:
    SortedKey() = default;

    /**
     * Sort every column of `key` ascending by value. Ties keep the
     * original row order (stable), which pins down the pop order of the
     * greedy search for reproducibility.
     */
    static SortedKey build(const Matrix &key);

    /**
     * Insert k new rows — rows firstRowId .. firstRowId + k - 1 of the
     * grown task — into every column's sorted order. Bit-identical to
     * rebuilding from the concatenated key matrix (the (val, rowId)
     * ordering is unique, so merging reproduces the full sort), but
     * costs one O(n + k log k) merge per column instead of the
     * O((n + k) log(n + k)) sort of build() — the incremental-binding
     * fast path of the serving layer. `firstRowId` must equal rows().
     */
    void append(const Matrix &newRows, std::uint32_t firstRowId);

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }

    /**
     * Entry at sorted position `pos` (0 = smallest) of column `col`.
     */
    const SortedKeyEntry &at(std::size_t pos, std::size_t col) const;

    /** Size in bytes of the modeled SRAM (value + row id per entry). */
    std::size_t storageBytes() const;

    /** Full sorted order of column `col` (serialization access). */
    const std::vector<SortedKeyEntry> &
    columnEntries(std::size_t col) const;

    /**
     * Adopt pre-sorted columns verbatim — the spill-restore path,
     * which skips the build() sort entirely. Every column must hold
     * `rows` entries already in (val, rowId) order; the caller (the
     * shard-image decoder) validates shape before adopting.
     */
    static SortedKey
    fromColumns(std::size_t rows, std::size_t cols,
                std::vector<std::vector<SortedKeyEntry>> columns);

    /** Bytes the columns have reserved (> storageBytes() after
     *  append() growth). */
    std::size_t capacityBytes() const;

    /**
     * Release slack capacity left behind by append() growth; returns
     * the bytes reclaimed. The sorted orders are untouched — the
     * merged order is already exactly build()'s order (append()'s
     * contract), so compaction never changes a query result.
     */
    std::size_t compact();

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    /** Column-major: columns_[col][pos], ascending by val. */
    std::vector<std::vector<SortedKeyEntry>> columns_;
};

}  // namespace a3

#endif  // A3_ATTENTION_SORTED_KEY_HPP
