/**
 * @file
 * Multi-hop attention (the MemN2N usage pattern, Section II-A).
 *
 * "If multiple sentences are required to answer the question, it
 * updates the query with the relevant sentence found in the previous
 * iteration and utilizes the attention mechanism again." End-to-End
 * Memory Networks implement that update as u^{k+1} = u^k + o^k: the
 * next hop's query is the previous query plus the previous attention
 * output. Every hop reuses the same preprocessed key matrix, so the
 * candidate-selection preprocessing is amortized across hops exactly
 * like it is across BERT's queries.
 */

#ifndef A3_ATTENTION_MULTI_HOP_HPP
#define A3_ATTENTION_MULTI_HOP_HPP

#include <vector>

#include "attention/approx_attention.hpp"

namespace a3 {

/** Result of a multi-hop run: every hop's result plus the final query. */
struct MultiHopResult
{
    /** Per-hop attention results, in hop order. */
    std::vector<AttentionResult> hops;

    /** The query vector after the final update. */
    Vector finalQuery;

    /** Convenience: the last hop's result. */
    const AttentionResult &finalHop() const { return hops.back(); }
};

/** Iterated attention over one preprocessed key/value task. */
class MultiHopAttention
{
  public:
    /**
     * @param key n x d key matrix (preprocessed once).
     * @param value n x d value matrix.
     * @param config approximation knobs applied at every hop.
     * @param hopCount number of hops (>= 1; MemN2N uses 3 on bAbI).
     */
    MultiHopAttention(Matrix key, Matrix value, ApproxConfig config,
                      std::size_t hopCount);

    /** Run all hops with the MemN2N update u^{k+1} = u^k + o^k. */
    MultiHopResult run(const Vector &query) const;

    /**
     * Answer many independent questions over the same preprocessed
     * episode. Hops stay sequential within one chain; chains are
     * dispatched across the shared AttentionEngine's thread pool.
     * result[i] is bit-identical to run(queries[i]).
     */
    std::vector<MultiHopResult>
    runBatch(const std::vector<Vector> &queries) const;

    std::size_t hopCount() const { return hopCount_; }
    const ApproxAttention &engine() const { return engine_; }

  private:
    ApproxAttention engine_;
    std::size_t hopCount_;
};

}  // namespace a3

#endif  // A3_ATTENTION_MULTI_HOP_HPP
