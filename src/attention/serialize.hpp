/**
 * @file
 * Matrix encode/decode helpers shared by the backend serializers.
 *
 * A matrix travels as (rows u64, cols u64, floats) with the float bit
 * patterns written verbatim (net/wire.hpp), so a decoded matrix is
 * bit-identical to the encoded one on every architecture — the
 * property the spill tier's bit-identity contract rests on.
 */

#ifndef A3_ATTENTION_SERIALIZE_HPP
#define A3_ATTENTION_SERIALIZE_HPP

#include "net/wire.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

inline void
writeMatrix(WireWriter &out, const Matrix &m)
{
    out.u64(m.rows());
    out.u64(m.cols());
    out.floats(m.data().data(), m.data().size());
}

/** Decode into `m`; false on a malformed or inconsistent payload. */
inline bool
readMatrix(WireReader &in, Matrix &m)
{
    const std::uint64_t rows = in.u64();
    const std::uint64_t cols = in.u64();
    if (!in.ok() || rows == 0 || cols == 0 ||
        rows > in.remaining() / sizeof(float) / cols)
        return false;
    Matrix decoded(static_cast<std::size_t>(rows),
                   static_cast<std::size_t>(cols));
    in.floats(decoded.data());
    if (!in.ok() || decoded.data().size() != rows * cols)
        return false;
    m = std::move(decoded);
    return true;
}

}  // namespace a3

#endif  // A3_ATTENTION_SERIALIZE_HPP
