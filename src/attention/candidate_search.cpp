#include "attention/candidate_search.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace a3 {

namespace {

/** One element-wise product tagged with its matrix coordinates. */
struct Product
{
    double score;
    std::uint32_t rowId;
    std::uint32_t colId;
};

/** Collect rows whose accumulated greedy score ended up positive. */
void
positiveRowsInto(const std::vector<double> &greedy,
                 std::vector<std::uint32_t> &rows)
{
    rows.clear();
    for (std::size_t r = 0; r < greedy.size(); ++r) {
        if (greedy[r] > 0.0)
            rows.push_back(static_cast<std::uint32_t>(r));
    }
}

CandidateSearchResult
finalize(const Scratch &scratch, const GreedySearchStats &stats)
{
    CandidateSearchResult out;
    out.candidates = scratch.rowIds;
    out.greedyScore.assign(scratch.greedy.begin(),
                           scratch.greedy.end());
    out.maxPops = stats.maxPops;
    out.minPops = stats.minPops;
    out.skippedMinOps = stats.skippedMinOps;
    return out;
}

}  // namespace

CandidateSearchResult
baseGreedySearch(const Matrix &key, const Vector &query,
                 std::size_t iterations, bool skipHeuristic)
{
    a3Assert(query.size() == key.cols(), "query dimension mismatch");
    const std::size_t n = key.rows();
    const std::size_t d = key.cols();

    // Materialize the full element-wise product matrix (Figure 6) and
    // derive two total orders over it. This is the O(nd log nd)
    // conceptual algorithm; efficientGreedySearch() is the fast twin.
    // The orders are sorted 4-byte index permutations into the one
    // product array — not another copy of the 16-byte products —
    // which cuts peak memory from 2x to 1.5x the product matrix.
    std::vector<Product> products;
    products.reserve(n * d);
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::uint32_t c = 0; c < d; ++c) {
            products.push_back(
                {static_cast<double>(key(r, c)) *
                     static_cast<double>(query[c]),
                 r, c});
        }
    }

    std::vector<std::uint32_t> maxOrder(products.size());
    std::iota(maxOrder.begin(), maxOrder.end(), 0u);
    std::vector<std::uint32_t> minOrder = maxOrder;
    // Ties beyond (score, colId) break on rowId so both permutations
    // are fully deterministic regardless of sort implementation.
    std::sort(maxOrder.begin(), maxOrder.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const Product &pa = products[a];
                  const Product &pb = products[b];
                  if (pa.score != pb.score)
                      return pa.score > pb.score;
                  if (pa.colId != pb.colId)
                      return pa.colId < pb.colId;
                  return pa.rowId < pb.rowId;
              });
    std::sort(minOrder.begin(), minOrder.end(),
              [&](std::uint32_t a, std::uint32_t b) {
                  const Product &pa = products[a];
                  const Product &pb = products[b];
                  if (pa.score != pb.score)
                      return pa.score < pb.score;
                  if (pa.colId != pb.colId)
                      return pa.colId < pb.colId;
                  return pa.rowId < pb.rowId;
              });

    std::vector<double> greedy(n, 0.0);
    double cumulative = 0.0;
    std::size_t maxIdx = 0;
    std::size_t minIdx = 0;
    std::size_t maxPops = 0;
    std::size_t minPops = 0;
    std::size_t skipped = 0;

    for (std::size_t iter = 0; iter < iterations; ++iter) {
        if (maxIdx >= maxOrder.size() && minIdx >= minOrder.size())
            break;
        if (maxIdx < maxOrder.size()) {
            const Product &p = products[maxOrder[maxIdx++]];
            ++maxPops;
            cumulative += p.score;
            if (p.score > 0.0)
                greedy[p.rowId] += p.score;
        }
        if (skipHeuristic && cumulative < 0.0) {
            ++skipped;
        } else if (minIdx < minOrder.size()) {
            const Product &p = products[minOrder[minIdx++]];
            ++minPops;
            cumulative += p.score;
            if (p.score < 0.0)
                greedy[p.rowId] += p.score;
        }
    }

    CandidateSearchResult out;
    positiveRowsInto(greedy, out.candidates);
    out.greedyScore.assign(greedy.begin(), greedy.end());
    out.maxPops = maxPops;
    out.minPops = minPops;
    out.skippedMinOps = skipped;
    return out;
}

namespace {

/** Orders the max heap: larger score first, smaller column on ties. */
struct MaxHeapLess
{
    bool
    operator()(const GreedyHeapEntry &a, const GreedyHeapEntry &b) const
    {
        if (a.score != b.score)
            return a.score < b.score;
        return a.colId > b.colId;
    }
};

/** Orders the min heap: smaller score first, smaller column on ties. */
struct MinHeapLess
{
    bool
    operator()(const GreedyHeapEntry &a, const GreedyHeapEntry &b) const
    {
        if (a.score != b.score)
            return a.score > b.score;
        return a.colId > b.colId;
    }
};

/** push_back + push_heap: what std::priority_queue::push does. */
template <typename Less>
void
heapPush(std::vector<GreedyHeapEntry> &heap, const GreedyHeapEntry &e,
         Less less)
{
    heap.push_back(e);
    std::push_heap(heap.begin(), heap.end(), less);
}

/** top + pop_heap + pop_back: what std::priority_queue::pop does. */
template <typename Less>
GreedyHeapEntry
heapPop(std::vector<GreedyHeapEntry> &heap, Less less)
{
    std::pop_heap(heap.begin(), heap.end(), less);
    const GreedyHeapEntry popped = heap.back();
    heap.pop_back();
    return popped;
}

}  // namespace

GreedySearchStats
efficientGreedySearchCore(const SortedKey &sortedKey,
                          const Vector &query, std::size_t iterations,
                          bool skipHeuristic, Scratch &scratch)
{
    a3Assert(query.size() == sortedKey.cols(),
             "query dimension mismatch");
    const std::size_t n = sortedKey.rows();
    const std::size_t d = sortedKey.cols();
    a3Assert(n > 0, "candidate search over empty key matrix");

    std::vector<GreedyHeapEntry> &maxHeap = scratch.maxHeap;
    std::vector<GreedyHeapEntry> &minHeap = scratch.minHeap;
    maxHeap.clear();
    minHeap.clear();

    auto makeEntry = [&](std::size_t col, std::int64_t pos) {
        const SortedKeyEntry &e =
            sortedKey.at(static_cast<std::size_t>(pos), col);
        return GreedyHeapEntry{static_cast<double>(e.val) *
                                   static_cast<double>(query[col]),
                               e.rowId, static_cast<std::uint32_t>(col),
                               pos};
    };

    // Traversal direction per column: the max pointer starts at the
    // largest product and walks toward smaller products; the min
    // pointer is its mirror (Figure 7, pointer initialization). The
    // direction is recomputed from the query sign on advance rather
    // than stored per column.
    for (std::size_t c = 0; c < d; ++c) {
        const bool positiveQuery = query[c] > 0.0f;
        const std::int64_t maxStart =
            positiveQuery ? static_cast<std::int64_t>(n) - 1 : 0;
        const std::int64_t minStart =
            positiveQuery ? 0 : static_cast<std::int64_t>(n) - 1;
        heapPush(maxHeap, makeEntry(c, maxStart), MaxHeapLess{});
        heapPush(minHeap, makeEntry(c, minStart), MinHeapLess{});
    }

    std::vector<double> &greedy = scratch.greedy;
    greedy.assign(n, 0.0);
    double cumulative = 0.0;
    GreedySearchStats stats;

    auto advance = [&](std::vector<GreedyHeapEntry> &heap,
                       const GreedyHeapEntry &popped, auto less,
                       bool maxSide) {
        const bool positiveQuery = query[popped.colId] > 0.0f;
        const int dir = (positiveQuery == maxSide) ? -1 : +1;
        const std::int64_t next = popped.pos + dir;
        if (next >= 0 && next < static_cast<std::int64_t>(n))
            heapPush(heap, makeEntry(popped.colId, next), less);
    };

    for (std::size_t iter = 0; iter < iterations; ++iter) {
        if (maxHeap.empty() && minHeap.empty())
            break;
        if (!maxHeap.empty()) {
            const GreedyHeapEntry popped =
                heapPop(maxHeap, MaxHeapLess{});
            ++stats.maxPops;
            cumulative += popped.score;
            if (popped.score > 0.0)
                greedy[popped.rowId] += popped.score;
            advance(maxHeap, popped, MaxHeapLess{}, true);
        }
        if (skipHeuristic && cumulative < 0.0) {
            ++stats.skippedMinOps;
        } else if (!minHeap.empty()) {
            const GreedyHeapEntry popped =
                heapPop(minHeap, MinHeapLess{});
            ++stats.minPops;
            cumulative += popped.score;
            if (popped.score < 0.0)
                greedy[popped.rowId] += popped.score;
            advance(minHeap, popped, MinHeapLess{}, false);
        }
    }
    positiveRowsInto(greedy, scratch.rowIds);
    return stats;
}

CandidateSearchResult
efficientGreedySearch(const SortedKey &sortedKey, const Vector &query,
                      std::size_t iterations, bool skipHeuristic)
{
    Scratch &scratch = Scratch::forThread();
    const GreedySearchStats stats = efficientGreedySearchCore(
        sortedKey, query, iterations, skipHeuristic, scratch);
    return finalize(scratch, stats);
}

}  // namespace a3
