#include "attention/candidate_search.hpp"

#include <algorithm>
#include <queue>

#include "util/logging.hpp"

namespace a3 {

namespace {

/** One element-wise product tagged with its matrix coordinates. */
struct Product
{
    double score;
    std::uint32_t rowId;
    std::uint32_t colId;
};

/** Collect rows whose accumulated greedy score ended up positive. */
std::vector<std::uint32_t>
positiveRows(const std::vector<double> &greedy)
{
    std::vector<std::uint32_t> rows;
    for (std::size_t r = 0; r < greedy.size(); ++r) {
        if (greedy[r] > 0.0)
            rows.push_back(static_cast<std::uint32_t>(r));
    }
    return rows;
}

CandidateSearchResult
finalize(const std::vector<double> &greedy, std::size_t maxPops,
         std::size_t minPops, std::size_t skipped)
{
    CandidateSearchResult out;
    out.candidates = positiveRows(greedy);
    out.greedyScore.assign(greedy.begin(), greedy.end());
    out.maxPops = maxPops;
    out.minPops = minPops;
    out.skippedMinOps = skipped;
    return out;
}

}  // namespace

CandidateSearchResult
baseGreedySearch(const Matrix &key, const Vector &query,
                 std::size_t iterations, bool skipHeuristic)
{
    a3Assert(query.size() == key.cols(), "query dimension mismatch");
    const std::size_t n = key.rows();
    const std::size_t d = key.cols();

    // Materialize the full element-wise product matrix (Figure 6) and
    // derive two total orders over it. This is the O(nd log nd)
    // conceptual algorithm; efficientGreedySearch() is the fast twin.
    std::vector<Product> products;
    products.reserve(n * d);
    for (std::uint32_t r = 0; r < n; ++r) {
        for (std::uint32_t c = 0; c < d; ++c) {
            products.push_back(
                {static_cast<double>(key(r, c)) *
                     static_cast<double>(query[c]),
                 r, c});
        }
    }

    std::vector<Product> maxOrder = products;
    std::sort(maxOrder.begin(), maxOrder.end(),
              [](const Product &a, const Product &b) {
                  if (a.score != b.score)
                      return a.score > b.score;
                  return a.colId < b.colId;
              });
    std::vector<Product> minOrder = std::move(products);
    std::sort(minOrder.begin(), minOrder.end(),
              [](const Product &a, const Product &b) {
                  if (a.score != b.score)
                      return a.score < b.score;
                  return a.colId < b.colId;
              });

    std::vector<double> greedy(n, 0.0);
    double cumulative = 0.0;
    std::size_t maxIdx = 0;
    std::size_t minIdx = 0;
    std::size_t maxPops = 0;
    std::size_t minPops = 0;
    std::size_t skipped = 0;

    for (std::size_t iter = 0; iter < iterations; ++iter) {
        if (maxIdx >= maxOrder.size() && minIdx >= minOrder.size())
            break;
        if (maxIdx < maxOrder.size()) {
            const Product &p = maxOrder[maxIdx++];
            ++maxPops;
            cumulative += p.score;
            if (p.score > 0.0)
                greedy[p.rowId] += p.score;
        }
        if (skipHeuristic && cumulative < 0.0) {
            ++skipped;
        } else if (minIdx < minOrder.size()) {
            const Product &p = minOrder[minIdx++];
            ++minPops;
            cumulative += p.score;
            if (p.score < 0.0)
                greedy[p.rowId] += p.score;
        }
    }
    return finalize(greedy, maxPops, minPops, skipped);
}

namespace {

/** Priority-queue element: a product plus its sorted-column position. */
struct HeapEntry
{
    double score;
    std::uint32_t rowId;
    std::uint32_t colId;
    std::int64_t pos;  ///< position inside the sorted column
};

/** Orders the max queue: larger score first, smaller column on ties. */
struct MaxQueueLess
{
    bool
    operator()(const HeapEntry &a, const HeapEntry &b) const
    {
        if (a.score != b.score)
            return a.score < b.score;
        return a.colId > b.colId;
    }
};

/** Orders the min queue: smaller score first, smaller column on ties. */
struct MinQueueLess
{
    bool
    operator()(const HeapEntry &a, const HeapEntry &b) const
    {
        if (a.score != b.score)
            return a.score > b.score;
        return a.colId > b.colId;
    }
};

}  // namespace

CandidateSearchResult
efficientGreedySearch(const SortedKey &sortedKey, const Vector &query,
                      std::size_t iterations, bool skipHeuristic)
{
    a3Assert(query.size() == sortedKey.cols(),
             "query dimension mismatch");
    const std::size_t n = sortedKey.rows();
    const std::size_t d = sortedKey.cols();
    a3Assert(n > 0, "candidate search over empty key matrix");

    using MaxQueue = std::priority_queue<HeapEntry,
                                         std::vector<HeapEntry>,
                                         MaxQueueLess>;
    using MinQueue = std::priority_queue<HeapEntry,
                                         std::vector<HeapEntry>,
                                         MinQueueLess>;
    MaxQueue maxQ;
    MinQueue minQ;

    // Traversal direction per column: the max pointer starts at the
    // largest product and walks toward smaller products; the min pointer
    // is its mirror (Figure 7, pointer initialization).
    std::vector<int> maxDir(d);
    std::vector<int> minDir(d);
    auto makeEntry = [&](std::size_t col, std::int64_t pos) {
        const SortedKeyEntry &e =
            sortedKey.at(static_cast<std::size_t>(pos), col);
        return HeapEntry{static_cast<double>(e.val) *
                             static_cast<double>(query[col]),
                         e.rowId, static_cast<std::uint32_t>(col), pos};
    };
    for (std::size_t c = 0; c < d; ++c) {
        const bool positiveQuery = query[c] > 0.0f;
        maxDir[c] = positiveQuery ? -1 : +1;
        minDir[c] = -maxDir[c];
        const std::int64_t maxStart =
            positiveQuery ? static_cast<std::int64_t>(n) - 1 : 0;
        const std::int64_t minStart =
            positiveQuery ? 0 : static_cast<std::int64_t>(n) - 1;
        maxQ.push(makeEntry(c, maxStart));
        minQ.push(makeEntry(c, minStart));
    }

    std::vector<double> greedy(n, 0.0);
    double cumulative = 0.0;
    std::size_t maxPops = 0;
    std::size_t minPops = 0;
    std::size_t skipped = 0;

    auto advance = [&](auto &queue, const HeapEntry &popped,
                       const std::vector<int> &dir) {
        const std::int64_t next = popped.pos + dir[popped.colId];
        if (next >= 0 && next < static_cast<std::int64_t>(n))
            queue.push(makeEntry(popped.colId, next));
    };

    for (std::size_t iter = 0; iter < iterations; ++iter) {
        if (maxQ.empty() && minQ.empty())
            break;
        if (!maxQ.empty()) {
            const HeapEntry popped = maxQ.top();
            maxQ.pop();
            ++maxPops;
            cumulative += popped.score;
            if (popped.score > 0.0)
                greedy[popped.rowId] += popped.score;
            advance(maxQ, popped, maxDir);
        }
        if (skipHeuristic && cumulative < 0.0) {
            ++skipped;
        } else if (!minQ.empty()) {
            const HeapEntry popped = minQ.top();
            minQ.pop();
            ++minPops;
            cumulative += popped.score;
            if (popped.score < 0.0)
                greedy[popped.rowId] += popped.score;
            advance(minQ, popped, minDir);
        }
    }
    return finalize(greedy, maxPops, minPops, skipped);
}

}  // namespace a3
