/**
 * @file
 * Greedy candidate search (Sections IV-B and IV-C).
 *
 * Both variants approximate the per-row dot products by inspecting only
 * the M globally-largest and M globally-smallest element-wise products
 * key[i][j] * query[j]:
 *
 *  - baseGreedySearch() materializes the full n x d product matrix and
 *    walks it in sorted order: O(nd log nd), the conceptual algorithm
 *    of Figure 6.
 *  - efficientGreedySearch() uses a pre-sorted key matrix and two
 *    priority queues over the d column heads, so the query-time cost is
 *    O(M log d) (Figure 7) — and O(M) with the hardware comparator tree.
 *
 * A popped product is accumulated into the row's greedy score only when
 * it is positive (max side) or negative (min side); rows ending with a
 * positive greedy score become candidates. The optional skip heuristic
 * omits the min-side pop while the cumulative sum of popped products is
 * negative, which avoids selecting too few candidates when overall
 * similarity is low (end of Section IV-C).
 *
 * The two variants are functionally identical; a property test sweeps
 * random instances asserting equal candidate sets and greedy scores.
 */

#ifndef A3_ATTENTION_CANDIDATE_SEARCH_HPP
#define A3_ATTENTION_CANDIDATE_SEARCH_HPP

#include <cstdint>
#include <vector>

#include "attention/sorted_key.hpp"
#include "kernels/scratch.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Outcome of one greedy candidate search. */
struct CandidateSearchResult
{
    /** Rows with a positive final greedy score, ascending. */
    std::vector<std::uint32_t> candidates;

    /** Final greedy score per row (length n). */
    std::vector<float> greedyScore;

    /** Max-side pops performed (<= iterations). */
    std::size_t maxPops = 0;

    /** Min-side pops performed. */
    std::size_t minPops = 0;

    /** Min-side pops skipped by the cumulative-sum heuristic. */
    std::size_t skippedMinOps = 0;
};

/**
 * Figure 6 algorithm: sort all n*d element-wise products and take the
 * prefix. @param iterations the user-configurable M.
 */
CandidateSearchResult baseGreedySearch(const Matrix &key,
                                       const Vector &query,
                                       std::size_t iterations,
                                       bool skipHeuristic = true);

/**
 * Figure 7 algorithm: priority queues over pre-sorted columns.
 * Functionally identical to baseGreedySearch().
 */
CandidateSearchResult efficientGreedySearch(const SortedKey &sortedKey,
                                            const Vector &query,
                                            std::size_t iterations,
                                            bool skipHeuristic = true);

/** Pop/skip counters of one greedy search (no owned buffers). */
struct GreedySearchStats
{
    std::size_t maxPops = 0;
    std::size_t minPops = 0;
    std::size_t skippedMinOps = 0;
};

/**
 * Allocation-free core of efficientGreedySearch(): final greedy
 * scores land in scratch.greedy (length n, double precision),
 * candidate rows (positive final score, ascending) in scratch.rowIds,
 * and the two priority heaps live in scratch.maxHeap / scratch.minHeap.
 * Identical pop order — hence bit-identical results — to the
 * allocating wrapper.
 */
GreedySearchStats efficientGreedySearchCore(const SortedKey &sortedKey,
                                            const Vector &query,
                                            std::size_t iterations,
                                            bool skipHeuristic,
                                            Scratch &scratch);

}  // namespace a3

#endif  // A3_ATTENTION_CANDIDATE_SEARCH_HPP
