/**
 * @file
 * Bit-accurate fixed-point model of the base A3 pipeline (Section III).
 *
 * This class reproduces, value for value, what the synthesized datapath
 * computes: inputs quantized to (i, f), element products at (2i, 2f), an
 * adder-tree dot product at (2i + log2 d, 2f), running-max subtraction,
 * the two-half exponent LUT, a truncating divider for the weights, and
 * the (i + log2 n, 3f) output accumulators. The cycle-level simulator
 * reuses this model for data while adding timing; the accuracy benches
 * use it for the Section VI-B quantization study.
 */

#ifndef A3_ATTENTION_QUANTIZED_HPP
#define A3_ATTENTION_QUANTIZED_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "attention/backend.hpp"
#include "attention/types.hpp"
#include "fixed/exp_lut.hpp"
#include "fixed/packed.hpp"
#include "fixed/pipeline_formats.hpp"
#include "kernels/scratch.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Fixed-point functional model of the base A3 attention pipeline. */
class QuantizedAttention final : public AttentionBackend
{
  public:
    /**
     * Size the pipeline for tasks up to maxRows x dims with inputs
     * quantized to `intBits`.`fracBits` (paper default: i = f = 4,
     * n = 320, d = 64). The datapath is unbound: every run() call
     * supplies its own key/value matrices.
     */
    QuantizedAttention(int intBits, int fracBits, std::size_t maxRows,
                       std::size_t dims);

    /**
     * Bind a key/value task into the datapath (the AttentionBackend
     * deployment): the pipeline is sized exactly for the task, the
     * key/value words are quantized once up front (the host copies
     * quantized matrices into the accelerator SRAM exactly once per
     * task), and the one-argument run() answers queries against it.
     *
     * `packedKv` chooses the SRAM lane layout (fixed/packed.hpp):
     * Auto packs to the narrowest lossless lane for the input format,
     * so narrow configurations get the 4-8x footprint shrink and the
     * packed SIMD kernels without any call-site change. Packing is
     * lossless — the packed lanes hold the exact quantized words the
     * int32-word layout holds — so results are bit-identical across
     * layouts. An explicit Int8/Int4 request too narrow for the input
     * word fatal()s.
     */
    QuantizedAttention(Matrix key, Matrix value, int intBits,
                       int fracBits,
                       PackedKvFormat packedKv = PackedKvFormat::Auto);

    using AttentionBackend::run;

    /** Answer one query against the bound task (bound mode only). */
    void runInto(const Vector &query,
                 AttentionResult &out) const override;

    /**
     * Incremental task extension (bound mode only): only the appended
     * rows are quantized — the cached words of the existing rows are
     * untouched — and the stage formats are re-derived for the grown
     * row count. Quantization is deterministic and only the capacity
     * annotations (expSum, output integer bits) depend on n, so
     * queries after append are bit-identical to a fresh bind of the
     * concatenated task.
     */
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override;

    /**
     * Bytes of the quantized key/value SRAM lanes in the resolved
     * packed layout, plus the per-row scale metadata (0 when
     * unbound). This is the figure SessionCache budgets and
     * ShardedBackend aggregation see, so packing directly multiplies
     * session capacity.
     */
    std::size_t memoryBytes() const override;

    /**
     * Bound mode: run the pipeline over a row subset, reusing `out`'s
     * buffers and the calling thread's Scratch — the allocation-free
     * path the approximate flow feeds after selection. `rows` may
     * alias Scratch row buffers.
     */
    void runRowsInto(const Vector &query,
                     std::span<const std::uint32_t> rows,
                     AttentionResult &out) const;

    std::string name() const override { return "quantized"; }

    /** Bound task rows, or the sized capacity when unbound. */
    std::size_t rows() const override;

    /** Embedding dimension the pipeline is sized for. */
    std::size_t dims() const override { return dims_; }

    /** True when a key/value task is bound into the datapath. */
    bool bound() const { return bound_; }

    /** Resolved K/V lane layout (Word32 when unbound). */
    PackedKvFormat packedFormat() const { return packed_; }

    /**
     * Per-row dequantization scales of the packed key rows (empty in
     * Word32 layout). Quantization is symmetric, so the zero point is
     * implicitly 0 and a lane dequantizes as raw * scale. Today every
     * row shares the input format's resolution; the layout is per-row
     * so a future per-row-range scheme drops in without touching the
     * kernels.
     */
    const std::vector<float> &keyScales() const { return keyScale_; }

    /** Per-row dequantization scales of the packed value rows. */
    const std::vector<float> &valueScales() const { return valueScale_; }

    /**
     * Run the full pipeline over all rows of the task.
     * Matrix shapes must be within the sized capacity.
     */
    AttentionResult run(const Matrix &key, const Matrix &value,
                        const Vector &query) const;

    /**
     * Run the pipeline over a row subset (what approximate A3 feeds the
     * base pipeline after selection). `rows` must be non-empty.
     */
    AttentionResult run(const Matrix &key, const Matrix &value,
                        const Vector &query,
                        const std::vector<std::uint32_t> &rows) const;

    /** Derived per-stage formats (Section III-B). */
    const PipelineFormats &formats() const { return formats_; }

    /** The exponent lookup table pair. */
    const ExpLut &expLut() const { return lut_; }

    std::unique_ptr<AttentionBackend> clone() const override;
    bool serializable() const override { return true; }

    /**
     * The packed lanes and per-row scales verbatim (bound mode only)
     * — the on-disk image is the in-memory SRAM image, so restore()
     * skips re-quantization entirely. The formats and exponent LUT
     * are not serialized: both derive deterministically from
     * (intBits, fracBits, rows, dims), so restore() recomputes them
     * bit-identically for a fraction of the image size.
     */
    void serializeState(WireWriter &out) const override;
    std::size_t compact() override;

    /** Rebuild a bound datapath from a serializeState() payload;
     *  nullptr on a malformed or config-inconsistent payload. */
    static std::unique_ptr<QuantizedAttention>
    restore(const EngineConfig &config, WireReader &in);

  private:
    /**
     * The pipeline over `rows` of an n x dims_ task. In bound mode
     * key/value are null and the pre-quantized keyQ_/valueQ_ words
     * are read; in unbound mode the float matrices are quantized on
     * the fly (identical values either way — quantization is
     * deterministic, so bound and unbound runs are bit-identical).
     */
    void runCore(std::size_t n, const Matrix *key, const Matrix *value,
                 const Vector &query,
                 std::span<const std::uint32_t> rows,
                 AttentionResult &out, Scratch &scratch) const;

    /** Quantize and pack `count` task rows onto the packed arrays. */
    void packRows(const Matrix &keyRows, const Matrix &valueRows,
                  std::size_t count);

    PipelineFormats formats_;
    ExpLut lut_;
    std::size_t maxRows_;
    std::size_t dims_;
    /**
     * Row-major pre-quantized words of the bound task (n x d), in the
     * resolved packed_ layout. The float matrices are not retained:
     * the datapath models the accelerator SRAM, which holds only
     * quantized words. Exactly one of the three lane arrays per side
     * is populated; all layouts are lossless (an input word has
     * intBits + fracBits + 1 bits, which the resolved lane always
     * covers), so the layouts are bit-identical in results and differ
     * only in footprint and kernel path.
     */
    std::vector<std::int32_t> keyQ_;
    std::vector<std::int32_t> valueQ_;
    std::vector<std::int8_t> keyQ8_;
    std::vector<std::int8_t> valueQ8_;
    /** Nibble-packed int4 lanes, (dims + 1) / 2 bytes per row. */
    std::vector<std::uint8_t> keyQ4_;
    std::vector<std::uint8_t> valueQ4_;
    /** Per-row dequantization scales (packed layouts only). */
    std::vector<float> keyScale_;
    std::vector<float> valueScale_;
    PackedKvFormat packed_ = PackedKvFormat::Word32;
    std::size_t boundRows_ = 0;
    bool bound_ = false;
};

}  // namespace a3

#endif  // A3_ATTENTION_QUANTIZED_HPP
