/**
 * @file
 * Bit-accurate fixed-point model of the base A3 pipeline (Section III).
 *
 * This class reproduces, value for value, what the synthesized datapath
 * computes: inputs quantized to (i, f), element products at (2i, 2f), an
 * adder-tree dot product at (2i + log2 d, 2f), running-max subtraction,
 * the two-half exponent LUT, a truncating divider for the weights, and
 * the (i + log2 n, 3f) output accumulators. The cycle-level simulator
 * reuses this model for data while adding timing; the accuracy benches
 * use it for the Section VI-B quantization study.
 */

#ifndef A3_ATTENTION_QUANTIZED_HPP
#define A3_ATTENTION_QUANTIZED_HPP

#include <cstdint>
#include <vector>

#include "attention/backend.hpp"
#include "attention/types.hpp"
#include "fixed/exp_lut.hpp"
#include "fixed/pipeline_formats.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Fixed-point functional model of the base A3 attention pipeline. */
class QuantizedAttention final : public AttentionBackend
{
  public:
    /**
     * Size the pipeline for tasks up to maxRows x dims with inputs
     * quantized to `intBits`.`fracBits` (paper default: i = f = 4,
     * n = 320, d = 64). The datapath is unbound: every run() call
     * supplies its own key/value matrices.
     */
    QuantizedAttention(int intBits, int fracBits, std::size_t maxRows,
                       std::size_t dims);

    /**
     * Bind a key/value task into the datapath (the AttentionBackend
     * deployment): the pipeline is sized exactly for the task and the
     * one-argument run() answers queries against it.
     */
    QuantizedAttention(Matrix key, Matrix value, int intBits,
                       int fracBits);

    /** Answer one query against the bound task (bound mode only). */
    AttentionResult run(const Vector &query) const override;

    std::string name() const override { return "quantized"; }

    /** Bound task rows, or the sized capacity when unbound. */
    std::size_t rows() const override;

    /** Embedding dimension the pipeline is sized for. */
    std::size_t dims() const override { return dims_; }

    /** True when a key/value task is bound into the datapath. */
    bool bound() const { return bound_; }

    /**
     * Run the full pipeline over all rows of the task.
     * Matrix shapes must be within the sized capacity.
     */
    AttentionResult run(const Matrix &key, const Matrix &value,
                        const Vector &query) const;

    /**
     * Run the pipeline over a row subset (what approximate A3 feeds the
     * base pipeline after selection). `rows` must be non-empty.
     */
    AttentionResult run(const Matrix &key, const Matrix &value,
                        const Vector &query,
                        const std::vector<std::uint32_t> &rows) const;

    /** Derived per-stage formats (Section III-B). */
    const PipelineFormats &formats() const { return formats_; }

    /** The exponent lookup table pair. */
    const ExpLut &expLut() const { return lut_; }

  private:
    PipelineFormats formats_;
    ExpLut lut_;
    std::size_t maxRows_;
    std::size_t dims_;
    Matrix key_;
    Matrix value_;
    bool bound_ = false;
};

}  // namespace a3

#endif  // A3_ATTENTION_QUANTIZED_HPP
