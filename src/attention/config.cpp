#include "attention/config.hpp"

#include <algorithm>
#include <sstream>

#include "attention/post_scoring.hpp"
#include "util/logging.hpp"

namespace a3 {

std::size_t
ApproxConfig::iterationsFor(std::size_t n) const
{
    a3Assert(n > 0, "iterationsFor needs a non-empty task");
    if (mAbsolute > 0)
        return std::min(mAbsolute, n);
    a3Assert(mFraction > 0.0, "mFraction must be positive");
    const auto m = static_cast<std::size_t>(
        mFraction * static_cast<double>(n));
    return std::clamp<std::size_t>(m, 1, n);
}

double
ApproxConfig::scoreGap() const
{
    return thresholdFromPercent(thresholdPercent);
}

std::string
ApproxConfig::str() const
{
    std::ostringstream os;
    os << "ApproxConfig{";
    if (!candidateSelection) {
        os << "M=off";
    } else if (mAbsolute > 0) {
        os << "M=" << mAbsolute;
    } else {
        os << "M=" << mFraction << "n";
    }
    os << ", ";
    if (postScoring)
        os << "T=" << thresholdPercent << "%";
    else
        os << "T=off";
    os << "}";
    return os.str();
}

ApproxConfig
ApproxConfig::conservative()
{
    ApproxConfig cfg;
    cfg.mFraction = 0.5;
    cfg.thresholdPercent = 5.0;
    return cfg;
}

ApproxConfig
ApproxConfig::aggressive()
{
    ApproxConfig cfg;
    cfg.mFraction = 0.125;
    cfg.thresholdPercent = 10.0;
    return cfg;
}

ApproxConfig
ApproxConfig::exact()
{
    ApproxConfig cfg;
    cfg.candidateSelection = false;
    cfg.postScoring = false;
    return cfg;
}

}  // namespace a3
