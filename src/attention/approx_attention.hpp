/**
 * @file
 * End-to-end approximate attention (Sections IV and V, software model).
 *
 * Pipeline: greedy candidate selection over the pre-sorted key matrix,
 * exact dot products for the C surviving candidates, post-scoring
 * selection down to K rows, softmax over those K scores, and the
 * weighted sum of the K value rows. Setting both stages off reproduces
 * exact attention bit-for-bit.
 */

#ifndef A3_ATTENTION_APPROX_ATTENTION_HPP
#define A3_ATTENTION_APPROX_ATTENTION_HPP

#include "attention/backend.hpp"
#include "attention/candidate_search.hpp"
#include "attention/config.hpp"
#include "attention/sorted_key.hpp"
#include "attention/types.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/**
 * Holds one key/value pair plus its preprocessed (column-sorted) key and
 * answers queries with configurable approximation. The preprocessing in
 * the constructor models comprehension-time work; run() models the
 * query-response critical path.
 */
class ApproxAttention final : public AttentionBackend
{
  public:
    /**
     * Preprocess and retain the task matrices.
     *
     * @param key n x d key matrix.
     * @param value n x d value matrix.
     * @param config approximation knobs (M, T, stage enables).
     */
    ApproxAttention(Matrix key, Matrix value, ApproxConfig config);

    /** Answer one query (allocation-free; see AttentionBackend). */
    void runInto(const Vector &query,
                 AttentionResult &out) const override;

    /**
     * Native partial path: stages 1-3 (selection and post-scoring)
     * run exactly as in runInto(), then the softmax terms over the
     * kept rows are left unnormalized for a log-sum-exp shard merge.
     * Note the approximation is shard-local — a sharded approx
     * backend selects candidates within each shard, so its merged
     * result is accuracy-bounded against the unsharded flow rather
     * than bit-tight (the greedy search sees different competitors).
     */
    void runPartialInto(const Vector &query,
                        PartialResult &out) const override;

    /**
     * Incremental task extension: the new rows are merged into the
     * column-sorted key instead of rebuilding it (see SortedKey::
     * append), so the per-update cost is O(d n) rather than the
     * O(d n log n) full re-sort.
     */
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override;

    /** Float matrices plus the sorted-key SRAM of Section IV-A. */
    std::size_t memoryBytes() const override;

    /** Candidate search only (exposed for Figure 11 sweeps). */
    CandidateSearchResult selectCandidates(const Vector &query) const;

    /**
     * Stage 1 only: greedy candidate selection per the configuration,
     * including the degenerate-case fallback (all products
     * non-positive keeps the best greedy row). Surviving rows land in
     * scratch.rowIds (ascending; all n rows when selection is off),
     * the greedy working state in scratch.greedy / scratch.maxHeap /
     * scratch.minHeap. Returns the iterations executed (0 when
     * selection is off). Shared by the float flow here and the
     * quantized ApproxQuantizedAttention flow so the two model the
     * same selection hardware.
     */
    std::size_t candidateRowsInto(const Vector &query,
                                  Scratch &scratch) const;

    std::string name() const override { return "approx"; }
    const ApproxConfig &config() const { return config_; }
    const SortedKey &sortedKey() const { return sorted_; }
    const Matrix &key() const { return key_; }
    const Matrix &value() const { return value_; }
    std::size_t rows() const override { return key_.rows(); }
    std::size_t dims() const override { return key_.cols(); }

    std::unique_ptr<AttentionBackend> clone() const override;
    bool serializable() const override { return true; }

    /**
     * Matrices plus the sorted-key columns verbatim — restore()
     * adopts the orders instead of re-running build()'s O(d n log n)
     * sort, which is the approx kinds' share of the warm-rebind win.
     */
    void serializeState(WireWriter &out) const override;
    std::size_t compact() override;

    /** Rebuild from a serializeState() payload; nullptr on a
     *  malformed payload. `config` supplies the approximation knobs
     *  (they are not part of the image). */
    static std::unique_ptr<ApproxAttention>
    restore(const ApproxConfig &config, WireReader &in);

  private:
    /** restore() adopts members directly. */
    ApproxAttention() = default;

    /**
     * Stages 1-3 (selection, candidate scoring, post-scoring) shared
     * by runInto() and runPartialInto(): fills scratch.rowIds,
     * scratch.candScores, and scratch.kept; returns the greedy
     * iterations executed.
     */
    std::size_t selectKeptInto(const Vector &query,
                               Scratch &scratch) const;

    Matrix key_;
    Matrix value_;
    ApproxConfig config_;
    SortedKey sorted_;
};

}  // namespace a3

#endif  // A3_ATTENTION_APPROX_ATTENTION_HPP
