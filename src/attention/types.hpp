/**
 * @file
 * Shared result types for the attention library.
 */

#ifndef A3_ATTENTION_TYPES_HPP
#define A3_ATTENTION_TYPES_HPP

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace a3 {

/**
 * Result of one attention operation together with the intermediate
 * values the evaluation needs (scores for top-k recall, weights for
 * post-softmax analysis, selection sizes for Figures 11b/12b).
 */
struct AttentionResult
{
    /** d-dimensional output vector (weighted sum of value rows). */
    Vector output;

    /**
     * Per-row softmax weights, length n. Rows that approximation
     * excluded hold exactly 0.
     */
    Vector weights;

    /**
     * Per-row similarity scores (dot products), length n. Rows whose
     * score was never computed (non-candidates) hold 0 and are listed
     * in neither `candidates` nor `kept`.
     */
    Vector scores;

    /** Rows surviving candidate selection, ascending; n rows if exact. */
    std::vector<std::uint32_t> candidates;

    /** Rows surviving post-scoring selection, ascending subset. */
    std::vector<std::uint32_t> kept;

    /** Greedy-search iterations actually executed (0 if exact). */
    std::size_t iterations = 0;
};

/**
 * Softmax partials of one attention operation, before normalization —
 * the shard-local contribution of the numerically stable distributed
 * softmax decomposition. A shard holding rows with scores s_i returns
 *
 *     maxScore   m = max_i s_i            (over the kept rows)
 *     expSum     Z = sum_i exp(s_i - m)
 *     expWeights u_i = exp(s_i - m)       (0 for excluded rows)
 *     accum      a = sum_i u_i * v_i      (unnormalized value sum)
 *
 * and shards combine via log-sum-exp: with M = max_s m_s and
 * c_s = exp(m_s - M), the merged weights are u_i * c_s / sum_s Z_s c_s
 * and the merged output is (sum_s a_s c_s) / (sum_s Z_s c_s).
 * Normalizing a single partial (finalizePartialInto) recovers the
 * plain AttentionResult, which is why runInto() is the single-shard
 * specialization of the partial path.
 *
 * scores / candidates / kept / iterations mirror AttentionResult but
 * are local to the shard's rows (ids in [0, shard rows)).
 */
struct PartialResult
{
    /** d-dimensional unnormalized value accumulation sum u_i * v_i. */
    Vector accum;

    /** Per-row unnormalized weights exp(s_i - maxScore), length n. */
    Vector expWeights;

    /** Per-row similarity scores, length n (0 for non-candidates). */
    Vector scores;

    /** Rows surviving candidate selection, ascending local ids. */
    std::vector<std::uint32_t> candidates;

    /** Rows surviving post-scoring selection, ascending subset. */
    std::vector<std::uint32_t> kept;

    /** Greedy-search iterations actually executed (0 if exact). */
    std::size_t iterations = 0;

    /** Maximum score over the kept rows. */
    float maxScore = 0.0f;

    /** Sum of exp(s_i - maxScore) over the kept rows. */
    float expSum = 0.0f;
};

}  // namespace a3

#endif  // A3_ATTENTION_TYPES_HPP
