/**
 * @file
 * Shared result types for the attention library.
 */

#ifndef A3_ATTENTION_TYPES_HPP
#define A3_ATTENTION_TYPES_HPP

#include <cstdint>
#include <vector>

#include "tensor/matrix.hpp"

namespace a3 {

/**
 * Result of one attention operation together with the intermediate
 * values the evaluation needs (scores for top-k recall, weights for
 * post-softmax analysis, selection sizes for Figures 11b/12b).
 */
struct AttentionResult
{
    /** d-dimensional output vector (weighted sum of value rows). */
    Vector output;

    /**
     * Per-row softmax weights, length n. Rows that approximation
     * excluded hold exactly 0.
     */
    Vector weights;

    /**
     * Per-row similarity scores (dot products), length n. Rows whose
     * score was never computed (non-candidates) hold 0 and are listed
     * in neither `candidates` nor `kept`.
     */
    Vector scores;

    /** Rows surviving candidate selection, ascending; n rows if exact. */
    std::vector<std::uint32_t> candidates;

    /** Rows surviving post-scoring selection, ascending subset. */
    std::vector<std::uint32_t> kept;

    /** Greedy-search iterations actually executed (0 if exact). */
    std::size_t iterations = 0;
};

}  // namespace a3

#endif  // A3_ATTENTION_TYPES_HPP
