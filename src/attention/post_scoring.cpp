#include "attention/post_scoring.hpp"

#include <cmath>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"

namespace a3 {

double
thresholdFromPercent(double tPercent)
{
    a3Assert(tPercent > 0.0,
             "post-scoring T must be positive, got ", tPercent);
    return std::log(100.0 / tPercent);
}

double
percentFromThreshold(double t)
{
    return 100.0 * std::exp(-t);
}

std::vector<std::uint32_t>
postScoringSelect(const std::vector<std::uint32_t> &rows,
                  const Vector &scores, double scoreGap)
{
    std::vector<std::uint32_t> kept;
    kept.reserve(rows.size());
    postScoringSelectInto(rows, scores, scoreGap, kept);
    return kept;
}

void
postScoringSelectInto(std::span<const std::uint32_t> rows,
                      std::span<const float> scores, double scoreGap,
                      std::vector<std::uint32_t> &kept)
{
    a3Assert(rows.size() == scores.size(),
             "post-scoring rows/scores size mismatch");
    kept.clear();
    if (rows.empty())
        return;

    const float best =
        activeKernels().maxReduce(scores.data(), scores.size());

    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (static_cast<double>(best) - static_cast<double>(scores[i]) <=
            scoreGap) {
            kept.push_back(rows[i]);
        }
    }
    if (!kept.empty())
        return;

    // An over-aggressive threshold (T > 100% gives a negative gap no
    // row can satisfy) or non-finite scores (inf - inf and NaN fail
    // the comparison even for the max row itself) would otherwise hand
    // an empty subset to softmax. Degrade to the single top-scoring
    // candidate, first-of-equals, never preferring a NaN score over an
    // ordered one; with every score NaN the first candidate stands in.
    std::size_t top = 0;
    for (std::size_t i = 1; i < rows.size(); ++i) {
        if (scores[i] > scores[top] ||
            (std::isnan(scores[top]) && !std::isnan(scores[i]))) {
            top = i;
        }
    }
    kept.push_back(rows[top]);
}

}  // namespace a3
