#include "attention/post_scoring.hpp"

#include <cmath>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"

namespace a3 {

double
thresholdFromPercent(double tPercent)
{
    a3Assert(tPercent > 0.0 && tPercent <= 100.0,
             "post-scoring T must lie in (0, 100], got ", tPercent);
    return std::log(100.0 / tPercent);
}

double
percentFromThreshold(double t)
{
    a3Assert(t >= 0.0, "post-scoring threshold t must be non-negative");
    return 100.0 * std::exp(-t);
}

std::vector<std::uint32_t>
postScoringSelect(const std::vector<std::uint32_t> &rows,
                  const Vector &scores, double scoreGap)
{
    std::vector<std::uint32_t> kept;
    kept.reserve(rows.size());
    postScoringSelectInto(rows, scores, scoreGap, kept);
    return kept;
}

void
postScoringSelectInto(std::span<const std::uint32_t> rows,
                      std::span<const float> scores, double scoreGap,
                      std::vector<std::uint32_t> &kept)
{
    a3Assert(rows.size() == scores.size(),
             "post-scoring rows/scores size mismatch");
    a3Assert(scoreGap >= 0.0, "post-scoring gap must be non-negative");
    kept.clear();
    if (rows.empty())
        return;

    const float best =
        activeKernels().maxReduce(scores.data(), scores.size());

    for (std::size_t i = 0; i < rows.size(); ++i) {
        if (static_cast<double>(best) - static_cast<double>(scores[i]) <=
            scoreGap) {
            kept.push_back(rows[i]);
        }
    }
}

}  // namespace a3
