/**
 * @file
 * Polymorphic attention-backend interface.
 *
 * A backend owns one preprocessed key/value task and answers queries
 * against it. Binding the task into the backend (rather than passing
 * the matrices with every call) is what lets the AttentionEngine share
 * the expensive per-task work — the column-sorted key of Section IV-A,
 * the sized fixed-point datapath of Section III — across every query,
 * head, and hop that touches the same pair, exactly the amortization
 * the paper relies on for BERT self-attention and multi-hop MemN2N.
 *
 * Four backends implement the interface:
 *  - ReferenceAttention: exact float attention (Figure 1).
 *  - ApproxAttention: greedy selection + post-scoring in float
 *    (Sections IV and V; declared in approx_attention.hpp).
 *  - QuantizedAttention: the bit-accurate fixed-point pipeline bound
 *    to a task (Section III; declared in quantized.hpp).
 *  - ApproxQuantizedAttention: float selection feeding the quantized
 *    datapath, the full approximate-A3 flow the simulator models.
 *
 * makeBackend() maps an EngineConfig (the harness' engine selector) to
 * the matching backend so every consumer — harness, workloads, benches,
 * examples — constructs engines one way.
 */

#ifndef A3_ATTENTION_BACKEND_HPP
#define A3_ATTENTION_BACKEND_HPP

#include <memory>
#include <string>
#include <vector>

#include "attention/config.hpp"
#include "attention/types.hpp"
#include "fixed/packed.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

class ApproxAttention;
class QuantizedAttention;
class WireWriter;
class WireReader;

/**
 * One preprocessed key/value task that can answer queries. runInto()
 * must be const and thread-compatible: the AttentionEngine calls it
 * from many threads concurrently, and batched results are required to
 * be bit-identical to sequential per-query calls.
 *
 * Per-query transients live in the calling thread's Scratch arena
 * (kernels/scratch.hpp) and the caller's AttentionResult, so a
 * steady-state runInto() — same thread, reused result object —
 * performs zero heap allocations.
 */
class AttentionBackend
{
  public:
    virtual ~AttentionBackend() = default;

    /** Stable identifier, e.g. "reference", "approx", "quantized". */
    virtual std::string name() const = 0;

    /** Answer one query against the bound task. */
    AttentionResult
    run(const Vector &query) const
    {
        AttentionResult out;
        runInto(query, out);
        return out;
    }

    /**
     * Answer one query, writing every field of `out`. Reusing one
     * result object across calls reuses its buffers: after the first
     * call at a given task size, no field reallocates.
     */
    virtual void runInto(const Vector &query,
                         AttentionResult &out) const = 0;

    /**
     * Answer one query with softmax partials instead of a normalized
     * result — the shard-local half of the distributed-softmax
     * decomposition (see PartialResult for the math). Like runInto()
     * this is const, thread-compatible, and reuses `out`'s buffers.
     *
     * The float backends override this with a native partial path
     * whose finalizePartialInto() is bit-identical to runInto(). The
     * base implementation derives the partials from runInto(): the
     * log-sum-exp terms are recomputed in float from the kept scores
     * and the normalized weights/output are scaled back up by expSum,
     * which preserves the backend's own weighting (the quantized
     * kinds' truncating divider) at the cost of a ULP-level roundtrip
     * — sharded quantized results are accuracy-bounded, not
     * bit-tight.
     */
    virtual void runPartialInto(const Vector &query,
                                PartialResult &out) const;

    /**
     * Number of independent work units one query against this
     * backend decomposes into — the flattened engine's scheduling
     * grain. A plain backend is one unit; a sharded backend exposes
     * one unit per shard, so shard partials from many queries share
     * the same pool lanes instead of borrowing a nested pool.
     * Constant between append() calls.
     */
    virtual std::size_t workUnitCount() const { return 1; }

    /**
     * Compute work unit `unit` of one query: the unit's softmax
     * partial, ready for mergeUnitsInto(). Like runInto() this is
     * const, thread-compatible, and reuses `out`'s buffers; distinct
     * units of one query may run on different threads concurrently.
     * The base implementation serves single-unit backends by
     * forwarding to runPartialInto().
     */
    virtual void runUnitPartialInto(std::size_t unit,
                                    const Vector &query,
                                    PartialResult &out) const;

    /**
     * Combine one query's per-unit partials (partials[u] from
     * runUnitPartialInto(u, ...)) into the final result. Always
     * executed serially in unit order by exactly one thread, so a
     * fixed-order log-sum-exp merge here preserves the bit-identity
     * guarantees of the serial path. The engine only takes this
     * route when workUnitCount() > 1 — single-unit backends keep
     * their exact runInto() path (required for the quantized kinds,
     * whose partial roundtrip is ULP-bounded, not bit-tight).
     */
    virtual void mergeUnitsInto(const std::vector<PartialResult> &partials,
                                AttentionResult &out) const;

    /**
     * Extend the bound task with k additional key/value rows (a
     * streamed context update: new sentences of a story, new tokens of
     * a conversation). The appended rows take row ids
     * rows()..rows()+k-1 and the preprocessed state is updated
     * incrementally — SortedKey merges the new rows into its
     * per-column orders, QuantizedAttention quantizes only the
     * appended rows — so the cost is far below a full re-bind, yet
     * subsequent queries are bit-identical to a backend freshly bound
     * to the concatenated matrices. Not thread-safe: callers must
     * ensure no queries are in flight against this backend.
     */
    virtual void append(const Matrix &keyRows,
                        const Matrix &valueRows) = 0;

    /**
     * Bytes of preprocessed task state this backend retains (float
     * matrices, sorted-key SRAM, quantized lanes) — what a
     * SessionCache charges against its byte budget.
     */
    virtual std::size_t memoryBytes() const = 0;

    /** Rows n of the bound task. */
    virtual std::size_t rows() const = 0;

    /** Embedding dimension d of the bound task. */
    virtual std::size_t dims() const = 0;

    /**
     * Deep copy of the bound task — the copy-on-append path of shared
     * shard handles (see serving/shard_store.hpp): before a shared
     * mutable tail is extended, the writer clones it so other sessions
     * keep querying the original. Queries against the clone are
     * bit-identical to the original (the preprocessed state is copied,
     * not rebuilt). The base implementation fatal()s; every plain
     * backend kind overrides it.
     */
    virtual std::unique_ptr<AttentionBackend> clone() const;

    /**
     * Whether serializeState() round-trips this backend through
     * deserializeBackend(). The plain kinds are serializable; the
     * composite serving-layer backends (sharded, remote) are not —
     * they spill per shard instead.
     */
    virtual bool serializable() const { return false; }

    /**
     * Append the preprocessed task state to `out` in the canonical
     * little-endian layout deserializeBackend() reads. The packed
     * quantized lanes and sorted-key orders are written verbatim, so
     * a restored backend answers queries bit-identically to this one
     * — the spill tier's determinism contract. Only valid when
     * serializable().
     */
    virtual void serializeState(WireWriter &out) const;

    /**
     * Release slack capacity retained by incremental append() calls
     * (vector over-reserve in matrices, sorted-key columns, quantized
     * lanes). Returns the bytes reclaimed. Query results are
     * unaffected — compaction moves bytes, never values — and the
     * tail-shard freeze path runs it before a shard is registered for
     * sharing or spilled, so shared and on-disk images carry no
     * slack. Not thread-safe (like append()).
     */
    virtual std::size_t compact() { return 0; }

    /**
     * Advisory remaining-deadline hint for the next queries, in
     * seconds (<= 0 clears the hint). The BatchScheduler publishes
     * each drained group's tightest remaining budget before the
     * engine pass; backends that wait on external resources (the
     * remote shard coordinator) clamp their per-query waits to it.
     * Purely advisory and monotonic-cheap: the default is a no-op,
     * and implementations store it in a relaxed atomic — the hint
     * must be settable on a const backend from the drain thread.
     */
    virtual void queryDeadlineHint(double remainingSeconds) const
    {
        (void)remainingSeconds;
    }
};

/** Which functional engine answers the queries. */
enum class EngineKind {
    ExactFloat,       ///< reference float attention, no approximation
    ApproxFloat,      ///< approximation in float (paper's SW model)
    ExactQuantized,   ///< base A3 fixed-point pipeline
    ApproxQuantized,  ///< full approximate A3 fixed-point flow
};

/** Stable name of an engine kind ("exact-float", ...). */
const char *engineKindName(EngineKind kind);

/**
 * Normalize one shard's partials into a full AttentionResult: weights
 * and output are the partial's expWeights/accum divided by expSum;
 * scores, candidates, kept, and iterations carry over. For the float
 * backends runInto() is exactly runPartialInto() + this call.
 */
void finalizePartialInto(const PartialResult &partial,
                         AttentionResult &result);

/** Engine selection plus its knobs. */
struct EngineConfig
{
    EngineKind kind = EngineKind::ExactFloat;

    /** Approximation knobs (Approx kinds only). */
    ApproxConfig approx = ApproxConfig::conservative();

    /**
     * Input quantization (Quantized kinds only). makeBackend()
     * rejects non-positive widths and totals whose input word
     * (intBits + fracBits + 1 sign bit) exceeds the backend's 32-bit
     * SRAM lanes.
     */
    int intBits = 4;
    int fracBits = 4;

    /**
     * K/V lane layout of the quantized kinds (see fixed/packed.hpp).
     * Auto packs to the narrowest lossless lane for (intBits,
     * fracBits); results are bit-identical across layouts, only
     * footprint and kernel path change. makeBackend() rejects an
     * explicit Int8/Int4 whose input word exceeds the lane width,
     * mirroring the 32-bit lane-budget check.
     */
    PackedKvFormat packedKv = PackedKvFormat::Auto;
};

/**
 * Exact floating-point backend: softmax(K q)^T V over all rows, the
 * functional baseline every other backend is validated against.
 */
class ReferenceAttention final : public AttentionBackend
{
  public:
    /** Bind a key/value task; no preprocessing is needed. */
    ReferenceAttention(Matrix key, Matrix value);

    std::string name() const override { return "reference"; }
    void runInto(const Vector &query,
                 AttentionResult &out) const override;
    void runPartialInto(const Vector &query,
                        PartialResult &out) const override;
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override;
    std::size_t memoryBytes() const override;
    std::size_t rows() const override { return key_.rows(); }
    std::size_t dims() const override { return key_.cols(); }

    std::unique_ptr<AttentionBackend> clone() const override;
    bool serializable() const override { return true; }
    void serializeState(WireWriter &out) const override;
    std::size_t compact() override;

    /** Rebuild from a serializeState() payload; nullptr on a
     *  malformed payload. */
    static std::unique_ptr<ReferenceAttention>
    restore(WireReader &in);

    const Matrix &key() const { return key_; }
    const Matrix &value() const { return value_; }

  private:
    Matrix key_;
    Matrix value_;
};

/**
 * The full approximate-A3 flow: float greedy candidate selection
 * (pointer/comparator hardware), quantized dot products on the
 * candidates, post-scoring on those fixed-point scores, and the
 * quantized pipeline over the survivors — the same flow A3Accelerator
 * models cycle by cycle.
 */
class ApproxQuantizedAttention final : public AttentionBackend
{
  public:
    /**
     * Preprocess `key` for greedy search and size the fixed-point
     * datapath for the task.
     */
    ApproxQuantizedAttention(
        Matrix key, Matrix value, ApproxConfig approx, int intBits,
        int fracBits, PackedKvFormat packedKv = PackedKvFormat::Auto);
    ~ApproxQuantizedAttention() override;

    std::string name() const override { return "approx-quantized"; }
    void runInto(const Vector &query,
                 AttentionResult &out) const override;
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override;
    std::size_t memoryBytes() const override;
    std::size_t rows() const override;
    std::size_t dims() const override;

    std::unique_ptr<AttentionBackend> clone() const override;
    bool serializable() const override { return true; }
    void serializeState(WireWriter &out) const override;
    std::size_t compact() override;

    /** Rebuild both halves from a serializeState() payload; nullptr
     *  on a malformed payload. */
    static std::unique_ptr<ApproxQuantizedAttention>
    restore(const EngineConfig &config, WireReader &in);

    const ApproxAttention &selection() const { return *approx_; }
    const QuantizedAttention &datapath() const { return *datapath_; }

  private:
    /** Adopt already-built halves (clone()/restore()). */
    ApproxQuantizedAttention(
        std::unique_ptr<ApproxAttention> approx,
        std::unique_ptr<QuantizedAttention> datapath);

    std::unique_ptr<ApproxAttention> approx_;
    std::unique_ptr<QuantizedAttention> datapath_;
};

/**
 * Build the backend `config` describes, bound to (key, value). The
 * quantized kinds size their datapath exactly for the task, as the
 * accuracy harness always did.
 */
std::unique_ptr<AttentionBackend> makeBackend(const EngineConfig &config,
                                              Matrix key, Matrix value);

/**
 * Rebuild a backend of config.kind from a serializeState() payload —
 * the restore half of the spill tier. The preprocessed state is read
 * back verbatim (no re-sort, no re-quantization), so the restored
 * backend is bit-identical in queries to the one serialized. Returns
 * nullptr when the payload is malformed or inconsistent with
 * `config`; callers fall back to a cold bind.
 */
std::unique_ptr<AttentionBackend>
deserializeBackend(const EngineConfig &config, WireReader &in);

}  // namespace a3

#endif  // A3_ATTENTION_BACKEND_HPP
