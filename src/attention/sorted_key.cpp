#include "attention/sorted_key.hpp"

#include <algorithm>

#include "util/logging.hpp"

namespace a3 {

SortedKey
SortedKey::build(const Matrix &key)
{
    SortedKey sk;
    sk.rows_ = key.rows();
    sk.cols_ = key.cols();
    sk.columns_.resize(sk.cols_);
    for (std::size_t c = 0; c < sk.cols_; ++c) {
        auto &column = sk.columns_[c];
        column.resize(sk.rows_);
        for (std::size_t r = 0; r < sk.rows_; ++r)
            column[r] = {key(r, c), static_cast<std::uint32_t>(r)};
        std::stable_sort(column.begin(), column.end(),
                         [](const SortedKeyEntry &a,
                            const SortedKeyEntry &b) {
                             return a.val < b.val;
                         });
    }
    return sk;
}

const SortedKeyEntry &
SortedKey::at(std::size_t pos, std::size_t col) const
{
    a3Assert(col < cols_, "sorted-key column out of range");
    a3Assert(pos < rows_, "sorted-key position out of range");
    return columns_[col][pos];
}

std::size_t
SortedKey::storageBytes() const
{
    // One float value plus one 32-bit row id per entry, as in Figure 8.
    return rows_ * cols_ * (sizeof(float) + sizeof(std::uint32_t));
}

}  // namespace a3
