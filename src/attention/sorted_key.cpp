#include "attention/sorted_key.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace a3 {

SortedKey
SortedKey::build(const Matrix &key)
{
    SortedKey sk;
    sk.rows_ = key.rows();
    sk.cols_ = key.cols();
    sk.columns_.reserve(sk.cols_);
    // Sort one reusable 4-byte index permutation per column instead of
    // stable_sort over (val, rowId) pairs twice the size; the rowId
    // tie-break reproduces the stable sort's original-row order for
    // equal values, which pins down the greedy search's pop order.
    std::vector<std::uint32_t> perm(sk.rows_);
    for (std::size_t c = 0; c < sk.cols_; ++c) {
        std::iota(perm.begin(), perm.end(), 0u);
        std::sort(perm.begin(), perm.end(),
                  [&key, c](std::uint32_t a, std::uint32_t b) {
                      const float va = key(a, c);
                      const float vb = key(b, c);
                      if (va != vb)
                          return va < vb;
                      return a < b;
                  });
        auto &column = sk.columns_.emplace_back();
        column.reserve(sk.rows_);
        for (std::uint32_t r : perm)
            column.push_back({key(r, c), r});
    }
    return sk;
}

const SortedKeyEntry &
SortedKey::at(std::size_t pos, std::size_t col) const
{
    a3Assert(col < cols_, "sorted-key column out of range");
    a3Assert(pos < rows_, "sorted-key position out of range");
    return columns_[col][pos];
}

std::size_t
SortedKey::storageBytes() const
{
    // One float value plus one 32-bit row id per entry, as in Figure 8.
    return rows_ * cols_ * (sizeof(float) + sizeof(std::uint32_t));
}

}  // namespace a3
