#include "attention/sorted_key.hpp"

#include <algorithm>
#include <numeric>

#include "util/logging.hpp"

namespace a3 {

SortedKey
SortedKey::build(const Matrix &key)
{
    SortedKey sk;
    sk.rows_ = key.rows();
    sk.cols_ = key.cols();
    sk.columns_.reserve(sk.cols_);
    // Sort one reusable 4-byte index permutation per column instead of
    // stable_sort over (val, rowId) pairs twice the size; the rowId
    // tie-break reproduces the stable sort's original-row order for
    // equal values, which pins down the greedy search's pop order.
    std::vector<std::uint32_t> perm(sk.rows_);
    for (std::size_t c = 0; c < sk.cols_; ++c) {
        std::iota(perm.begin(), perm.end(), 0u);
        std::sort(perm.begin(), perm.end(),
                  [&key, c](std::uint32_t a, std::uint32_t b) {
                      const float va = key(a, c);
                      const float vb = key(b, c);
                      if (va != vb)
                          return va < vb;
                      return a < b;
                  });
        auto &column = sk.columns_.emplace_back();
        column.reserve(sk.rows_);
        for (std::uint32_t r : perm)
            column.push_back({key(r, c), r});
    }
    return sk;
}

void
SortedKey::append(const Matrix &newRows, std::uint32_t firstRowId)
{
    a3Assert(newRows.cols() == cols_,
             "sorted-key append width mismatch: ", newRows.cols(),
             " vs ", cols_);
    a3Assert(firstRowId == rows_,
             "sorted-key append must continue the row ids: got ",
             firstRowId, ", expected ", rows_);
    const std::size_t k = newRows.rows();
    if (k == 0)
        return;
    // The (val, rowId) comparator gives a unique total order (row ids
    // are distinct), so sorting the new tail and merging it with the
    // already-sorted column reproduces exactly what build() would
    // produce over the concatenated matrix.
    const auto less = [](const SortedKeyEntry &a,
                         const SortedKeyEntry &b) {
        if (a.val != b.val)
            return a.val < b.val;
        return a.rowId < b.rowId;
    };
    for (std::size_t c = 0; c < cols_; ++c) {
        auto &column = columns_[c];
        const auto oldSize = static_cast<std::ptrdiff_t>(column.size());
        column.reserve(column.size() + k);
        for (std::size_t i = 0; i < k; ++i) {
            column.push_back(
                {newRows(i, c),
                 firstRowId + static_cast<std::uint32_t>(i)});
        }
        std::sort(column.begin() + oldSize, column.end(), less);
        std::inplace_merge(column.begin(), column.begin() + oldSize,
                           column.end(), less);
    }
    rows_ += k;
}

const SortedKeyEntry &
SortedKey::at(std::size_t pos, std::size_t col) const
{
    a3Assert(col < cols_, "sorted-key column out of range");
    a3Assert(pos < rows_, "sorted-key position out of range");
    return columns_[col][pos];
}

std::size_t
SortedKey::storageBytes() const
{
    // One float value plus one 32-bit row id per entry, as in Figure 8.
    return rows_ * cols_ * (sizeof(float) + sizeof(std::uint32_t));
}

const std::vector<SortedKeyEntry> &
SortedKey::columnEntries(std::size_t col) const
{
    a3Assert(col < cols_, "sorted-key column out of range");
    return columns_[col];
}

SortedKey
SortedKey::fromColumns(std::size_t rows, std::size_t cols,
                       std::vector<std::vector<SortedKeyEntry>> columns)
{
    a3Assert(columns.size() == cols,
             "sorted-key column count mismatch: ", columns.size(),
             " vs ", cols);
    for (const auto &column : columns)
        a3Assert(column.size() == rows,
                 "sorted-key column length mismatch: ", column.size(),
                 " vs ", rows);
    SortedKey sk;
    sk.rows_ = rows;
    sk.cols_ = cols;
    sk.columns_ = std::move(columns);
    return sk;
}

std::size_t
SortedKey::capacityBytes() const
{
    std::size_t bytes = 0;
    for (const auto &column : columns_)
        bytes += column.capacity() * sizeof(SortedKeyEntry);
    return bytes;
}

std::size_t
SortedKey::compact()
{
    std::size_t reclaimed = 0;
    for (auto &column : columns_) {
        const std::size_t before = column.capacity();
        column.shrink_to_fit();
        reclaimed +=
            (before - column.capacity()) * sizeof(SortedKeyEntry);
    }
    return reclaimed;
}

}  // namespace a3
