/**
 * @file
 * Self-attention convenience layer (the BERT/Transformer pattern) and
 * the zero-padding helper for narrow embeddings.
 *
 * Self-attention answers one query per token against a key/value pair
 * derived from the same token sequence; the key matrix — and thus the
 * sorted-key preprocessing — is shared by all n queries (Section
 * IV-A). Section III-C also notes that d rarely varies, so a datapath
 * sized for d = 64 serves smaller embeddings via zero-padding; the
 * helper here implements that padding and tests prove it is exact.
 */

#ifndef A3_ATTENTION_SELF_ATTENTION_HPP
#define A3_ATTENTION_SELF_ATTENTION_HPP

#include "attention/approx_attention.hpp"

namespace a3 {

/** All per-token results of one self-attention pass. */
struct SelfAttentionResult
{
    /** Row t is the attention output for token t's query. */
    Matrix outputs;

    /** Per-token attention results (selection stats, weights). */
    std::vector<AttentionResult> perToken;

    /** Mean candidates C across tokens. */
    double avgCandidates = 0.0;

    /** Mean post-scoring survivors K across tokens. */
    double avgKept = 0.0;
};

/**
 * Run self-attention: token t's query is `queries.row(t)`, attended
 * over the shared (key, value) pair. Preprocessing happens once.
 */
SelfAttentionResult selfAttention(const Matrix &key,
                                  const Matrix &value,
                                  const Matrix &queries,
                                  const ApproxConfig &config);

/**
 * Zero-pad the columns of `m` to `targetCols` (Section III-C: "use
 * zero-padding when smaller d is desired"). Padding columns contribute
 * exactly zero to every dot product, so attention over padded inputs
 * equals attention over the originals.
 */
Matrix zeroPadColumns(const Matrix &m, std::size_t targetCols);

/** Zero-pad a query vector to `targetDims`. */
Vector zeroPad(const Vector &v, std::size_t targetDims);

}  // namespace a3

#endif  // A3_ATTENTION_SELF_ATTENTION_HPP
