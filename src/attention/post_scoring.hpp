/**
 * @file
 * Post-scoring selection (Section IV-D).
 *
 * After exact dot products are computed for the candidate rows, any row
 * whose score trails the best score by more than a threshold t is
 * dropped before softmax and the weighted sum. Because softmax uses the
 * score as the exponent of e, a gap of t means the row's post-softmax
 * weight would be at least e^t times smaller than the top row's. The
 * paper parameterizes this as T = 100 / e^t, i.e. "keep a row only if
 * its weight would be at least T percent of the maximum weight".
 */

#ifndef A3_ATTENTION_POST_SCORING_HPP
#define A3_ATTENTION_POST_SCORING_HPP

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/matrix.hpp"

namespace a3 {

/**
 * Convert the paper's T (percent of max weight) to the score gap t.
 * T must be positive; T > 100 yields a negative gap that no row can
 * satisfy, which the selection resolves by keeping only the top-scoring
 * candidate.
 */
double thresholdFromPercent(double tPercent);

/** Convert a score gap t back to the paper's T in percent. */
double percentFromThreshold(double t);

/**
 * Keep the rows whose score is within `scoreGap` of the maximum score.
 * For a non-empty input the result is never empty: when the gap test
 * rejects every row (negative gap from T > 100, or non-finite scores
 * whose comparisons all fail), the top-scoring candidate survives
 * alone so the downstream softmax stays well-defined.
 *
 * @param rows candidate row ids, parallel to `scores`.
 * @param scores exact dot-product score per candidate.
 * @param scoreGap the threshold t (use thresholdFromPercent for T%).
 * @return surviving row ids in the same relative order as `rows`.
 */
std::vector<std::uint32_t>
postScoringSelect(const std::vector<std::uint32_t> &rows,
                  const Vector &scores, double scoreGap);

/**
 * Allocation-free core of postScoringSelect(): survivors are written
 * into `kept` (cleared first, capacity reused). `rows`/`scores` may
 * alias Scratch buffers other than `kept`.
 */
void postScoringSelectInto(std::span<const std::uint32_t> rows,
                           std::span<const float> scores,
                           double scoreGap,
                           std::vector<std::uint32_t> &kept);

}  // namespace a3

#endif  // A3_ATTENTION_POST_SCORING_HPP
