#include "attention/backend.hpp"

#include <cmath>
#include <limits>
#include <numeric>
#include <utility>

#include "attention/approx_attention.hpp"
#include "attention/post_scoring.hpp"
#include "attention/quantized.hpp"
#include "attention/reference.hpp"
#include "attention/serialize.hpp"
#include "kernels/kernels.hpp"
#include "kernels/scratch.hpp"
#include "net/wire.hpp"
#include "util/logging.hpp"

namespace a3 {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::ExactFloat:
        return "exact-float";
      case EngineKind::ApproxFloat:
        return "approx-float";
      case EngineKind::ExactQuantized:
        return "exact-quantized";
      case EngineKind::ApproxQuantized:
        return "approx-quantized";
    }
    panic("unknown engine kind");
}

void
finalizePartialInto(const PartialResult &partial, AttentionResult &result)
{
    const Kernels &k = activeKernels();
    result.scores = partial.scores;
    result.candidates = partial.candidates;
    result.kept = partial.kept;
    result.iterations = partial.iterations;
    // 0 / expSum stays exactly 0, so dividing the full scattered
    // arrays applies the same per-element IEEE division the m-length
    // softmax workspace saw — weights of kept rows are bit-identical
    // either way.
    result.weights = partial.expWeights;
    k.divideBy(result.weights.data(), result.weights.size(),
               partial.expSum);
    result.output = partial.accum;
    k.divideBy(result.output.data(), result.output.size(),
               partial.expSum);
}

void
AttentionBackend::runPartialInto(const Vector &query,
                                 PartialResult &out) const
{
    // Derived fallback for backends without a native partial path
    // (the quantized kinds): run the full local pipeline, then
    // recompute the log-sum-exp terms in float from the kept scores
    // and scale the normalized weights/output back up by expSum. The
    // backend's own weighting survives the roundtrip up to ULPs.
    thread_local AttentionResult local;
    runInto(query, local);

    float maxScore = -std::numeric_limits<float>::infinity();
    for (const std::uint32_t r : local.kept)
        maxScore = std::max(maxScore, local.scores[r]);
    float expSum = 0.0f;
    for (const std::uint32_t r : local.kept)
        expSum += std::exp(local.scores[r] - maxScore);

    const Kernels &k = activeKernels();
    out.scores = local.scores;
    out.candidates = local.candidates;
    out.kept = local.kept;
    out.iterations = local.iterations;
    out.expWeights = local.weights;
    k.scale(out.expWeights.data(), out.expWeights.size(), expSum);
    out.accum = local.output;
    k.scale(out.accum.data(), out.accum.size(), expSum);
    out.maxScore = maxScore;
    out.expSum = expSum;
}

void
AttentionBackend::runUnitPartialInto(std::size_t unit,
                                     const Vector &query,
                                     PartialResult &out) const
{
    a3Assert(unit == 0, "single-unit backend asked for unit ", unit);
    runPartialInto(query, out);
}

void
AttentionBackend::mergeUnitsInto(
    const std::vector<PartialResult> &partials,
    AttentionResult &out) const
{
    a3Assert(partials.size() == 1,
             "single-unit backend asked to merge ", partials.size(),
             " partials");
    finalizePartialInto(partials.front(), out);
}

std::unique_ptr<AttentionBackend>
AttentionBackend::clone() const
{
    fatal("backend \"", name(), "\" does not support clone()");
}

void
AttentionBackend::serializeState(WireWriter &out) const
{
    (void)out;
    fatal("backend \"", name(), "\" is not serializable");
}

ReferenceAttention::ReferenceAttention(Matrix key, Matrix value)
    : key_(std::move(key)), value_(std::move(value))
{
    a3Assert(key_.rows() == value_.rows() &&
                 key_.cols() == value_.cols(),
             "key/value shape mismatch");
    a3Assert(key_.rows() > 0 && key_.cols() > 0,
             "attention task must be non-empty");
    Scratch::forThread().reserveTask(key_.rows(), key_.cols());
}

void
ReferenceAttention::runInto(const Vector &query,
                            AttentionResult &out) const
{
    Scratch &scratch = Scratch::forThread();
    scratch.rowIds.resize(key_.rows());
    std::iota(scratch.rowIds.begin(), scratch.rowIds.end(), 0u);
    subsetAttentionInto(key_, value_, query, scratch.rowIds, out,
                        scratch);
}

void
ReferenceAttention::runPartialInto(const Vector &query,
                                   PartialResult &out) const
{
    Scratch &scratch = Scratch::forThread();
    scratch.rowIds.resize(key_.rows());
    std::iota(scratch.rowIds.begin(), scratch.rowIds.end(), 0u);
    subsetAttentionPartialInto(key_, value_, query, scratch.rowIds,
                               out, scratch);
}

void
ReferenceAttention::append(const Matrix &keyRows, const Matrix &valueRows)
{
    a3Assert(keyRows.rows() == valueRows.rows() &&
                 keyRows.cols() == valueRows.cols(),
             "appended key/value shape mismatch");
    a3Assert(keyRows.cols() == key_.cols(),
             "appended rows must match the task dimension");
    key_.appendRows(keyRows);
    value_.appendRows(valueRows);
    Scratch::forThread().reserveTask(key_.rows(), key_.cols());
}

std::size_t
ReferenceAttention::memoryBytes() const
{
    return (key_.data().size() + value_.data().size()) * sizeof(float);
}

std::unique_ptr<AttentionBackend>
ReferenceAttention::clone() const
{
    return std::unique_ptr<AttentionBackend>(
        new ReferenceAttention(*this));
}

std::size_t
ReferenceAttention::compact()
{
    return key_.shrinkToFit() + value_.shrinkToFit();
}

void
ReferenceAttention::serializeState(WireWriter &out) const
{
    writeMatrix(out, key_);
    writeMatrix(out, value_);
}

std::unique_ptr<ReferenceAttention>
ReferenceAttention::restore(WireReader &in)
{
    Matrix key;
    Matrix value;
    if (!readMatrix(in, key) || !readMatrix(in, value) ||
        key.rows() != value.rows() || key.cols() != value.cols())
        return nullptr;
    return std::make_unique<ReferenceAttention>(std::move(key),
                                                std::move(value));
}

ApproxQuantizedAttention::ApproxQuantizedAttention(
    Matrix key, Matrix value, ApproxConfig approx, int intBits,
    int fracBits, PackedKvFormat packedKv)
    : approx_(std::make_unique<ApproxAttention>(
          std::move(key), std::move(value), approx)),
      datapath_(std::make_unique<QuantizedAttention>(
          approx_->key(), approx_->value(), intBits, fracBits,
          packedKv))
{
}

ApproxQuantizedAttention::ApproxQuantizedAttention(
    std::unique_ptr<ApproxAttention> approx,
    std::unique_ptr<QuantizedAttention> datapath)
    : approx_(std::move(approx)), datapath_(std::move(datapath))
{
    a3Assert(approx_ != nullptr && datapath_ != nullptr,
             "adopted halves must be non-null");
    a3Assert(approx_->rows() == datapath_->rows() &&
                 approx_->dims() == datapath_->dims(),
             "selection/datapath shape mismatch");
}

ApproxQuantizedAttention::~ApproxQuantizedAttention() = default;

std::unique_ptr<AttentionBackend>
ApproxQuantizedAttention::clone() const
{
    auto approx = std::unique_ptr<ApproxAttention>(
        static_cast<ApproxAttention *>(
            approx_->clone().release()));
    auto datapath = std::unique_ptr<QuantizedAttention>(
        static_cast<QuantizedAttention *>(
            datapath_->clone().release()));
    return std::unique_ptr<AttentionBackend>(
        new ApproxQuantizedAttention(std::move(approx),
                                     std::move(datapath)));
}

std::size_t
ApproxQuantizedAttention::compact()
{
    return approx_->compact() + datapath_->compact();
}

void
ApproxQuantizedAttention::serializeState(WireWriter &out) const
{
    // Both halves in sequence: the float selection state, then the
    // quantized SRAM image.
    approx_->serializeState(out);
    datapath_->serializeState(out);
}

std::unique_ptr<ApproxQuantizedAttention>
ApproxQuantizedAttention::restore(const EngineConfig &config,
                                  WireReader &in)
{
    auto approx = ApproxAttention::restore(config.approx, in);
    if (approx == nullptr)
        return nullptr;
    auto datapath = QuantizedAttention::restore(config, in);
    if (datapath == nullptr ||
        datapath->rows() != approx->rows() ||
        datapath->dims() != approx->dims())
        return nullptr;
    return std::unique_ptr<ApproxQuantizedAttention>(
        new ApproxQuantizedAttention(std::move(approx),
                                     std::move(datapath)));
}

void
ApproxQuantizedAttention::append(const Matrix &keyRows,
                                 const Matrix &valueRows)
{
    approx_->append(keyRows, valueRows);
    datapath_->append(keyRows, valueRows);
}

std::size_t
ApproxQuantizedAttention::memoryBytes() const
{
    return approx_->memoryBytes() + datapath_->memoryBytes();
}

std::size_t
ApproxQuantizedAttention::rows() const
{
    return approx_->rows();
}

std::size_t
ApproxQuantizedAttention::dims() const
{
    return approx_->dims();
}

void
ApproxQuantizedAttention::runInto(const Vector &query,
                                  AttentionResult &out) const
{
    const ApproxConfig &config = approx_->config();
    Scratch &scratch = Scratch::forThread();

    // Same selection hardware as the float flow.
    const std::size_t iterations =
        approx_->candidateRowsInto(query, scratch);
    const std::size_t count = scratch.rowIds.size();

    datapath_->runRowsInto(query, scratch.rowIds, out);
    if (config.postScoring) {
        scratch.candScores.resize(count);
        for (std::size_t i = 0; i < count; ++i)
            scratch.candScores[i] = out.scores[scratch.rowIds[i]];
        postScoringSelectInto(scratch.rowIds, scratch.candScores,
                              config.scoreGap(), scratch.kept);
        datapath_->runRowsInto(query, scratch.kept, out);
    }
    // Either pipeline pass already recorded its row list as out.kept;
    // only the candidate list and iteration count remain to fill in.
    out.candidates.assign(scratch.rowIds.begin(),
                          scratch.rowIds.end());
    out.iterations = iterations;
}

namespace {

/**
 * Quantized kinds only: reject bit widths before they reach the
 * datapath. An input word carries intBits + fracBits + 1 bits (sign
 * included) and is stored in the backend's int32 SRAM lanes, so
 * anything wider than 32 would silently truncate downstream.
 */
void
validateQuantizedBits(const EngineConfig &config)
{
    if (config.intBits <= 0 || config.fracBits <= 0) {
        fatal("EngineConfig: intBits and fracBits must be positive, "
              "got intBits=", config.intBits, " fracBits=",
              config.fracBits);
    }
    const int total = config.intBits + config.fracBits + 1;
    if (total > 32) {
        fatal("EngineConfig: input word needs intBits + fracBits + 1 = ",
              total, " bits, exceeding the 32-bit lane budget "
              "(intBits=", config.intBits, ", fracBits=",
              config.fracBits, ")");
    }
    // Mirror of the lane-budget check for the packed layouts: an
    // explicit narrow lane must still hold the input word losslessly.
    const int lane = packedKvLaneBits(config.packedKv);
    if (lane != 0 && total > lane) {
        fatal("EngineConfig: input word needs intBits + fracBits + 1 = ",
              total, " bits, exceeding the ", lane,
              "-bit packed K/V lane (packedKv=",
              packedKvFormatName(config.packedKv), ", intBits=",
              config.intBits, ", fracBits=", config.fracBits,
              "); packing is lossless — widen the lane or narrow the "
              "format");
    }
}

}  // namespace

std::unique_ptr<AttentionBackend>
makeBackend(const EngineConfig &config, Matrix key, Matrix value)
{
    if (config.kind == EngineKind::ExactQuantized ||
        config.kind == EngineKind::ApproxQuantized) {
        validateQuantizedBits(config);
    }
    switch (config.kind) {
      case EngineKind::ExactFloat:
        return std::make_unique<ReferenceAttention>(std::move(key),
                                                    std::move(value));
      case EngineKind::ApproxFloat:
        return std::make_unique<ApproxAttention>(
            std::move(key), std::move(value), config.approx);
      case EngineKind::ExactQuantized:
        return std::make_unique<QuantizedAttention>(
            std::move(key), std::move(value), config.intBits,
            config.fracBits, config.packedKv);
      case EngineKind::ApproxQuantized:
        return std::make_unique<ApproxQuantizedAttention>(
            std::move(key), std::move(value), config.approx,
            config.intBits, config.fracBits, config.packedKv);
    }
    panic("unknown engine kind");
}

std::unique_ptr<AttentionBackend>
deserializeBackend(const EngineConfig &config, WireReader &in)
{
    if (config.kind == EngineKind::ExactQuantized ||
        config.kind == EngineKind::ApproxQuantized) {
        validateQuantizedBits(config);
    }
    switch (config.kind) {
      case EngineKind::ExactFloat:
        return ReferenceAttention::restore(in);
      case EngineKind::ApproxFloat:
        return ApproxAttention::restore(config.approx, in);
      case EngineKind::ExactQuantized:
        return QuantizedAttention::restore(config, in);
      case EngineKind::ApproxQuantized:
        return ApproxQuantizedAttention::restore(config, in);
    }
    panic("unknown engine kind");
}

}  // namespace a3
