#include "attention/backend.hpp"

#include <utility>

#include "attention/approx_attention.hpp"
#include "attention/post_scoring.hpp"
#include "attention/quantized.hpp"
#include "attention/reference.hpp"
#include "util/logging.hpp"

namespace a3 {

const char *
engineKindName(EngineKind kind)
{
    switch (kind) {
      case EngineKind::ExactFloat:
        return "exact-float";
      case EngineKind::ApproxFloat:
        return "approx-float";
      case EngineKind::ExactQuantized:
        return "exact-quantized";
      case EngineKind::ApproxQuantized:
        return "approx-quantized";
    }
    panic("unknown engine kind");
}

ReferenceAttention::ReferenceAttention(Matrix key, Matrix value)
    : key_(std::move(key)), value_(std::move(value))
{
    a3Assert(key_.rows() == value_.rows() &&
                 key_.cols() == value_.cols(),
             "key/value shape mismatch");
    a3Assert(key_.rows() > 0 && key_.cols() > 0,
             "attention task must be non-empty");
}

AttentionResult
ReferenceAttention::run(const Vector &query) const
{
    return referenceAttention(key_, value_, query);
}

ApproxQuantizedAttention::ApproxQuantizedAttention(Matrix key,
                                                   Matrix value,
                                                   ApproxConfig approx,
                                                   int intBits,
                                                   int fracBits)
    : approx_(std::make_unique<ApproxAttention>(
          std::move(key), std::move(value), approx)),
      datapath_(std::make_unique<QuantizedAttention>(
          intBits, fracBits, approx_->rows(), approx_->dims()))
{
}

ApproxQuantizedAttention::~ApproxQuantizedAttention() = default;

std::size_t
ApproxQuantizedAttention::rows() const
{
    return approx_->rows();
}

std::size_t
ApproxQuantizedAttention::dims() const
{
    return approx_->dims();
}

AttentionResult
ApproxQuantizedAttention::run(const Vector &query) const
{
    const ApproxConfig &config = approx_->config();
    // Same selection hardware as the float flow.
    ApproxAttention::CandidateStage stage =
        approx_->candidateStage(query);
    std::vector<std::uint32_t> candidates = std::move(stage.rows);

    AttentionResult pass = datapath_->run(approx_->key(),
                                          approx_->value(), query,
                                          candidates);
    AttentionResult result;
    std::vector<std::uint32_t> kept;
    if (config.postScoring) {
        Vector scores(candidates.size());
        for (std::size_t i = 0; i < candidates.size(); ++i)
            scores[i] = pass.scores[candidates[i]];
        kept = postScoringSelect(candidates, scores,
                                 config.scoreGap());
        result = datapath_->run(approx_->key(), approx_->value(),
                                query, kept);
    } else {
        // Post-scoring off keeps every candidate; the first pipeline
        // pass already is the final result.
        kept = candidates;
        result = std::move(pass);
    }
    result.candidates = std::move(candidates);
    result.kept = std::move(kept);
    result.iterations = stage.iterations;
    return result;
}

std::unique_ptr<AttentionBackend>
makeBackend(const EngineConfig &config, Matrix key, Matrix value)
{
    switch (config.kind) {
      case EngineKind::ExactFloat:
        return std::make_unique<ReferenceAttention>(std::move(key),
                                                    std::move(value));
      case EngineKind::ApproxFloat:
        return std::make_unique<ApproxAttention>(
            std::move(key), std::move(value), config.approx);
      case EngineKind::ExactQuantized:
        return std::make_unique<QuantizedAttention>(
            std::move(key), std::move(value), config.intBits,
            config.fracBits);
      case EngineKind::ApproxQuantized:
        return std::make_unique<ApproxQuantizedAttention>(
            std::move(key), std::move(value), config.approx,
            config.intBits, config.fracBits);
    }
    panic("unknown engine kind");
}

}  // namespace a3
