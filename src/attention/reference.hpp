/**
 * @file
 * Exact floating-point attention (Figure 1 of the paper).
 *
 * This is the functional baseline every approximate and quantized
 * configuration is validated against, and also the kernel the CPU
 * baseline times.
 */

#ifndef A3_ATTENTION_REFERENCE_HPP
#define A3_ATTENTION_REFERENCE_HPP

#include <cstdint>
#include <span>

#include "attention/types.hpp"
#include "kernels/scratch.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Numerically-stable softmax (subtracts the maximum before exp). */
Vector softmax(const Vector &input);

/**
 * In-place softmax over v[0..n): v[i] becomes exp(v[i] - max) / sum.
 * The buffer-reuse primitive the allocating softmax() wraps.
 */
void softmaxInPlace(float *v, std::size_t n);

/**
 * Exact soft attention: output = softmax(K q)^T V.
 *
 * @param key n x d key matrix.
 * @param value n x d value matrix.
 * @param query d-dimensional query.
 */
AttentionResult referenceAttention(const Matrix &key, const Matrix &value,
                                   const Vector &query);

/**
 * Exact attention restricted to a subset of rows: scores are computed
 * only for `rows`, the softmax normalizes over that subset, and the
 * weighted sum spans only those value rows. This is the float-precision
 * model of what A3 computes after selection; the exact path is the
 * special case rows = {0..n-1}.
 */
AttentionResult subsetAttention(const Matrix &key, const Matrix &value,
                                const Vector &query,
                                const std::vector<std::uint32_t> &rows);

/**
 * Allocation-free core of subsetAttention(): writes every field of
 * `result` (reusing its buffers) and takes its softmax workspace from
 * `scratch.sub`. `rows` may alias scratch.rowIds or scratch.kept.
 * Implemented as subsetAttentionPartialInto() + finalizePartialInto()
 * — exact attention is the single-shard specialization of the partial
 * path.
 */
void subsetAttentionInto(const Matrix &key, const Matrix &value,
                         const Vector &query,
                         std::span<const std::uint32_t> rows,
                         AttentionResult &result, Scratch &scratch);

/**
 * Partial-output core of the reference path: scores, unnormalized
 * exp weights, their sum, the row maximum, and the unnormalized value
 * accumulation over `rows` — everything the log-sum-exp shard merge
 * needs, and exactly the quantities subsetAttentionInto() normalizes
 * (see PartialResult). Buffer discipline matches subsetAttentionInto:
 * softmax workspace in `scratch.sub`, `rows` may alias scratch row
 * buffers, and every field of `out` is (re)written.
 */
void subsetAttentionPartialInto(const Matrix &key, const Matrix &value,
                                const Vector &query,
                                std::span<const std::uint32_t> rows,
                                PartialResult &out, Scratch &scratch);

}  // namespace a3

#endif  // A3_ATTENTION_REFERENCE_HPP
