/**
 * @file
 * Exact floating-point attention (Figure 1 of the paper).
 *
 * This is the functional baseline every approximate and quantized
 * configuration is validated against, and also the kernel the CPU
 * baseline times.
 */

#ifndef A3_ATTENTION_REFERENCE_HPP
#define A3_ATTENTION_REFERENCE_HPP

#include "attention/types.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Numerically-stable softmax (subtracts the maximum before exp). */
Vector softmax(const Vector &input);

/**
 * Exact soft attention: output = softmax(K q)^T V.
 *
 * @param key n x d key matrix.
 * @param value n x d value matrix.
 * @param query d-dimensional query.
 */
AttentionResult referenceAttention(const Matrix &key, const Matrix &value,
                                   const Vector &query);

/**
 * Exact attention restricted to a subset of rows: scores are computed
 * only for `rows`, the softmax normalizes over that subset, and the
 * weighted sum spans only those value rows. This is the float-precision
 * model of what A3 computes after selection; the exact path is the
 * special case rows = {0..n-1}.
 */
AttentionResult subsetAttention(const Matrix &key, const Matrix &value,
                                const Vector &query,
                                const std::vector<std::uint32_t> &rows);

}  // namespace a3

#endif  // A3_ATTENTION_REFERENCE_HPP
