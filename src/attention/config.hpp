/**
 * @file
 * Configuration of the approximate attention pipeline.
 *
 * M (greedy-search iteration count) and T (post-scoring threshold in
 * percent of the maximum weight) are the two user-visible knobs of the
 * paper. The evaluation uses two named presets:
 *   conservative: M = n/2, T = 5%   (~1% accuracy loss)
 *   aggressive:   M = n/8, T = 10%  (larger loss, larger speedup)
 */

#ifndef A3_ATTENTION_CONFIG_HPP
#define A3_ATTENTION_CONFIG_HPP

#include <cstddef>
#include <string>

namespace a3 {

/** Knobs for the approximate attention pipeline. */
struct ApproxConfig
{
    /** Enable the greedy candidate-selection stage. */
    bool candidateSelection = true;

    /** Enable the post-scoring selection stage. */
    bool postScoring = true;

    /**
     * Greedy iterations as a fraction of n (used when mAbsolute == 0);
     * the paper sweeps {1, 3/4, 1/2, 1/4, 1/8}.
     */
    double mFraction = 0.5;

    /** Absolute iteration count overriding mFraction when non-zero. */
    std::size_t mAbsolute = 0;

    /** Post-scoring threshold T in percent of the maximum weight. */
    double thresholdPercent = 5.0;

    /** Min-queue skip heuristic (Section IV-C, last paragraph). */
    bool skipHeuristic = true;

    /**
     * Iteration count M for a task with n rows, clamped to [1, n]: the
     * paper sweeps M only up to n, and an mAbsolute (or mFraction)
     * exceeding the row count would drive the greedy search past the
     * row count for no accuracy gain.
     */
    std::size_t iterationsFor(std::size_t n) const;

    /** Score-gap threshold t = ln(100 / T). */
    double scoreGap() const;

    /** Human-readable configuration summary. */
    std::string str() const;

    /** Paper preset: M = n/2, T = 5%. */
    static ApproxConfig conservative();

    /** Paper preset: M = n/8, T = 10%. */
    static ApproxConfig aggressive();

    /** No approximation at all (base A3 behaviour). */
    static ApproxConfig exact();
};

}  // namespace a3

#endif  // A3_ATTENTION_CONFIG_HPP
