#include "attention/quantized.hpp"

#include <numeric>
#include <utility>

#include "fixed/value.hpp"
#include "util/logging.hpp"

namespace a3 {

QuantizedAttention::QuantizedAttention(int intBits, int fracBits,
                                       std::size_t maxRows,
                                       std::size_t dims)
    : formats_(PipelineFormats::derive(intBits, fracBits, maxRows, dims)),
      lut_(2 * fracBits, 2 * fracBits),
      maxRows_(maxRows), dims_(dims)
{
}

QuantizedAttention::QuantizedAttention(Matrix key, Matrix value,
                                       int intBits, int fracBits)
    : QuantizedAttention(intBits, fracBits, key.rows(), key.cols())
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    a3Assert(key.rows() > 0 && key.cols() > 0,
             "attention task must be non-empty");

    // Quantize the task once at bind time — the host copies quantized
    // matrices into the accelerator SRAM exactly once per task — and
    // drop the float originals: every runInto() reads the cached words
    // instead of re-quantizing n x d floats per query.
    const FixedFormat inFmt = formats_.input;
    const std::size_t n = key.rows();
    const std::size_t d = key.cols();
    boundRows_ = n;
    bound_ = true;
    keyQ_.resize(n * d);
    valueQ_.resize(n * d);
    for (std::size_t i = 0; i < n * d; ++i) {
        keyQ_[i] = static_cast<std::int32_t>(
            inFmt.quantize(key.data()[i]));
        valueQ_[i] = static_cast<std::int32_t>(
            inFmt.quantize(value.data()[i]));
    }
    Scratch::forThread().reserveTask(n, d);
}

std::size_t
QuantizedAttention::rows() const
{
    return bound_ ? boundRows_ : maxRows_;
}

void
QuantizedAttention::append(const Matrix &keyRows, const Matrix &valueRows)
{
    a3Assert(bound_, "append() needs a bound task; use the "
                     "(key, value, intBits, fracBits) constructor");
    a3Assert(keyRows.rows() == valueRows.rows() &&
                 keyRows.cols() == valueRows.cols(),
             "appended key/value shape mismatch");
    a3Assert(keyRows.cols() == dims_,
             "appended rows must match the task dimension");
    const std::size_t k = keyRows.rows();
    if (k == 0)
        return;

    const FixedFormat inFmt = formats_.input;
    keyQ_.reserve(keyQ_.size() + k * dims_);
    valueQ_.reserve(valueQ_.size() + k * dims_);
    for (std::size_t i = 0; i < k * dims_; ++i) {
        keyQ_.push_back(static_cast<std::int32_t>(
            inFmt.quantize(keyRows.data()[i])));
        valueQ_.push_back(static_cast<std::int32_t>(
            inFmt.quantize(valueRows.data()[i])));
    }
    boundRows_ += k;
    maxRows_ = boundRows_;
    // Re-derive the stage widths for the grown n: only the expSum and
    // output capacity annotations change — every fraction width stays,
    // so existing words and future results are unaffected beyond the
    // larger legal range.
    formats_ = PipelineFormats::derive(inFmt.intBits, inFmt.fracBits,
                                       boundRows_, dims_);
    Scratch::forThread().reserveTask(boundRows_, dims_);
}

std::size_t
QuantizedAttention::memoryBytes() const
{
    return (keyQ_.size() + valueQ_.size()) * sizeof(std::int32_t);
}

void
QuantizedAttention::runInto(const Vector &query,
                            AttentionResult &out) const
{
    a3Assert(bound_, "one-argument run() needs a bound task; use the "
                     "(key, value, intBits, fracBits) constructor");
    Scratch &scratch = Scratch::forThread();
    scratch.rowIds.resize(boundRows_);
    std::iota(scratch.rowIds.begin(), scratch.rowIds.end(), 0u);
    runCore(boundRows_, nullptr, nullptr, query, scratch.rowIds, out,
            scratch);
}

void
QuantizedAttention::runRowsInto(const Vector &query,
                                std::span<const std::uint32_t> rows,
                                AttentionResult &out) const
{
    a3Assert(bound_, "runRowsInto() needs a bound task");
    runCore(boundRows_, nullptr, nullptr, query, rows, out,
            Scratch::forThread());
}

AttentionResult
QuantizedAttention::run(const Matrix &key, const Matrix &value,
                        const Vector &query) const
{
    std::vector<std::uint32_t> all(key.rows());
    std::iota(all.begin(), all.end(), 0u);
    return run(key, value, query, all);
}

AttentionResult
QuantizedAttention::run(const Matrix &key, const Matrix &value,
                        const Vector &query,
                        const std::vector<std::uint32_t> &rows) const
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    AttentionResult out;
    runCore(key.rows(), &key, &value, query, rows, out,
            Scratch::forThread());
    return out;
}

void
QuantizedAttention::runCore(std::size_t n, const Matrix *key,
                            const Matrix *value, const Vector &query,
                            std::span<const std::uint32_t> rows,
                            AttentionResult &result,
                            Scratch &scratch) const
{
    a3Assert(key == nullptr ||
                 (key->rows() == n && key->cols() == dims_ &&
                  value->rows() == n && value->cols() == dims_),
             "task exceeds the sized pipeline capacity (",
             key != nullptr ? key->rows() : n, "x",
             key != nullptr ? key->cols() : dims_, " vs ", maxRows_,
             "x", dims_, ")");
    a3Assert(n <= maxRows_,
             "task exceeds the sized pipeline capacity (", n, " rows "
             "vs ", maxRows_, ")");
    a3Assert(!rows.empty(), "quantized pipeline needs at least one row");

    const std::size_t d = dims_;
    const std::size_t m = rows.size();
    const FixedFormat inFmt = formats_.input;

    // Quantize the query once (host copies the quantized vector in).
    std::vector<std::int64_t> &queryQ = scratch.queryQ;
    queryQ.resize(d);
    for (std::size_t j = 0; j < d; ++j)
        queryQ[j] = inFmt.quantize(query[j]);

    // --- Module 1: dot products and running max (Figure 5 lines 3-10).
    std::vector<std::int64_t> &dotQ = scratch.dotQ;
    dotQ.resize(m);
    std::int64_t maxDot = 0;
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint32_t r = rows[i];
        std::int64_t sum = 0;  // adder-tree accumulator, (2i+log2 d, 2f)
        if (key == nullptr) {
            const std::int32_t *keyRow = keyQ_.data() + r * d;
            for (std::size_t j = 0; j < d; ++j)
                sum += keyRow[j] * queryQ[j];
        } else {
            for (std::size_t j = 0; j < d; ++j)
                sum += inFmt.quantize((*key)(r, j)) * queryQ[j];
        }
        a3Assert(formats_.dotProduct.fits(sum),
                 "dot-product stage overflow: Section III-B widths "
                 "violated");
        dotQ[i] = sum;
        if (i == 0 || sum > maxDot)
            maxDot = sum;
    }

    // --- Module 2: exponent computation (Figure 5 lines 11-16).
    std::vector<std::int64_t> &scoreQ = scratch.scoreQ;
    scoreQ.resize(m);
    std::int64_t expSum = 0;  // (log2 n, 2f)
    for (std::size_t i = 0; i < m; ++i) {
        const std::int64_t shifted = dotQ[i] - maxDot;  // <= 0
        a3Assert(formats_.shiftedDot.fits(shifted),
                 "shifted-dot stage overflow");
        scoreQ[i] = lut_.lookup(shifted);
        expSum += scoreQ[i];
    }
    a3Assert(formats_.expSum.fits(expSum), "expsum stage overflow");
    a3Assert(expSum > 0, "expsum must be positive: the max row scores "
                         "~1 by construction");

    // --- Module 3: weights and output accumulation (lines 17-21).
    result.scores.assign(n, 0.0f);
    result.weights.assign(n, 0.0f);
    result.candidates.assign(rows.begin(), rows.end());
    result.kept.assign(rows.begin(), rows.end());
    result.output.assign(d, 0.0f);
    result.iterations = 0;

    const FixedValue expSumV{expSum, formats_.expSum};
    std::vector<std::int64_t> &outQ = scratch.outQ;
    outQ.assign(d, 0);
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint32_t r = rows[i];
        const FixedValue scoreV{scoreQ[i], formats_.score};
        const FixedValue weightV =
            divide(scoreV, expSumV, formats_.weight.intBits,
                   formats_.weight.fracBits);
        result.scores[r] =
            static_cast<float>(formats_.dotProduct.toDouble(dotQ[i]));
        result.weights[r] = static_cast<float>(weightV.toDouble());
        const std::int32_t *valueRow =
            value == nullptr ? valueQ_.data() + r * d : nullptr;
        for (std::size_t j = 0; j < d; ++j) {
            const std::int64_t vq =
                valueRow != nullptr ? valueRow[j]
                                    : inFmt.quantize((*value)(r, j));
            const FixedValue valueV{vq, inFmt};
            const FixedValue product = mulFull(weightV, valueV);
            // Accumulate at (i + log2 n, 3f); product already has 3f
            // fraction bits because weight carries 2f and value f.
            outQ[j] += product.raw;
            a3Assert(formats_.output.fits(outQ[j]),
                     "output stage overflow");
        }
    }
    for (std::size_t j = 0; j < d; ++j) {
        result.output[j] =
            static_cast<float>(formats_.output.toDouble(outQ[j]));
    }
}

}  // namespace a3
