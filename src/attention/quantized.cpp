#include "attention/quantized.hpp"

#include <numeric>
#include <type_traits>
#include <utility>

#include "fixed/value.hpp"
#include "kernels/kernels.hpp"
#include "net/wire.hpp"
#include "util/logging.hpp"

namespace a3 {

QuantizedAttention::QuantizedAttention(int intBits, int fracBits,
                                       std::size_t maxRows,
                                       std::size_t dims)
    : formats_(PipelineFormats::derive(intBits, fracBits, maxRows, dims)),
      lut_(2 * fracBits, 2 * fracBits),
      maxRows_(maxRows), dims_(dims)
{
}

QuantizedAttention::QuantizedAttention(Matrix key, Matrix value,
                                       int intBits, int fracBits,
                                       PackedKvFormat packedKv)
    : QuantizedAttention(intBits, fracBits, key.rows(), key.cols())
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    a3Assert(key.rows() > 0 && key.cols() > 0,
             "attention task must be non-empty");

    packed_ = resolvePackedKvFormat(packedKv, intBits, fracBits);
    if (packed_ != PackedKvFormat::Word32) {
        // The packed kernels accumulate in int32; the derived dot
        // format must fit (it always does for byte-narrow words at
        // any realistic d — this guards absurd dimensions).
        a3Assert(formats_.dotProduct.totalBits() <= 32,
                 "dot-product format exceeds the packed kernels' "
                 "32-bit accumulator; use PackedKvFormat::Word32");
    }

    // Quantize the task once at bind time — the host copies quantized
    // matrices into the accelerator SRAM exactly once per task — and
    // drop the float originals: every runInto() reads the cached words
    // instead of re-quantizing n x d floats per query.
    const std::size_t n = key.rows();
    const std::size_t d = key.cols();
    boundRows_ = n;
    bound_ = true;
    packRows(key, value, n);
    Scratch::forThread().reserveTask(n, d);
}

void
QuantizedAttention::packRows(const Matrix &keyRows,
                             const Matrix &valueRows, std::size_t count)
{
    const FixedFormat inFmt = formats_.input;
    const std::size_t d = dims_;
    if (packed_ != PackedKvFormat::Word32) {
        // Every row shares the symmetric quantizer's resolution today;
        // stored per row so the dequant path already consumes the
        // layout a per-row-range scheme would produce. Word32 keeps no
        // scale metadata: the legacy layout is preserved exactly.
        const float scale = static_cast<float>(inFmt.resolution());
        keyScale_.reserve(keyScale_.size() + count);
        valueScale_.reserve(valueScale_.size() + count);
        for (std::size_t r = 0; r < count; ++r) {
            keyScale_.push_back(scale);
            valueScale_.push_back(scale);
        }
    }
    switch (packed_) {
    case PackedKvFormat::Word32:
        keyQ_.reserve(keyQ_.size() + count * d);
        valueQ_.reserve(valueQ_.size() + count * d);
        for (std::size_t i = 0; i < count * d; ++i) {
            keyQ_.push_back(static_cast<std::int32_t>(
                inFmt.quantize(keyRows.data()[i])));
            valueQ_.push_back(static_cast<std::int32_t>(
                inFmt.quantize(valueRows.data()[i])));
        }
        break;
    case PackedKvFormat::Int8:
        keyQ8_.reserve(keyQ8_.size() + count * d);
        valueQ8_.reserve(valueQ8_.size() + count * d);
        for (std::size_t i = 0; i < count * d; ++i) {
            keyQ8_.push_back(static_cast<std::int8_t>(
                inFmt.quantize(keyRows.data()[i])));
            valueQ8_.push_back(static_cast<std::int8_t>(
                inFmt.quantize(valueRows.data()[i])));
        }
        break;
    case PackedKvFormat::Int4: {
        const std::size_t rowBytes = (d + 1) / 2;
        keyQ4_.reserve(keyQ4_.size() + count * rowBytes);
        valueQ4_.reserve(valueQ4_.size() + count * rowBytes);
        for (std::size_t r = 0; r < count; ++r) {
            for (std::size_t j = 0; j < d; j += 2) {
                const auto lane = [&](const Matrix &m,
                                      std::size_t col) -> std::int8_t {
                    return col < d ? static_cast<std::int8_t>(
                                         inFmt.quantize(m(r, col)))
                                   : std::int8_t{0};
                };
                keyQ4_.push_back(packNibblePair(lane(keyRows, j),
                                                lane(keyRows, j + 1)));
                valueQ4_.push_back(packNibblePair(
                    lane(valueRows, j), lane(valueRows, j + 1)));
            }
        }
        break;
    }
    case PackedKvFormat::Auto:
        panic("packed_ must be resolved before packRows()");
    }
}

std::size_t
QuantizedAttention::rows() const
{
    return bound_ ? boundRows_ : maxRows_;
}

void
QuantizedAttention::append(const Matrix &keyRows, const Matrix &valueRows)
{
    a3Assert(bound_, "append() needs a bound task; use the "
                     "(key, value, intBits, fracBits) constructor");
    a3Assert(keyRows.rows() == valueRows.rows() &&
                 keyRows.cols() == valueRows.cols(),
             "appended key/value shape mismatch");
    a3Assert(keyRows.cols() == dims_,
             "appended rows must match the task dimension");
    const std::size_t k = keyRows.rows();
    if (k == 0)
        return;

    const FixedFormat inFmt = formats_.input;
    packRows(keyRows, valueRows, k);
    boundRows_ += k;
    maxRows_ = boundRows_;
    // Re-derive the stage widths for the grown n: only the expSum and
    // output capacity annotations change — every fraction width stays,
    // so existing words and future results are unaffected beyond the
    // larger legal range.
    formats_ = PipelineFormats::derive(inFmt.intBits, inFmt.fracBits,
                                       boundRows_, dims_);
    Scratch::forThread().reserveTask(boundRows_, dims_);
}

std::unique_ptr<AttentionBackend>
QuantizedAttention::clone() const
{
    // Member-wise copy: lanes, scales, formats, and the LUT are all
    // plain values, so the clone is bit-identical in queries.
    return std::unique_ptr<AttentionBackend>(
        new QuantizedAttention(*this));
}

std::size_t
QuantizedAttention::compact()
{
    std::size_t reclaimed = 0;
    const auto shrink = [&reclaimed](auto &lane) {
        using Elem = typename std::decay_t<decltype(lane)>::value_type;
        const std::size_t before = lane.capacity();
        lane.shrink_to_fit();
        reclaimed += (before - lane.capacity()) * sizeof(Elem);
    };
    shrink(keyQ_);
    shrink(valueQ_);
    shrink(keyQ8_);
    shrink(valueQ8_);
    shrink(keyQ4_);
    shrink(valueQ4_);
    shrink(keyScale_);
    shrink(valueScale_);
    return reclaimed;
}

void
QuantizedAttention::serializeState(WireWriter &out) const
{
    a3Assert(bound_, "serializeState() needs a bound task");
    out.u64(boundRows_);
    out.u64(dims_);
    out.u8(static_cast<std::uint8_t>(packed_));
    out.floats(keyScale_.data(), keyScale_.size());
    out.floats(valueScale_.data(), valueScale_.size());
    switch (packed_) {
    case PackedKvFormat::Word32:
        // int32 words travel as their two's-complement bit patterns.
        out.u32s(reinterpret_cast<const std::uint32_t *>(keyQ_.data()),
                 keyQ_.size());
        out.u32s(
            reinterpret_cast<const std::uint32_t *>(valueQ_.data()),
            valueQ_.size());
        break;
    case PackedKvFormat::Int8:
        out.blob(reinterpret_cast<const std::uint8_t *>(keyQ8_.data()),
                 keyQ8_.size());
        out.blob(
            reinterpret_cast<const std::uint8_t *>(valueQ8_.data()),
            valueQ8_.size());
        break;
    case PackedKvFormat::Int4:
        out.blob(keyQ4_.data(), keyQ4_.size());
        out.blob(valueQ4_.data(), valueQ4_.size());
        break;
    case PackedKvFormat::Auto:
        panic("bound datapath cannot hold an unresolved layout");
    }
}

std::unique_ptr<QuantizedAttention>
QuantizedAttention::restore(const EngineConfig &config, WireReader &in)
{
    const std::uint64_t rows = in.u64();
    const std::uint64_t dims = in.u64();
    const std::uint8_t packedRaw = in.u8();
    if (!in.ok() || rows == 0 || dims == 0)
        return nullptr;
    const PackedKvFormat expected = resolvePackedKvFormat(
        config.packedKv, config.intBits, config.fracBits);
    if (packedRaw != static_cast<std::uint8_t>(expected))
        return nullptr;

    // The sized constructor re-derives the stage formats and the
    // exponent LUT — both deterministic functions of the config and
    // shape, so recomputing them is bit-identical to the original.
    auto backend = std::make_unique<QuantizedAttention>(
        config.intBits, config.fracBits,
        static_cast<std::size_t>(rows),
        static_cast<std::size_t>(dims));
    backend->packed_ = expected;
    in.floats(backend->keyScale_);
    in.floats(backend->valueScale_);

    const std::size_t n = static_cast<std::size_t>(rows);
    const std::size_t d = static_cast<std::size_t>(dims);
    const std::size_t scaleCount =
        expected == PackedKvFormat::Word32 ? 0 : n;
    if (!in.ok() || backend->keyScale_.size() != scaleCount ||
        backend->valueScale_.size() != scaleCount)
        return nullptr;

    std::size_t laneCount = 0;
    switch (expected) {
    case PackedKvFormat::Word32: {
        std::vector<std::uint32_t> words;
        in.u32s(words);
        laneCount = words.size();
        backend->keyQ_.assign(
            reinterpret_cast<const std::int32_t *>(words.data()),
            reinterpret_cast<const std::int32_t *>(words.data()) +
                words.size());
        in.u32s(words);
        if (words.size() != laneCount)
            return nullptr;
        backend->valueQ_.assign(
            reinterpret_cast<const std::int32_t *>(words.data()),
            reinterpret_cast<const std::int32_t *>(words.data()) +
                words.size());
        if (laneCount != n * d)
            return nullptr;
        break;
    }
    case PackedKvFormat::Int8: {
        std::vector<std::uint8_t> bytes;
        in.blob(bytes);
        laneCount = bytes.size();
        backend->keyQ8_.assign(
            reinterpret_cast<const std::int8_t *>(bytes.data()),
            reinterpret_cast<const std::int8_t *>(bytes.data()) +
                bytes.size());
        in.blob(bytes);
        if (bytes.size() != laneCount)
            return nullptr;
        backend->valueQ8_.assign(
            reinterpret_cast<const std::int8_t *>(bytes.data()),
            reinterpret_cast<const std::int8_t *>(bytes.data()) +
                bytes.size());
        if (laneCount != n * d)
            return nullptr;
        break;
    }
    case PackedKvFormat::Int4:
        in.blob(backend->keyQ4_);
        in.blob(backend->valueQ4_);
        laneCount = backend->keyQ4_.size();
        if (backend->valueQ4_.size() != laneCount ||
            laneCount != n * ((d + 1) / 2))
            return nullptr;
        break;
    case PackedKvFormat::Auto:
        return nullptr;
    }
    if (!in.ok())
        return nullptr;

    backend->boundRows_ = n;
    backend->bound_ = true;
    Scratch::forThread().reserveTask(n, d);
    return backend;
}

std::size_t
QuantizedAttention::memoryBytes() const
{
    const std::size_t lanes =
        (keyQ_.size() + valueQ_.size()) * sizeof(std::int32_t) +
        (keyQ8_.size() + valueQ8_.size()) * sizeof(std::int8_t) +
        (keyQ4_.size() + valueQ4_.size()) * sizeof(std::uint8_t);
    const std::size_t scales =
        (keyScale_.size() + valueScale_.size()) * sizeof(float);
    return lanes + scales;
}

void
QuantizedAttention::runInto(const Vector &query,
                            AttentionResult &out) const
{
    a3Assert(bound_, "one-argument run() needs a bound task; use the "
                     "(key, value, intBits, fracBits) constructor");
    Scratch &scratch = Scratch::forThread();
    scratch.rowIds.resize(boundRows_);
    std::iota(scratch.rowIds.begin(), scratch.rowIds.end(), 0u);
    runCore(boundRows_, nullptr, nullptr, query, scratch.rowIds, out,
            scratch);
}

void
QuantizedAttention::runRowsInto(const Vector &query,
                                std::span<const std::uint32_t> rows,
                                AttentionResult &out) const
{
    a3Assert(bound_, "runRowsInto() needs a bound task");
    runCore(boundRows_, nullptr, nullptr, query, rows, out,
            Scratch::forThread());
}

AttentionResult
QuantizedAttention::run(const Matrix &key, const Matrix &value,
                        const Vector &query) const
{
    std::vector<std::uint32_t> all(key.rows());
    std::iota(all.begin(), all.end(), 0u);
    return run(key, value, query, all);
}

AttentionResult
QuantizedAttention::run(const Matrix &key, const Matrix &value,
                        const Vector &query,
                        const std::vector<std::uint32_t> &rows) const
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    AttentionResult out;
    runCore(key.rows(), &key, &value, query, rows, out,
            Scratch::forThread());
    return out;
}

void
QuantizedAttention::runCore(std::size_t n, const Matrix *key,
                            const Matrix *value, const Vector &query,
                            std::span<const std::uint32_t> rows,
                            AttentionResult &result,
                            Scratch &scratch) const
{
    a3Assert(key == nullptr ||
                 (key->rows() == n && key->cols() == dims_ &&
                  value->rows() == n && value->cols() == dims_),
             "task exceeds the sized pipeline capacity (",
             key != nullptr ? key->rows() : n, "x",
             key != nullptr ? key->cols() : dims_, " vs ", maxRows_,
             "x", dims_, ")");
    a3Assert(n <= maxRows_,
             "task exceeds the sized pipeline capacity (", n, " rows "
             "vs ", maxRows_, ")");
    a3Assert(!rows.empty(), "quantized pipeline needs at least one row");

    const std::size_t d = dims_;
    const std::size_t m = rows.size();
    const FixedFormat inFmt = formats_.input;

    // Quantize the query once (host copies the quantized vector in).
    std::vector<std::int64_t> &queryQ = scratch.queryQ;
    queryQ.resize(d);
    for (std::size_t j = 0; j < d; ++j)
        queryQ[j] = inFmt.quantize(query[j]);

    // Bound runs with a packed layout MAC directly on the packed
    // lanes; the lanes hold the exact quantized words, so the result
    // is bit-identical to the Word32 loops.
    const bool packedLanes =
        key == nullptr && packed_ != PackedKvFormat::Word32;
    const Kernels &kern = activeKernels();

    // --- Module 1: dot products and running max (Figure 5 lines 3-10).
    std::vector<std::int64_t> &dotQ = scratch.dotQ;
    dotQ.resize(m);
    std::int64_t maxDot = 0;
    if (packedLanes) {
        std::vector<std::int8_t> &queryQ8 = scratch.queryQ8;
        queryQ8.resize(d);
        for (std::size_t j = 0; j < d; ++j)
            queryQ8[j] = static_cast<std::int8_t>(queryQ[j]);
        std::vector<std::int32_t> &dot32 = scratch.dotQ32;
        dot32.resize(m);
        if (packed_ == PackedKvFormat::Int8)
            kern.gatherDotI8(keyQ8_.data(), d, rows.data(), m,
                             queryQ8.data(), dot32.data());
        else
            kern.gatherDotI4(keyQ4_.data(), d, rows.data(), m,
                             queryQ8.data(), dot32.data());
        for (std::size_t i = 0; i < m; ++i) {
            const std::int64_t sum = dot32[i];
            a3Assert(formats_.dotProduct.fits(sum),
                     "dot-product stage overflow: Section III-B widths "
                     "violated");
            dotQ[i] = sum;
            if (i == 0 || sum > maxDot)
                maxDot = sum;
        }
    } else {
        for (std::size_t i = 0; i < m; ++i) {
            const std::uint32_t r = rows[i];
            std::int64_t sum = 0;  // adder-tree acc, (2i+log2 d, 2f)
            if (key == nullptr) {
                const std::int32_t *keyRow = keyQ_.data() + r * d;
                for (std::size_t j = 0; j < d; ++j)
                    sum += keyRow[j] * queryQ[j];
            } else {
                for (std::size_t j = 0; j < d; ++j)
                    sum += inFmt.quantize((*key)(r, j)) * queryQ[j];
            }
            a3Assert(formats_.dotProduct.fits(sum),
                     "dot-product stage overflow: Section III-B widths "
                     "violated");
            dotQ[i] = sum;
            if (i == 0 || sum > maxDot)
                maxDot = sum;
        }
    }

    // --- Module 2: exponent computation (Figure 5 lines 11-16).
    std::vector<std::int64_t> &scoreQ = scratch.scoreQ;
    scoreQ.resize(m);
    std::int64_t expSum = 0;  // (log2 n, 2f)
    for (std::size_t i = 0; i < m; ++i) {
        const std::int64_t shifted = dotQ[i] - maxDot;  // <= 0
        a3Assert(formats_.shiftedDot.fits(shifted),
                 "shifted-dot stage overflow");
        scoreQ[i] = lut_.lookup(shifted);
        expSum += scoreQ[i];
    }
    a3Assert(formats_.expSum.fits(expSum), "expsum stage overflow");
    a3Assert(expSum > 0, "expsum must be positive: the max row scores "
                         "~1 by construction");

    // --- Module 3: weights and output accumulation (lines 17-21).
    result.scores.assign(n, 0.0f);
    result.weights.assign(n, 0.0f);
    result.candidates.assign(rows.begin(), rows.end());
    result.kept.assign(rows.begin(), rows.end());
    result.output.assign(d, 0.0f);
    result.iterations = 0;

    const FixedValue expSumV{expSum, formats_.expSum};
    std::vector<std::int64_t> &outQ = scratch.outQ;
    outQ.assign(d, 0);
    const std::size_t rowBytes4 = (d + 1) / 2;
    const double queryScale = inFmt.resolution();
    for (std::size_t i = 0; i < m; ++i) {
        const std::uint32_t r = rows[i];
        const FixedValue scoreV{scoreQ[i], formats_.score};
        const FixedValue weightV =
            divide(scoreV, expSumV, formats_.weight.intBits,
                   formats_.weight.fracBits);
        // Packed rows dequantize through the per-row scale metadata;
        // the scales are powers of two, so the product double(raw) *
        // keyScale * queryScale is exact and bit-identical to the
        // dotProduct format's own toDouble().
        result.scores[r] =
            packedLanes
                ? static_cast<float>(static_cast<double>(dotQ[i]) *
                                     keyScale_[r] * queryScale)
                : static_cast<float>(
                      formats_.dotProduct.toDouble(dotQ[i]));
        result.weights[r] = static_cast<float>(weightV.toDouble());
        if (packedLanes) {
            // Fused dequant-dot accumulation on the packed bytes:
            // product.raw below is weightV.raw * vq, which is exactly
            // what axpyI8/I4 accumulate (the weight format (0, 2f)
            // keeps |w| far under the kernels' 2^24 contract).
            if (packed_ == PackedKvFormat::Int8)
                kern.axpyI8(weightV.raw, valueQ8_.data() + r * d,
                            outQ.data(), d);
            else
                kern.axpyI4(weightV.raw,
                            valueQ4_.data() + r * rowBytes4,
                            outQ.data(), d);
            continue;
        }
        const std::int32_t *valueRow =
            value == nullptr ? valueQ_.data() + r * d : nullptr;
        for (std::size_t j = 0; j < d; ++j) {
            const std::int64_t vq =
                valueRow != nullptr ? valueRow[j]
                                    : inFmt.quantize((*value)(r, j));
            const FixedValue valueV{vq, inFmt};
            const FixedValue product = mulFull(weightV, valueV);
            // Accumulate at (i + log2 n, 3f); product already has 3f
            // fraction bits because weight carries 2f and value f.
            outQ[j] += product.raw;
            a3Assert(formats_.output.fits(outQ[j]),
                     "output stage overflow");
        }
    }
    for (std::size_t j = 0; j < d; ++j) {
        // Packed rows skip the per-element overflow check inside the
        // hot loop; the final accumulators must still fit (partial
        // sums are bounded by the same capacity annotation).
        a3Assert(formats_.output.fits(outQ[j]), "output stage overflow");
        result.output[j] =
            static_cast<float>(formats_.output.toDouble(outQ[j]));
    }
}

}  // namespace a3
