/**
 * @file
 * Area / power / energy model of A3 (Table I of the paper).
 *
 * The paper synthesizes A3 with Synopsys DC on a TSMC 40 nm library at
 * 1 GHz and reports per-module area plus dynamic and static power
 * (Table I). Its energy results (Figure 15) are those constants
 * combined with cycle-level activity. We embed the published constants
 * and do the same accounting:
 *
 *   E_module = dynamicPower x activeCycles / f
 *            + staticPower  x elapsedCycles / f
 *
 * CPU and GPU comparison energy assumes TDP during the whole runtime,
 * exactly as Section VI-D does ("we assumed their power consumption is
 * equal to their TDPs").
 */

#ifndef A3_ENERGY_POWER_MODEL_HPP
#define A3_ENERGY_POWER_MODEL_HPP

#include <string>
#include <vector>

#include "sim/accelerator.hpp"
#include "sim/multi_unit.hpp"

namespace a3 {

/** Area and power characteristics of one hardware module (Table I). */
struct ModulePower
{
    std::string name;
    double areaMm2 = 0.0;
    double dynamicMw = 0.0;
    double staticMw = 0.0;
};

/** Published Table I rows. */
namespace table1 {

ModulePower dotProduct();
ModulePower exponent();
ModulePower output();
ModulePower candidateSelection();
ModulePower postScoring();
ModulePower keySram();
ModulePower valueSram();
ModulePower sortedKeySram();

/** All rows in Table I order. */
std::vector<ModulePower> allModules();

/** Total over base-design modules only (no approximation support). */
ModulePower baseTotal();

/** Total over every module (the paper's "A3" total row). */
ModulePower fullTotal();

}  // namespace table1

/** Reference conventional-hardware characteristics (Section VI-D). */
struct ReferenceDevice
{
    std::string name;
    double tdpW = 0.0;
    double dieAreaMm2 = 0.0;
    int processNm = 0;
};

/** Intel Xeon Gold 6128 (Skylake-SP): 115 W TDP, 325 mm2, 14 nm. */
ReferenceDevice xeonGold6128();

/** NVIDIA Titan V: 250 W TDP, 815 mm2, 12 nm. */
ReferenceDevice titanV();

/** Energy in joules split by the Figure 15b categories. */
struct EnergyBreakdown
{
    double candidateSelection = 0.0;
    double dotProduct = 0.0;
    double exponentWithPostScoring = 0.0;
    double output = 0.0;
    double memory = 0.0;

    double total() const;

    /** Fraction of total per category, in Figure 15b order. */
    std::vector<double> fractions() const;
};

/** Turns simulated activity into joules using the Table I constants. */
class PowerModel
{
  public:
    /**
     * Energy of one simulated run: per-stage active cycles drive the
     * dynamic term; the full elapsed cycle count drives static power
     * for every module present in the accelerator's mode.
     */
    static EnergyBreakdown computeEnergy(const A3Accelerator &acc);

    /** Energy a reference device burns running for `seconds` at TDP. */
    static double referenceEnergy(const ReferenceDevice &device,
                                  double seconds);

    /**
     * Energy efficiency in attention operations per joule, given ops
     * completed and joules spent.
     */
    static double opsPerJoule(double operations, double joules);
};

/** Total Table I energy across every unit of a cluster, joules. */
double clusterEnergy(const A3Cluster &cluster);

}  // namespace a3

#endif  // A3_ENERGY_POWER_MODEL_HPP
