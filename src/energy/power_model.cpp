#include "energy/power_model.hpp"

#include "util/logging.hpp"

namespace a3 {

namespace table1 {

ModulePower
dotProduct()
{
    return {"Dot Product", 0.098, 14.338, 1.265};
}

ModulePower
exponent()
{
    return {"Exponent Computation", 0.016, 0.224, 0.053};
}

ModulePower
output()
{
    return {"Output Computation", 0.062, 50.918, 0.070};
}

ModulePower
candidateSelection()
{
    return {"Candidate Selection", 0.277, 19.48, 5.08};
}

ModulePower
postScoring()
{
    return {"Post-Scoring Selection", 0.010, 2.055, 0.147};
}

ModulePower
keySram()
{
    return {"Key Matrix (20KB)", 0.350, 2.901, 0.987};
}

ModulePower
valueSram()
{
    return {"Value Matrix (20KB)", 0.350, 2.901, 0.987};
}

ModulePower
sortedKeySram()
{
    return {"Sorted Key Matrix (40KB)", 0.919, 6.100, 2.913};
}

std::vector<ModulePower>
allModules()
{
    return {dotProduct(),        exponent(),  output(),
            candidateSelection(), postScoring(), keySram(),
            valueSram(),          sortedKeySram()};
}

namespace {

ModulePower
sum(const std::vector<ModulePower> &modules, const std::string &name)
{
    ModulePower total{name, 0.0, 0.0, 0.0};
    for (const ModulePower &m : modules) {
        total.areaMm2 += m.areaMm2;
        total.dynamicMw += m.dynamicMw;
        total.staticMw += m.staticMw;
    }
    return total;
}

}  // namespace

ModulePower
baseTotal()
{
    return sum({dotProduct(), exponent(), output(), keySram(),
                valueSram()},
               "Base A3");
}

ModulePower
fullTotal()
{
    return sum(allModules(), "A3");
}

}  // namespace table1

ReferenceDevice
xeonGold6128()
{
    return {"Intel Xeon Gold 6128", 115.0, 325.0, 14};
}

ReferenceDevice
titanV()
{
    return {"NVIDIA Titan V", 250.0, 815.0, 12};
}

double
EnergyBreakdown::total() const
{
    return candidateSelection + dotProduct + exponentWithPostScoring +
           output + memory;
}

std::vector<double>
EnergyBreakdown::fractions() const
{
    const double sum = total();
    if (sum <= 0.0)
        return {0.0, 0.0, 0.0, 0.0, 0.0};
    return {candidateSelection / sum, dotProduct / sum,
            exponentWithPostScoring / sum, output / sum, memory / sum};
}

namespace {

/** Joules of one module given active and elapsed cycle counts. */
double
moduleEnergy(const ModulePower &power, double activeCycles,
             double elapsedCycles, double clockHz)
{
    const double dynamicJ =
        power.dynamicMw * 1e-3 * activeCycles / clockHz;
    const double staticJ =
        power.staticMw * 1e-3 * elapsedCycles / clockHz;
    return dynamicJ + staticJ;
}

}  // namespace

EnergyBreakdown
PowerModel::computeEnergy(const A3Accelerator &acc)
{
    const double clockHz = acc.config().clockGhz * 1e9;
    const auto elapsed = static_cast<double>(acc.now());
    const bool approx = acc.config().mode == A3Mode::Approx;

    // Locate per-stage activity by stage name.
    double candActive = 0.0;
    double dotActive = 0.0;
    double expActive = 0.0;
    double psActive = 0.0;
    double outActive = 0.0;
    for (const Stage *stage : acc.stages()) {
        const auto active =
            static_cast<double>(stage->stats().activeCycles);
        if (stage->name() == "candidate_selection") {
            candActive = active;
        } else if (stage->name() == "dot_product") {
            dotActive = active;
        } else if (stage->name() == "exponent") {
            psActive = static_cast<double>(stage->stats().auxCycles);
            expActive = active - psActive;
        } else if (stage->name() == "output") {
            outActive = active;
        } else {
            panic("unknown stage name: ", stage->name());
        }
    }

    EnergyBreakdown e;
    e.dotProduct = moduleEnergy(table1::dotProduct(), dotActive,
                                elapsed, clockHz);
    e.exponentWithPostScoring =
        moduleEnergy(table1::exponent(), expActive, elapsed, clockHz);
    e.output = moduleEnergy(table1::output(), outActive, elapsed,
                            clockHz);
    if (approx) {
        e.candidateSelection = moduleEnergy(table1::candidateSelection(),
                                            candActive, elapsed,
                                            clockHz);
        e.exponentWithPostScoring += moduleEnergy(
            table1::postScoring(), psActive, elapsed, clockHz);
    }

    // SRAM: one access per active cycle at the Table I dynamic power.
    e.memory = moduleEnergy(
        table1::keySram(),
        static_cast<double>(acc.keySram().accesses()), elapsed,
        clockHz);
    e.memory += moduleEnergy(
        table1::valueSram(),
        static_cast<double>(acc.valueSram().accesses()), elapsed,
        clockHz);
    if (approx) {
        e.memory += moduleEnergy(
            table1::sortedKeySram(),
            static_cast<double>(acc.sortedKeySram().accesses()),
            elapsed, clockHz);
    }
    // DRAM spill traffic (zero unless the task exceeds the SRAM).
    e.memory += acc.dram().energyJ();
    return e;
}

double
PowerModel::referenceEnergy(const ReferenceDevice &device, double seconds)
{
    a3Assert(seconds >= 0.0, "negative runtime");
    return device.tdpW * seconds;
}

double
PowerModel::opsPerJoule(double operations, double joules)
{
    a3Assert(joules > 0.0, "ops/J with non-positive energy");
    return operations / joules;
}

double
clusterEnergy(const A3Cluster &cluster)
{
    double total = 0.0;
    for (std::size_t u = 0; u < cluster.units(); ++u)
        total += PowerModel::computeEnergy(cluster.unit(u)).total();
    return total;
}

}  // namespace a3
