/**
 * @file
 * Deterministic, seeded fault injection at the transport seam.
 *
 * Every recovery path of the distributed tier — timeout, retry,
 * backoff, failover, re-replication, local fallback — must be
 * testable without flaky real crashes. FaultyTransport wraps any
 * Transport and applies a seeded FaultPlan: per frame class and
 * direction it can Drop a frame (the peer never sees it — the
 * receiver's deadline fires), Delay it (slow-shard emulation),
 * Corrupt it (a payload byte flip the receiver's checksum rejects),
 * or Close the connection (worker-death emulation). Decisions come
 * from the repo's xoshiro Rng, so a (seed, traffic) pair replays
 * the identical fault sequence on every run and platform.
 *
 * Corruption is injected on the send side so the real checksum
 * verification in SocketTransport::recv does the rejecting; a
 * recv-side Corrupt instead synthesizes the BadChecksum status
 * directly (the payload has already been verified by then), which
 * exercises the caller's corruption handling deterministically.
 */

#ifndef A3_NET_FAULT_INJECTOR_HPP
#define A3_NET_FAULT_INJECTOR_HPP

#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <vector>

#include "net/transport.hpp"
#include "util/random.hpp"

namespace a3 {

/** What a triggered fault does to the frame. */
enum class FaultAction {
    Drop,  ///< swallow the frame; the peer never receives it

    /**
     * Send side: sleep delaySeconds before delivering (a slow
     * link). Recv side: surface a Timeout now and deliver the
     * frame on the next recv() — a reply limping in after the
     * caller's deadline, which is what exercises the stale-reply
     * discard path.
     */
    Delay,

    Corrupt,  ///< flip a payload byte (checksum rejects it)
    Close,    ///< close the connection instead of delivering
};

/** Which side of the wrapped transport a rule applies to. */
enum class FaultDirection {
    Send,  ///< frames this endpoint sends
    Recv,  ///< frames this endpoint receives
    Both,
};

/** One matching rule of a FaultPlan. */
struct FaultRule
{
    /** Frame class the rule applies to. */
    FrameType type = FrameType::Query;

    /** Match any frame type, ignoring `type`. */
    bool anyType = false;

    FaultAction action = FaultAction::Drop;
    FaultDirection direction = FaultDirection::Both;

    /** Trigger probability per matching frame (1.0 = always). */
    double probability = 1.0;

    /** Sleep for Delay actions, in seconds. */
    double delaySeconds = 0.0;

    /**
     * Cap on how often this rule may trigger; the default is
     * unbounded. Bounded rules ("corrupt the first two queries")
     * make recovery assertions exact.
     */
    std::size_t maxTriggers =
        std::numeric_limits<std::size_t>::max();
};

/** Counts of injected faults, by action. */
struct FaultStats
{
    std::uint64_t dropped = 0;
    std::uint64_t delayed = 0;
    std::uint64_t corrupted = 0;
    std::uint64_t closed = 0;

    std::uint64_t
    total() const
    {
        return dropped + delayed + corrupted + closed;
    }
};

/**
 * Seeded rule evaluator, shared by the FaultyTransports of one
 * test so a multi-connection fault schedule stays one deterministic
 * stream. Thread-safe: decisions and counters are lock-protected.
 */
class FaultInjector
{
  public:
    FaultInjector(std::uint64_t seed, std::vector<FaultRule> rules);

    /**
     * First rule triggering for (type, direction), consuming its
     * probability draw and trigger budget; nullptr when none fire.
     */
    const FaultRule *decide(FrameType type,
                            FaultDirection direction);

    FaultStats stats() const;

  private:
    struct ArmedRule
    {
        FaultRule rule;
        std::size_t triggered = 0;
    };

    mutable std::mutex mutex_;
    Rng rng_;
    std::vector<ArmedRule> rules_;
    FaultStats stats_;
};

/** Transport decorator applying a FaultInjector's plan. */
class FaultyTransport final : public Transport
{
  public:
    FaultyTransport(std::shared_ptr<Transport> inner,
                    std::shared_ptr<FaultInjector> injector);

    NetStatus send(const Frame &frame) override;
    NetStatus recv(Frame &out, double timeoutSeconds) override;
    void close() override { inner_->close(); }
    bool isOpen() const override { return inner_->isOpen(); }

  private:
    std::shared_ptr<Transport> inner_;
    std::shared_ptr<FaultInjector> injector_;

    /** Recv-delayed frames awaiting the next recv() call. */
    std::vector<Frame> delayed_;
};

}  // namespace a3

#endif  // A3_NET_FAULT_INJECTOR_HPP
