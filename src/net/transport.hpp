/**
 * @file
 * Frame transport over local stream sockets.
 *
 * Transport is the seam the whole distributed tier is built on: the
 * coordinator, the shard worker, and every test talk in frames
 * through this interface, never in raw bytes. Two concrete shapes
 * cover production and testing:
 *  - SocketTransport over an AF_UNIX stream socket: one worker
 *    process per connection (tools/shard_worker), or an in-process
 *    worker thread over a socketpair (transportPair()).
 *  - FaultyTransport (net/fault_injector.hpp) wrapping any inner
 *    transport with deterministic, seeded fault injection — which is
 *    how every recovery path is exercised without flaky real
 *    crashes.
 *
 * Deadline semantics: recv() with a non-negative timeout waits that
 * long for the *start* of a frame; once a header byte has arrived
 * the frame must complete within the same deadline, and a mid-frame
 * timeout poisons the stream (the connection is closed, since a
 * half-read frame can never be resynchronized). A timeout while
 * waiting for the first byte leaves the connection usable — the
 * retry path depends on that distinction.
 *
 * Thread safety: a Transport is not thread-safe; callers (the
 * coordinator's internal lock, the worker's single serve loop)
 * serialize access. close() is the exception: it may be called from
 * another thread to unblock a pending recv() (shutdown(2) under the
 * hood), which is how in-process workers stop deterministically.
 */

#ifndef A3_NET_TRANSPORT_HPP
#define A3_NET_TRANSPORT_HPP

#include <atomic>
#include <memory>
#include <string>
#include <utility>

#include "net/frame.hpp"
#include "net/net_error.hpp"

namespace a3 {

/** Bidirectional, ordered, reliable frame channel. */
class Transport
{
  public:
    virtual ~Transport() = default;

    /** Serialize and send one frame (blocking). */
    virtual NetStatus send(const Frame &frame) = 0;

    /**
     * Receive one validated frame. `timeoutSeconds` < 0 blocks
     * indefinitely; >= 0 bounds the wait for the frame to start.
     * Framing violations return typed failures (Malformed,
     * BadChecksum, BadVersion); orderly peer close returns Closed.
     */
    virtual NetStatus recv(Frame &out, double timeoutSeconds) = 0;

    /**
     * Shut the channel down, unblocking any pending recv() on it.
     * Safe to call from another thread and idempotent.
     */
    virtual void close() = 0;

    /** Channel has not been closed by either side. */
    virtual bool isOpen() const = 0;
};

/** Transport over one connected stream-socket file descriptor. */
class SocketTransport final : public Transport
{
  public:
    /** Adopt a connected socket fd (owned; closed on destruction). */
    explicit SocketTransport(int fd);
    ~SocketTransport() override;

    SocketTransport(const SocketTransport &) = delete;
    SocketTransport &operator=(const SocketTransport &) = delete;

    NetStatus send(const Frame &frame) override;
    NetStatus recv(Frame &out, double timeoutSeconds) override;
    void close() override;
    bool isOpen() const override { return !closed_.load(); }

    /**
     * Ship pre-encoded bytes verbatim — the fault injector's
     * corruption seam (a frame whose checksum no longer matches its
     * payload cannot be expressed through send()). Not for general
     * use: anything but a validly framed byte image desynchronizes
     * the peer by design.
     */
    NetStatus sendRawBytes(const std::uint8_t *data,
                           std::size_t size);

  private:
    /** Write exactly `size` bytes (EINTR-safe, SIGPIPE-free). */
    NetStatus sendAll(const std::uint8_t *data, std::size_t size);

    /**
     * Read exactly `size` bytes before `deadlineSeconds` (absolute
     * steady-clock seconds; < 0 means no deadline). `firstByte`
     * distinguishes the clean wait-for-frame timeout from the
     * stream-poisoning mid-frame one.
     */
    NetStatus recvAll(std::uint8_t *data, std::size_t size,
                      double deadlineSeconds, bool firstByte);

    int fd_ = -1;
    std::atomic<bool> closed_{false};
};

/** Listening AF_UNIX socket handing out accepted transports. */
class UnixServerSocket
{
  public:
    UnixServerSocket() = default;
    ~UnixServerSocket();

    UnixServerSocket(const UnixServerSocket &) = delete;
    UnixServerSocket &operator=(const UnixServerSocket &) = delete;

    /**
     * Bind and listen on `path` (an existing socket file is
     * unlinked first — stale paths from killed workers must not
     * block a restart).
     */
    NetStatus listenOn(const std::string &path);

    /**
     * Accept one connection; nullptr with a typed status on
     * timeout/failure. `timeoutSeconds` < 0 blocks indefinitely.
     */
    std::shared_ptr<Transport> accept(double timeoutSeconds,
                                      NetStatus &status);

    /** Stop listening and unlink the path (idempotent). */
    void close();

    bool isOpen() const { return fd_ >= 0; }
    const std::string &path() const { return path_; }

  private:
    int fd_ = -1;
    std::string path_;
};

/**
 * Connect to a worker's AF_UNIX socket, retrying until
 * `timeoutSeconds` elapses — a freshly spawned worker needs a
 * moment to create its listener, and the retry absorbs that race.
 */
std::shared_ptr<Transport> connectUnix(const std::string &path,
                                       double timeoutSeconds,
                                       NetStatus &status);

/**
 * Connected socketpair as two transports (client, server) — the
 * substrate for in-process workers and fault-injection tests.
 */
std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>>
transportPair();

}  // namespace a3

#endif  // A3_NET_TRANSPORT_HPP
