#include "net/transport.hpp"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <string>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace a3 {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

NetStatus
systemFailure(const char *what)
{
    return NetStatus::failure(NetError::SystemError,
                              std::string(what) + ": " +
                                  std::strerror(errno));
}

/** Remaining poll timeout in ms for an absolute deadline. */
int
pollTimeoutMs(double deadlineSeconds)
{
    if (deadlineSeconds < 0)
        return -1;
    const double remaining = deadlineSeconds - nowSeconds();
    if (remaining <= 0)
        return 0;
    // Round up so a sub-millisecond remainder still polls once.
    return static_cast<int>(remaining * 1e3) + 1;
}

NetStatus
fillSockaddrUn(const std::string &path, sockaddr_un &addr)
{
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    if (path.empty() || path.size() >= sizeof(addr.sun_path))
        return NetStatus::failure(NetError::SystemError,
                                  "unix socket path \"" + path +
                                      "\" is empty or too long");
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    return NetStatus::success();
}

}  // namespace

SocketTransport::SocketTransport(int fd) : fd_(fd) {}

SocketTransport::~SocketTransport()
{
    close();
    if (fd_ >= 0)
        ::close(fd_);
}

void
SocketTransport::close()
{
    // shutdown() rather than close(): the fd must stay valid while
    // another thread may still be blocked in recv()/poll() on it —
    // shutdown wakes that thread with EOF, and the destructor
    // releases the descriptor once no caller can touch it.
    if (!closed_.exchange(true))
        ::shutdown(fd_, SHUT_RDWR);
}

NetStatus
SocketTransport::sendAll(const std::uint8_t *data, std::size_t size)
{
    std::size_t sent = 0;
    while (sent < size) {
        const ssize_t n = ::send(fd_, data + sent, size - sent,
                                 MSG_NOSIGNAL);
        if (n > 0) {
            sent += static_cast<std::size_t>(n);
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0 && (errno == EPIPE || errno == ECONNRESET))
            return NetStatus::failure(NetError::Closed,
                                      "peer closed during send");
        return systemFailure("send");
    }
    return NetStatus::success();
}

NetStatus
SocketTransport::send(const Frame &frame)
{
    if (closed_.load())
        return NetStatus::failure(NetError::Closed,
                                  "transport is closed");
    const std::vector<std::uint8_t> bytes = encodeFrame(frame);
    return sendAll(bytes.data(), bytes.size());
}

NetStatus
SocketTransport::sendRawBytes(const std::uint8_t *data,
                              std::size_t size)
{
    if (closed_.load())
        return NetStatus::failure(NetError::Closed,
                                  "transport is closed");
    return sendAll(data, size);
}

NetStatus
SocketTransport::recvAll(std::uint8_t *data, std::size_t size,
                         double deadlineSeconds, bool firstByte)
{
    std::size_t received = 0;
    while (received < size) {
        pollfd pfd{fd_, POLLIN, 0};
        const int ready =
            ::poll(&pfd, 1, pollTimeoutMs(deadlineSeconds));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            return systemFailure("poll");
        }
        if (ready == 0) {
            if (firstByte && received == 0)
                return NetStatus::failure(
                    NetError::Timeout,
                    "timed out waiting for a frame");
            // A frame started but never finished: the stream can
            // no longer be resynchronized, so poison it.
            close();
            return NetStatus::failure(NetError::Timeout,
                                      "timed out mid-frame");
        }
        const ssize_t n =
            ::recv(fd_, data + received, size - received, 0);
        if (n > 0) {
            received += static_cast<std::size_t>(n);
            continue;
        }
        if (n == 0)
            return NetStatus::failure(NetError::Closed,
                                      "peer closed the connection");
        if (errno == EINTR)
            continue;
        if (errno == ECONNRESET)
            return NetStatus::failure(NetError::Closed,
                                      "connection reset");
        return systemFailure("recv");
    }
    return NetStatus::success();
}

NetStatus
SocketTransport::recv(Frame &out, double timeoutSeconds)
{
    if (closed_.load())
        return NetStatus::failure(NetError::Closed,
                                  "transport is closed");
    const double deadline =
        timeoutSeconds < 0 ? -1.0 : nowSeconds() + timeoutSeconds;

    std::uint8_t headerBytes[kFrameHeaderBytes];
    NetStatus status =
        recvAll(headerBytes, kFrameHeaderBytes, deadline, true);
    if (!status.ok())
        return status;

    FrameHeader header;
    status =
        decodeFrameHeader(headerBytes, kFrameHeaderBytes, header);
    if (!status.ok()) {
        // A bad header means the stream position is untrustworthy;
        // strict rejection closes rather than guessing a resync.
        close();
        return status;
    }

    out.type = header.type;
    out.payload.resize(header.payloadLength);
    if (header.payloadLength > 0) {
        status = recvAll(out.payload.data(), header.payloadLength,
                         deadline, false);
        if (!status.ok())
            return status;
    }
    return verifyFramePayload(header, out.payload);
}

UnixServerSocket::~UnixServerSocket() { close(); }

NetStatus
UnixServerSocket::listenOn(const std::string &path)
{
    sockaddr_un addr;
    NetStatus status = fillSockaddrUn(path, addr);
    if (!status.ok())
        return status;

    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return systemFailure("socket");
    ::unlink(path.c_str());
    if (::bind(fd, reinterpret_cast<const sockaddr *>(&addr),
               sizeof(addr)) < 0) {
        const NetStatus failure = systemFailure("bind");
        ::close(fd);
        return failure;
    }
    if (::listen(fd, 16) < 0) {
        const NetStatus failure = systemFailure("listen");
        ::close(fd);
        return failure;
    }
    close();
    fd_ = fd;
    path_ = path;
    return NetStatus::success();
}

std::shared_ptr<Transport>
UnixServerSocket::accept(double timeoutSeconds, NetStatus &status)
{
    if (fd_ < 0) {
        status = NetStatus::failure(NetError::Closed,
                                    "server socket is closed");
        return nullptr;
    }
    const double deadline =
        timeoutSeconds < 0 ? -1.0 : nowSeconds() + timeoutSeconds;
    for (;;) {
        pollfd pfd{fd_, POLLIN, 0};
        const int ready = ::poll(&pfd, 1, pollTimeoutMs(deadline));
        if (ready < 0) {
            if (errno == EINTR)
                continue;
            status = systemFailure("poll");
            return nullptr;
        }
        if (ready == 0) {
            status = NetStatus::failure(
                NetError::Timeout, "timed out waiting to accept");
            return nullptr;
        }
        const int client = ::accept(fd_, nullptr, nullptr);
        if (client < 0) {
            if (errno == EINTR)
                continue;
            status = systemFailure("accept");
            return nullptr;
        }
        status = NetStatus::success();
        return std::make_shared<SocketTransport>(client);
    }
}

void
UnixServerSocket::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
    if (!path_.empty()) {
        ::unlink(path_.c_str());
        path_.clear();
    }
}

std::shared_ptr<Transport>
connectUnix(const std::string &path, double timeoutSeconds,
            NetStatus &status)
{
    sockaddr_un addr;
    status = fillSockaddrUn(path, addr);
    if (!status.ok())
        return nullptr;

    const double deadline = nowSeconds() + timeoutSeconds;
    for (;;) {
        const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0) {
            status = systemFailure("socket");
            return nullptr;
        }
        if (::connect(fd, reinterpret_cast<const sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            status = NetStatus::success();
            return std::make_shared<SocketTransport>(fd);
        }
        const int err = errno;
        ::close(fd);
        // A spawned worker may not have bound its listener yet;
        // those two errnos are the not-up-yet signals worth
        // retrying. Anything else is a real failure.
        if (err != ENOENT && err != ECONNREFUSED) {
            errno = err;
            status = systemFailure("connect");
            return nullptr;
        }
        if (nowSeconds() >= deadline) {
            status = NetStatus::failure(
                NetError::Timeout,
                "worker socket \"" + path + "\" never came up");
            return nullptr;
        }
        ::usleep(2000);
    }
}

std::pair<std::shared_ptr<Transport>, std::shared_ptr<Transport>>
transportPair()
{
    int fds[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, fds) < 0)
        return {nullptr, nullptr};
    return {std::make_shared<SocketTransport>(fds[0]),
            std::make_shared<SocketTransport>(fds[1])};
}

}  // namespace a3
