#include "net/process.hpp"

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

namespace a3 {

ChildProcess::~ChildProcess()
{
    kill();
    wait();
}

ChildProcess::ChildProcess(ChildProcess &&other) noexcept
    : pid_(std::exchange(other.pid_, -1))
{
}

ChildProcess &
ChildProcess::operator=(ChildProcess &&other) noexcept
{
    if (this != &other) {
        kill();
        wait();
        pid_ = std::exchange(other.pid_, -1);
    }
    return *this;
}

NetStatus
ChildProcess::spawn(const std::string &binary,
                    const std::vector<std::string> &args)
{
    kill();
    wait();

    std::vector<char *> argv;
    argv.reserve(args.size() + 2);
    std::string argv0 = binary;
    argv.push_back(argv0.data());
    std::vector<std::string> owned = args;
    for (std::string &arg : owned)
        argv.push_back(arg.data());
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0)
        return NetStatus::failure(NetError::SystemError,
                                  std::string("fork: ") +
                                      std::strerror(errno));
    if (pid == 0) {
        ::execv(binary.c_str(), argv.data());
        // Only reached when exec failed; 127 is the shell's
        // command-not-found convention and is what wait() reports.
        ::_exit(127);
    }
    pid_ = pid;
    return NetStatus::success();
}

void
ChildProcess::kill()
{
    if (pid_ > 0)
        ::kill(pid_, SIGKILL);
}

void
ChildProcess::wait()
{
    if (pid_ > 0) {
        int status = 0;
        ::waitpid(pid_, &status, 0);
        pid_ = -1;
    }
}

}  // namespace a3
