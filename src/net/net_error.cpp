#include "net/net_error.hpp"

namespace a3 {

const char *
netErrorName(NetError error)
{
    switch (error) {
    case NetError::Ok:
        return "ok";
    case NetError::Timeout:
        return "timeout";
    case NetError::Closed:
        return "closed";
    case NetError::Malformed:
        return "malformed";
    case NetError::BadChecksum:
        return "bad-checksum";
    case NetError::BadVersion:
        return "bad-version";
    case NetError::WorkerError:
        return "worker-error";
    case NetError::StaleShard:
        return "stale-shard";
    case NetError::SystemError:
        return "system-error";
    }
    return "unknown";
}

std::string
NetStatus::str() const
{
    if (ok())
        return "ok";
    std::string out = netErrorName(error);
    if (!message.empty()) {
        out += ": ";
        out += message;
    }
    return out;
}

}  // namespace a3
