#include "net/fault_injector.hpp"

#include <chrono>
#include <thread>
#include <utility>

namespace a3 {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

void
sleepSeconds(double seconds)
{
    if (seconds > 0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
}

bool
directionMatches(FaultDirection rule, FaultDirection actual)
{
    return rule == FaultDirection::Both || rule == actual;
}

}  // namespace

FaultInjector::FaultInjector(std::uint64_t seed,
                             std::vector<FaultRule> rules)
    : rng_(seed)
{
    rules_.reserve(rules.size());
    for (FaultRule &rule : rules)
        rules_.push_back({std::move(rule), 0});
}

const FaultRule *
FaultInjector::decide(FrameType type, FaultDirection direction)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (ArmedRule &armed : rules_) {
        const FaultRule &rule = armed.rule;
        if (!rule.anyType && rule.type != type)
            continue;
        if (!directionMatches(rule.direction, direction))
            continue;
        if (armed.triggered >= rule.maxTriggers)
            continue;
        // The probability draw is consumed even when it misses, so
        // the decision stream stays a pure function of (seed,
        // matching-frame sequence).
        if (!rng_.bernoulli(rule.probability))
            continue;
        ++armed.triggered;
        switch (rule.action) {
        case FaultAction::Drop:
            ++stats_.dropped;
            break;
        case FaultAction::Delay:
            ++stats_.delayed;
            break;
        case FaultAction::Corrupt:
            ++stats_.corrupted;
            break;
        case FaultAction::Close:
            ++stats_.closed;
            break;
        }
        return &armed.rule;
    }
    return nullptr;
}

FaultStats
FaultInjector::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

FaultyTransport::FaultyTransport(
    std::shared_ptr<Transport> inner,
    std::shared_ptr<FaultInjector> injector)
    : inner_(std::move(inner)), injector_(std::move(injector))
{
}

NetStatus
FaultyTransport::send(const Frame &frame)
{
    const FaultRule *rule =
        injector_->decide(frame.type, FaultDirection::Send);
    if (rule == nullptr)
        return inner_->send(frame);
    switch (rule->action) {
    case FaultAction::Drop:
        // Pretend success: the caller believes the frame left, the
        // peer never sees it, and the reply deadline fires.
        return NetStatus::success();
    case FaultAction::Delay:
        sleepSeconds(rule->delaySeconds);
        return inner_->send(frame);
    case FaultAction::Corrupt: {
        // Flip one payload byte *after* framing, so the frame on
        // the wire carries a checksum computed over the original
        // payload — the receiver's real verification rejects it.
        auto *socket =
            dynamic_cast<SocketTransport *>(inner_.get());
        if (socket != nullptr) {
            std::vector<std::uint8_t> bytes = encodeFrame(frame);
            const std::size_t flip =
                frame.payload.empty()
                    ? kFrameHeaderBytes - 1  // checksum byte
                    : kFrameHeaderBytes + frame.payload.size() / 2;
            bytes[flip] ^= 0x40;
            return socket->sendRawBytes(bytes.data(),
                                        bytes.size());
        }
        // Non-socket inner transport: mangle the frame type to an
        // unknown value instead; the receiver strictly rejects it
        // as Malformed before interpreting a payload byte.
        Frame mangled = frame;
        mangled.type = static_cast<FrameType>(0x7F00);
        return inner_->send(mangled);
    }
    case FaultAction::Close:
        inner_->close();
        return NetStatus::failure(NetError::Closed,
                                  "fault injection closed the "
                                  "connection");
    }
    return inner_->send(frame);
}

NetStatus
FaultyTransport::recv(Frame &out, double timeoutSeconds)
{
    if (!delayed_.empty()) {
        // A previously delayed frame limps in ahead of anything
        // new on the wire.
        out = std::move(delayed_.front());
        delayed_.erase(delayed_.begin());
        return NetStatus::success();
    }
    const double deadline =
        timeoutSeconds < 0 ? -1.0 : nowSeconds() + timeoutSeconds;
    for (;;) {
        const double remaining =
            deadline < 0 ? -1.0 : deadline - nowSeconds();
        if (deadline >= 0 && remaining <= 0)
            return NetStatus::failure(
                NetError::Timeout,
                "timed out waiting for a frame");
        NetStatus status = inner_->recv(out, remaining);
        if (!status.ok())
            return status;
        const FaultRule *rule =
            injector_->decide(out.type, FaultDirection::Recv);
        if (rule == nullptr)
            return status;
        switch (rule->action) {
        case FaultAction::Drop:
            // Discard and keep listening: to the caller this is a
            // lost reply, surfacing as its deadline firing.
            continue;
        case FaultAction::Delay:
            // The reply missed this wait: surface the timeout now
            // and deliver the frame on the next recv — exactly a
            // reply that limps in after the caller's deadline,
            // which is what the stale-reply discard path handles.
            delayed_.push_back(std::move(out));
            return NetStatus::failure(
                NetError::Timeout,
                "fault injection delayed the frame past the "
                "deadline");
        case FaultAction::Corrupt:
            // The inner transport already verified the real
            // checksum, so corruption-on-receive synthesizes the
            // rejection the caller would have seen.
            return NetStatus::failure(
                NetError::BadChecksum,
                "fault injection corrupted the frame");
        case FaultAction::Close:
            inner_->close();
            return NetStatus::failure(
                NetError::Closed,
                "fault injection closed the connection");
        }
    }
}

}  // namespace a3
