/**
 * @file
 * Child-process control for real shard workers.
 *
 * tests/test_remote.cpp and bench/distributed_scaling exercise the
 * failure paths the fault injector cannot: an actual worker process
 * SIGKILLed mid-stream, with the kernel closing its sockets. This
 * small RAII wrapper owns that lifecycle — spawn a binary with
 * arguments, kill it abruptly, reap it — so worker death is one
 * deliberate call rather than scattered fork/exec boilerplate.
 */

#ifndef A3_NET_PROCESS_HPP
#define A3_NET_PROCESS_HPP

#include <string>
#include <vector>

#include "net/net_error.hpp"

#include <sys/types.h>

namespace a3 {

/** One spawned child process (a shard worker, usually). */
class ChildProcess
{
  public:
    ChildProcess() = default;

    /** Reaps the child (killing it first if still running). */
    ~ChildProcess();

    ChildProcess(const ChildProcess &) = delete;
    ChildProcess &operator=(const ChildProcess &) = delete;
    ChildProcess(ChildProcess &&other) noexcept;
    ChildProcess &operator=(ChildProcess &&other) noexcept;

    /**
     * fork + exec `binary` with `args` (argv[0] is derived from
     * the binary path). A failed exec exits the child with 127;
     * the parent only fails here when fork itself does.
     */
    NetStatus spawn(const std::string &binary,
                    const std::vector<std::string> &args);

    /**
     * SIGKILL the child — the abrupt worker-death case recovery is
     * measured against. No-op when not running.
     */
    void kill();

    /** Reap the child if it has exited or been killed. */
    void wait();

    /** Child is spawned and not yet reaped. */
    bool running() const { return pid_ > 0; }

    pid_t pid() const { return pid_; }

  private:
    pid_t pid_ = -1;
};

}  // namespace a3

#endif  // A3_NET_PROCESS_HPP
