/**
 * @file
 * Typed error reporting for the distributed-serving network layer.
 *
 * Remote failures — timeouts, closed connections, malformed or
 * corrupted frames, worker-side errors — are expected operating
 * conditions of a cluster, not programmer errors, so nothing in
 * src/net/ or the remote serving tier may fatal()/panic() on them
 * (see ISSUE 7's robustness contract). Every fallible operation
 * returns a NetStatus naming what went wrong; callers decide whether
 * to retry, fail over, or surface the error. fatal()/panic() remain
 * reserved for contract violations (bad configuration, indexing
 * bugs), and those paths carry death-test coverage.
 */

#ifndef A3_NET_NET_ERROR_HPP
#define A3_NET_NET_ERROR_HPP

#include <string>
#include <utility>

namespace a3 {

/** What went wrong with a network operation. */
enum class NetError {
    Ok = 0,           ///< success
    Timeout,          ///< deadline expired before completion
    Closed,           ///< peer closed or connection unusable
    Malformed,        ///< frame violated the protocol framing rules
    BadChecksum,      ///< payload checksum mismatch (corruption)
    BadVersion,       ///< peer speaks an unsupported protocol version
    WorkerError,      ///< worker answered with an Error frame
    StaleShard,       ///< worker's shard binding is gone or outdated
    SystemError,      ///< socket/OS call failed (errno in message)
};

/** Stable lowercase name of a NetError ("timeout", "closed", ...). */
const char *netErrorName(NetError error);

/** Outcome of one fallible network operation. */
struct NetStatus
{
    NetError error = NetError::Ok;
    std::string message;

    bool ok() const { return error == NetError::Ok; }

    static NetStatus success() { return NetStatus{}; }

    static NetStatus
    failure(NetError error, std::string message)
    {
        return NetStatus{error, std::move(message)};
    }

    /** "ok", or "<name>: <message>" for failures. */
    std::string str() const;
};

}  // namespace a3

#endif  // A3_NET_NET_ERROR_HPP
