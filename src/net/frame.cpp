#include "net/frame.hpp"

#include <string>

#include "net/wire.hpp"

namespace a3 {

bool
frameTypeKnown(std::uint16_t raw)
{
    return raw >= static_cast<std::uint16_t>(FrameType::Hello) &&
           raw <= static_cast<std::uint16_t>(FrameType::Shutdown);
}

const char *
frameTypeName(FrameType type)
{
    switch (type) {
    case FrameType::Hello:
        return "hello";
    case FrameType::HelloAck:
        return "hello-ack";
    case FrameType::BindShard:
        return "bind-shard";
    case FrameType::BindAck:
        return "bind-ack";
    case FrameType::Query:
        return "query";
    case FrameType::PartialReply:
        return "partial-reply";
    case FrameType::ResultReply:
        return "result-reply";
    case FrameType::Heartbeat:
        return "heartbeat";
    case FrameType::HeartbeatAck:
        return "heartbeat-ack";
    case FrameType::ErrorReply:
        return "error-reply";
    case FrameType::Shutdown:
        return "shutdown";
    }
    return "unknown";
}

std::vector<std::uint8_t>
encodeFrame(const Frame &frame)
{
    WireWriter header;
    header.u32(kFrameMagic);
    header.u16(kProtocolVersion);
    header.u16(static_cast<std::uint16_t>(frame.type));
    header.u32(static_cast<std::uint32_t>(frame.payload.size()));
    header.u32(fnv1a(frame.payload.data(), frame.payload.size()));

    std::vector<std::uint8_t> out = header.take();
    out.insert(out.end(), frame.payload.begin(),
               frame.payload.end());
    return out;
}

NetStatus
decodeFrameHeader(const std::uint8_t *data, std::size_t size,
                  FrameHeader &header)
{
    if (size < kFrameHeaderBytes)
        return NetStatus::failure(NetError::Malformed,
                                  "short frame header");
    WireReader reader(data, kFrameHeaderBytes);
    const std::uint32_t magic = reader.u32();
    const std::uint16_t version = reader.u16();
    const std::uint16_t rawType = reader.u16();
    const std::uint32_t length = reader.u32();
    const std::uint32_t checksum = reader.u32();

    if (magic != kFrameMagic)
        return NetStatus::failure(NetError::Malformed,
                                  "bad frame magic");
    if (version != kProtocolVersion)
        return NetStatus::failure(
            NetError::BadVersion,
            "unsupported protocol version " +
                std::to_string(version));
    if (!frameTypeKnown(rawType))
        return NetStatus::failure(NetError::Malformed,
                                  "unknown frame type " +
                                      std::to_string(rawType));
    if (length > kMaxFramePayload)
        return NetStatus::failure(NetError::Malformed,
                                  "payload length " +
                                      std::to_string(length) +
                                      " exceeds frame cap");

    header.version = version;
    header.type = static_cast<FrameType>(rawType);
    header.payloadLength = length;
    header.checksum = checksum;
    return NetStatus::success();
}

NetStatus
verifyFramePayload(const FrameHeader &header,
                   const std::vector<std::uint8_t> &payload)
{
    if (payload.size() != header.payloadLength)
        return NetStatus::failure(NetError::Malformed,
                                  "payload size mismatch");
    if (fnv1a(payload.data(), payload.size()) != header.checksum)
        return NetStatus::failure(
            NetError::BadChecksum,
            std::string("payload checksum mismatch on ") +
                frameTypeName(header.type) + " frame");
    return NetStatus::success();
}

}  // namespace a3
