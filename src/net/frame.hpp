/**
 * @file
 * Versioned, length-prefixed, checksummed protocol frames.
 *
 * Every message of the distributed-serving protocol travels as one
 * frame: a fixed 16-byte header (magic, protocol version, frame
 * type, payload length, FNV-1a payload checksum) followed by the
 * payload bytes. The header is what lets a receiver reject garbage
 * strictly and early — wrong magic, unknown version, unknown type,
 * oversized length, or a checksum mismatch each yield a typed
 * NetStatus before a single payload byte is interpreted.
 *
 * Frame types (the protocol's state machine):
 *  - Hello / HelloAck: version handshake when a connection opens.
 *  - BindShard / BindAck: ship one shard's rows + EngineConfig to a
 *    worker, which binds a backend once and serves it thereafter.
 *  - Query / PartialReply / ResultReply: one attention query against
 *    a bound shard; the reply carries the shard's softmax partials
 *    (PartialReply) or, for single-shard tasks, the full normalized
 *    result (ResultReply) so the coordinator can mirror
 *    ShardedBackend's S = 1 delegation bit for bit.
 *  - Heartbeat / HeartbeatAck: liveness probes driving the
 *    coordinator's healthy/suspect/dead worker states.
 *  - ErrorReply: typed worker-side failure for a request.
 *  - Shutdown: orderly worker stop (tests and tooling).
 */

#ifndef A3_NET_FRAME_HPP
#define A3_NET_FRAME_HPP

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/net_error.hpp"

namespace a3 {

/** Protocol version this build speaks. */
constexpr std::uint16_t kProtocolVersion = 1;

/** Frame magic: "A3RP" (A3 remote protocol), little-endian. */
constexpr std::uint32_t kFrameMagic = 0x50523341u;

/** Serialized header size in bytes. */
constexpr std::size_t kFrameHeaderBytes = 16;

/**
 * Upper bound on one frame's payload. Large enough for any shard
 * bind (rows * dims * 2 matrices of 4-byte floats), small enough
 * that a corrupted or hostile length field cannot make a receiver
 * allocate unbounded memory.
 */
constexpr std::uint32_t kMaxFramePayload = 1u << 30;

/** Message kind carried by a frame. */
enum class FrameType : std::uint16_t {
    Hello = 1,
    HelloAck = 2,
    BindShard = 3,
    BindAck = 4,
    Query = 5,
    PartialReply = 6,
    ResultReply = 7,
    Heartbeat = 8,
    HeartbeatAck = 9,
    ErrorReply = 10,
    Shutdown = 11,
};

/** Whether `raw` names a known FrameType value. */
bool frameTypeKnown(std::uint16_t raw);

/** Stable lowercase name ("hello", "query", ...). */
const char *frameTypeName(FrameType type);

/** One protocol message: its type and opaque payload bytes. */
struct Frame
{
    FrameType type = FrameType::Hello;
    std::vector<std::uint8_t> payload;
};

/**
 * Serialize `frame` into header + payload bytes, computing the
 * payload checksum. The result is what Transport::send puts on the
 * wire in one piece.
 */
std::vector<std::uint8_t> encodeFrame(const Frame &frame);

/**
 * Parsed frame header, validated field by field.
 */
struct FrameHeader
{
    std::uint16_t version = 0;
    FrameType type = FrameType::Hello;
    std::uint32_t payloadLength = 0;
    std::uint32_t checksum = 0;
};

/**
 * Strictly validate and parse one header: the magic must match, the
 * version must be kProtocolVersion, the type must be known, and the
 * length must be within kMaxFramePayload. Returns a typed failure
 * naming the first violated rule; `header` is only meaningful on
 * success.
 */
NetStatus decodeFrameHeader(const std::uint8_t *data,
                            std::size_t size, FrameHeader &header);

/**
 * Verify `payload` against the header's checksum (BadChecksum on
 * mismatch — the corruption signal retries key off).
 */
NetStatus verifyFramePayload(const FrameHeader &header,
                             const std::vector<std::uint8_t> &payload);

}  // namespace a3

#endif  // A3_NET_FRAME_HPP
