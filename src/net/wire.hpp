/**
 * @file
 * Bounds-checked little-endian payload encoding.
 *
 * Every multi-byte field of the wire protocol is serialized
 * explicitly byte by byte in little-endian order, so the format is
 * identical across architectures and independent of host struct
 * layout. Floats travel as their IEEE-754 bit patterns
 * (std::bit_cast), which is what makes a remote PartialResult
 * bit-identical to a locally computed one.
 *
 * WireReader never trusts the peer: every read is bounds-checked,
 * and the first overrun latches a failure flag (subsequent reads
 * return zeros). Decoders read all fields, then check ok() once —
 * a malformed payload yields a typed rejection, never UB.
 */

#ifndef A3_NET_WIRE_HPP
#define A3_NET_WIRE_HPP

#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace a3 {

/** FNV-1a 32-bit hash — the frame payload checksum. */
std::uint32_t fnv1a(const std::uint8_t *data, std::size_t size);

/** Append-only little-endian encoder. */
class WireWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    f32(float v)
    {
        u32(std::bit_cast<std::uint32_t>(v));
    }

    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    /** Length-prefixed (u32) byte string. */
    void str(const std::string &s);

    /** Length-prefixed (u64) float array, bit patterns. */
    void floats(const float *data, std::size_t count);

    /** Length-prefixed (u64) u32 array. */
    void u32s(const std::uint32_t *data, std::size_t count);

    /**
     * Length-prefixed (u64) raw byte array — the packed K/V lanes of
     * a shard image travel verbatim, so the on-disk image is the
     * in-memory image.
     */
    void blob(const std::uint8_t *data, std::size_t count);

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian decoder over a borrowed buffer. */
class WireReader
{
  public:
    WireReader(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit WireReader(const std::vector<std::uint8_t> &buf)
        : WireReader(buf.data(), buf.size())
    {
    }

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u32();
    std::uint64_t u64();
    float f32() { return std::bit_cast<float>(u32()); }
    double f64() { return std::bit_cast<double>(u64()); }

    /** Length-prefixed byte string (capped at remaining bytes). */
    std::string str();

    /** Length-prefixed float array into `out` (resized). */
    void floats(std::vector<float> &out);

    /** Length-prefixed u32 array into `out` (resized). */
    void u32s(std::vector<std::uint32_t> &out);

    /** Length-prefixed raw byte array into `out` (resized). */
    void blob(std::vector<std::uint8_t> &out);

    /** Every read so far was in bounds. */
    bool ok() const { return ok_; }

    /** ok() and the payload was consumed exactly (no trailing junk,
     *  which strict framing treats as malformed too). */
    bool done() const { return ok_ && pos_ == size_; }

    std::size_t remaining() const { return size_ - pos_; }

  private:
    const std::uint8_t *data_ = nullptr;
    std::size_t size_ = 0;
    std::size_t pos_ = 0;
    bool ok_ = true;
};

}  // namespace a3

#endif  // A3_NET_WIRE_HPP
