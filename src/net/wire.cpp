#include "net/wire.hpp"

#include <bit>
#include <cstring>

namespace a3 {

namespace {

/**
 * Little-endian hosts can move bulk 4-byte arrays with one memcpy —
 * the wire format *is* the in-memory layout there. The per-element
 * paths remain the portable fallback; shard-image restores and large
 * query frames are the callers that care (multi-megabyte arrays on
 * the serving hot path).
 */
constexpr bool kLittleEndianHost =
    std::endian::native == std::endian::little;

}  // namespace

std::uint32_t
fnv1a(const std::uint8_t *data, std::size_t size)
{
    std::uint32_t hash = 2166136261u;
    for (std::size_t i = 0; i < size; ++i) {
        hash ^= data[i];
        hash *= 16777619u;
    }
    return hash;
}

void
WireWriter::str(const std::string &s)
{
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
}

void
WireWriter::floats(const float *data, std::size_t count)
{
    u64(count);
    if (kLittleEndianHost) {
        const auto *raw = reinterpret_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), raw, raw + count * 4);
        return;
    }
    buf_.reserve(buf_.size() + count * 4);
    for (std::size_t i = 0; i < count; ++i)
        f32(data[i]);
}

void
WireWriter::u32s(const std::uint32_t *data, std::size_t count)
{
    u64(count);
    if (kLittleEndianHost) {
        const auto *raw = reinterpret_cast<const std::uint8_t *>(data);
        buf_.insert(buf_.end(), raw, raw + count * 4);
        return;
    }
    buf_.reserve(buf_.size() + count * 4);
    for (std::size_t i = 0; i < count; ++i)
        u32(data[i]);
}

void
WireWriter::blob(const std::uint8_t *data, std::size_t count)
{
    u64(count);
    buf_.insert(buf_.end(), data, data + count);
}

std::uint8_t
WireReader::u8()
{
    if (pos_ + 1 > size_) {
        ok_ = false;
        return 0;
    }
    return data_[pos_++];
}

std::uint16_t
WireReader::u16()
{
    const std::uint16_t lo = u8();
    const std::uint16_t hi = u8();
    return static_cast<std::uint16_t>(lo | (hi << 8));
}

std::uint32_t
WireReader::u32()
{
    const std::uint32_t lo = u16();
    const std::uint32_t hi = u16();
    return lo | (hi << 16);
}

std::uint64_t
WireReader::u64()
{
    const std::uint64_t lo = u32();
    const std::uint64_t hi = u32();
    return lo | (hi << 32);
}

std::string
WireReader::str()
{
    const std::uint32_t len = u32();
    if (!ok_ || len > remaining()) {
        ok_ = false;
        return std::string();
    }
    std::string out(reinterpret_cast<const char *>(data_ + pos_),
                    len);
    pos_ += len;
    return out;
}

void
WireReader::floats(std::vector<float> &out)
{
    const std::uint64_t count = u64();
    // Each element occupies 4 bytes, so a count beyond remaining/4
    // is a lie about the payload — reject before resizing, or a
    // hostile length would make the reader allocate gigabytes.
    if (!ok_ || count > remaining() / 4) {
        ok_ = false;
        out.clear();
        return;
    }
    out.resize(static_cast<std::size_t>(count));
    if (kLittleEndianHost) {
        std::memcpy(out.data(), data_ + pos_,
                    static_cast<std::size_t>(count) * 4);
        pos_ += static_cast<std::size_t>(count) * 4;
        return;
    }
    for (auto &v : out)
        v = f32();
}

void
WireReader::u32s(std::vector<std::uint32_t> &out)
{
    const std::uint64_t count = u64();
    if (!ok_ || count > remaining() / 4) {
        ok_ = false;
        out.clear();
        return;
    }
    out.resize(static_cast<std::size_t>(count));
    if (kLittleEndianHost) {
        std::memcpy(out.data(), data_ + pos_,
                    static_cast<std::size_t>(count) * 4);
        pos_ += static_cast<std::size_t>(count) * 4;
        return;
    }
    for (auto &v : out)
        v = u32();
}

void
WireReader::blob(std::vector<std::uint8_t> &out)
{
    const std::uint64_t count = u64();
    if (!ok_ || count > remaining()) {
        ok_ = false;
        out.clear();
        return;
    }
    out.assign(data_ + pos_, data_ + pos_ + count);
    pos_ += static_cast<std::size_t>(count);
}

}  // namespace a3
