#include "tensor/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "util/logging.hpp"

namespace a3 {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0f)
{
}

Matrix
Matrix::fromRows(const std::vector<std::vector<float>> &rows)
{
    if (rows.empty())
        return Matrix();
    Matrix m(rows.size(), rows.front().size());
    for (std::size_t r = 0; r < rows.size(); ++r) {
        a3Assert(rows[r].size() == m.cols_,
                 "ragged row ", r, " in Matrix::fromRows");
        for (std::size_t c = 0; c < m.cols_; ++c)
            m(r, c) = rows[r][c];
    }
    return m;
}

void
Matrix::appendRows(const Matrix &other)
{
    if (other.rows_ == 0)
        return;
    if (rows_ == 0 && cols_ == 0) {
        *this = other;
        return;
    }
    // A zero-row matrix with a declared width still enforces it.
    a3Assert(other.cols_ == cols_, "appendRows width mismatch: ",
             other.cols_, " vs ", cols_);
    data_.insert(data_.end(), other.data_.begin(), other.data_.end());
    rows_ += other.rows_;
}

Matrix
Matrix::rowSlice(std::size_t firstRow, std::size_t count) const
{
    a3Assert(firstRow + count <= rows_, "rowSlice [", firstRow, ", ",
             firstRow + count, ") out of ", rows_, " rows");
    Matrix out(count, cols_);
    const auto begin = data_.begin() +
                       static_cast<std::ptrdiff_t>(firstRow * cols_);
    std::copy(begin,
              begin + static_cast<std::ptrdiff_t>(count * cols_),
              out.data_.begin());
    return out;
}

float &
Matrix::at(std::size_t r, std::size_t c)
{
    a3Assert(r < rows_ && c < cols_,
             "matrix index (", r, ",", c, ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

float
Matrix::at(std::size_t r, std::size_t c) const
{
    a3Assert(r < rows_ && c < cols_,
             "matrix index (", r, ",", c, ") out of ", rows_, "x", cols_);
    return data_[r * cols_ + c];
}

std::span<const float>
Matrix::row(std::size_t r) const
{
    a3Assert(r < rows_, "row ", r, " out of ", rows_);
    return {data_.data() + r * cols_, cols_};
}

std::span<float>
Matrix::row(std::size_t r)
{
    a3Assert(r < rows_, "row ", r, " out of ", rows_);
    return {data_.data() + r * cols_, cols_};
}

Vector
Matrix::column(std::size_t c) const
{
    a3Assert(c < cols_, "column ", c, " out of ", cols_);
    Vector out(rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        out[r] = (*this)(r, c);
    return out;
}

Vector
Matrix::matvec(const Vector &x) const
{
    a3Assert(x.size() == cols_,
             "matvec size mismatch: ", x.size(), " vs cols ", cols_);
    Vector out(rows_, 0.0f);
    for (std::size_t r = 0; r < rows_; ++r) {
        float sum = 0.0f;
        const float *rowPtr = data_.data() + r * cols_;
        for (std::size_t c = 0; c < cols_; ++c)
            sum += rowPtr[c] * x[c];
        out[r] = sum;
    }
    return out;
}

Matrix
Matrix::transposed() const
{
    Matrix out(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r)
        for (std::size_t c = 0; c < cols_; ++c)
            out(c, r) = (*this)(r, c);
    return out;
}

std::size_t
Matrix::shrinkToFit()
{
    const std::size_t before = data_.capacity();
    data_.shrink_to_fit();
    return (before - data_.capacity()) * sizeof(float);
}

bool
Matrix::operator==(const Matrix &other) const
{
    return rows_ == other.rows_ && cols_ == other.cols_ &&
           data_ == other.data_;
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    a3Assert(a.size() == b.size(), "dot size mismatch");
    float sum = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        sum += a[i] * b[i];
    return sum;
}

float
maxAbsDiff(const Vector &a, const Vector &b)
{
    a3Assert(a.size() == b.size(), "maxAbsDiff size mismatch");
    float worst = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        worst = std::max(worst, std::fabs(a[i] - b[i]));
    return worst;
}

}  // namespace a3
