/**
 * @file
 * Dense row-major matrix / vector substrate.
 *
 * The attention library and the cycle simulator both operate on small,
 * dense key/value matrices (n up to a few hundred, d around 64), so a
 * simple owned row-major buffer with bounds-checked accessors is the
 * right tool; no BLAS dependency is warranted or desired.
 */

#ifndef A3_TENSOR_MATRIX_HPP
#define A3_TENSOR_MATRIX_HPP

#include <cstddef>
#include <span>
#include <vector>

namespace a3 {

/** Dense vector of floats (aliased for readability at call sites). */
using Vector = std::vector<float>;

/** Dense row-major matrix of floats with checked element access. */
class Matrix
{
  public:
    /** Empty 0x0 matrix. */
    Matrix() = default;

    /** Zero-initialized rows x cols matrix. */
    Matrix(std::size_t rows, std::size_t cols);

    /** Build from nested initializer data; all rows must be equal width. */
    static Matrix fromRows(const std::vector<std::vector<float>> &rows);

    /**
     * Append the rows of `other` (same width) below the existing rows;
     * appending to an empty matrix adopts other's shape.
     */
    void appendRows(const Matrix &other);

    /**
     * Copy of the `count` rows starting at `firstRow` (the
     * row-contiguous slice a shard binds); firstRow + count must not
     * exceed rows().
     */
    Matrix rowSlice(std::size_t firstRow, std::size_t count) const;

    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /** Checked element access. */
    float &at(std::size_t r, std::size_t c);
    float at(std::size_t r, std::size_t c) const;

    /** Unchecked element access for hot loops. */
    float &operator()(std::size_t r, std::size_t c)
    {
        return data_[r * cols_ + c];
    }
    float operator()(std::size_t r, std::size_t c) const
    {
        return data_[r * cols_ + c];
    }

    /** View of row `r` as a contiguous span. */
    std::span<const float> row(std::size_t r) const;
    std::span<float> row(std::size_t r);

    /** Copy of column `c`. */
    Vector column(std::size_t c) const;

    /** Underlying contiguous storage (row-major). */
    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** Bytes the storage has reserved (>= rows * cols * 4 after
     *  appendRows growth). */
    std::size_t capacityBytes() const
    {
        return data_.capacity() * sizeof(float);
    }

    /**
     * Release slack capacity left behind by appendRows() growth;
     * returns the bytes reclaimed. Values are untouched.
     */
    std::size_t shrinkToFit();

    /** Matrix-vector product; `x.size()` must equal cols(). */
    Vector matvec(const Vector &x) const;

    /** Transposed copy. */
    Matrix transposed() const;

    /** Exact element-wise equality (used by tests). */
    bool operator==(const Matrix &other) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<float> data_;
};

/** Dot product; sizes must match. */
float dot(std::span<const float> a, std::span<const float> b);

/** Largest absolute element difference between two equally-sized vectors. */
float maxAbsDiff(const Vector &a, const Vector &b);

}  // namespace a3

#endif  // A3_TENSOR_MATRIX_HPP
