/**
 * @file
 * Admission control types for the serving tier.
 *
 * An unbounded request queue turns overload into unbounded latency:
 * every queued request eventually completes, but none of them on
 * time. The serving stacks this repo grows toward (Orca-style
 * iteration schedulers, vLLM's bounded admission — see PAPERS.md)
 * instead bound the queue and shed excess load at submit time, so
 * overload degrades into a predictable reject rate while admitted
 * requests keep their latency.
 *
 * AdmissionPolicy is the knob set the BatchScheduler evaluates on
 * every submit(); AdmissionOutcome is the typed verdict it returns —
 * either an admitted ticket or the specific limit that shed the
 * request, so callers can retry, back off, or surface the reason.
 */

#ifndef A3_SERVING_ADMISSION_HPP
#define A3_SERVING_ADMISSION_HPP

#include <cstddef>
#include <cstdint>

namespace a3 {

/**
 * Load-shedding limits evaluated by BatchScheduler::submit(). Every
 * limit is 0-disabled, so the default policy admits everything — the
 * pre-admission behavior.
 */
struct AdmissionPolicy
{
    /**
     * Total requests that may be queued at once; a submit() that
     * finds the queue at this depth is rejected. 0 = unbounded.
     */
    std::size_t maxQueueDepth = 0;

    /**
     * Pending requests one session may hold; a session at its cap is
     * rejected without consuming global queue depth, so one chatty
     * client cannot crowd out admission for the rest. 0 = unbounded.
     */
    std::size_t maxPendingPerSession = 0;

    /**
     * Budget on the summed estimated cost of queued work, in bytes of
     * bound-backend state (AttentionBackend::memoryBytes() via
     * SessionCache::peekBytes — a sharded 120k-row session charges
     * its full aggregate, so a few huge-context requests can fill the
     * budget that hundreds of small ones would not). A request whose
     * estimate would overflow the budget is rejected unless the queue
     * is empty: a session costlier than the whole budget must still
     * make progress, mirroring the cache's rule that the newest bind
     * is never evicted. 0 = unbounded.
     */
    std::size_t maxQueuedCostBytes = 0;
};

/** Why a submit() was admitted or shed. */
enum class AdmissionDecision : std::uint8_t {
    Admitted,
    /** Queue already holds maxQueueDepth requests. */
    RejectedQueueFull,
    /** The session already holds maxPendingPerSession requests. */
    RejectedSessionCap,
    /** Estimated cost would overflow maxQueuedCostBytes. */
    RejectedCostBudget,
};

/** Stable lowercase name of a decision, for logs and bench JSON. */
inline const char *
admissionDecisionName(AdmissionDecision decision)
{
    switch (decision) {
    case AdmissionDecision::Admitted:
        return "admitted";
    case AdmissionDecision::RejectedQueueFull:
        return "rejected_queue_full";
    case AdmissionDecision::RejectedSessionCap:
        return "rejected_session_cap";
    case AdmissionDecision::RejectedCostBudget:
        return "rejected_cost_budget";
    }
    return "unknown";
}

/**
 * Verdict of one submit(): an admitted request carries its ticket
 * (monotonic in admission order); a shed request carries the limit
 * that rejected it and ticket 0.
 */
struct AdmissionOutcome
{
    AdmissionDecision decision = AdmissionDecision::Admitted;

    /** Monotonic completion-order ticket; 0 when rejected. */
    std::uint64_t ticket = 0;

    bool admitted() const
    {
        return decision == AdmissionDecision::Admitted;
    }
};

}  // namespace a3

#endif  // A3_SERVING_ADMISSION_HPP
