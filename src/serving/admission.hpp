/**
 * @file
 * Admission control types for the serving tier.
 *
 * An unbounded request queue turns overload into unbounded latency:
 * every queued request eventually completes, but none of them on
 * time. The serving stacks this repo grows toward (Orca-style
 * iteration schedulers, vLLM's bounded admission — see PAPERS.md)
 * instead bound the queue and shed excess load at submit time, so
 * overload degrades into a predictable reject rate while admitted
 * requests keep their latency.
 *
 * AdmissionPolicy is the knob set the BatchScheduler evaluates on
 * every submit(); AdmissionOutcome is the typed verdict it returns —
 * either an admitted ticket or the specific limit that shed the
 * request, so callers can retry, back off, or surface the reason.
 */

#ifndef A3_SERVING_ADMISSION_HPP
#define A3_SERVING_ADMISSION_HPP

#include <cstddef>
#include <cstdint>

namespace a3 {

/**
 * Load-shedding limits evaluated by BatchScheduler::submit() (and,
 * for deadlines, re-checked at drain time). Every limit is
 * 0-disabled, so the default policy admits everything — the
 * pre-admission behavior.
 */
struct AdmissionPolicy
{
    /**
     * Total requests that may be queued at once; a submit() that
     * finds the queue at this depth is rejected. 0 = unbounded.
     */
    std::size_t maxQueueDepth = 0;

    /**
     * Pending requests one session may hold; a session at its cap is
     * rejected without consuming global queue depth, so one chatty
     * client cannot crowd out admission for the rest. 0 = unbounded.
     */
    std::size_t maxPendingPerSession = 0;

    /**
     * Budget on the summed estimated cost of queued work, in bytes of
     * bound-backend state (AttentionBackend::memoryBytes() via
     * SessionCache::peekBytes — a sharded 120k-row session charges
     * its full aggregate, so a few huge-context requests can fill the
     * budget that hundreds of small ones would not). A request whose
     * estimate would overflow the budget is rejected unless the queue
     * is empty: a session costlier than the whole budget must still
     * make progress, mirroring the cache's rule that the newest bind
     * is never evicted. 0 = unbounded.
     */
    std::size_t maxQueuedCostBytes = 0;

    /**
     * Target request latency driving the adaptive queue-depth bound:
     * when set, the scheduler derives its effective depth as
     * target-latency / observed-p95-per-request-service-time
     * (clamped below by minAdaptiveQueueDepth) and sheds submits
     * beyond it with RejectedAdaptiveDepth — a queue deeper than
     * that cannot meet the target no matter how it is ordered. The
     * signal is the scheduler's per-request service reservoir; until
     * enough drains have landed samples, the adaptive bound is
     * inactive and only the static maxQueueDepth applies.
     * 0 = disabled.
     */
    double targetLatencySeconds = 0.0;

    /**
     * Floor of the adaptive depth, so a service-time spike cannot
     * shed every submit: the derived depth never falls below this
     * many requests. Only consulted when targetLatencySeconds is
     * set.
     */
    std::size_t minAdaptiveQueueDepth = 1;
};

/** Why a submit() was admitted or shed (or, for the deadline
 *  decisions, why a queued request was shed later). */
enum class AdmissionDecision : std::uint8_t {
    Admitted,
    /** Queue already holds maxQueueDepth requests. */
    RejectedQueueFull,
    /** The session already holds maxPendingPerSession requests. */
    RejectedSessionCap,
    /** Estimated cost would overflow maxQueuedCostBytes. */
    RejectedCostBudget,
    /** Queue already at the adaptive depth derived from
     *  targetLatencySeconds / observed-p95 service time. */
    RejectedAdaptiveDepth,
    /** The request's own deadline cannot be met even if it were
     *  claimed next (queued work ahead of it × p95 service time
     *  already exceeds the budget). */
    RejectedDeadlineUnmeetable,
    /** Shed at drain time: the request's queue wait had already
     *  blown its deadline when a drain claimed it. Reported through
     *  ServingError::DeadlineExpired on the completion, never
     *  through submit(). */
    ShedDeadlineExpired,
};

/** Stable lowercase name of a decision, for logs and bench JSON. */
inline const char *
admissionDecisionName(AdmissionDecision decision)
{
    switch (decision) {
    case AdmissionDecision::Admitted:
        return "admitted";
    case AdmissionDecision::RejectedQueueFull:
        return "rejected_queue_full";
    case AdmissionDecision::RejectedSessionCap:
        return "rejected_session_cap";
    case AdmissionDecision::RejectedCostBudget:
        return "rejected_cost_budget";
    case AdmissionDecision::RejectedAdaptiveDepth:
        return "rejected_adaptive_depth";
    case AdmissionDecision::RejectedDeadlineUnmeetable:
        return "rejected_deadline_unmeetable";
    case AdmissionDecision::ShedDeadlineExpired:
        return "shed_deadline_expired";
    }
    return "unknown";
}

/**
 * Verdict of one submit(): an admitted request carries its ticket
 * (monotonic in admission order); a shed request carries the limit
 * that rejected it and ticket 0.
 */
struct AdmissionOutcome
{
    AdmissionDecision decision = AdmissionDecision::Admitted;

    /** Monotonic completion-order ticket; 0 when rejected. */
    std::uint64_t ticket = 0;

    bool admitted() const
    {
        return decision == AdmissionDecision::Admitted;
    }
};

}  // namespace a3

#endif  // A3_SERVING_ADMISSION_HPP
