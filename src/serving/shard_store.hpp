/**
 * @file
 * Refcounted cross-session shard sharing with a disk spill tier.
 *
 * At serving scale, traffic is dominated by shared prefixes — system
 * prompts, common documents, frozen chat histories — so K sessions
 * over one document should cost ~1 document of preprocessed state,
 * not K. The sharding layer already concentrates growth in the tail
 * shard, which makes frozen full shards natural sharing units:
 *
 *  - ShardHandle wraps one shard's preprocessed backend. A mutable
 *    *tail* handle is private to its owning session and accepts
 *    appends; when it reaches shard capacity it is *frozen* —
 *    compacted, content-addressed (shard_image.hpp), and immutable
 *    from then on.
 *  - ShardStore is the process-wide registry: acquire() returns the
 *    canonical handle for a frozen row slice, deduping against live
 *    handles (refcounted via shared_ptr — the store holds weak
 *    references, so a shard dies exactly when its last session
 *    releases it), then against the disk spill tier (mmap + decode,
 *    no recomputation), and only cold-binds on a full miss.
 *
 * Spill tier: every frozen shard registered with a spill-configured
 * store is written through to disk immediately (versioned +
 * checksummed image, packed lanes verbatim), so eviction later is
 * pure memory release — by the time a shard is dropped, its image is
 * already on disk. The spill directory survives the store: a fresh
 * store pointed at the same directory re-indexes the images and
 * serves warm restores across process restarts. Restored shards are
 * bit-identical to cold binds (pinned by tests), so sharing and
 * spilling are invisible to results.
 *
 * Thread safety: every ShardStore member takes an internal lock;
 * hashing, cold binds, and image decodes run outside it. ShardHandle
 * itself adds no locking: frozen handles are immutable (safe to
 * share), and a mutable tail is owned by one session whose appends
 * are already serialized by the session layer.
 */

#ifndef A3_SERVING_SHARD_STORE_HPP
#define A3_SERVING_SHARD_STORE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "attention/backend.hpp"
#include "serving/shard_image.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/**
 * One shard's preprocessed backend plus its sharing state. Create
 * through the static factories (or ShardStore::acquire); always held
 * by shared_ptr — the use count *is* the cross-session refcount.
 */
class ShardHandle
{
  public:
    /**
     * Bind a mutable tail handle over rows [firstRow, firstRow +
     * count) with a running content hash, so freezing after any
     * number of appends yields the same key a fresh bind of the
     * concatenated rows would.
     */
    static std::shared_ptr<ShardHandle>
    bindTail(const EngineConfig &config, const Matrix &key,
             const Matrix &value, std::size_t firstRow,
             std::size_t count);

    /**
     * Bind a private, untracked handle (no hashing, never frozen or
     * shared) — the store-less ShardedBackend path, which keeps the
     * legacy behavior at zero overhead.
     */
    static std::shared_ptr<ShardHandle>
    bindPrivate(const EngineConfig &config, const Matrix &key,
                const Matrix &value, std::size_t firstRow,
                std::size_t count);

    const AttentionBackend &backend() const { return *backend_; }

    /** Mutation access; fatal on a frozen handle. */
    AttentionBackend &mutableBackend();

    /** Extend a mutable tail (and its running hash). */
    void appendRows(const Matrix &keyRows, const Matrix &valueRows);

    /**
     * Freeze a tracked tail: compact the backend (releasing append
     * slack — shared and spilled images carry none) and finalize the
     * content key. Returns the bytes compaction reclaimed. The
     * handle is immutable afterwards.
     */
    std::size_t freeze();

    bool frozen() const { return frozen_; }

    /** Content key; only valid once frozen. */
    const ShardKey &contentKey() const;

    const EngineConfig &engineConfig() const { return config_; }
    std::size_t rows() const { return backend_->rows(); }
    std::size_t bytes() const { return backend_->memoryBytes(); }

  private:
    friend class ShardStore;

    ShardHandle(EngineConfig config,
                std::unique_ptr<AttentionBackend> backend);

    EngineConfig config_;
    std::unique_ptr<AttentionBackend> backend_;
    ShardKeyHasher hasher_;
    ShardKey key_;
    bool tracking_ = false;
    bool frozen_ = false;
};

/** Spill-tier knobs of one ShardStore. */
struct ShardStoreConfig
{
    /**
     * Directory for spilled shard images (created if missing); empty
     * disables the spill tier — the store then only dedups live
     * handles.
     */
    std::string spillDir;

    /**
     * Byte budget of the spill directory; 0 = unlimited. Least
     * recently touched images are deleted when the budget overflows,
     * except the one just written.
     */
    std::size_t spillBudgetBytes = 0;
};

/** Where an acquired shard came from. */
enum class ShardSource
{
    ColdBound,      ///< preprocessed from the matrices
    LiveShared,     ///< deduped against a live session's handle
    SpillRestored,  ///< decoded from a spilled image
};

/** Stable lowercase name ("cold_bound", ...). */
const char *shardSourceName(ShardSource source);

/** Monotonic usage counters of one ShardStore. */
struct ShardStoreStats
{
    /** acquire()s served by a live handle (bytes shared, no work). */
    std::uint64_t liveHits = 0;

    /** acquire()s served by decoding a spilled image. */
    std::uint64_t spillRestores = 0;

    /** acquire()s that preprocessed from scratch. */
    std::uint64_t coldBinds = 0;

    /** Tail handles adopted through adoptFrozen(). */
    std::uint64_t adoptions = 0;

    /** Images written to the spill directory. */
    std::uint64_t spillWrites = 0;

    /** Images deleted to fit spillBudgetBytes. */
    std::uint64_t spillEvictions = 0;

    /** Spilled images rejected at decode (corrupt, stale version,
     *  config mismatch) and deleted; the acquire cold-binds. */
    std::uint64_t spillRejects = 0;
};

/** Process-wide registry of frozen shards, live and spilled. */
class ShardStore
{
  public:
    explicit ShardStore(ShardStoreConfig config = {});

    /**
     * Canonical frozen handle for rows [firstRow, firstRow + count)
     * of (key, value) under `config`. Resolution order: live handle
     * (shared, refcounted) -> spilled image (mmap + decode) -> cold
     * bind. All three produce bit-identical backends; `source`
     * (optional) reports which path served the call.
     */
    std::shared_ptr<ShardHandle>
    acquire(const EngineConfig &config, const Matrix &key,
            const Matrix &value, std::size_t firstRow,
            std::size_t count, ShardSource *source = nullptr);

    /**
     * Register a tail handle its owner just froze. Returns the
     * canonical handle: an already-live handle with the same content
     * key wins (the caller swaps to it and drops its copy);
     * otherwise the handle is indexed and written through to the
     * spill tier.
     */
    std::shared_ptr<ShardHandle>
    adoptFrozen(std::shared_ptr<ShardHandle> handle);

    ShardStoreStats stats() const;

    /** Frozen shards currently alive in some session. */
    std::size_t liveCount() const;

    /** Images currently in the spill directory. */
    std::size_t spillCount() const;

    /** Bytes of those images. */
    std::size_t spillBytesInUse() const;

    const ShardStoreConfig &config() const { return config_; }

    /** Zero the usage counters (bench warm-up reset). */
    void resetCounters();

  private:
    struct SpillEntry
    {
        std::string path;
        std::size_t bytes = 0;
        std::list<ShardKey>::iterator lruPos;
    };

    using LiveMap =
        std::unordered_map<ShardKey, std::weak_ptr<ShardHandle>,
                           ShardKeyHash>;
    using SpillMap =
        std::unordered_map<ShardKey, SpillEntry, ShardKeyHash>;

    /** Index pre-existing *.shard images (warm process restart). */
    void scanSpillDirLocked();

    /** Live handle for `key`, pruning a dead weak entry. */
    std::shared_ptr<ShardHandle> liveLookupLocked(const ShardKey &key);

    /** Write-through one frozen handle's image, then enforce the
     *  spill budget (sparing the image just written). */
    void spillWriteLocked(const ShardHandle &handle);

    void touchSpillLocked(SpillEntry &entry);
    void dropSpillLocked(const ShardKey &key);
    void enforceSpillBudgetLocked(const ShardKey &keep);

    /** Decode `key`'s spilled image; nullptr on miss or reject (a
     *  reject also deletes the image). Takes and releases the lock
     *  internally around the map accesses. */
    std::unique_ptr<AttentionBackend>
    restoreFromSpill(const EngineConfig &config, const ShardKey &key,
                     bool &rejected);

    ShardStoreConfig config_;

    mutable std::mutex mutex_;
    LiveMap live_;
    SpillMap spill_;
    /** Most recently touched image at the front. */
    std::list<ShardKey> spillLru_;
    std::size_t spillBytes_ = 0;
    ShardStoreStats stats_;
};

}  // namespace a3

#endif  // A3_SERVING_SHARD_STORE_HPP
