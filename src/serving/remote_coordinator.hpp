/**
 * @file
 * Fault-tolerant coordinator of the distributed serving tier.
 *
 * RemoteShardCoordinator implements AttentionBackend by slicing the
 * bound task into the same balanced row shards ShardedBackend would
 * build (partial_merge.hpp), shipping each shard to worker
 * processes as BindShard frames, fanning every query out over the
 * workers, and merging the returned softmax partials through the
 * shared mergeShardPartials() — which is what makes its results
 * bit-identical to the in-process ShardedBackend, and hence to an
 * unsharded backend, for every engine kind.
 *
 * Robustness model, in escalation order per shard query:
 *   1. deadline   — every remote wait is bounded;
 *   2. retry      — bounded exponential backoff on the same worker
 *                   (timeouts and checksum rejects are transient);
 *   3. failover   — the next bound replica answers (replication R
 *                   binds each shard onto R workers up front);
 *   4. rebind     — the shard is re-replicated onto a surviving
 *                   worker under a bumped generation (workers
 *                   reject stale-generation queries, so a delayed
 *                   reply from the old binding can never be
 *                   mistaken for a current one);
 *   5. local      — the coordinator binds the shard itself with the
 *                   same makeBackend() call, so runInto() degrades
 *                   to in-process execution rather than failing.
 * Because every fallback computes the identical partial on the
 * identical rows and the merge is fixed-order, recovery changes
 * *where* a partial came from, never *what* it is.
 *
 * Worker health is tracked as Healthy -> Suspect -> Dead: a first
 * missed deadline makes a worker suspect, a second consecutive miss
 * (or any unrecoverable transport failure) makes it dead, and
 * heartbeat() re-replicates a dead worker's shards onto survivors.
 * With heartbeatPeriodSeconds set, an internal background thread
 * drives heartbeat() at that period (stopped and joined by the
 * destructor before any shutdown frame is sent); at the default 0
 * no thread is spawned and callers drive heartbeats explicitly —
 * the deterministic mode the health-machine tests rely on. Both
 * modes may coexist: heartbeat() is safe to call concurrently with
 * the background thread, serialized by the coordinator mutex.
 *
 * Thread safety: one internal mutex serializes all operations;
 * parallelism comes from the worker fan-out (queries are pipelined
 * to all shards before any reply is awaited), not from concurrent
 * coordinator calls.
 */

#ifndef A3_SERVING_REMOTE_COORDINATOR_HPP
#define A3_SERVING_REMOTE_COORDINATOR_HPP

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "attention/backend.hpp"
#include "net/transport.hpp"
#include "serving/remote_protocol.hpp"

namespace a3 {

/** How the coordinator reaches one worker. */
struct RemoteWorkerSpec
{
    std::string name;

    /**
     * Produce a connected transport to the worker, or nullptr with
     * a typed status. Called once at construction; a worker whose
     * connect fails starts out dead.
     */
    std::function<std::shared_ptr<Transport>(NetStatus &)> connect;
};

/** Spec for a worker process listening on an AF_UNIX socket. */
RemoteWorkerSpec unixWorkerSpec(std::string name,
                                std::string socketPath,
                                double connectTimeoutSeconds);

/**
 * Wrap a freshly connected worker transport — the fault-injection
 * seam (tests install FaultyTransport here to exercise every
 * recovery path deterministically).
 */
using TransportDecorator = std::function<std::shared_ptr<Transport>(
    std::shared_ptr<Transport>)>;

/** Knobs of the coordinator's sharding and robustness machinery. */
struct RemoteShardConfig
{
    /** Shard capacity in rows (the ShardedConfig::shardRows twin). */
    std::size_t shardRows = 64;

    /** Workers each shard is bound onto up front (clamped to the
     *  live worker count; failover consults them in order). */
    std::size_t replication = 1;

    /** Deadline for one remote wait (query reply, bind ack). */
    double queryDeadlineSeconds = 1.0;

    /** Same-worker resends after a transient failure. */
    std::size_t maxRetries = 2;

    /** Initial retry backoff; doubles per retry up to the cap. */
    double retryBackoffSeconds = 0.002;
    double retryBackoffMaxSeconds = 0.05;

    /** Deadline for one heartbeat ack. */
    double heartbeatTimeoutSeconds = 0.25;

    /**
     * Period of the internal background heartbeat thread; 0 (the
     * default) spawns no thread and leaves heartbeats caller-driven.
     * The thread starts after construction fully binds the shards
     * and is stopped and joined first thing in the destructor.
     */
    double heartbeatPeriodSeconds = 0.0;

    /** Optional wrapper around every worker transport. */
    TransportDecorator decorateTransport;
};

/** Liveness state the coordinator tracks per worker. */
enum class WorkerHealth { Healthy, Suspect, Dead };

/** Stable lowercase name ("healthy", "suspect", "dead"). */
const char *workerHealthName(WorkerHealth health);

/** Counters of the robustness machinery (all monotonic). */
struct RemoteCoordinatorStats
{
    std::size_t timeouts = 0;        ///< remote waits that expired
    std::size_t checksumRejects = 0; ///< corrupted frames rejected
    std::size_t retries = 0;         ///< same-worker resends
    std::size_t failovers = 0;       ///< replica switches
    std::size_t rebinds = 0;         ///< shards rebound to survivors
    std::size_t localFallbacks = 0;  ///< shards computed locally
    std::size_t staleReplies = 0;    ///< late replies discarded
};

/**
 * AttentionBackend over a fleet of shard workers. Construction
 * connects, handshakes, and binds every shard onto its replicas;
 * workers that fail at any step start out dead and their shards
 * fall back per the escalation ladder. With no live worker at all
 * the coordinator still serves every query locally.
 */
class RemoteShardCoordinator final : public AttentionBackend
{
  public:
    RemoteShardCoordinator(const EngineConfig &inner, Matrix key,
                           Matrix value,
                           std::vector<RemoteWorkerSpec> specs,
                           RemoteShardConfig config);
    ~RemoteShardCoordinator() override;

    std::string name() const override;
    void runInto(const Vector &query,
                 AttentionResult &out) const override;
    void runPartialInto(const Vector &query,
                        PartialResult &out) const override;
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override;
    std::size_t memoryBytes() const override;
    std::size_t rows() const override;
    std::size_t dims() const override;

    /**
     * Per-request deadline budget from the scheduler: subsequent
     * query waits use min(hint, queryDeadlineSeconds) instead of the
     * static config deadline, so a request with little budget left
     * stops waiting on a sick worker sooner and escalates down the
     * recovery ladder. Advisory and sticky until the next hint; only
     * the two per-query reply waits tighten — handshake, bind, and
     * heartbeat waits keep their configured deadlines (they protect
     * binding durability, not one request's latency).
     */
    void queryDeadlineHint(double remainingSeconds) const override;

    /**
     * Probe every non-dead worker and apply the health transitions,
     * then re-replicate any under-replicated shard onto survivors.
     * Driven by the background thread when heartbeatPeriodSeconds is
     * set; always safe to call directly as well.
     */
    void heartbeat();

    std::size_t workerCount() const;
    WorkerHealth workerHealth(std::size_t worker) const;
    std::size_t shardCount() const;
    RemoteCoordinatorStats stats() const;

  private:
    struct Worker
    {
        RemoteWorkerSpec spec;
        std::shared_ptr<Transport> transport;
        WorkerHealth health = WorkerHealth::Dead;
        std::size_t consecutiveMisses = 0;
        std::uint64_t heartbeatSeq = 0;

        /** Replies received while awaiting a different request —
         *  pipelining and recovery interleave replies on one
         *  connection. Cleared at every operation start. */
        std::map<std::uint64_t, Frame> stash;
    };

    struct Shard
    {
        std::uint32_t id = 0;
        std::size_t offset = 0;
        std::size_t rowCount = 0;
        std::uint64_t generation = 0;

        /** Worker indices holding this shard, primary first. */
        std::vector<std::size_t> replicas;

        /** Last-resort local engine (built on first local
         *  fallback, dropped when the shard's rows change). */
        std::unique_ptr<AttentionBackend> local;
    };

    /** One in-flight shard query of the pipelined fan-out. */
    struct Pending
    {
        bool sent = false;
        std::size_t worker = 0;
        std::uint64_t requestId = 0;
    };

    bool workerAlive(std::size_t w) const;
    void markMiss(std::size_t w);
    void markDead(std::size_t w);
    void markAnswered(std::size_t w);

    /** Demote workers whose transport closed under us to Dead. */
    void sweepClosedWorkers();

    NetStatus connectWorker(std::size_t w);
    NetStatus bindShardTo(std::size_t w, Shard &shard);
    void ensureReplication(Shard &shard, bool countRebinds);
    void ensureReplicationAll(bool countRebinds);

    NetStatus sendQuery(std::size_t w, const Shard &shard,
                        const Vector &query, bool wantFull,
                        std::uint64_t &requestId);
    NetStatus awaitReply(std::size_t w, std::uint64_t requestId,
                         double deadlineSeconds, Frame &out);
    NetStatus decodeShardReply(const Frame &frame, bool wantFull,
                               std::uint32_t shardId,
                               PartialResult *partial,
                               AttentionResult *result);
    NetStatus queryOnce(std::size_t w, const Shard &shard,
                        const Vector &query, bool wantFull,
                        PartialResult *partial,
                        AttentionResult *result);

    /** The full escalation ladder for one shard; never fails. */
    void recoverShard(Shard &shard, const Vector &query,
                      bool wantFull, PartialResult *partial,
                      AttentionResult *result);

    void runLocal(Shard &shard, const Vector &query, bool wantFull,
                  PartialResult *partial, AttentionResult *result);

    void queryAllShards(const Vector &query, bool wantFull,
                        PartialResult *mergedPartial,
                        AttentionResult *fullResult);

    void beginOperation();

    EngineConfig inner_;
    RemoteShardConfig config_;
    Matrix key_;
    Matrix value_;
    std::size_t dims_ = 0;

    /** Effective deadline for one query reply wait (see
     *  queryDeadlineHint). */
    double effectiveQueryDeadlineLocked() const;

    mutable std::mutex mu_;
    /** Latest scheduler hint in seconds; 0 = none (use the static
     *  config deadline). Relaxed atomic: written from the drain
     *  thread through the const backend pointer, read under mu_. */
    mutable std::atomic<double> deadlineHintSeconds_{0.0};
    mutable std::vector<Worker> workers_;
    mutable std::vector<Shard> shards_;
    mutable std::uint64_t nextRequestId_ = 1;
    mutable std::uint64_t operationFirstId_ = 1;
    mutable RemoteCoordinatorStats stats_;

    /** Reused fan-out buffers (all access is under mu_). */
    mutable std::vector<Pending> pending_;
    mutable std::vector<PartialResult> partials_;
    mutable PartialReplyPayload partialScratch_;
    mutable ResultReplyPayload resultScratch_;

    /** Background heartbeat machinery (heartbeatPeriodSeconds > 0):
     *  the thread waits on hbCv_ so the destructor can interrupt a
     *  sleep immediately instead of waiting a full period out. */
    std::mutex hbMu_;
    std::condition_variable hbCv_;
    bool hbStop_ = false;
    std::thread heartbeatThread_;
};

}  // namespace a3

#endif  // A3_SERVING_REMOTE_COORDINATOR_HPP
