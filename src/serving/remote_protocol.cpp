#include "serving/remote_protocol.hpp"

#include <utility>

#include "net/wire.hpp"

namespace a3 {

namespace {

NetStatus
malformed(const char *what)
{
    return NetStatus::failure(NetError::Malformed, what);
}

NetStatus
requireType(const Frame &frame, FrameType expected)
{
    if (frame.type != expected)
        return NetStatus::failure(
            NetError::Malformed,
            std::string("expected ") + frameTypeName(expected) +
                " frame, got " + frameTypeName(frame.type));
    return NetStatus::success();
}

void
putMatrix(WireWriter &w, const Matrix &m)
{
    w.u32(static_cast<std::uint32_t>(m.rows()));
    w.u32(static_cast<std::uint32_t>(m.cols()));
    w.floats(m.data().data(), m.data().size());
}

bool
getMatrix(WireReader &r, Matrix &out)
{
    const std::uint32_t rows = r.u32();
    const std::uint32_t cols = r.u32();
    std::vector<float> data;
    r.floats(data);
    if (!r.ok() ||
        data.size() != static_cast<std::size_t>(rows) * cols)
        return false;
    out = Matrix(rows, cols);
    out.data() = std::move(data);
    return true;
}

void
putEngineConfig(WireWriter &w, const EngineConfig &config)
{
    w.u8(static_cast<std::uint8_t>(config.kind));
    w.u32(static_cast<std::uint32_t>(config.intBits));
    w.u32(static_cast<std::uint32_t>(config.fracBits));
    w.u8(static_cast<std::uint8_t>(config.packedKv));
    w.u8(config.approx.candidateSelection ? 1 : 0);
    w.u8(config.approx.postScoring ? 1 : 0);
    w.f64(config.approx.mFraction);
    w.u64(config.approx.mAbsolute);
    w.f64(config.approx.thresholdPercent);
    w.u8(config.approx.skipHeuristic ? 1 : 0);
}

bool
getEngineConfig(WireReader &r, EngineConfig &out)
{
    const std::uint8_t kind = r.u8();
    out.intBits = static_cast<int>(r.u32());
    out.fracBits = static_cast<int>(r.u32());
    const std::uint8_t packed = r.u8();
    out.approx.candidateSelection = r.u8() != 0;
    out.approx.postScoring = r.u8() != 0;
    out.approx.mFraction = r.f64();
    out.approx.mAbsolute = static_cast<std::size_t>(r.u64());
    out.approx.thresholdPercent = r.f64();
    out.approx.skipHeuristic = r.u8() != 0;
    if (!r.ok() ||
        kind > static_cast<std::uint8_t>(
                   EngineKind::ApproxQuantized) ||
        packed > static_cast<std::uint8_t>(PackedKvFormat::Int4))
        return false;
    out.kind = static_cast<EngineKind>(kind);
    out.packedKv = static_cast<PackedKvFormat>(packed);
    return true;
}

void
putIds(WireWriter &w, const std::vector<std::uint32_t> &ids)
{
    w.u32s(ids.data(), ids.size());
}

}  // namespace

Frame
encodeHello(const HelloPayload &payload, bool ack)
{
    WireWriter w;
    w.u16(payload.version);
    w.str(payload.peer);
    return {ack ? FrameType::HelloAck : FrameType::Hello,
            w.take()};
}

NetStatus
decodeHello(const Frame &frame, HelloPayload &out)
{
    if (frame.type != FrameType::Hello &&
        frame.type != FrameType::HelloAck)
        return malformed("expected hello/hello-ack frame");
    WireReader r(frame.payload);
    out.version = r.u16();
    out.peer = r.str();
    if (!r.done())
        return malformed("malformed hello payload");
    if (out.version != kProtocolVersion)
        return NetStatus::failure(
            NetError::BadVersion,
            "peer speaks protocol version " +
                std::to_string(out.version));
    return NetStatus::success();
}

Frame
encodeBindShard(const BindShardPayload &payload)
{
    WireWriter w;
    w.u32(payload.shardId);
    w.u64(payload.generation);
    putEngineConfig(w, payload.config);
    putMatrix(w, payload.key);
    putMatrix(w, payload.value);
    return {FrameType::BindShard, w.take()};
}

NetStatus
decodeBindShard(const Frame &frame, BindShardPayload &out)
{
    NetStatus status = requireType(frame, FrameType::BindShard);
    if (!status.ok())
        return status;
    WireReader r(frame.payload);
    out.shardId = r.u32();
    out.generation = r.u64();
    if (!getEngineConfig(r, out.config))
        return malformed("malformed engine config");
    if (!getMatrix(r, out.key) || !getMatrix(r, out.value))
        return malformed("malformed shard matrices");
    if (!r.done())
        return malformed("trailing bytes after bind payload");
    if (out.key.rows() != out.value.rows() ||
        out.key.cols() != out.value.cols() || out.key.empty())
        return malformed("bind shard key/value shape mismatch");
    return NetStatus::success();
}

Frame
encodeBindAck(const BindAckPayload &payload)
{
    WireWriter w;
    w.u32(payload.shardId);
    w.u64(payload.generation);
    return {FrameType::BindAck, w.take()};
}

NetStatus
decodeBindAck(const Frame &frame, BindAckPayload &out)
{
    NetStatus status = requireType(frame, FrameType::BindAck);
    if (!status.ok())
        return status;
    WireReader r(frame.payload);
    out.shardId = r.u32();
    out.generation = r.u64();
    if (!r.done())
        return malformed("malformed bind-ack payload");
    return NetStatus::success();
}

Frame
encodeQuery(const QueryPayload &payload)
{
    WireWriter w;
    w.u64(payload.requestId);
    w.u32(payload.shardId);
    w.u64(payload.generation);
    w.u8(payload.wantFull ? 1 : 0);
    w.floats(payload.query.data(), payload.query.size());
    return {FrameType::Query, w.take()};
}

NetStatus
decodeQuery(const Frame &frame, QueryPayload &out)
{
    NetStatus status = requireType(frame, FrameType::Query);
    if (!status.ok())
        return status;
    WireReader r(frame.payload);
    out.requestId = r.u64();
    out.shardId = r.u32();
    out.generation = r.u64();
    const std::uint8_t wantFull = r.u8();
    r.floats(out.query);
    if (!r.done() || wantFull > 1 || out.query.empty())
        return malformed("malformed query payload");
    out.wantFull = wantFull != 0;
    return NetStatus::success();
}

Frame
encodePartialReply(const PartialReplyPayload &payload)
{
    const PartialResult &p = payload.partial;
    WireWriter w;
    w.u64(payload.requestId);
    w.u32(payload.shardId);
    w.f32(p.maxScore);
    w.f32(p.expSum);
    w.u64(p.iterations);
    w.floats(p.accum.data(), p.accum.size());
    w.floats(p.expWeights.data(), p.expWeights.size());
    w.floats(p.scores.data(), p.scores.size());
    putIds(w, p.candidates);
    putIds(w, p.kept);
    return {FrameType::PartialReply, w.take()};
}

NetStatus
decodePartialReply(const Frame &frame, PartialReplyPayload &out)
{
    NetStatus status =
        requireType(frame, FrameType::PartialReply);
    if (!status.ok())
        return status;
    WireReader r(frame.payload);
    out.requestId = r.u64();
    out.shardId = r.u32();
    PartialResult &p = out.partial;
    p.maxScore = r.f32();
    p.expSum = r.f32();
    p.iterations = static_cast<std::size_t>(r.u64());
    r.floats(p.accum);
    r.floats(p.expWeights);
    r.floats(p.scores);
    r.u32s(p.candidates);
    r.u32s(p.kept);
    if (!r.done() || p.scores.size() != p.expWeights.size())
        return malformed("malformed partial-reply payload");
    return NetStatus::success();
}

Frame
encodeResultReply(const ResultReplyPayload &payload)
{
    const AttentionResult &res = payload.result;
    WireWriter w;
    w.u64(payload.requestId);
    w.u32(payload.shardId);
    w.u64(res.iterations);
    w.floats(res.output.data(), res.output.size());
    w.floats(res.weights.data(), res.weights.size());
    w.floats(res.scores.data(), res.scores.size());
    putIds(w, res.candidates);
    putIds(w, res.kept);
    return {FrameType::ResultReply, w.take()};
}

NetStatus
decodeResultReply(const Frame &frame, ResultReplyPayload &out)
{
    NetStatus status = requireType(frame, FrameType::ResultReply);
    if (!status.ok())
        return status;
    WireReader r(frame.payload);
    out.requestId = r.u64();
    out.shardId = r.u32();
    AttentionResult &res = out.result;
    res.iterations = static_cast<std::size_t>(r.u64());
    r.floats(res.output);
    r.floats(res.weights);
    r.floats(res.scores);
    r.u32s(res.candidates);
    r.u32s(res.kept);
    if (!r.done() || res.scores.size() != res.weights.size())
        return malformed("malformed result-reply payload");
    return NetStatus::success();
}

Frame
encodeHeartbeat(const HeartbeatPayload &payload, bool ack)
{
    WireWriter w;
    w.u64(payload.sequence);
    w.u32(payload.shardsBound);
    return {ack ? FrameType::HeartbeatAck : FrameType::Heartbeat,
            w.take()};
}

NetStatus
decodeHeartbeat(const Frame &frame, HeartbeatPayload &out)
{
    if (frame.type != FrameType::Heartbeat &&
        frame.type != FrameType::HeartbeatAck)
        return malformed("expected heartbeat/ack frame");
    WireReader r(frame.payload);
    out.sequence = r.u64();
    out.shardsBound = r.u32();
    if (!r.done())
        return malformed("malformed heartbeat payload");
    return NetStatus::success();
}

Frame
encodeErrorReply(const ErrorReplyPayload &payload)
{
    WireWriter w;
    w.u64(payload.requestId);
    w.u32(static_cast<std::uint32_t>(payload.code));
    w.str(payload.message);
    return {FrameType::ErrorReply, w.take()};
}

NetStatus
decodeErrorReply(const Frame &frame, ErrorReplyPayload &out)
{
    NetStatus status = requireType(frame, FrameType::ErrorReply);
    if (!status.ok())
        return status;
    WireReader r(frame.payload);
    out.requestId = r.u64();
    const std::uint32_t code = r.u32();
    out.message = r.str();
    if (!r.done() ||
        code > static_cast<std::uint32_t>(NetError::SystemError))
        return malformed("malformed error-reply payload");
    out.code = static_cast<NetError>(code);
    return NetStatus::success();
}

Frame
encodeShutdown()
{
    return {FrameType::Shutdown, {}};
}

}  // namespace a3
