#include "serving/remote_coordinator.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "serving/partial_merge.hpp"
#include "util/logging.hpp"

namespace a3 {

namespace {

double
nowSeconds()
{
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now()
                   .time_since_epoch())
        .count();
}

void
sleepSeconds(double seconds)
{
    if (seconds > 0.0)
        std::this_thread::sleep_for(
            std::chrono::duration<double>(seconds));
}

/**
 * Request id a client-bound reply frame answers: the leading u64
 * of PartialReply, ResultReply, and ErrorReply payloads alike (0
 * for connection-level errors and short payloads).
 */
std::uint64_t
replyRequestId(const Frame &frame)
{
    if (frame.payload.size() < 8)
        return 0;
    std::uint64_t id = 0;
    for (int b = 7; b >= 0; --b)
        id = (id << 8) |
             frame.payload[static_cast<std::size_t>(b)];
    return id;
}

bool
isReplyFrame(const Frame &frame)
{
    return frame.type == FrameType::PartialReply ||
           frame.type == FrameType::ResultReply ||
           frame.type == FrameType::ErrorReply;
}

/** Transient failures worth retrying on the same worker. */
bool
retryable(NetError error)
{
    return error == NetError::Timeout ||
           error == NetError::BadChecksum;
}

}  // namespace

RemoteWorkerSpec
unixWorkerSpec(std::string name, std::string socketPath,
               double connectTimeoutSeconds)
{
    RemoteWorkerSpec spec;
    spec.name = std::move(name);
    spec.connect = [path = std::move(socketPath),
                    connectTimeoutSeconds](NetStatus &status) {
        return connectUnix(path, connectTimeoutSeconds, status);
    };
    return spec;
}

const char *
workerHealthName(WorkerHealth health)
{
    switch (health) {
    case WorkerHealth::Healthy: return "healthy";
    case WorkerHealth::Suspect: return "suspect";
    case WorkerHealth::Dead: return "dead";
    }
    return "unknown";
}

RemoteShardCoordinator::RemoteShardCoordinator(
    const EngineConfig &inner, Matrix key, Matrix value,
    std::vector<RemoteWorkerSpec> specs, RemoteShardConfig config)
    : inner_(inner), config_(config), key_(std::move(key)),
      value_(std::move(value))
{
    a3Assert(config_.shardRows > 0, "shardRows must be positive");
    a3Assert(key_.rows() == value_.rows() &&
                 key_.cols() == value_.cols(),
             "key/value shape mismatch");
    a3Assert(!key_.empty(), "attention task must be non-empty");
    dims_ = key_.cols();
    config_.replication = std::max<std::size_t>(
        1, std::min(config_.replication,
                    std::max<std::size_t>(1, specs.size())));

    workers_.reserve(specs.size());
    for (RemoteWorkerSpec &spec : specs) {
        Worker worker;
        worker.spec = std::move(spec);
        workers_.push_back(std::move(worker));
    }
    for (std::size_t w = 0; w < workers_.size(); ++w)
        connectWorker(w);

    const std::vector<std::size_t> sizes =
        balancedShardSizes(key_.rows(), config_.shardRows);
    std::size_t offset = 0;
    shards_.reserve(sizes.size());
    for (std::size_t s = 0; s < sizes.size(); ++s) {
        Shard shard;
        shard.id = static_cast<std::uint32_t>(s);
        shard.offset = offset;
        shard.rowCount = sizes[s];
        shard.generation = 1;
        shards_.push_back(std::move(shard));
        offset += sizes[s];
    }
    ensureReplicationAll(/*countRebinds=*/false);

    // The background heartbeat starts only after the shards are
    // fully bound, so the thread never observes a half-constructed
    // coordinator. It shares heartbeat() with direct callers — the
    // coordinator mutex serializes them.
    if (config_.heartbeatPeriodSeconds > 0.0) {
        const std::chrono::duration<double> period(
            config_.heartbeatPeriodSeconds);
        heartbeatThread_ = std::thread([this, period] {
            std::unique_lock<std::mutex> lock(hbMu_);
            while (true) {
                hbCv_.wait_for(lock, period,
                               [this] { return hbStop_; });
                if (hbStop_)
                    return;
                // Probe outside hbMu_ so a destructor's stop request
                // never waits behind a full heartbeat sweep.
                lock.unlock();
                heartbeat();
                lock.lock();
            }
        });
    }
}

RemoteShardCoordinator::~RemoteShardCoordinator()
{
    // Stop the background heartbeat before tearing the transports
    // down: the thread must never probe a worker mid-shutdown.
    if (heartbeatThread_.joinable()) {
        {
            const std::lock_guard<std::mutex> lock(hbMu_);
            hbStop_ = true;
        }
        hbCv_.notify_all();
        heartbeatThread_.join();
    }
    for (Worker &worker : workers_) {
        if (worker.transport == nullptr)
            continue;
        if (worker.health != WorkerHealth::Dead)
            worker.transport->send(encodeShutdown());
        worker.transport->close();
    }
}

std::string
RemoteShardCoordinator::name() const
{
    return std::string("remote-sharded(") +
           engineKindName(inner_.kind) + ")";
}

std::size_t
RemoteShardCoordinator::rows() const
{
    return key_.rows();
}

std::size_t
RemoteShardCoordinator::dims() const
{
    return dims_;
}

void
RemoteShardCoordinator::queryDeadlineHint(
    double remainingSeconds) const
{
    deadlineHintSeconds_.store(
        remainingSeconds > 0.0 ? remainingSeconds : 0.0,
        std::memory_order_relaxed);
}

double
RemoteShardCoordinator::effectiveQueryDeadlineLocked() const
{
    const double hint =
        deadlineHintSeconds_.load(std::memory_order_relaxed);
    if (hint <= 0.0)
        return config_.queryDeadlineSeconds;
    // The hint only ever tightens: a generous request budget must
    // not extend waits past the operator-configured deadline.
    return std::min(hint, config_.queryDeadlineSeconds);
}

std::size_t
RemoteShardCoordinator::memoryBytes() const
{
    std::lock_guard<std::mutex> lock(mu_);
    // The retained task copy (the re-replication source) plus any
    // local fallback engines.
    std::size_t total =
        (key_.data().size() + value_.data().size()) *
        sizeof(float);
    for (const Shard &shard : shards_)
        if (shard.local != nullptr)
            total += shard.local->memoryBytes();
    return total;
}

std::size_t
RemoteShardCoordinator::workerCount() const
{
    return workers_.size();
}

WorkerHealth
RemoteShardCoordinator::workerHealth(std::size_t worker) const
{
    std::lock_guard<std::mutex> lock(mu_);
    a3Assert(worker < workers_.size(), "worker index ", worker,
             " out of ", workers_.size());
    return workers_[worker].health;
}

std::size_t
RemoteShardCoordinator::shardCount() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return shards_.size();
}

RemoteCoordinatorStats
RemoteShardCoordinator::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

bool
RemoteShardCoordinator::workerAlive(std::size_t w) const
{
    const Worker &worker = workers_[w];
    return worker.health != WorkerHealth::Dead &&
           worker.transport != nullptr &&
           worker.transport->isOpen();
}

void
RemoteShardCoordinator::markMiss(std::size_t w)
{
    Worker &worker = workers_[w];
    ++worker.consecutiveMisses;
    if (worker.consecutiveMisses >= 2)
        markDead(w);
    else if (worker.health == WorkerHealth::Healthy)
        worker.health = WorkerHealth::Suspect;
}

void
RemoteShardCoordinator::markDead(std::size_t w)
{
    Worker &worker = workers_[w];
    worker.health = WorkerHealth::Dead;
    if (worker.transport != nullptr)
        worker.transport->close();
    worker.stash.clear();
}

void
RemoteShardCoordinator::markAnswered(std::size_t w)
{
    Worker &worker = workers_[w];
    worker.consecutiveMisses = 0;
    worker.health = WorkerHealth::Healthy;
}

void
RemoteShardCoordinator::sweepClosedWorkers()
{
    // A transport can die outside any coordinator call (the worker
    // process was SIGKILLed, the socket closed under us); fold
    // that into the health state before acting on it.
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        Worker &worker = workers_[w];
        if (worker.health != WorkerHealth::Dead &&
            (worker.transport == nullptr ||
             !worker.transport->isOpen()))
            markDead(w);
    }
}

NetStatus
RemoteShardCoordinator::connectWorker(std::size_t w)
{
    Worker &worker = workers_[w];
    NetStatus status = NetStatus::success();
    std::shared_ptr<Transport> transport =
        worker.spec.connect ? worker.spec.connect(status)
                            : nullptr;
    if (transport == nullptr) {
        if (status.ok())
            status = NetStatus::failure(NetError::SystemError,
                                        "connect returned no "
                                        "transport");
        return status;
    }
    if (config_.decorateTransport)
        transport = config_.decorateTransport(std::move(transport));

    HelloPayload hello;
    hello.peer = "coordinator";
    status = transport->send(encodeHello(hello, /*ack=*/false));
    if (!status.ok())
        return status;
    Frame frame;
    const double deadline =
        nowSeconds() + config_.queryDeadlineSeconds;
    while (true) {
        const double remaining = deadline - nowSeconds();
        if (remaining <= 0.0)
            return NetStatus::failure(NetError::Timeout,
                                      "handshake timed out");
        status = transport->recv(frame, remaining);
        if (!status.ok())
            return status;
        if (frame.type != FrameType::HelloAck)
            continue;
        HelloPayload ack;
        status = decodeHello(frame, ack);
        if (!status.ok())
            return status;
        break;
    }
    worker.transport = std::move(transport);
    worker.health = WorkerHealth::Healthy;
    worker.consecutiveMisses = 0;
    return NetStatus::success();
}

NetStatus
RemoteShardCoordinator::bindShardTo(std::size_t w, Shard &shard)
{
    Worker &worker = workers_[w];
    BindShardPayload bind;
    bind.shardId = shard.id;
    bind.generation = shard.generation;
    bind.config = inner_;
    bind.key = key_.rowSlice(shard.offset, shard.rowCount);
    bind.value = value_.rowSlice(shard.offset, shard.rowCount);
    NetStatus status =
        worker.transport->send(encodeBindShard(bind));
    if (!status.ok()) {
        markDead(w);
        return status;
    }
    Frame frame;
    const double deadline =
        nowSeconds() + config_.queryDeadlineSeconds;
    while (true) {
        const double remaining = deadline - nowSeconds();
        if (remaining <= 0.0) {
            markMiss(w);
            ++stats_.timeouts;
            return NetStatus::failure(NetError::Timeout,
                                      "bind ack timed out");
        }
        status = worker.transport->recv(frame, remaining);
        if (!status.ok()) {
            if (status.error == NetError::Timeout) {
                markMiss(w);
                ++stats_.timeouts;
            } else {
                markDead(w);
            }
            return status;
        }
        if (frame.type == FrameType::BindAck) {
            BindAckPayload ack;
            status = decodeBindAck(frame, ack);
            if (!status.ok()) {
                markDead(w);
                return status;
            }
            if (ack.shardId != shard.id ||
                ack.generation != shard.generation)
                continue;  // ack of an earlier bind
            markAnswered(w);
            return NetStatus::success();
        }
        if (frame.type == FrameType::ErrorReply &&
            replyRequestId(frame) == 0) {
            ErrorReplyPayload error;
            if (decodeErrorReply(frame, error).ok())
                return NetStatus::failure(error.code,
                                          error.message);
            markDead(w);
            return NetStatus::failure(NetError::Malformed,
                                      "undecodable error reply");
        }
        if (isReplyFrame(frame)) {
            // A pipelined query reply overtaking the bind ack.
            worker.stash[replyRequestId(frame)] = frame;
            continue;
        }
        // HeartbeatAck and the like: skip.
    }
}

void
RemoteShardCoordinator::ensureReplication(Shard &shard,
                                          bool countRebinds)
{
    // Drop replicas that died.
    shard.replicas.erase(
        std::remove_if(shard.replicas.begin(),
                       shard.replicas.end(),
                       [this](std::size_t w) {
                           return !workerAlive(w);
                       }),
        shard.replicas.end());
    if (workers_.empty())
        return;
    // Top back up to R, scanning from the shard's home worker so
    // placement stays balanced.
    const std::size_t start = shard.id % workers_.size();
    for (std::size_t i = 0;
         i < workers_.size() &&
         shard.replicas.size() < config_.replication;
         ++i) {
        const std::size_t w = (start + i) % workers_.size();
        if (!workerAlive(w))
            continue;
        if (std::find(shard.replicas.begin(),
                      shard.replicas.end(),
                      w) != shard.replicas.end())
            continue;
        if (bindShardTo(w, shard).ok()) {
            shard.replicas.push_back(w);
            if (countRebinds)
                ++stats_.rebinds;
        }
    }
}

void
RemoteShardCoordinator::ensureReplicationAll(bool countRebinds)
{
    for (Shard &shard : shards_)
        ensureReplication(shard, countRebinds);
}

NetStatus
RemoteShardCoordinator::sendQuery(std::size_t w,
                                  const Shard &shard,
                                  const Vector &query,
                                  bool wantFull,
                                  std::uint64_t &requestId)
{
    QueryPayload payload;
    payload.requestId = nextRequestId_++;
    payload.shardId = shard.id;
    payload.generation = shard.generation;
    payload.wantFull = wantFull;
    payload.query = query;
    const NetStatus status =
        workers_[w].transport->send(encodeQuery(payload));
    if (!status.ok()) {
        markDead(w);
        return status;
    }
    requestId = payload.requestId;
    return NetStatus::success();
}

NetStatus
RemoteShardCoordinator::awaitReply(std::size_t w,
                                   std::uint64_t requestId,
                                   double deadlineSeconds,
                                   Frame &out)
{
    Worker &worker = workers_[w];
    const auto stashed = worker.stash.find(requestId);
    if (stashed != worker.stash.end()) {
        out = std::move(stashed->second);
        worker.stash.erase(stashed);
        return NetStatus::success();
    }
    const double deadline = nowSeconds() + deadlineSeconds;
    while (true) {
        const double remaining = deadline - nowSeconds();
        if (remaining <= 0.0) {
            ++stats_.timeouts;
            markMiss(w);
            return NetStatus::failure(NetError::Timeout,
                                      "reply deadline expired");
        }
        NetStatus status = worker.transport->recv(out, remaining);
        if (!status.ok()) {
            if (status.error == NetError::Timeout) {
                ++stats_.timeouts;
                markMiss(w);
            } else if (status.error == NetError::BadChecksum) {
                ++stats_.checksumRejects;
            } else {
                markDead(w);
            }
            return status;
        }
        if (!isReplyFrame(out))
            continue;  // heartbeat acks, late bind acks
        const std::uint64_t id = replyRequestId(out);
        if (id == requestId)
            return NetStatus::success();
        if (out.type == FrameType::ErrorReply && id == 0) {
            // Connection-level report (the worker rejected a
            // corrupted or malformed frame — possibly ours).
            ErrorReplyPayload error;
            if (decodeErrorReply(out, error).ok())
                return NetStatus::failure(error.code,
                                          error.message);
            markDead(w);
            return NetStatus::failure(NetError::Malformed,
                                      "undecodable error reply");
        }
        if (id < operationFirstId_) {
            ++stats_.staleReplies;  // an earlier operation's reply
            continue;
        }
        // Another in-flight request's reply overtook ours
        // (pipelining or recovery interleave): stash it.
        worker.stash[id] = out;
    }
}

NetStatus
RemoteShardCoordinator::decodeShardReply(const Frame &frame,
                                         bool wantFull,
                                         std::uint32_t shardId,
                                         PartialResult *partial,
                                         AttentionResult *result)
{
    if (frame.type == FrameType::ErrorReply) {
        ErrorReplyPayload error;
        const NetStatus status = decodeErrorReply(frame, error);
        if (!status.ok())
            return status;
        return NetStatus::failure(error.code, error.message);
    }
    if (wantFull) {
        if (frame.type != FrameType::ResultReply)
            return NetStatus::failure(NetError::Malformed,
                                      "expected a result reply");
        const NetStatus status =
            decodeResultReply(frame, resultScratch_);
        if (!status.ok())
            return status;
        if (resultScratch_.shardId != shardId)
            return NetStatus::failure(NetError::Malformed,
                                      "reply for wrong shard");
        std::swap(*result, resultScratch_.result);
        return NetStatus::success();
    }
    if (frame.type != FrameType::PartialReply)
        return NetStatus::failure(NetError::Malformed,
                                  "expected a partial reply");
    const NetStatus status =
        decodePartialReply(frame, partialScratch_);
    if (!status.ok())
        return status;
    if (partialScratch_.shardId != shardId)
        return NetStatus::failure(NetError::Malformed,
                                  "reply for wrong shard");
    std::swap(*partial, partialScratch_.partial);
    return NetStatus::success();
}

NetStatus
RemoteShardCoordinator::queryOnce(std::size_t w,
                                  const Shard &shard,
                                  const Vector &query,
                                  bool wantFull,
                                  PartialResult *partial,
                                  AttentionResult *result)
{
    std::uint64_t requestId = 0;
    NetStatus status =
        sendQuery(w, shard, query, wantFull, requestId);
    if (!status.ok())
        return status;
    Frame reply;
    status = awaitReply(w, requestId,
                        effectiveQueryDeadlineLocked(), reply);
    if (!status.ok())
        return status;
    status =
        decodeShardReply(reply, wantFull, shard.id, partial, result);
    if (status.ok())
        markAnswered(w);
    return status;
}

void
RemoteShardCoordinator::runLocal(Shard &shard, const Vector &query,
                                 bool wantFull,
                                 PartialResult *partial,
                                 AttentionResult *result)
{
    if (shard.local == nullptr) {
        ++stats_.rebinds;
        shard.local = makeBackend(
            inner_, key_.rowSlice(shard.offset, shard.rowCount),
            value_.rowSlice(shard.offset, shard.rowCount));
    }
    ++stats_.localFallbacks;
    if (wantFull)
        shard.local->runInto(query, *result);
    else
        shard.local->runPartialInto(query, *partial);
}

void
RemoteShardCoordinator::recoverShard(Shard &shard,
                                     const Vector &query,
                                     bool wantFull,
                                     PartialResult *partial,
                                     AttentionResult *result)
{
    // 2. Bounded exponential-backoff retries on the primary.
    if (!shard.replicas.empty()) {
        const std::size_t primary = shard.replicas.front();
        double backoff = config_.retryBackoffSeconds;
        for (std::size_t attempt = 0;
             attempt < config_.maxRetries && workerAlive(primary);
             ++attempt) {
            sleepSeconds(backoff);
            backoff = std::min(backoff * 2.0,
                               config_.retryBackoffMaxSeconds);
            ++stats_.retries;
            const NetStatus status =
                queryOnce(primary, shard, query, wantFull,
                          partial, result);
            if (status.ok())
                return;
            if (!retryable(status.error))
                break;
        }
    }
    // 3. Failover to the remaining replicas.
    for (std::size_t r = 1; r < shard.replicas.size(); ++r) {
        const std::size_t w = shard.replicas[r];
        if (!workerAlive(w))
            continue;
        ++stats_.failovers;
        if (queryOnce(w, shard, query, wantFull, partial, result)
                .ok()) {
            // Promote the answering replica.
            std::swap(shard.replicas[0], shard.replicas[r]);
            return;
        }
    }
    // 4. Re-replicate onto a survivor under a fresh generation
    //    (late replies from the old binding become stale).
    ++shard.generation;
    for (std::size_t i = 0; i < workers_.size(); ++i) {
        const std::size_t w =
            (shard.id + i) % workers_.size();
        if (!workerAlive(w))
            continue;
        if (!bindShardTo(w, shard).ok())
            continue;
        ++stats_.rebinds;
        shard.replicas.assign(1, w);
        ++stats_.failovers;
        if (queryOnce(w, shard, query, wantFull, partial, result)
                .ok())
            return;
    }
    // 5. Local execution — the ladder never fails the query.
    shard.replicas.clear();
    runLocal(shard, query, wantFull, partial, result);
}

void
RemoteShardCoordinator::beginOperation()
{
    sweepClosedWorkers();
    operationFirstId_ = nextRequestId_;
    for (Worker &worker : workers_)
        worker.stash.clear();
}

void
RemoteShardCoordinator::queryAllShards(const Vector &query,
                                       bool wantFull,
                                       PartialResult *mergedPartial,
                                       AttentionResult *fullResult)
{
    a3Assert(query.size() == dims_, "query dimension ",
             query.size(), " does not match the task dimension ",
             dims_);
    beginOperation();

    // Phase 1: pipeline the query to every shard's primary before
    // awaiting any reply, so workers compute in parallel.
    pending_.assign(shards_.size(), Pending{});
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard &shard = shards_[s];
        for (std::size_t r = 0; r < shard.replicas.size(); ++r) {
            const std::size_t w = shard.replicas[r];
            if (!workerAlive(w))
                continue;
            std::uint64_t requestId = 0;
            if (sendQuery(w, shard, query, wantFull, requestId)
                    .ok()) {
                if (r != 0) {
                    // The primary was gone before we even sent:
                    // promote the answering replica.
                    ++stats_.failovers;
                    std::swap(shard.replicas[0],
                              shard.replicas[r]);
                }
                pending_[s] = {true, w, requestId};
                break;
            }
        }
    }

    // Phase 2: collect in shard-index order — the fixed order the
    // deterministic merge requires — escalating per shard on
    // failure.
    partials_.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        Shard &shard = shards_[s];
        PartialResult *partial =
            wantFull ? nullptr : &partials_[s];
        AttentionResult *result = wantFull ? fullResult : nullptr;
        bool done = false;
        if (pending_[s].sent) {
            Frame reply;
            NetStatus status = awaitReply(
                pending_[s].worker, pending_[s].requestId,
                effectiveQueryDeadlineLocked(), reply);
            if (status.ok())
                status = decodeShardReply(reply, wantFull,
                                          shard.id, partial,
                                          result);
            if (status.ok()) {
                markAnswered(pending_[s].worker);
                done = true;
            }
        }
        if (!done)
            recoverShard(shard, query, wantFull, partial, result);
    }

    if (!wantFull) {
        std::vector<std::size_t> offsets(shards_.size());
        for (std::size_t s = 0; s < shards_.size(); ++s)
            offsets[s] = shards_[s].offset;
        mergeShardPartials(partials_, offsets, key_.rows(), dims_,
                           *mergedPartial);
    }
}

void
RemoteShardCoordinator::runInto(const Vector &query,
                                AttentionResult &out) const
{
    auto *self = const_cast<RemoteShardCoordinator *>(this);
    std::lock_guard<std::mutex> lock(mu_);
    // Single shard: ask for the full normalized result, mirroring
    // ShardedBackend's S = 1 delegation — bit-identical for every
    // kind, including the quantized ones whose partial roundtrip
    // is not bit-tight.
    if (shards_.size() == 1) {
        self->queryAllShards(query, /*wantFull=*/true, nullptr,
                             &out);
        return;
    }
    thread_local PartialResult merged;
    self->queryAllShards(query, /*wantFull=*/false, &merged,
                         nullptr);
    finalizePartialInto(merged, out);
}

void
RemoteShardCoordinator::runPartialInto(const Vector &query,
                                       PartialResult &out) const
{
    auto *self = const_cast<RemoteShardCoordinator *>(this);
    std::lock_guard<std::mutex> lock(mu_);
    self->queryAllShards(query, /*wantFull=*/false, &out, nullptr);
}

void
RemoteShardCoordinator::append(const Matrix &keyRows,
                               const Matrix &valueRows)
{
    a3Assert(keyRows.rows() == valueRows.rows() &&
                 keyRows.cols() == valueRows.cols(),
             "appended key/value shape mismatch");
    a3Assert(keyRows.cols() == dims_,
             "appended rows must match the task dimension");
    std::lock_guard<std::mutex> lock(mu_);
    key_.appendRows(keyRows);
    value_.appendRows(valueRows);

    // Mirror ShardedBackend::append's layout evolution: fill the
    // last shard to capacity, then open new shards. Changed shards
    // get a fresh generation and a full rebind — workers hold
    // whole slices, so an incremental append frame would buy
    // little and cost a protocol message.
    const std::size_t total = keyRows.rows();
    std::size_t consumed = 0;
    while (consumed < total) {
        Shard &last = shards_.back();
        if (last.rowCount < config_.shardRows) {
            const std::size_t take =
                std::min(config_.shardRows - last.rowCount,
                         total - consumed);
            last.rowCount += take;
            ++last.generation;
            last.replicas.clear();
            last.local.reset();
            consumed += take;
            ensureReplication(last, /*countRebinds=*/false);
        } else {
            Shard shard;
            shard.id = static_cast<std::uint32_t>(shards_.size());
            shard.offset = last.offset + last.rowCount;
            shard.rowCount = std::min(config_.shardRows,
                                      total - consumed);
            shard.generation = 1;
            consumed += shard.rowCount;
            shards_.push_back(std::move(shard));
            ensureReplication(shards_.back(),
                              /*countRebinds=*/false);
        }
    }
}

void
RemoteShardCoordinator::heartbeat()
{
    std::lock_guard<std::mutex> lock(mu_);
    sweepClosedWorkers();
    for (std::size_t w = 0; w < workers_.size(); ++w) {
        Worker &worker = workers_[w];
        if (!workerAlive(w))
            continue;
        HeartbeatPayload beat;
        beat.sequence = ++worker.heartbeatSeq;
        NetStatus status =
            worker.transport->send(encodeHeartbeat(beat, false));
        if (!status.ok()) {
            markDead(w);
            continue;
        }
        const double deadline =
            nowSeconds() + config_.heartbeatTimeoutSeconds;
        bool acked = false;
        Frame frame;
        while (true) {
            const double remaining = deadline - nowSeconds();
            if (remaining <= 0.0)
                break;
            status = worker.transport->recv(frame, remaining);
            if (!status.ok()) {
                if (status.error != NetError::Timeout)
                    markDead(w);
                break;
            }
            if (frame.type == FrameType::HeartbeatAck) {
                HeartbeatPayload ack;
                if (decodeHeartbeat(frame, ack).ok() &&
                    ack.sequence == beat.sequence) {
                    acked = true;
                    break;
                }
                continue;  // an earlier probe's ack
            }
            if (isReplyFrame(frame)) {
                ++stats_.staleReplies;
                continue;
            }
        }
        if (acked)
            markAnswered(w);
        else if (worker.health != WorkerHealth::Dead) {
            ++stats_.timeouts;
            markMiss(w);
        }
    }
    // Re-replicate the shards the dead workers were holding.
    ensureReplicationAll(/*countRebinds=*/true);
}

}  // namespace a3
