#include "serving/session_cache.hpp"

#include <utility>

#include "serving/sharded_backend.hpp"
#include "util/logging.hpp"

namespace a3 {

const char *
bindStatusName(BindStatus status)
{
    switch (status) {
    case BindStatus::AlreadyBound:
        return "already_bound";
    case BindStatus::BoundFresh:
        return "bound_fresh";
    case BindStatus::BoundShared:
        return "bound_shared";
    case BindStatus::BoundRestored:
        return "bound_restored";
    }
    return "unknown";
}

const char *
appendStatusName(AppendStatus status)
{
    switch (status) {
    case AppendStatus::Appended:
        return "appended";
    case AppendStatus::SessionUnbound:
        return "session_unbound";
    }
    return "unknown";
}

SessionCache::SessionCache(std::size_t byteBudget)
{
    config_.byteBudget = byteBudget;
}

SessionCache::SessionCache(SessionCacheConfig config)
    : config_(std::move(config))
{
    a3Assert(config_.store == nullptr || config_.shardRows > 0,
             "a shard store requires shardRows > 0");
}

void
SessionCache::touchLocked(Entry &entry)
{
    lru_.splice(lru_.begin(), lru_, entry.lruPos);
}

void
SessionCache::chargeLocked(Entry &entry)
{
    entry.handles.clear();
    const auto *sharded =
        dynamic_cast<const ShardedBackend *>(entry.backend.get());
    if (sharded == nullptr) {
        entry.bytes = entry.backend->memoryBytes();
        bytesInUse_ += entry.bytes;
        return;
    }
    // Charge each distinct handle once across all bound sessions:
    // only the 0 -> 1 reference pays, so k sessions over one shared
    // frozen shard cost the budget one shard.
    std::size_t charged = 0;
    entry.handles.reserve(sharded->shardCount());
    for (std::size_t s = 0; s < sharded->shardCount(); ++s) {
        const std::shared_ptr<ShardHandle> &handle =
            sharded->shardHandle(s);
        entry.handles.push_back(handle);
        HandleCharge &charge = charges_[handle.get()];
        if (charge.refs++ == 0) {
            charge.bytes = handle->bytes();
            charged += charge.bytes;
        }
    }
    entry.bytes = charged;
    bytesInUse_ += charged;
}

void
SessionCache::releaseLocked(Entry &entry)
{
    if (entry.handles.empty()) {
        // Unsharded entry: its charge is private to the session.
        bytesInUse_ -= entry.bytes;
        entry.bytes = 0;
        return;
    }
    // Sharded entry: a shared handle's charge outlives any one
    // session — bytes leave the budget only on the 1 -> 0 reference
    // edge, mirroring the 0 -> 1 edge that paid them in
    // chargeLocked(). Which session happened to pay first is
    // irrelevant to what the budget releases.
    std::size_t released = 0;
    for (const std::shared_ptr<ShardHandle> &handle : entry.handles) {
        const auto it = charges_.find(handle.get());
        a3Assert(it != charges_.end() && it->second.refs > 0,
                 "handle charge map out of sync");
        if (--it->second.refs == 0) {
            released += it->second.bytes;
            charges_.erase(it);
        }
    }
    bytesInUse_ -= released;
    entry.bytes = 0;
    entry.handles.clear();
}

std::shared_ptr<AttentionBackend>
SessionCache::find(const std::string &session)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    touchLocked(it->second);
    return it->second.backend;
}

SessionHandle
SessionCache::lookupSession(const std::string &session)
{
    std::shared_ptr<AttentionBackend> backend = find(session);
    if (backend == nullptr)
        return SessionHandle();
    return SessionHandle(session, backend);
}

std::shared_ptr<AttentionBackend>
SessionCache::bind(const std::string &session,
                   const EngineConfig &config, Matrix key,
                   Matrix value)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(session);
        if (it != entries_.end()) {
            ++stats_.hits;
            touchLocked(it->second);
            return it->second.backend;
        }
        ++stats_.misses;
    }
    // Preprocess outside the lock: binding is the expensive step and
    // other sessions should keep hitting while it runs. A concurrent
    // bind of the same id is resolved by insertLocked (last wins).
    std::shared_ptr<AttentionBackend> backend =
        makeBackend(config, std::move(key), std::move(value));
    const std::lock_guard<std::mutex> lock(mutex_);
    return insertLocked(session, std::move(backend));
}

BindOutcome
SessionCache::bindSession(const std::string &session,
                          const EngineConfig &config, Matrix key,
                          Matrix value)
{
    BindOutcome outcome;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(session);
        if (it != entries_.end()) {
            ++stats_.hits;
            touchLocked(it->second);
            outcome.status = BindStatus::AlreadyBound;
            outcome.handle = SessionHandle(session, it->second.backend);
            const auto *sharded = dynamic_cast<const ShardedBackend *>(
                it->second.backend.get());
            outcome.shardCount =
                sharded != nullptr ? sharded->shardCount() : 1;
            outcome.logicalBytes = it->second.backend->memoryBytes();
            outcome.chargedBytes = it->second.bytes;
            return outcome;
        }
        ++stats_.misses;
    }

    // Preprocess outside the lock (see bind()).
    std::shared_ptr<AttentionBackend> backend;
    const ShardedBackend *sharded = nullptr;
    if (config_.shardRows > 0) {
        ShardedConfig shardedConfig;
        shardedConfig.shardRows = config_.shardRows;
        shardedConfig.store = config_.store;
        backend = makeShardedBackend(config, std::move(key),
                                     std::move(value), shardedConfig);
        sharded = static_cast<const ShardedBackend *>(backend.get());
    } else {
        backend = makeBackend(config, std::move(key), std::move(value));
    }

    const std::lock_guard<std::mutex> lock(mutex_);
    std::shared_ptr<AttentionBackend> bound =
        insertLocked(session, std::move(backend));
    outcome.handle = SessionHandle(session, bound);
    if (sharded != nullptr && bound.get() == sharded) {
        outcome.shardCount = sharded->shardCount();
        outcome.sharedShards = sharded->bindSharedShards();
        outcome.restoredShards = sharded->bindRestoredShards();
    } else {
        outcome.shardCount = 1;
    }
    outcome.status = outcome.sharedShards > 0 ? BindStatus::BoundShared
                     : outcome.restoredShards > 0
                         ? BindStatus::BoundRestored
                         : BindStatus::BoundFresh;
    outcome.logicalBytes = bound->memoryBytes();
    const auto it = entries_.find(session);
    outcome.chargedBytes =
        it != entries_.end() ? it->second.bytes : 0;
    return outcome;
}

BindOutcome
SessionCache::bindSession(const std::string &session, Matrix key,
                          Matrix value)
{
    return bindSession(session, config_.engine, std::move(key),
                       std::move(value));
}

std::shared_ptr<AttentionBackend>
SessionCache::insert(const std::string &session,
                     std::shared_ptr<AttentionBackend> backend)
{
    a3Assert(backend != nullptr, "cannot insert a null backend");
    const std::lock_guard<std::mutex> lock(mutex_);
    return insertLocked(session, std::move(backend));
}

std::shared_ptr<AttentionBackend>
SessionCache::insertLocked(const std::string &session,
                           std::shared_ptr<AttentionBackend> backend)
{
    const auto it = entries_.find(session);
    if (it != entries_.end()) {
        releaseLocked(it->second);
        it->second.backend = std::move(backend);
        chargeLocked(it->second);
        touchLocked(it->second);
        enforceBudgetLocked(session);
        return it->second.backend;
    }
    lru_.push_front(session);
    Entry entry;
    entry.backend = std::move(backend);
    entry.lruPos = lru_.begin();
    const auto inserted =
        entries_.emplace(session, std::move(entry)).first;
    chargeLocked(inserted->second);
    enforceBudgetLocked(session);
    return inserted->second.backend;
}

bool
SessionCache::append(const std::string &session, const Matrix &keyRows,
                     const Matrix &valueRows)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    if (it == entries_.end())
        return false;
    Entry &entry = it->second;
    releaseLocked(entry);
    entry.backend->append(keyRows, valueRows);
    chargeLocked(entry);
    ++stats_.appends;
    touchLocked(entry);
    enforceBudgetLocked(session);
    return true;
}

AppendOutcome
SessionCache::appendSession(const SessionHandle &handle,
                            const Matrix &keyRows,
                            const Matrix &valueRows)
{
    AppendOutcome outcome;
    if (!handle.valid())
        return outcome;
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(handle.id());
    // A handle issued for an earlier binding must not append to a
    // newer one: compare identities, not just ids.
    if (it == entries_.end() ||
        handle.backend_.lock() != it->second.backend)
        return outcome;
    Entry &entry = it->second;
    releaseLocked(entry);
    entry.backend->append(keyRows, valueRows);
    chargeLocked(entry);
    ++stats_.appends;
    touchLocked(entry);
    enforceBudgetLocked(handle.id());
    outcome.status = AppendStatus::Appended;
    outcome.rowsAppended = keyRows.rows();
    const auto *sharded =
        dynamic_cast<const ShardedBackend *>(entry.backend.get());
    outcome.shardCount =
        sharded != nullptr ? sharded->shardCount() : 1;
    outcome.logicalBytes = entry.backend->memoryBytes();
    outcome.chargedBytes = entry.bytes;
    return outcome;
}

void
SessionCache::enforceBudgetLocked(const std::string &keep)
{
    if (config_.byteBudget == 0)
        return;
    while (bytesInUse_ > config_.byteBudget && !lru_.empty() &&
           lru_.back() != keep) {
        const auto victim = entries_.find(lru_.back());
        a3Assert(victim != entries_.end(),
                 "LRU list out of sync with the entry map");
        releaseLocked(victim->second);
        entries_.erase(victim);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::size_t
SessionCache::peekBytes(const std::string &session) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    return it == entries_.end() ? 0 : it->second.bytes;
}

bool
SessionCache::erase(const std::string &session)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    if (it == entries_.end())
        return false;
    releaseLocked(it->second);
    lru_.erase(it->second.lruPos);
    entries_.erase(it);
    return true;
}

void
SessionCache::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    charges_.clear();
    lru_.clear();
    bytesInUse_ = 0;
}

std::size_t
SessionCache::sessionCount() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
SessionCache::bytesInUse() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return bytesInUse_;
}

SessionCacheStats
SessionCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
SessionCache::resetCounters()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_ = SessionCacheStats{};
}

}  // namespace a3
