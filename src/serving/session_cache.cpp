#include "serving/session_cache.hpp"

#include <utility>

#include "util/logging.hpp"

namespace a3 {

SessionCache::SessionCache(std::size_t byteBudget)
    : byteBudget_(byteBudget)
{
}

void
SessionCache::touchLocked(Entry &entry)
{
    lru_.splice(lru_.begin(), lru_, entry.lruPos);
}

std::shared_ptr<AttentionBackend>
SessionCache::find(const std::string &session)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    if (it == entries_.end()) {
        ++stats_.misses;
        return nullptr;
    }
    ++stats_.hits;
    touchLocked(it->second);
    return it->second.backend;
}

std::shared_ptr<AttentionBackend>
SessionCache::bind(const std::string &session,
                   const EngineConfig &config, Matrix key,
                   Matrix value)
{
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const auto it = entries_.find(session);
        if (it != entries_.end()) {
            ++stats_.hits;
            touchLocked(it->second);
            return it->second.backend;
        }
        ++stats_.misses;
    }
    // Preprocess outside the lock: binding is the expensive step and
    // other sessions should keep hitting while it runs. A concurrent
    // bind of the same id is resolved by insertLocked (last wins).
    std::shared_ptr<AttentionBackend> backend =
        makeBackend(config, std::move(key), std::move(value));
    const std::lock_guard<std::mutex> lock(mutex_);
    return insertLocked(session, std::move(backend));
}

std::shared_ptr<AttentionBackend>
SessionCache::insert(const std::string &session,
                     std::shared_ptr<AttentionBackend> backend)
{
    a3Assert(backend != nullptr, "cannot insert a null backend");
    const std::lock_guard<std::mutex> lock(mutex_);
    return insertLocked(session, std::move(backend));
}

std::shared_ptr<AttentionBackend>
SessionCache::insertLocked(const std::string &session,
                           std::shared_ptr<AttentionBackend> backend)
{
    const auto it = entries_.find(session);
    if (it != entries_.end()) {
        bytesInUse_ -= it->second.bytes;
        it->second.backend = std::move(backend);
        it->second.bytes = it->second.backend->memoryBytes();
        bytesInUse_ += it->second.bytes;
        touchLocked(it->second);
        enforceBudgetLocked(session);
        return it->second.backend;
    }
    lru_.push_front(session);
    Entry entry;
    entry.backend = std::move(backend);
    entry.bytes = entry.backend->memoryBytes();
    entry.lruPos = lru_.begin();
    bytesInUse_ += entry.bytes;
    const auto inserted =
        entries_.emplace(session, std::move(entry)).first;
    enforceBudgetLocked(session);
    return inserted->second.backend;
}

bool
SessionCache::append(const std::string &session, const Matrix &keyRows,
                     const Matrix &valueRows)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    if (it == entries_.end())
        return false;
    Entry &entry = it->second;
    bytesInUse_ -= entry.bytes;
    entry.backend->append(keyRows, valueRows);
    entry.bytes = entry.backend->memoryBytes();
    bytesInUse_ += entry.bytes;
    ++stats_.appends;
    touchLocked(entry);
    enforceBudgetLocked(session);
    return true;
}

void
SessionCache::enforceBudgetLocked(const std::string &keep)
{
    if (byteBudget_ == 0)
        return;
    while (bytesInUse_ > byteBudget_ && !lru_.empty() &&
           lru_.back() != keep) {
        const auto victim = entries_.find(lru_.back());
        a3Assert(victim != entries_.end(),
                 "LRU list out of sync with the entry map");
        bytesInUse_ -= victim->second.bytes;
        entries_.erase(victim);
        lru_.pop_back();
        ++stats_.evictions;
    }
}

std::size_t
SessionCache::peekBytes(const std::string &session) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    return it == entries_.end() ? 0 : it->second.bytes;
}

bool
SessionCache::erase(const std::string &session)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(session);
    if (it == entries_.end())
        return false;
    bytesInUse_ -= it->second.bytes;
    lru_.erase(it->second.lruPos);
    entries_.erase(it);
    return true;
}

void
SessionCache::clear()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    entries_.clear();
    lru_.clear();
    bytesInUse_ = 0;
}

std::size_t
SessionCache::sessionCount() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::size_t
SessionCache::bytesInUse() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return bytesInUse_;
}

SessionCacheStats
SessionCache::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
SessionCache::resetCounters()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_ = SessionCacheStats{};
}

}  // namespace a3
