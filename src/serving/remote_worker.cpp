#include "serving/remote_worker.hpp"

#include <utility>

#include "fixed/packed.hpp"
#include "util/logging.hpp"

namespace a3 {

namespace {

/** ErrorReply for `requestId`; best-effort (send may fail). */
void
sendError(Transport &transport, std::uint64_t requestId,
          NetError code, std::string message)
{
    ErrorReplyPayload reply;
    reply.requestId = requestId;
    reply.code = code;
    reply.message = std::move(message);
    transport.send(encodeErrorReply(reply));
}

}  // namespace

NetStatus
validateRemoteEngineConfig(const EngineConfig &config)
{
    if (config.kind != EngineKind::ExactQuantized &&
        config.kind != EngineKind::ApproxQuantized)
        return NetStatus::success();
    if (config.intBits <= 0 || config.fracBits <= 0)
        return NetStatus::failure(
            NetError::WorkerError,
            "quantization widths must be positive");
    const int word = config.intBits + config.fracBits + 1;
    int lane = 32;
    if (config.packedKv == PackedKvFormat::Int8)
        lane = 8;
    else if (config.packedKv == PackedKvFormat::Int4)
        lane = 4;
    if (word > lane)
        return NetStatus::failure(
            NetError::WorkerError,
            "input word of " + std::to_string(word) +
                " bits exceeds the " + std::to_string(lane) +
                "-bit lane");
    return NetStatus::success();
}

ShardWorker::ShardWorker(std::string name) : name_(std::move(name))
{
}

NetStatus
ShardWorker::serve(Transport &transport)
{
    Frame frame;
    while (true) {
        const NetStatus status = transport.recv(frame, -1.0);
        if (!status.ok()) {
            if (status.error == NetError::BadChecksum) {
                // The frame was fully consumed; the stream is still
                // in sync, so report and keep serving — this is the
                // path a corrupted query retries through.
                sendError(transport, 0, NetError::BadChecksum,
                          status.message);
                continue;
            }
            // Closed, Malformed, BadVersion, Timeout mid-frame:
            // the transport has already poisoned the connection.
            return status;
        }
        NetStatus stop = NetStatus::success();
        if (!handleFrame(transport, frame, stop))
            return stop;
    }
}

bool
ShardWorker::handleFrame(Transport &transport, const Frame &frame,
                         NetStatus &stop)
{
    switch (frame.type) {
    case FrameType::Hello: {
        HelloPayload hello;
        const NetStatus status = decodeHello(frame, hello);
        if (!status.ok()) {
            sendError(transport, 0, status.error, status.message);
            return true;
        }
        HelloPayload ack;
        ack.peer = name_;
        transport.send(encodeHello(ack, /*ack=*/true));
        return true;
    }
    case FrameType::BindShard:
        handleBind(transport, frame);
        return true;
    case FrameType::Query:
        handleQuery(transport, frame);
        return true;
    case FrameType::Heartbeat: {
        HeartbeatPayload beat;
        const NetStatus status = decodeHeartbeat(frame, beat);
        if (!status.ok()) {
            sendError(transport, 0, status.error, status.message);
            return true;
        }
        beat.shardsBound =
            static_cast<std::uint32_t>(shards_.size());
        transport.send(encodeHeartbeat(beat, /*ack=*/true));
        return true;
    }
    case FrameType::Shutdown:
        stop = NetStatus::success();
        return false;
    default:
        // A client-bound frame (acks, replies) arriving at the
        // worker is a protocol violation, but the stream is intact:
        // report and keep serving.
        sendError(transport, 0, NetError::Malformed,
                  std::string("unexpected ") +
                      frameTypeName(frame.type) +
                      " frame at worker");
        return true;
    }
}

void
ShardWorker::handleBind(Transport &transport, const Frame &frame)
{
    BindShardPayload bind;
    NetStatus status = decodeBindShard(frame, bind);
    if (!status.ok()) {
        sendError(transport, 0, status.error, status.message);
        return;
    }
    status = validateRemoteEngineConfig(bind.config);
    if (!status.ok()) {
        sendError(transport, 0, status.error, status.message);
        return;
    }
    BoundShard &slot = shards_[bind.shardId];
    slot.generation = bind.generation;
    slot.backend = makeBackend(bind.config, std::move(bind.key),
                               std::move(bind.value));

    BindAckPayload ack;
    ack.shardId = bind.shardId;
    ack.generation = bind.generation;
    transport.send(encodeBindAck(ack));
}

void
ShardWorker::handleQuery(Transport &transport, const Frame &frame)
{
    QueryPayload query;
    const NetStatus status = decodeQuery(frame, query);
    if (!status.ok()) {
        sendError(transport, 0, status.error, status.message);
        return;
    }
    const auto it = shards_.find(query.shardId);
    if (it == shards_.end()) {
        sendError(transport, query.requestId, NetError::WorkerError,
                  "shard " + std::to_string(query.shardId) +
                      " is not bound");
        return;
    }
    const BoundShard &shard = it->second;
    if (shard.generation != query.generation) {
        sendError(transport, query.requestId, NetError::StaleShard,
                  "shard " + std::to_string(query.shardId) +
                      " is at generation " +
                      std::to_string(shard.generation) + ", not " +
                      std::to_string(query.generation));
        return;
    }
    if (query.query.size() != shard.backend->dims()) {
        sendError(transport, query.requestId, NetError::WorkerError,
                  "query dimension " +
                      std::to_string(query.query.size()) +
                      " does not match the task dimension " +
                      std::to_string(shard.backend->dims()));
        return;
    }
    if (query.wantFull) {
        // Single-shard mode: the full normalized result, exactly
        // what ShardedBackend's S = 1 runInto() delegation returns.
        thread_local ResultReplyPayload reply;
        reply.requestId = query.requestId;
        reply.shardId = query.shardId;
        shard.backend->runInto(query.query, reply.result);
        transport.send(encodeResultReply(reply));
    } else {
        thread_local PartialReplyPayload reply;
        reply.requestId = query.requestId;
        reply.shardId = query.shardId;
        shard.backend->runPartialInto(query.query, reply.partial);
        transport.send(encodePartialReply(reply));
    }
}

InProcessWorker::InProcessWorker(std::string name)
    : worker_(std::move(name))
{
    auto [client, server] = transportPair();
    client_ = std::move(client);
    server_ = std::move(server);
    a3Assert(client_ != nullptr && server_ != nullptr,
             "socketpair construction failed");
    thread_ = std::thread([this] { worker_.serve(*server_); });
}

InProcessWorker::~InProcessWorker()
{
    stop();
}

void
InProcessWorker::stop()
{
    if (server_ != nullptr)
        server_->close();
    if (client_ != nullptr)
        client_->close();
    if (thread_.joinable())
        thread_.join();
}

}  // namespace a3
