/**
 * @file
 * Sharded attention over huge contexts.
 *
 * One backend/engine task caps what a session can hold: the sorted
 * key, the quantized lanes, and every per-query pass are sized by the
 * task's row count. ShardedBackend lifts that cap by partitioning a
 * task's key/value rows into S row-contiguous shards, binding an
 * inner backend per shard (any of the four kinds via makeBackend),
 * fanning queries out across the shards, and merging the per-shard
 * softmax partials with the numerically stable log-sum-exp combine
 * (see PartialResult for the decomposition).
 *
 * Since PR 9 the composite no longer owns its shards: each shard is a
 * refcounted ShardHandle (shard_store.hpp). Two modes:
 *
 *  - Store-less (ShardedConfig::store == nullptr): the legacy layout
 *    — size-balanced partition, private untracked handles, behavior
 *    bit-identical to the owning implementation.
 *  - Store-backed: the partition is *prefix-aligned* — floor(n /
 *    shardRows) full shards plus a remainder tail — so a shard's
 *    identity depends only on its absolute row slice and the binding
 *    config, never on the total session length. Full shards are
 *    acquired through the ShardStore (deduped against live sessions,
 *    restored from spill, or cold-bound); only the mutable tail is
 *    private to this session. When append() fills the tail it is
 *    frozen (compacted + content-addressed), adopted into the store,
 *    and a new tail opens — copy-on-append touches exactly one shard.
 *
 * Parallelism comes from above, not from a borrowed pool: the
 * backend exposes its shards through the AttentionBackend work-unit
 * contract (workUnitCount() / runUnitPartialInto() /
 * mergeUnitsInto()), and AttentionEngine flattens every (query,
 * shard) unit of a batch into one work list — shard partials from
 * many queries share the same pool lanes, with no nested
 * ThreadPool. Direct runInto() calls compute the shards serially on
 * the calling thread.
 *
 * Guarantees:
 *  - S = 1 delegates straight to the wrapped backend, so a sharded
 *    session that fits one shard is bit-identical to an unsharded
 *    one, for every backend kind.
 *  - Shard partials are always merged serially in shard-index order
 *    after the fan-out completes, so results are bit-identical
 *    between serial and engine-parallel fan-out and across thread
 *    counts (the exact-match mode: fixed merge order).
 *  - Shared, spill-restored, and cold-bound shards produce
 *    bit-identical partials (preprocessing is deterministic and the
 *    spill image round-trips state verbatim), so store-backed
 *    results never depend on which tier served a shard.
 *  - Reference shards match the unsharded reference within a small
 *    ULP bound (each weight picks up one exp(m_s - M) scaling and
 *    the value accumulation is reassociated at shard boundaries);
 *    approx/quantized shards are accuracy-bounded against the
 *    unsharded flow because selection and fixed-point sizing are
 *    shard-local.
 *
 * ShardedBackend implements AttentionBackend, so the serving tier —
 * SessionCache byte accounting, BatchScheduler coalescing, the
 * batched AttentionEngine — handles sharded sessions unchanged:
 * memoryBytes() aggregates the shards (logical bytes; the shared-once
 * accounting lives in SessionCache, which sees the handles) and
 * append() routes new rows to the mutable tail.
 */

#ifndef A3_SERVING_SHARDED_BACKEND_HPP
#define A3_SERVING_SHARDED_BACKEND_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "attention/types.hpp"
#include "serving/shard_store.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Partitioning and fan-out knobs of one ShardedBackend. */
struct ShardedConfig
{
    /**
     * Row capacity of one shard (> 0). Binding n rows creates
     * ceil(n / shardRows) shards; append() fills the tail shard to
     * this capacity before opening another.
     */
    std::size_t shardRows = 4096;

    /**
     * Cross-session shard registry; nullptr keeps the legacy
     * store-less behavior (balanced partition, private shards).
     * Non-owning — the store must outlive every backend bound
     * against it.
     */
    ShardStore *store = nullptr;
};

/** Row-sharded composite over refcounted shard handles. */
class ShardedBackend final : public AttentionBackend
{
  public:
    /**
     * Partition (key, value) into ceil(n / config.shardRows) shards.
     * Store-less: size-balanced slices, private handles. Store-backed:
     * prefix-aligned slices with full shards resolved through the
     * store (live -> spill -> cold) and a private mutable tail.
     */
    ShardedBackend(const EngineConfig &inner, Matrix key, Matrix value,
                   ShardedConfig config);

    /** "sharded(<inner name>)", e.g. "sharded(reference)". */
    std::string name() const override;

    /**
     * Answer one query: per-shard partials computed serially on the
     * calling thread, then the fixed-order log-sum-exp merge. With a
     * single shard this delegates to the wrapped backend's runInto()
     * — bit-identical by construction. Row ids in scores, weights,
     * candidates, and kept are global; iterations sums the shards.
     */
    void runInto(const Vector &query,
                 AttentionResult &out) const override;

    /**
     * Work-unit decomposition: one unit per shard when S > 1 (the
     * engine fans the units out and merges them in shard order), one
     * unit total when S = 1 (so the engine keeps the wrapped
     * backend's exact runInto() path — the S = 1 bit-identity
     * guarantee for the quantized kinds).
     */
    std::size_t workUnitCount() const override;
    void runUnitPartialInto(std::size_t unit, const Vector &query,
                            PartialResult &out) const override;
    void mergeUnitsInto(const std::vector<PartialResult> &partials,
                        AttentionResult &out) const override;

    /**
     * Merge the shard partials into one unnormalized partial (global
     * max, summed exp-sum, scaled accumulation) — the full backend
     * contract, so a sharded session can feed any consumer of the
     * partial path. Shards themselves are always the plain kinds
     * (makeBackend), never nested sharded backends.
     */
    void runPartialInto(const Vector &query,
                        PartialResult &out) const override;

    /**
     * Route appended rows to the mutable tail until it reaches
     * shardRows capacity. Store-backed, a full tail freezes into the
     * store (compaction + content key + write-through spill) and a
     * new private tail opens; frozen shards are never touched, which
     * is the copy-on-append guarantee. Global row ids keep ascending
     * across the shard boundary.
     */
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override;

    /** Forward a deadline hint to every shard backend. */
    void queryDeadlineHint(double remainingSeconds) const override;

    /**
     * Sum of the shards' preprocessed bytes — logical footprint,
     * counting a shared shard fully (SessionCache's charged-bytes
     * accounting deduplicates across sessions via the handles).
     */
    std::size_t memoryBytes() const override;

    /** Total rows across the shards. */
    std::size_t rows() const override;

    std::size_t dims() const override { return dims_; }

    /** Shards currently bound. */
    std::size_t shardCount() const { return shards_.size(); }

    /** Inner backend of shard `s` (for tests and introspection). */
    const AttentionBackend &shard(std::size_t s) const;

    /** Refcounted handle of shard `s` (identity = sharing). */
    const std::shared_ptr<ShardHandle> &
    shardHandle(std::size_t s) const;

    /** Global row id of shard `s`'s first row. */
    std::size_t shardOffset(std::size_t s) const;

    /** Shards the initial bind deduped against live sessions. */
    std::size_t bindSharedShards() const { return bindShared_; }

    /** Shards the initial bind restored from the spill tier. */
    std::size_t bindRestoredShards() const { return bindRestored_; }

    const ShardedConfig &config() const { return config_; }

  private:
    /**
     * Fan runPartialInto() across the shards into partials[s] slots
     * of `partials` (resized to shardCount()), serially on the
     * calling thread.
     */
    void computePartials(const Vector &query,
                         std::vector<PartialResult> &partials) const;

    /**
     * Log-sum-exp combine of the shard partials, serially in shard
     * order, into one global-row-id partial.
     */
    void mergePartials(const std::vector<PartialResult> &partials,
                       PartialResult &out) const;

    /** Freeze the tail into the store and swap in the canonical
     *  handle (store-backed mode only). */
    void freezeTail();

    EngineConfig inner_;
    ShardedConfig config_;
    std::vector<std::shared_ptr<ShardHandle>> shards_;
    /** Global row id of each shard's first row. */
    std::vector<std::size_t> offsets_;
    std::size_t dims_ = 0;
    std::size_t bindShared_ = 0;
    std::size_t bindRestored_ = 0;
};

/**
 * Convenience factory mirroring makeBackend(): a sharded backend over
 * inner backends of the configured kind.
 */
std::unique_ptr<AttentionBackend>
makeShardedBackend(const EngineConfig &inner, Matrix key, Matrix value,
                   ShardedConfig config);

}  // namespace a3

#endif  // A3_SERVING_SHARDED_BACKEND_HPP
