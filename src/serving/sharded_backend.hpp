/**
 * @file
 * Sharded attention over huge contexts.
 *
 * One backend/engine task caps what a session can hold: the sorted
 * key, the quantized lanes, and every per-query pass are sized by the
 * task's row count. ShardedBackend lifts that cap by partitioning a
 * task's key/value rows into S row-contiguous, size-balanced shards,
 * binding an inner backend per shard (any of the four kinds via
 * makeBackend), fanning queries out across the shards, and merging
 * the per-shard softmax partials with the numerically stable
 * log-sum-exp combine (see PartialResult for the decomposition).
 *
 * Parallelism comes from above, not from a borrowed pool: the
 * backend exposes its shards through the AttentionBackend work-unit
 * contract (workUnitCount() / runUnitPartialInto() /
 * mergeUnitsInto()), and AttentionEngine flattens every (query,
 * shard) unit of a batch into one work list — shard partials from
 * many queries share the same pool lanes, with no nested
 * ThreadPool. Direct runInto() calls compute the shards serially on
 * the calling thread.
 *
 * Guarantees:
 *  - S = 1 delegates straight to the wrapped backend, so a sharded
 *    session that fits one shard is bit-identical to an unsharded
 *    one, for every backend kind.
 *  - Shard partials are always merged serially in shard-index order
 *    after the fan-out completes, so results are bit-identical
 *    between serial and engine-parallel fan-out and across thread
 *    counts (the exact-match mode: fixed merge order).
 *  - Reference shards match the unsharded reference within a small
 *    ULP bound (each weight picks up one exp(m_s - M) scaling and
 *    the value accumulation is reassociated at shard boundaries);
 *    approx/quantized shards are accuracy-bounded against the
 *    unsharded flow because selection and fixed-point sizing are
 *    shard-local.
 *
 * ShardedBackend implements AttentionBackend, so the serving tier —
 * SessionCache byte accounting, BatchScheduler coalescing, the
 * batched AttentionEngine — handles sharded sessions unchanged:
 * memoryBytes() aggregates the shards and append() routes new rows to
 * the last non-full shard or opens a new one.
 */

#ifndef A3_SERVING_SHARDED_BACKEND_HPP
#define A3_SERVING_SHARDED_BACKEND_HPP

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "attention/types.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Partitioning and fan-out knobs of one ShardedBackend. */
struct ShardedConfig
{
    /**
     * Row capacity of one shard (> 0). Binding n rows creates
     * ceil(n / shardRows) shards with the rows balanced across them;
     * append() fills the last shard to this capacity before opening
     * another.
     */
    std::size_t shardRows = 4096;
};

/** Row-sharded composite over per-shard inner backends. */
class ShardedBackend final : public AttentionBackend
{
  public:
    /**
     * Partition (key, value) into ceil(n / config.shardRows) shards
     * and bind an inner backend per shard through makeBackend(inner).
     */
    ShardedBackend(const EngineConfig &inner, Matrix key, Matrix value,
                   ShardedConfig config);

    /** "sharded(<inner name>)", e.g. "sharded(reference)". */
    std::string name() const override;

    /**
     * Answer one query: per-shard partials computed serially on the
     * calling thread, then the fixed-order log-sum-exp merge. With a
     * single shard this delegates to the wrapped backend's runInto()
     * — bit-identical by construction. Row ids in scores, weights,
     * candidates, and kept are global; iterations sums the shards.
     */
    void runInto(const Vector &query,
                 AttentionResult &out) const override;

    /**
     * Work-unit decomposition: one unit per shard when S > 1 (the
     * engine fans the units out and merges them in shard order), one
     * unit total when S = 1 (so the engine keeps the wrapped
     * backend's exact runInto() path — the S = 1 bit-identity
     * guarantee for the quantized kinds).
     */
    std::size_t workUnitCount() const override;
    void runUnitPartialInto(std::size_t unit, const Vector &query,
                            PartialResult &out) const override;
    void mergeUnitsInto(const std::vector<PartialResult> &partials,
                        AttentionResult &out) const override;

    /**
     * Merge the shard partials into one unnormalized partial (global
     * max, summed exp-sum, scaled accumulation) — the full backend
     * contract, so a sharded session can feed any consumer of the
     * partial path. Shards themselves are always the plain kinds
     * (makeBackend), never nested sharded backends.
     */
    void runPartialInto(const Vector &query,
                        PartialResult &out) const override;

    /**
     * Route appended rows to the last shard until it reaches
     * shardRows capacity, then open new shard(s) for the remainder.
     * Global row ids keep ascending across the shard boundary.
     */
    void append(const Matrix &keyRows,
                const Matrix &valueRows) override;

    /** Sum of the shards' preprocessed bytes. */
    std::size_t memoryBytes() const override;

    /** Total rows across the shards. */
    std::size_t rows() const override;

    std::size_t dims() const override { return dims_; }

    /** Shards currently bound. */
    std::size_t shardCount() const { return shards_.size(); }

    /** Inner backend of shard `s` (for tests and introspection). */
    const AttentionBackend &shard(std::size_t s) const;

    /** Global row id of shard `s`'s first row. */
    std::size_t shardOffset(std::size_t s) const;

    const ShardedConfig &config() const { return config_; }

  private:
    /**
     * Fan runPartialInto() across the shards into partials[s] slots
     * of `partials` (resized to shardCount()), serially on the
     * calling thread.
     */
    void computePartials(const Vector &query,
                         std::vector<PartialResult> &partials) const;

    /**
     * Log-sum-exp combine of the shard partials, serially in shard
     * order, into one global-row-id partial.
     */
    void mergePartials(const std::vector<PartialResult> &partials,
                       PartialResult &out) const;

    EngineConfig inner_;
    ShardedConfig config_;
    std::vector<std::unique_ptr<AttentionBackend>> shards_;
    /** Global row id of each shard's first row. */
    std::vector<std::size_t> offsets_;
    std::size_t dims_ = 0;
};

/**
 * Convenience factory mirroring makeBackend(): a sharded backend over
 * inner backends of the configured kind.
 */
std::unique_ptr<AttentionBackend>
makeShardedBackend(const EngineConfig &inner, Matrix key, Matrix value,
                   ShardedConfig config);

}  // namespace a3

#endif  // A3_SERVING_SHARDED_BACKEND_HPP
