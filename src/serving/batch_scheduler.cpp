#include "serving/batch_scheduler.hpp"

#include <algorithm>
#include <iterator>
#include <memory>
#include <unordered_map>
#include <utility>

#include "util/logging.hpp"

namespace a3 {

BatchScheduler::BatchScheduler(AttentionEngine &engine,
                               SessionCache &cache, std::size_t maxBatch)
    : engine_(engine), cache_(cache), maxBatch_(maxBatch)
{
}

std::uint64_t
BatchScheduler::submit(const std::string &session, Vector query)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const std::uint64_t ticket = nextTicket_++;
    ++stats_.submitted;
    queue_.push_back({ticket, session, std::move(query)});
    return ticket;
}

BatchSchedulerStats
BatchScheduler::stats() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

void
BatchScheduler::resetCounters()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    stats_ = BatchSchedulerStats{};
}

std::size_t
BatchScheduler::pending() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::vector<ServingResult>
BatchScheduler::drain()
{
    // Claim this drain's share of the queue. Tickets are assigned
    // under the same lock, so the claimed slice is ticket-ordered.
    std::vector<PendingRequest> batch;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        const std::size_t take =
            maxBatch_ == 0 ? queue_.size()
                           : std::min(maxBatch_, queue_.size());
        batch.reserve(take);
        std::move(queue_.begin(),
                  queue_.begin() + static_cast<std::ptrdiff_t>(take),
                  std::back_inserter(batch));
        queue_.erase(queue_.begin(),
                     queue_.begin() + static_cast<std::ptrdiff_t>(take));
    }
    if (batch.empty())
        return {};

    // Coalesce per session: one request group per distinct session,
    // groups ordered by each session's first ticket, queries in
    // ticket order within their group. The shared_ptrs pin every
    // backend for the duration of the pass even if the cache evicts
    // the session concurrently.
    std::vector<AttentionRequestGroup> groups;
    std::vector<std::shared_ptr<AttentionBackend>> pinned;
    std::vector<std::string> sessionOf;
    std::vector<std::vector<std::uint64_t>> ticketsOf;
    std::unordered_map<std::string, std::size_t> groupIndex;
    for (PendingRequest &request : batch) {
        const auto found = groupIndex.find(request.session);
        std::size_t g =
            found == groupIndex.end() ? sessionOf.size() : found->second;
        if (g == sessionOf.size()) {
            groupIndex.emplace(request.session, g);
            std::shared_ptr<AttentionBackend> backend =
                cache_.find(request.session);
            if (backend == nullptr) {
                fatal("BatchScheduler: session \"", request.session,
                      "\" is not bound in the cache (bind it, or "
                      "re-bind after eviction, before draining)");
            }
            sessionOf.push_back(request.session);
            ticketsOf.emplace_back();
            groups.push_back({backend.get(), {}});
            pinned.push_back(std::move(backend));
        }
        groups[g].queries.push_back(std::move(request.query));
        ticketsOf[g].push_back(request.ticket);
    }

    // Local results: each drain owns its buffers, so concurrent
    // drain() calls from different worker threads never share state
    // (the claimed queue slices are already disjoint).
    std::vector<std::vector<AttentionResult>> groupResults;
    engine_.runGroupsInto(groups, groupResults);

    std::vector<ServingResult> completions;
    completions.reserve(batch.size());
    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (std::size_t q = 0; q < ticketsOf[g].size(); ++q) {
            completions.push_back({ticketsOf[g][q], sessionOf[g],
                                   std::move(groupResults[g][q])});
        }
    }
    std::sort(completions.begin(), completions.end(),
              [](const ServingResult &a, const ServingResult &b) {
                  return a.ticket < b.ticket;
              });
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.drains;
        stats_.answered += completions.size();
        stats_.groups += groups.size();
    }
    return completions;
}

}  // namespace a3
