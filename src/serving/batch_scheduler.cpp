#include "serving/batch_scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <utility>

#include "util/logging.hpp"

namespace a3 {

namespace {

double
nowSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

}  // namespace

const char *
servingErrorName(ServingError error)
{
    switch (error) {
    case ServingError::None:
        return "none";
    case ServingError::SessionUnbound:
        return "session_unbound";
    case ServingError::DeadlineExpired:
        return "deadline_expired";
    }
    return "unknown";
}

BatchScheduler::BatchScheduler(AttentionEngine &engine,
                               SessionCache &cache,
                               std::size_t maxBatch,
                               AdmissionPolicy policy)
    : engine_(engine), cache_(cache), maxBatch_(maxBatch),
      policy_(policy)
{
}

AdmissionOutcome
BatchScheduler::submit(const std::string &session, Vector query)
{
    return submit(session, std::move(query), SubmitOptions{});
}

AdmissionOutcome
BatchScheduler::submit(const SessionHandle &session, Vector query)
{
    return submit(session, std::move(query), SubmitOptions{});
}

AdmissionOutcome
BatchScheduler::submit(const SessionHandle &session, Vector query,
                       const SubmitOptions &options)
{
    a3Assert(session.valid(),
             "cannot submit against an invalid session handle");
    return submit(session.id(), std::move(query), options);
}

AdmissionOutcome
BatchScheduler::submit(const std::string &session, Vector query,
                       const SubmitOptions &options)
{
    // Estimated cost before taking the scheduler lock: peekBytes
    // holds only the cache's own lock, touches neither LRU order nor
    // hit/miss counters, and reads 0 for an unbound session.
    const std::size_t cost = policy_.maxQueuedCostBytes != 0
                                 ? cache_.peekBytes(session)
                                 : 0;
    const double submitSeconds = nowSeconds();

    const std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.submitted;
    if (policy_.maxQueueDepth != 0 &&
        pendingCount_ >= policy_.maxQueueDepth) {
        ++counters_.rejectedQueueFull;
        return {AdmissionDecision::RejectedQueueFull, 0};
    }
    // The adaptive bound: a queue deeper than target-latency / p95
    // service time cannot meet the target however it is ordered.
    // adaptiveDepth_ stays 0 (inactive) until drains have landed
    // service samples, so a cold scheduler admits everything.
    if (policy_.targetLatencySeconds > 0.0 && adaptiveDepth_ != 0 &&
        pendingCount_ >= adaptiveDepth_) {
        ++counters_.rejectedAdaptiveDepth;
        return {AdmissionDecision::RejectedAdaptiveDepth, 0};
    }
    // Look up without inserting: a shed submit must not leave a
    // session entry behind (state is only materialized on admission,
    // and drain() reclaims it once the session idles again).
    auto it = sessions_.find(session);
    if (policy_.maxPendingPerSession != 0 && it != sessions_.end() &&
        it->second.pendingTotal >= policy_.maxPendingPerSession) {
        ++counters_.rejectedSessionCap;
        return {AdmissionDecision::RejectedSessionCap, 0};
    }
    // The cost budget never rejects into an empty queue: a session
    // costlier than the whole budget must still make progress
    // (mirrors the cache's never-evict-the-newest-bind rule).
    if (policy_.maxQueuedCostBytes != 0 && pendingCount_ > 0 &&
        queuedCostBytes_ + cost > policy_.maxQueuedCostBytes) {
        ++counters_.rejectedCostBudget;
        return {AdmissionDecision::RejectedCostBudget, 0};
    }
    // A deadline the queue already makes unmeetable is shed now, not
    // after it has waited its budget out: the requests ahead of it
    // alone are expected to take pendingCount_ × p95 service time.
    // Never rejects into an empty queue, and inactive until the
    // service reservoir has samples.
    if (options.deadlineSeconds > 0.0 && serviceP95_ > 0.0 &&
        pendingCount_ > 0 &&
        static_cast<double>(pendingCount_) * serviceP95_ >
            options.deadlineSeconds) {
        ++counters_.rejectedDeadlineUnmeetable;
        return {AdmissionDecision::RejectedDeadlineUnmeetable, 0};
    }

    if (it == sessions_.end())
        it = sessions_.emplace(session, SessionState{}).first;
    SessionState &state = it->second;
    ClassLane *lane = nullptr;
    for (ClassLane &candidate : state.lanes) {
        if (candidate.klass == options.requestClass) {
            lane = &candidate;
            break;
        }
    }
    if (lane == nullptr) {
        state.lanes.push_back(ClassLane{options.requestClass, {}, 0});
        lane = &state.lanes.back();
    }
    const std::uint64_t ticket = nextTicket_++;
    if (state.pendingTotal == 0)
        activeOrder_.push_back(session);
    lane->pending.push_back({ticket, std::move(query), submitSeconds,
                             cost, options.deadlineSeconds});
    ++state.pendingTotal;
    ++pendingCount_;
    queuedCostBytes_ += cost;
    return {AdmissionDecision::Admitted, ticket};
}

void
BatchScheduler::setSessionWeight(const std::string &session,
                                 std::size_t weight)
{
    a3Assert(weight > 0, "session weight must be positive");
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(session);
    if (it == sessions_.end()) {
        // Only a non-default weight is worth materializing state
        // for; idle default-weight sessions hold no entry at all.
        if (weight != 1)
            sessions_.emplace(session, SessionState{}).first
                ->second.weight = weight;
        return;
    }
    it->second.weight = weight;
    if (weight == 1 && it->second.pendingTotal == 0)
        sessions_.erase(it);
}

void
BatchScheduler::setClassWeight(const std::string &klass,
                               std::size_t weight)
{
    a3Assert(weight > 0, "class weight must be positive");
    const std::lock_guard<std::mutex> lock(mutex_);
    if (weight == 1)
        classWeights_.erase(klass);
    else
        classWeights_[klass] = weight;
}

std::size_t
BatchScheduler::classWeightLocked(const std::string &klass) const
{
    const auto it = classWeights_.find(klass);
    return it == classWeights_.end() ? 1 : it->second;
}

std::size_t
BatchScheduler::classWeight(const std::string &klass) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return classWeightLocked(klass);
}

std::size_t
BatchScheduler::adaptiveQueueDepth() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return adaptiveDepth_;
}

std::size_t
BatchScheduler::sessionWeight(const std::string &session) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(session);
    return it == sessions_.end() ? 1 : it->second.weight;
}

BatchSchedulerStats
BatchScheduler::stats() const
{
    // Copy the counters and raw reservoir windows under the lock,
    // then sort and interpolate after releasing it: a monitoring
    // thread polling stats() must not stall submit()/drain() claims
    // for the duration of three sorts, inflating the very queue-wait
    // tails it reports.
    static constexpr double kFractions[3] = {0.50, 0.95, 0.99};
    std::unique_lock<std::mutex> lock(mutex_);
    BatchSchedulerStats out = counters_;
    out.adaptiveQueueDepth = adaptiveDepth_;
    out.requestServiceP95 = serviceP95_;
    const LatencyReservoir waitWindow = queueWait_;
    const LatencyReservoir drainWindow = drainService_;
    const LatencyReservoir groupWindow = groupService_;
    lock.unlock();
    double wait[3];
    double drain[3];
    double group[3];
    waitWindow.percentiles(kFractions, 3, wait);
    drainWindow.percentiles(kFractions, 3, drain);
    groupWindow.percentiles(kFractions, 3, group);
    out.queueWaitP50 = wait[0];
    out.queueWaitP95 = wait[1];
    out.queueWaitP99 = wait[2];
    out.drainServiceP50 = drain[0];
    out.drainServiceP95 = drain[1];
    out.drainServiceP99 = drain[2];
    out.groupServiceP50 = group[0];
    out.groupServiceP95 = group[1];
    out.groupServiceP99 = group[2];
    return out;
}

void
BatchScheduler::resetCounters()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    counters_ = BatchSchedulerStats{};
    queueWait_.clear();
    drainService_.clear();
    groupService_.clear();
    // requestService_ / adaptiveDepth_ / serviceP95_ survive on
    // purpose: they are the admission signal, not a usage counter —
    // clearing them on a bench's post-warm-up reset would blind the
    // adaptive bound exactly when it has just been learned.
}

std::size_t
BatchScheduler::pending() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return pendingCount_;
}

std::size_t
BatchScheduler::pendingFor(const std::string &session) const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = sessions_.find(session);
    return it == sessions_.end() ? 0 : it->second.pendingTotal;
}

std::size_t
BatchScheduler::queuedCostBytes() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return queuedCostBytes_;
}

std::size_t
BatchScheduler::trackedSessions() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    return sessions_.size();
}

std::vector<ServingResult>
BatchScheduler::drain()
{
    const double claimSeconds = nowSeconds();

    // Claim this drain's share of the queue by weighted round-robin:
    // each pass over the pending sessions hands every session's
    // class lane up to session-weight × class-weight slots,
    // repeating until the batch is full or the queue empty, so a
    // truncated drain interleaves sessions instead of answering the
    // globally oldest tickets first. Within one lane the FIFO
    // preserves ticket order, and tickets are assigned under the
    // same lock, so the per-lane claim order is the per-lane ticket
    // order. A claimed request whose queue wait has already blown
    // its deadline is shed here with a typed DeadlineExpired
    // completion — it consumes no batch slot, so expired backlog
    // cannot crowd live work out of the pass.
    std::vector<ServingResult> completions;
    std::vector<PendingRequest> batch;
    std::vector<std::string> batchSession;
    {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (pendingCount_ == 0)
            return {};
        const std::size_t take =
            maxBatch_ == 0 ? pendingCount_
                           : std::min(maxBatch_, pendingCount_);
        batch.reserve(take);
        batchSession.reserve(take);
        // Rotate the round-robin start across drains so the leftover
        // slots of a non-divisible maxBatch do not always land on the
        // earliest-arrived session.
        const std::size_t start = static_cast<std::size_t>(
            drainRounds_ % activeOrder_.size());
        ++drainRounds_;
        // Sheds drop pendingCount_ below the precomputed take, so
        // the loop also stops once the queue is empty.
        while (batch.size() < take && pendingCount_ > 0) {
            bool progress = false;
            for (std::size_t i = 0;
                 i < activeOrder_.size() && batch.size() < take &&
                 pendingCount_ > 0;
                 ++i) {
                const std::string &name =
                    activeOrder_[(start + i) % activeOrder_.size()];
                SessionState &state = sessions_[name];
                for (ClassLane &lane : state.lanes) {
                    const std::size_t slots =
                        state.weight * classWeightLocked(lane.klass);
                    std::size_t claimed = 0;
                    while (claimed < slots &&
                           !lane.pending.empty() &&
                           batch.size() < take) {
                        PendingRequest &request =
                            lane.pending.front();
                        // The ordering guarantee across truncation
                        // boundaries: a lane's tickets leave the
                        // queue strictly ascending, drain after
                        // drain.
                        a3Assert(
                            request.ticket > lane.lastClaimedTicket,
                            "session \"", name,
                            "\" would be answered out of ticket "
                            "order");
                        lane.lastClaimedTicket = request.ticket;
                        queuedCostBytes_ -= request.costBytes;
                        --state.pendingTotal;
                        --pendingCount_;
                        progress = true;
                        const double wait =
                            claimSeconds - request.submitSeconds;
                        if (request.deadlineSeconds > 0.0 &&
                            wait > request.deadlineSeconds) {
                            ++counters_.shedDeadlineExpired;
                            queueWait_.add(std::max(0.0, wait));
                            completions.push_back(
                                {request.ticket, name, {},
                                 ServingError::DeadlineExpired});
                            lane.pending.pop_front();
                            continue;  // no batch slot consumed
                        }
                        batchSession.push_back(name);
                        batch.push_back(std::move(request));
                        lane.pending.pop_front();
                        ++claimed;
                    }
                    if (batch.size() >= take)
                        break;
                }
            }
            a3Assert(progress,
                     "round-robin made no progress with requests "
                     "still pending");
        }
        // Retire drained sessions: drop them from the round-robin
        // order and — unless a non-default weight must persist —
        // reclaim their state entirely, so a server minting fresh
        // session ids per conversation does not grow sessions_
        // without bound. Tickets are globally monotonic, so a
        // re-materialized entry (lastClaimedTicket back at 0) still
        // satisfies the per-lane ordering assert.
        activeOrder_.erase(
            std::remove_if(activeOrder_.begin(), activeOrder_.end(),
                           [this](const std::string &name) {
                               const auto entry =
                                   sessions_.find(name);
                               if (entry->second.pendingTotal != 0)
                                   return false;
                               if (entry->second.weight == 1)
                                   sessions_.erase(entry);
                               return true;
                           }),
            activeOrder_.end());
    }

    // Coalesce per session: one request group per distinct session,
    // groups ordered by first claim, queries in ticket order within
    // their group (the claim order). The shared_ptrs pin every
    // backend for the duration of the pass even if the cache evicts
    // the session concurrently. A session unbound at lookup time
    // (evicted between submit and drain, or its backend mid-rebind)
    // completes its claimed requests with a typed SessionUnbound
    // error instead of aborting the server.
    constexpr std::size_t kUnbound =
        std::numeric_limits<std::size_t>::max();
    completions.reserve(completions.size() + batch.size());
    std::vector<AttentionRequestGroup> groups;
    std::vector<std::shared_ptr<AttentionBackend>> pinned;
    std::vector<std::string> sessionOf;
    std::vector<std::vector<std::uint64_t>> ticketsOf;
    /** Minimum remaining deadline budget per group; 0 = none. */
    std::vector<double> groupBudget;
    std::unordered_map<std::string, std::size_t> groupIndex;
    for (std::size_t r = 0; r < batch.size(); ++r) {
        const std::string &session = batchSession[r];
        const auto found = groupIndex.find(session);
        std::size_t g;
        if (found != groupIndex.end()) {
            g = found->second;
        } else {
            std::shared_ptr<AttentionBackend> backend =
                cache_.find(session);
            if (backend == nullptr) {
                g = kUnbound;
            } else {
                g = sessionOf.size();
                sessionOf.push_back(session);
                ticketsOf.emplace_back();
                groupBudget.push_back(0.0);
                groups.push_back({backend.get(), {}});
                pinned.push_back(std::move(backend));
            }
            groupIndex.emplace(session, g);
        }
        if (g == kUnbound) {
            completions.push_back({batch[r].ticket, session, {},
                                   ServingError::SessionUnbound});
            continue;
        }
        if (batch[r].deadlineSeconds > 0.0) {
            // Expired requests were shed at claim time, so the
            // remaining budget is positive here.
            const double remaining =
                batch[r].deadlineSeconds -
                (claimSeconds - batch[r].submitSeconds);
            if (remaining > 0.0 &&
                (groupBudget[g] == 0.0 || remaining < groupBudget[g]))
                groupBudget[g] = remaining;
        }
        groups[g].queries.push_back(std::move(batch[r].query));
        ticketsOf[g].push_back(batch[r].ticket);
    }

    // Publish each group's tightest remaining budget to its backend
    // before the pass: a remote-coordinated session caps its
    // per-query worker waits at the request's actual remaining time
    // instead of the coordinator's static queryDeadlineSeconds, so a
    // request that already spent most of its budget queueing cannot
    // stall the drain for the full static deadline on a sick worker.
    std::size_t hintedGroups = 0;
    for (std::size_t g = 0; g < groups.size(); ++g) {
        if (groupBudget[g] > 0.0) {
            groups[g].backend->queryDeadlineHint(groupBudget[g]);
            ++hintedGroups;
        }
    }

    // Local results: each drain owns its buffers, so concurrent
    // drain() calls from different worker threads never share state
    // (the claimed requests are already disjoint). The engine hook
    // writes each group's service time into its own slot — one
    // writer per group, per the GroupCompletionHook contract.
    std::vector<double> groupSeconds(groups.size(), 0.0);
    std::vector<std::vector<AttentionResult>> groupResults;
    const double passStart = nowSeconds();
    engine_.runGroupsInto(groups, groupResults,
                          [&groupSeconds](std::size_t g,
                                          double seconds) {
                              groupSeconds[g] = seconds;
                          });
    const double passSeconds = nowSeconds() - passStart;

    for (std::size_t g = 0; g < groups.size(); ++g) {
        for (std::size_t q = 0; q < ticketsOf[g].size(); ++q) {
            completions.push_back({ticketsOf[g][q], sessionOf[g],
                                   std::move(groupResults[g][q]),
                                   ServingError::None});
        }
    }
    std::sort(completions.begin(), completions.end(),
              [](const ServingResult &a, const ServingResult &b) {
                  return a.ticket < b.ticket;
              });
    // Flattened work units this pass scheduled: each group's queries
    // × its backend's decomposition (one per shard for a sharded
    // session). Also the denominator-side signal for the adaptive
    // depth: per-request service time, one sample per drain.
    std::size_t passUnits = 0;
    std::size_t executed = 0;
    for (const AttentionRequestGroup &group : groups) {
        passUnits +=
            group.backend->workUnitCount() * group.queries.size();
        executed += group.queries.size();
    }

    {
        const std::lock_guard<std::mutex> lock(mutex_);
        counters_.answered += completions.size();
        counters_.groups += groups.size();
        counters_.workUnits += passUnits;
        counters_.deadlineHintedGroups += hintedGroups;
        // Queue wait is measured submit-to-claim; a submit that raced
        // in between our clock read and the claim lock can look
        // sub-zero by the race window, so clamp at 0.
        for (const PendingRequest &request : batch) {
            queueWait_.add(std::max(
                0.0, claimSeconds - request.submitSeconds));
        }
        for (const double seconds : groupSeconds)
            groupService_.add(seconds);
        // A drain that shed its entire claim ran no engine pass;
        // keep the service reservoirs clean of its ~0s sample.
        if (executed > 0) {
            ++counters_.drains;
            drainService_.add(passSeconds);
            requestService_.add(passSeconds /
                                static_cast<double>(executed));
            serviceP95_ = requestService_.percentile(0.95);
            if (policy_.targetLatencySeconds > 0.0 &&
                serviceP95_ > 0.0) {
                adaptiveDepth_ = std::max(
                    policy_.minAdaptiveQueueDepth,
                    static_cast<std::size_t>(
                        policy_.targetLatencySeconds / serviceP95_));
            }
        }
    }
    return completions;
}

}  // namespace a3
