#include "serving/partial_merge.hpp"

#include <algorithm>
#include <cmath>

#include "kernels/kernels.hpp"
#include "util/logging.hpp"

namespace a3 {

std::vector<std::size_t>
balancedShardSizes(std::size_t n, std::size_t shardRows)
{
    a3Assert(n > 0, "cannot partition an empty task");
    a3Assert(shardRows > 0, "shardRows must be positive");
    const std::size_t shardCount =
        (n + shardRows - 1) / shardRows;
    const std::size_t base = n / shardCount;
    const std::size_t extra = n % shardCount;
    std::vector<std::size_t> sizes(shardCount, base);
    for (std::size_t s = 0; s < extra; ++s)
        ++sizes[s];
    return sizes;
}

void
mergeShardPartials(const std::vector<PartialResult> &partials,
                   const std::vector<std::size_t> &offsets,
                   std::size_t totalRows, std::size_t dims,
                   PartialResult &out)
{
    a3Assert(!partials.empty(), "nothing to merge");
    a3Assert(partials.size() == offsets.size(),
             "one offset per partial");
    const Kernels &k = activeKernels();

    // Global max first: the shard holding it gets scale exp(0) = 1
    // exactly, so its terms pass through the merge untouched.
    float maxScore = partials.front().maxScore;
    for (const PartialResult &p : partials)
        maxScore = std::max(maxScore, p.maxScore);

    out.scores.assign(totalRows, 0.0f);
    out.expWeights.assign(totalRows, 0.0f);
    out.candidates.clear();
    out.kept.clear();
    out.iterations = 0;
    out.maxScore = maxScore;
    out.expSum = 0.0f;
    out.accum.assign(dims, 0.0f);

    // Serial merge in shard-index order, regardless of how the
    // partials were computed — the fixed order that makes parallel,
    // serial, and remote fan-out bit-identical.
    for (std::size_t s = 0; s < partials.size(); ++s) {
        const PartialResult &p = partials[s];
        const std::size_t offset = offsets[s];
        const std::size_t local = p.expWeights.size();
        a3Assert(offset + local <= totalRows,
                 "shard partial overruns the task rows");
        a3Assert(p.accum.size() == dims,
                 "shard partial dimension mismatch");
        const float scale = std::exp(p.maxScore - maxScore);

        std::copy(p.scores.begin(), p.scores.end(),
                  out.scores.begin() +
                      static_cast<std::ptrdiff_t>(offset));
        std::copy(p.expWeights.begin(), p.expWeights.end(),
                  out.expWeights.begin() +
                      static_cast<std::ptrdiff_t>(offset));
        k.scale(out.expWeights.data() + offset, local, scale);
        k.axpy(scale, p.accum.data(), out.accum.data(), dims);
        out.expSum += p.expSum * scale;
        out.iterations += p.iterations;

        const auto globalId = [offset](std::uint32_t id) {
            return static_cast<std::uint32_t>(offset + id);
        };
        for (const std::uint32_t id : p.candidates)
            out.candidates.push_back(globalId(id));
        for (const std::uint32_t id : p.kept)
            out.kept.push_back(globalId(id));
    }
}

}  // namespace a3
