/**
 * @file
 * Request coalescing for the streaming serving layer.
 *
 * Clients submit (session, query) requests from any thread; each gets
 * a monotonically increasing ticket. drain() coalesces the pending
 * requests of each session into one AttentionRequestGroup — so every
 * query against the same context shares the preprocessed backend the
 * SessionCache holds — and drives AttentionEngine::runGroups over the
 * groups in one batched, multi-threaded pass.
 *
 * Determinism guarantee: drain() returns results sorted by ticket
 * (i.e. submission order), and every result is bit-identical to a
 * sequential backend.run(query) — the engine guarantee — regardless
 * of batch composition, coalescing, cache hits, appends between
 * drains, or the engine's thread count.
 */

#ifndef A3_SERVING_BATCH_SCHEDULER_HPP
#define A3_SERVING_BATCH_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <vector>

#include "attention/types.hpp"
#include "engine/engine.hpp"
#include "serving/session_cache.hpp"

namespace a3 {

/** One completed request: its ticket, session, and answer. */
struct ServingResult
{
    std::uint64_t ticket = 0;
    std::string session;
    AttentionResult result;
};

/** Monotonic usage counters of one BatchScheduler. */
struct BatchSchedulerStats
{
    /** Requests enqueued through submit(). */
    std::uint64_t submitted = 0;

    /** Completions returned by drain(). */
    std::uint64_t answered = 0;

    /** drain() calls that executed a non-empty batch. */
    std::uint64_t drains = 0;

    /** Coalesced request groups across those drains (one per
     * distinct session per drain); answered / groups is the
     * coalescing factor. */
    std::uint64_t groups = 0;
};

/** Coalescing batch executor over cached per-session backends. */
class BatchScheduler
{
  public:
    /**
     * @param engine batched executor driving the passes (borrowed).
     * @param cache session cache requests resolve against (borrowed).
     * @param maxBatch cap on requests answered per drain(); 0 = all
     *        pending. Excess requests stay queued for the next drain.
     */
    BatchScheduler(AttentionEngine &engine, SessionCache &cache,
                   std::size_t maxBatch = 0);

    /**
     * Enqueue one request against a session and return its ticket.
     * Thread-safe; tickets increase in submission order. The session
     * must be bound in the cache by the time drain() runs.
     */
    std::uint64_t submit(const std::string &session, Vector query);

    /** Requests currently queued. */
    std::size_t pending() const;

    /**
     * Answer up to maxBatch queued requests in one batched engine
     * pass and return the completions sorted by ticket. Sessions are
     * looked up in the cache once per drain (holding the backend
     * alive across any concurrent eviction); an unbound session is a
     * fatal error naming the session id. Thread-safe: concurrent
     * drain() calls claim disjoint queue slices and own their result
     * buffers (each call returns its own slice's completions).
     */
    std::vector<ServingResult> drain();

    /** Snapshot of the usage counters. */
    BatchSchedulerStats stats() const;

    /**
     * Zero the usage counters; queued requests and the ticket clock
     * are untouched. Benches and the CI regression gate reset after
     * warm-up so the reported numbers are steady-state.
     */
    void resetCounters();

  private:
    struct PendingRequest
    {
        std::uint64_t ticket = 0;
        std::string session;
        Vector query;
    };

    AttentionEngine &engine_;
    SessionCache &cache_;
    std::size_t maxBatch_ = 0;

    mutable std::mutex mutex_;
    std::uint64_t nextTicket_ = 1;
    std::deque<PendingRequest> queue_;
    BatchSchedulerStats stats_;
};

}  // namespace a3

#endif  // A3_SERVING_BATCH_SCHEDULER_HPP
