/**
 * @file
 * Admission-controlled, weighted-fair request coalescing for the
 * streaming serving layer.
 *
 * Clients submit (session, query) requests from any thread; each
 * admitted request gets a monotonically increasing ticket, and each
 * shed request gets a typed AdmissionOutcome naming the limit that
 * rejected it (queue depth, per-session cap, or estimated-cost
 * budget — see serving/admission.hpp). drain() forms its batch by
 * weighted round-robin over the sessions with pending work — each
 * pass hands every session up to its weight in slots — so one chatty
 * or sharded-huge session cannot starve the rest when maxBatch
 * truncates the drain. The claimed requests are coalesced into one
 * AttentionRequestGroup per session and driven through
 * AttentionEngine::runGroupsInto in one batched, multi-threaded pass.
 *
 * Determinism guarantee: drain() returns results sorted by ticket,
 * requests within a session are always claimed in ticket order
 * across any sequence of truncated drains (asserted) — so drains
 * called from one thread, or sequentially, answer each session in
 * ticket order; concurrent drain() calls own disjoint claims and
 * may return their batches in either order — and every answer is
 * bit-identical to a sequential backend.run(query) — the engine
 * guarantee — regardless of batch composition, weights, admission
 * policy, coalescing, cache hits, appends between drains, or the
 * engine's thread count.
 *
 * Telemetry: per-request queue wait (submit to claim) and per-drain /
 * per-group service times are recorded into fixed-size
 * LatencyReservoir windows and surfaced as p50/p95/p99 through
 * stats(), so overload shows up as measured tail latency rather than
 * anecdotes.
 */

#ifndef A3_SERVING_BATCH_SCHEDULER_HPP
#define A3_SERVING_BATCH_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "attention/types.hpp"
#include "engine/engine.hpp"
#include "serving/admission.hpp"
#include "serving/session_cache.hpp"
#include "util/stats.hpp"

namespace a3 {

/**
 * Why a drained request carries no answer. Remote-reachable
 * conditions (a session evicted between submit and drain, a backend
 * being rebound during failover) surface here as typed errors; only
 * programmer-contract violations still abort.
 */
enum class ServingError
{
    None = 0,

    /** The session was not bound in the cache at drain time. */
    SessionUnbound,
};

/** Stable lowercase name ("none", "session_unbound"). */
const char *servingErrorName(ServingError error);

/** One completed request: its ticket, session, and answer. */
struct ServingResult
{
    std::uint64_t ticket = 0;
    std::string session;
    AttentionResult result;

    /** ServingError::None iff `result` holds an answer. */
    ServingError error = ServingError::None;

    bool ok() const { return error == ServingError::None; }
};

/**
 * Usage counters and latency percentiles of one BatchScheduler.
 * Counters are monotonic since construction or resetCounters();
 * percentiles are computed over the retained reservoir windows at
 * stats() time and are 0 until the first samples land.
 */
struct BatchSchedulerStats
{
    /** submit() calls, admitted or shed. */
    std::uint64_t submitted = 0;

    /** Completions returned by drain(). */
    std::uint64_t answered = 0;

    /** drain() calls that executed a non-empty batch. */
    std::uint64_t drains = 0;

    /** Coalesced request groups across those drains (one per
     * distinct session per drain); answered / groups is the
     * coalescing factor. */
    std::uint64_t groups = 0;

    /** Submits shed because the queue held maxQueueDepth requests. */
    std::uint64_t rejectedQueueFull = 0;

    /** Submits shed by a session's maxPendingPerSession cap. */
    std::uint64_t rejectedSessionCap = 0;

    /** Submits shed by the maxQueuedCostBytes budget. */
    std::uint64_t rejectedCostBudget = 0;

    /** Total shed submits; submitted - rejected() were admitted. */
    std::uint64_t rejected() const
    {
        return rejectedQueueFull + rejectedSessionCap +
               rejectedCostBudget;
    }

    /** Seconds from submit() to the drain that claimed the request. */
    double queueWaitP50 = 0.0;
    double queueWaitP95 = 0.0;
    double queueWaitP99 = 0.0;

    /** Seconds one drain spent in the batched engine pass. */
    double drainServiceP50 = 0.0;
    double drainServiceP95 = 0.0;
    double drainServiceP99 = 0.0;

    /** Seconds from pass start until one session group completed. */
    double groupServiceP50 = 0.0;
    double groupServiceP95 = 0.0;
    double groupServiceP99 = 0.0;
};

/**
 * Admission-controlled, weighted-fair coalescing batch executor over
 * cached per-session backends.
 */
class BatchScheduler
{
  public:
    /**
     * @param engine batched executor driving the passes (borrowed).
     * @param cache session cache requests resolve against (borrowed).
     * @param maxBatch cap on requests answered per drain(); 0 = all
     *        pending. Excess requests stay queued for the next drain.
     * @param policy load-shedding limits evaluated on every submit();
     *        the default admits everything.
     */
    BatchScheduler(AttentionEngine &engine, SessionCache &cache,
                   std::size_t maxBatch = 0,
                   AdmissionPolicy policy = AdmissionPolicy());

    /**
     * Enqueue one request against a session, or shed it per the
     * admission policy. Thread-safe; tickets of admitted requests
     * increase in admission order. The session must be bound in the
     * cache by the time drain() runs (and already bound at submit()
     * for the cost budget to see its bytes — an unbound session's
     * estimated cost is 0).
     */
    AdmissionOutcome submit(const std::string &session, Vector query);

    /**
     * Weighted-round-robin share of `session`: up to `weight`
     * requests per scheduling pass while other sessions wait (>= 1;
     * every session defaults to 1). Takes effect at the next drain();
     * the weight persists even while the session has no pending work.
     */
    void setSessionWeight(const std::string &session,
                          std::size_t weight);

    /** Current weight of `session` (1 unless set). */
    std::size_t sessionWeight(const std::string &session) const;

    /** The admission policy evaluated by submit(). */
    const AdmissionPolicy &policy() const { return policy_; }

    /** Requests currently queued. */
    std::size_t pending() const;

    /** Requests currently queued for one session. */
    std::size_t pendingFor(const std::string &session) const;

    /** Summed estimated cost (bytes) of the queued requests. */
    std::size_t queuedCostBytes() const;

    /**
     * Sessions currently holding scheduler state: pending work or a
     * non-default weight. Fully drained default-weight sessions are
     * reclaimed, so a server minting fresh session ids per
     * conversation does not grow the scheduler without bound.
     */
    std::size_t trackedSessions() const;

    /**
     * Claim up to maxBatch queued requests by weighted round-robin
     * over the pending sessions, answer them in one batched engine
     * pass, and return the completions sorted by ticket. Sessions are
     * looked up in the cache once per drain (holding the backend
     * alive across any concurrent eviction); requests of a session
     * not bound at drain time complete with
     * ServingError::SessionUnbound instead of aborting — the caller
     * re-binds and resubmits. Thread-safe: concurrent
     * drain() calls claim disjoint requests and own their result
     * buffers. Within one session, requests are claimed in ticket
     * order — a truncated drain never answers a session's later
     * ticket before an earlier one still queued (asserted).
     */
    std::vector<ServingResult> drain();

    /** Snapshot of counters plus reservoir percentiles. */
    BatchSchedulerStats stats() const;

    /**
     * Zero the usage counters and latency reservoirs; queued
     * requests, session weights, and the ticket clock are untouched.
     * Benches and the CI regression gate reset after warm-up so the
     * reported numbers are steady-state.
     */
    void resetCounters();

  private:
    struct PendingRequest
    {
        std::uint64_t ticket = 0;
        Vector query;
        /** Steady-clock submit time, for the queue-wait reservoir. */
        double submitSeconds = 0.0;
        /** Estimated cost charged against maxQueuedCostBytes. */
        std::size_t costBytes = 0;
    };

    /** Per-session FIFO plus its scheduling state. */
    struct SessionState
    {
        std::deque<PendingRequest> pending;
        std::size_t weight = 1;
        /**
         * Last ticket handed to a drain, persisted across drains to
         * assert the per-session ordering guarantee over truncation
         * boundaries.
         */
        std::uint64_t lastClaimedTicket = 0;
    };

    /** Reservoir windows: large enough for stable p99s, small enough
     *  to stay a fixed-size footprint per scheduler. */
    static constexpr std::size_t kQueueWaitWindow = 4096;
    static constexpr std::size_t kDrainServiceWindow = 1024;
    static constexpr std::size_t kGroupServiceWindow = 4096;

    AttentionEngine &engine_;
    SessionCache &cache_;
    std::size_t maxBatch_ = 0;
    AdmissionPolicy policy_;

    mutable std::mutex mutex_;
    std::uint64_t nextTicket_ = 1;
    std::unordered_map<std::string, SessionState> sessions_;
    /** Sessions with pending work, ordered by first-pending arrival;
     *  the weighted round-robin iterates this. */
    std::vector<std::string> activeOrder_;
    /** Drains executed, rotating the round-robin start so truncation
     *  leftovers do not always favor the earliest-arrived session. */
    std::uint64_t drainRounds_ = 0;
    std::size_t pendingCount_ = 0;
    std::size_t queuedCostBytes_ = 0;
    BatchSchedulerStats counters_;
    LatencyReservoir queueWait_{kQueueWaitWindow};
    LatencyReservoir drainService_{kDrainServiceWindow};
    LatencyReservoir groupService_{kGroupServiceWindow};
};

}  // namespace a3

#endif  // A3_SERVING_BATCH_SCHEDULER_HPP
