/**
 * @file
 * Admission-controlled, weighted-fair request coalescing for the
 * streaming serving layer.
 *
 * Clients submit (session, query) requests from any thread; each
 * admitted request gets a monotonically increasing ticket, and each
 * shed request gets a typed AdmissionOutcome naming the limit that
 * rejected it (queue depth, per-session cap, estimated-cost budget,
 * adaptive depth, or an unmeetable deadline — see
 * serving/admission.hpp). Requests may carry a per-request deadline
 * and a request class (SubmitOptions): a claimed request whose queue
 * wait already blew its deadline is shed at drain time with a typed
 * ServingError::DeadlineExpired completion instead of being
 * executed, and when AdmissionPolicy::targetLatencySeconds is set
 * the effective queue depth adapts to target-latency /
 * observed-p95-service-time (the per-request service reservoir is
 * the signal). drain() forms its batch by weighted round-robin over
 * the sessions with pending work — each pass hands every session's
 * class lane up to session-weight × class-weight slots — so one
 * chatty or sharded-huge session (or one low-priority class) cannot
 * starve the rest when maxBatch truncates the drain. The claimed
 * requests are coalesced into one AttentionRequestGroup per session
 * and driven through AttentionEngine::runGroupsInto in one batched,
 * multi-threaded pass that flattens every (query, shard) work unit
 * onto the engine's lanes.
 *
 * Determinism guarantee: drain() returns results sorted by ticket,
 * requests within a session's class lane are always claimed in
 * ticket order across any sequence of truncated drains (asserted; a
 * single-class workload reduces to per-session ticket order) — so
 * drains called from one thread, or sequentially, answer each lane
 * in ticket order; concurrent drain() calls own disjoint claims and
 * may return their batches in either order — and every answer is
 * bit-identical to a sequential backend.run(query) — the engine
 * guarantee — regardless of batch composition, weights, admission
 * policy, deadlines, coalescing, cache hits, appends between
 * drains, or the engine's thread count.
 *
 * Telemetry: per-request queue wait (submit to claim) and per-drain /
 * per-group service times are recorded into fixed-size
 * LatencyReservoir windows and surfaced as p50/p95/p99 through
 * stats(), so overload shows up as measured tail latency rather than
 * anecdotes.
 */

#ifndef A3_SERVING_BATCH_SCHEDULER_HPP
#define A3_SERVING_BATCH_SCHEDULER_HPP

#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "attention/types.hpp"
#include "engine/engine.hpp"
#include "serving/admission.hpp"
#include "serving/session_cache.hpp"
#include "util/stats.hpp"

namespace a3 {

/**
 * Why a drained request carries no answer. Remote-reachable
 * conditions (a session evicted between submit and drain, a backend
 * being rebound during failover) surface here as typed errors; only
 * programmer-contract violations still abort.
 */
enum class ServingError
{
    None = 0,

    /** The session was not bound in the cache at drain time. */
    SessionUnbound,

    /** The request's queue wait exceeded its deadline before a
     *  drain claimed it; shed unexecuted. */
    DeadlineExpired,
};

/** Stable lowercase name ("none", "session_unbound",
 *  "deadline_expired"). */
const char *servingErrorName(ServingError error);

/**
 * Per-request submit() knobs beyond the session and query. The
 * defaults reproduce the plain submit(session, query) behavior: no
 * deadline, default request class.
 */
struct SubmitOptions
{
    /**
     * Latency budget in seconds from submit() to execution; 0 = no
     * deadline. A queued request whose wait has already exceeded
     * this when a drain claims it is shed with a
     * ServingError::DeadlineExpired completion, and a submit whose
     * deadline provably cannot be met (queued work ahead × observed
     * p95 per-request service time already over budget) is rejected
     * up front with RejectedDeadlineUnmeetable.
     */
    double deadlineSeconds = 0.0;

    /**
     * Request class for weighted scheduling: within one session,
     * each distinct class gets its own FIFO lane, and a drain pass
     * hands a lane up to session-weight × class-weight slots (see
     * setClassWeight). The empty string is the default class.
     */
    std::string requestClass;
};

/** One completed request: its ticket, session, and answer. */
struct ServingResult
{
    std::uint64_t ticket = 0;
    std::string session;
    AttentionResult result;

    /** ServingError::None iff `result` holds an answer. */
    ServingError error = ServingError::None;

    bool ok() const { return error == ServingError::None; }
};

/**
 * Usage counters and latency percentiles of one BatchScheduler.
 * Counters are monotonic since construction or resetCounters();
 * percentiles are computed over the retained reservoir windows at
 * stats() time and are 0 until the first samples land.
 */
struct BatchSchedulerStats
{
    /** submit() calls, admitted or shed. */
    std::uint64_t submitted = 0;

    /** Completions returned by drain(). */
    std::uint64_t answered = 0;

    /** drain() calls that executed a non-empty batch. */
    std::uint64_t drains = 0;

    /** Coalesced request groups across those drains (one per
     * distinct session per drain); answered / groups is the
     * coalescing factor. */
    std::uint64_t groups = 0;

    /** Submits shed because the queue held maxQueueDepth requests. */
    std::uint64_t rejectedQueueFull = 0;

    /** Submits shed by a session's maxPendingPerSession cap. */
    std::uint64_t rejectedSessionCap = 0;

    /** Submits shed by the maxQueuedCostBytes budget. */
    std::uint64_t rejectedCostBudget = 0;

    /** Submits shed by the adaptive queue-depth bound (derived from
     *  targetLatencySeconds / observed p95 service time). */
    std::uint64_t rejectedAdaptiveDepth = 0;

    /** Submits shed because their own deadline was already
     *  unmeetable given the queued work ahead of them. */
    std::uint64_t rejectedDeadlineUnmeetable = 0;

    /** Queued requests shed at drain time because their wait had
     *  blown their deadline (ServingError::DeadlineExpired
     *  completions). Not part of rejected(): these were admitted. */
    std::uint64_t shedDeadlineExpired = 0;

    /** Flattened (query, shard) work units executed across the
     *  drains; workUnits / answered is the mean decomposition
     *  factor the engine scheduled at. */
    std::uint64_t workUnits = 0;

    /** Request groups that carried a deadline into the engine pass:
     *  before each pass, every group holding >= 1 deadline request
     *  gets its minimum remaining budget published to the backend
     *  via queryDeadlineHint() (remote coordinators tighten their
     *  per-query waits to it instead of the static config). */
    std::uint64_t deadlineHintedGroups = 0;

    /** Total shed submits; submitted - rejected() were admitted. */
    std::uint64_t rejected() const
    {
        return rejectedQueueFull + rejectedSessionCap +
               rejectedCostBudget + rejectedAdaptiveDepth +
               rejectedDeadlineUnmeetable;
    }

    /**
     * Effective queue-depth bound at snapshot time: 0 while the
     * adaptive bound is disabled or still unlearned, else
     * max(minAdaptiveQueueDepth, targetLatencySeconds / p95). A
     * signal, not a counter — resetCounters() leaves it (and the
     * service reservoir feeding it) alone so a bench warm-up reset
     * does not blind admission.
     */
    std::size_t adaptiveQueueDepth = 0;

    /** Observed p95 of per-request service time (seconds), the
     *  adaptive-depth and deadline-unmeetable signal; 0 until
     *  enough drains have landed samples. */
    double requestServiceP95 = 0.0;

    /** Seconds from submit() to the drain that claimed the request. */
    double queueWaitP50 = 0.0;
    double queueWaitP95 = 0.0;
    double queueWaitP99 = 0.0;

    /** Seconds one drain spent in the batched engine pass. */
    double drainServiceP50 = 0.0;
    double drainServiceP95 = 0.0;
    double drainServiceP99 = 0.0;

    /** Seconds from pass start until one session group completed. */
    double groupServiceP50 = 0.0;
    double groupServiceP95 = 0.0;
    double groupServiceP99 = 0.0;
};

/**
 * Admission-controlled, weighted-fair coalescing batch executor over
 * cached per-session backends.
 */
class BatchScheduler
{
  public:
    /**
     * @param engine batched executor driving the passes (borrowed).
     * @param cache session cache requests resolve against (borrowed).
     * @param maxBatch cap on requests answered per drain(); 0 = all
     *        pending. Excess requests stay queued for the next drain.
     * @param policy load-shedding limits evaluated on every submit();
     *        the default admits everything.
     */
    BatchScheduler(AttentionEngine &engine, SessionCache &cache,
                   std::size_t maxBatch = 0,
                   AdmissionPolicy policy = AdmissionPolicy());

    /**
     * Enqueue one request against a session, or shed it per the
     * admission policy. Thread-safe; tickets of admitted requests
     * increase in admission order. The session must be bound in the
     * cache by the time drain() runs (and already bound at submit()
     * for the cost budget to see its bytes — an unbound session's
     * estimated cost is 0).
     */
    AdmissionOutcome submit(const std::string &session, Vector query);

    /**
     * submit() with per-request options: a deadline (shed-on-expiry
     * plus the up-front unmeetable check) and/or a request class
     * (its own FIFO lane, weighted by setClassWeight). The
     * default-constructed options reproduce the plain overload.
     */
    AdmissionOutcome submit(const std::string &session, Vector query,
                            const SubmitOptions &options);

    /**
     * Typed submits against a SessionHandle from
     * SessionCache::bindSession()/lookupSession() — the preferred
     * surface: a handle names a *binding*, not just an id, so the
     * request provably targets a session the caller has seen bound.
     * An invalid (default-constructed) handle is rejected like an
     * unbound session would be at drain time.
     */
    AdmissionOutcome submit(const SessionHandle &session, Vector query);
    AdmissionOutcome submit(const SessionHandle &session, Vector query,
                            const SubmitOptions &options);

    /**
     * Weighted-round-robin share of `session`: up to `weight`
     * requests per scheduling pass while other sessions wait (>= 1;
     * every session defaults to 1). Takes effect at the next drain();
     * the weight persists even while the session has no pending work.
     */
    void setSessionWeight(const std::string &session,
                          std::size_t weight);

    /** Current weight of `session` (1 unless set). */
    std::size_t sessionWeight(const std::string &session) const;

    /**
     * Weighted share of one request class, across every session: a
     * drain pass hands each session's lane for `klass` up to
     * session-weight × class-weight slots (>= 1; every class
     * defaults to 1, including the default empty-string class).
     * Takes effect at the next drain().
     */
    void setClassWeight(const std::string &klass, std::size_t weight);

    /** Current weight of request class `klass` (1 unless set). */
    std::size_t classWeight(const std::string &klass) const;

    /**
     * Effective adaptive queue-depth bound: 0 while disabled
     * (policy.targetLatencySeconds unset) or unlearned (no service
     * samples yet), else max(minAdaptiveQueueDepth,
     * targetLatencySeconds / observed-p95-service-time), re-derived
     * after every drain.
     */
    std::size_t adaptiveQueueDepth() const;

    /** The admission policy evaluated by submit(). */
    const AdmissionPolicy &policy() const { return policy_; }

    /** Requests currently queued. */
    std::size_t pending() const;

    /** Requests currently queued for one session. */
    std::size_t pendingFor(const std::string &session) const;

    /** Summed estimated cost (bytes) of the queued requests. */
    std::size_t queuedCostBytes() const;

    /**
     * Sessions currently holding scheduler state: pending work or a
     * non-default weight. Fully drained default-weight sessions are
     * reclaimed, so a server minting fresh session ids per
     * conversation does not grow the scheduler without bound.
     */
    std::size_t trackedSessions() const;

    /**
     * Claim up to maxBatch queued requests by weighted round-robin
     * over the pending sessions, answer them in one batched engine
     * pass, and return the completions sorted by ticket. Sessions are
     * looked up in the cache once per drain (holding the backend
     * alive across any concurrent eviction); requests of a session
     * not bound at drain time complete with
     * ServingError::SessionUnbound instead of aborting — the caller
     * re-binds and resubmits. Thread-safe: concurrent
     * drain() calls claim disjoint requests and own their result
     * buffers. Within one session, requests are claimed in ticket
     * order — a truncated drain never answers a session's later
     * ticket before an earlier one still queued (asserted).
     */
    std::vector<ServingResult> drain();

    /** Snapshot of counters plus reservoir percentiles. */
    BatchSchedulerStats stats() const;

    /**
     * Zero the usage counters and latency reservoirs — including the
     * deadline/adaptive shed counters; queued requests, session and
     * class weights, the ticket clock, and the adaptive-depth signal
     * (the per-request service reservoir and the derived bound) are
     * untouched — the last so a bench warm-up reset does not blind
     * admission. Benches and the CI regression gate reset after
     * warm-up so the reported numbers are steady-state.
     */
    void resetCounters();

  private:
    struct PendingRequest
    {
        std::uint64_t ticket = 0;
        Vector query;
        /** Steady-clock submit time, for the queue-wait reservoir. */
        double submitSeconds = 0.0;
        /** Estimated cost charged against maxQueuedCostBytes. */
        std::size_t costBytes = 0;
        /** Latency budget; 0 = none. */
        double deadlineSeconds = 0.0;
    };

    /** One request class's FIFO within a session. */
    struct ClassLane
    {
        std::string klass;
        std::deque<PendingRequest> pending;
        /**
         * Last ticket handed to a drain, persisted across drains to
         * assert the per-lane ordering guarantee over truncation
         * boundaries.
         */
        std::uint64_t lastClaimedTicket = 0;
    };

    /** Per-session class lanes plus scheduling state. */
    struct SessionState
    {
        /** Lanes in first-use order; most sessions hold exactly one
         *  (the default class). */
        std::vector<ClassLane> lanes;
        /** Pending requests across the lanes. */
        std::size_t pendingTotal = 0;
        std::size_t weight = 1;
    };

    /** Reservoir windows: large enough for stable p99s, small enough
     *  to stay a fixed-size footprint per scheduler. */
    static constexpr std::size_t kQueueWaitWindow = 4096;
    static constexpr std::size_t kDrainServiceWindow = 1024;
    static constexpr std::size_t kGroupServiceWindow = 4096;
    /** Per-request service samples (one per drain) feeding the
     *  adaptive depth; smaller than the wait window because one
     *  sample summarizes a whole drain. */
    static constexpr std::size_t kRequestServiceWindow = 512;

    /** classWeight() without taking mutex_ (callers hold it). */
    std::size_t classWeightLocked(const std::string &klass) const;

    AttentionEngine &engine_;
    SessionCache &cache_;
    std::size_t maxBatch_ = 0;
    AdmissionPolicy policy_;

    mutable std::mutex mutex_;
    std::uint64_t nextTicket_ = 1;
    std::unordered_map<std::string, SessionState> sessions_;
    /** Per-class scheduling weights (absent = 1). */
    std::unordered_map<std::string, std::size_t> classWeights_;
    /** Sessions with pending work, ordered by first-pending arrival;
     *  the weighted round-robin iterates this. */
    std::vector<std::string> activeOrder_;
    /** Drains executed, rotating the round-robin start so truncation
     *  leftovers do not always favor the earliest-arrived session. */
    std::uint64_t drainRounds_ = 0;
    std::size_t pendingCount_ = 0;
    std::size_t queuedCostBytes_ = 0;
    /** Adaptive depth signal, persisted across resetCounters(). */
    std::size_t adaptiveDepth_ = 0;
    double serviceP95_ = 0.0;
    BatchSchedulerStats counters_;
    LatencyReservoir queueWait_{kQueueWaitWindow};
    LatencyReservoir drainService_{kDrainServiceWindow};
    LatencyReservoir groupService_{kGroupServiceWindow};
    LatencyReservoir requestService_{kRequestServiceWindow};
};

}  // namespace a3

#endif  // A3_SERVING_BATCH_SCHEDULER_HPP
