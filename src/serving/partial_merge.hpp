/**
 * @file
 * Shared shard layout and partial-merge helpers.
 *
 * The fixed-order log-sum-exp combine of per-shard softmax partials
 * (see PartialResult for the decomposition) is the determinism
 * anchor of every sharded execution mode: ShardedBackend's
 * in-process fan-out, and RemoteShardCoordinator's fan-out over
 * worker processes, both merge through this one function — which is
 * what makes remote results bit-identical to local ones, including
 * runs where a worker died mid-query and a replica or local rebind
 * supplied the partial (the merge only sees *which* partials, never
 * *where* they were computed).
 *
 * balancedShardSizes() is the matching layout half: both backends
 * must slice rows identically or the per-shard partials would
 * differ before the merge even runs.
 */

#ifndef A3_SERVING_PARTIAL_MERGE_HPP
#define A3_SERVING_PARTIAL_MERGE_HPP

#include <cstddef>
#include <vector>

#include "attention/types.hpp"

namespace a3 {

/**
 * Row counts of the ceil(n / shardRows) row-contiguous shards a
 * fresh bind partitions `n` rows into: sizes differ by at most one
 * (the first n % S shards are one row larger) and never exceed
 * shardRows. This is the layout contract ShardedBackend and
 * RemoteShardCoordinator share.
 */
std::vector<std::size_t> balancedShardSizes(std::size_t n,
                                            std::size_t shardRows);

/**
 * Log-sum-exp combine of per-shard partials, serially in shard
 * order, into one partial over global row ids. partials[s] covers
 * the rows starting at offsets[s]; its local row count is its
 * expWeights length. `totalRows` and `dims` size the output
 * buffers. The merge order is fixed regardless of how (or where)
 * the partials were computed — the exact-match determinism
 * contract.
 */
void mergeShardPartials(const std::vector<PartialResult> &partials,
                        const std::vector<std::size_t> &offsets,
                        std::size_t totalRows, std::size_t dims,
                        PartialResult &out);

}  // namespace a3

#endif  // A3_SERVING_PARTIAL_MERGE_HPP
