/**
 * @file
 * Content addressing and the on-disk image of one frozen shard.
 *
 * A frozen shard's identity is a 128-bit content key: two independent
 * FNV-1a-64 streams over a fingerprint of the binding EngineConfig
 * followed by the raw float bit patterns of the shard's key/value
 * rows. Preprocessing is deterministic (append == rebind, packed ==
 * word32, restore == cold bind are all pinned by tests), so equal
 * keys mean bit-identical backends — which is what lets a ShardStore
 * dedup identical frozen shards across sessions and trust a spilled
 * image to stand in for a cold bind.
 *
 * The image layout (all little-endian via net/wire.hpp):
 *
 *   u32  magic "A3SP"
 *   u16  version
 *   u8   engine kind
 *   u8   resolved packed K/V format (0 for the float kinds)
 *   u8   intBits, u8 fracBits
 *   u64  content key hi, u64 content key lo
 *   u64  rows, u64 dims
 *   u64  payload length
 *   u32  FNV-1a payload checksum
 *   ...  payload: AttentionBackend::serializeState() bytes
 *
 * decodeShardImage() rejects (returns nullptr) on any mismatch —
 * magic, version, config fingerprint, expected key, checksum, or a
 * malformed payload — and the caller falls back to a cold bind; a
 * bad image is a cache miss, never an error.
 */

#ifndef A3_SERVING_SHARD_IMAGE_HPP
#define A3_SERVING_SHARD_IMAGE_HPP

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** 128-bit content address of one frozen shard. */
struct ShardKey
{
    std::uint64_t hi = 0;
    std::uint64_t lo = 0;

    bool operator==(const ShardKey &other) const
    {
        return hi == other.hi && lo == other.lo;
    }

    /** 32 lowercase hex digits — the spill file stem. */
    std::string hex() const;

    /** Parse a hex() string; false on malformed input. */
    static bool parseHex(const std::string &text, ShardKey &out);
};

/** Hash functor for ShardKey-keyed maps. */
struct ShardKeyHash
{
    std::size_t operator()(const ShardKey &key) const
    {
        return static_cast<std::size_t>(
            key.hi ^ (key.lo * 0x9e3779b97f4a7c15ull));
    }
};

/**
 * Incremental content-key state: two FNV-1a-64 streams with distinct
 * offset bases over the same byte sequence. Kept running per mutable
 * tail shard and extended on every append, so a tail that freezes
 * after k appends gets exactly the key a fresh bind of the
 * concatenated rows would get (valid because append == rebind is
 * bit-identical).
 */
class ShardKeyHasher
{
  public:
    /** Mix raw bytes into both streams. */
    void mixBytes(const std::uint8_t *data, std::size_t size);

    /**
     * Mix the config fingerprint: engine kind plus exactly the knobs
     * that shape the preprocessed state of that kind (quantization
     * widths and resolved lane layout for the quantized kinds,
     * approximation knobs for the approx kinds). Knobs irrelevant to
     * the kind are excluded so, e.g., two ExactFloat configs with
     * different approx presets still share shards.
     */
    void mixConfig(const EngineConfig &config);

    /**
     * Mix `count` key/value rows starting at `firstRow`: for each
     * row, the key row's float bit patterns then the value row's, in
     * row order.
     */
    void mixTaskRows(const Matrix &key, const Matrix &value,
                     std::size_t firstRow, std::size_t count);

    /** The 128-bit key of everything mixed so far. */
    ShardKey key() const { return {hi_, lo_}; }

  private:
    /** Two FNV-1a-64 streams; the second starts from a decorrelated
     *  offset so the pair behaves as one 128-bit hash. */
    std::uint64_t hi_ = 14695981039346656037ull;
    std::uint64_t lo_ = 14695981039346656037ull ^ 0x9e3779b97f4a7c15ull;
};

constexpr std::uint32_t kShardImageMagic = 0x41335350u;  // "A3SP"
constexpr std::uint16_t kShardImageVersion = 1;

/**
 * Serialize `backend` (which must be serializable()) into the
 * versioned, checksummed image format above.
 */
std::vector<std::uint8_t>
encodeShardImage(const EngineConfig &config, const ShardKey &key,
                 const AttentionBackend &backend);

/**
 * Decode an image back into a backend of config.kind. Returns
 * nullptr on any header/checksum/payload mismatch; the restored
 * backend answers queries bit-identically to the serialized one.
 */
std::unique_ptr<AttentionBackend>
decodeShardImage(const EngineConfig &config, const ShardKey &expected,
                 const std::uint8_t *data, std::size_t size);

}  // namespace a3

#endif  // A3_SERVING_SHARD_IMAGE_HPP
