#include "serving/sharded_backend.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "kernels/kernels.hpp"
#include "serving/partial_merge.hpp"
#include "util/logging.hpp"

namespace a3 {

ShardedBackend::ShardedBackend(const EngineConfig &inner, Matrix key,
                               Matrix value, ShardedConfig config)
    : inner_(inner), config_(config)
{
    a3Assert(config_.shardRows > 0, "shardRows must be positive");
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    a3Assert(key.rows() > 0 && key.cols() > 0,
             "attention task must be non-empty");
    dims_ = key.cols();

    if (config_.store == nullptr) {
        // Legacy store-less layout: row-contiguous, size-balanced
        // partition (the layout contract shared with
        // RemoteShardCoordinator via balancedShardSizes). Balanced
        // sizes never exceed shardRows, so append() capacity math
        // stays valid. Private handles: no hashing, no sharing.
        const std::vector<std::size_t> sizes =
            balancedShardSizes(key.rows(), config_.shardRows);
        std::size_t offset = 0;
        shards_.reserve(sizes.size());
        offsets_.reserve(sizes.size());
        for (const std::size_t take : sizes) {
            shards_.push_back(ShardHandle::bindPrivate(
                inner_, key, value, offset, take));
            offsets_.push_back(offset);
            offset += take;
        }
        return;
    }

    // Store-backed: prefix-aligned partition. Shard boundaries are a
    // function of absolute row position alone (multiples of
    // shardRows), so two sessions extending the same document prefix
    // slice it into byte-identical full shards — the precondition for
    // content-addressed sharing. Full shards resolve through the
    // store; the remainder (possibly empty) becomes the private
    // mutable tail.
    const std::size_t n = key.rows();
    const std::size_t fullShards = n / config_.shardRows;
    const std::size_t remainder = n % config_.shardRows;
    shards_.reserve(fullShards + (remainder > 0 ? 1 : 0));
    offsets_.reserve(shards_.capacity());
    std::size_t offset = 0;
    for (std::size_t s = 0; s < fullShards; ++s) {
        ShardSource source = ShardSource::ColdBound;
        shards_.push_back(config_.store->acquire(
            inner_, key, value, offset, config_.shardRows, &source));
        if (source == ShardSource::LiveShared)
            ++bindShared_;
        else if (source == ShardSource::SpillRestored)
            ++bindRestored_;
        offsets_.push_back(offset);
        offset += config_.shardRows;
    }
    if (remainder > 0 || fullShards == 0) {
        shards_.push_back(ShardHandle::bindTail(inner_, key, value,
                                                offset, remainder));
        offsets_.push_back(offset);
    }
}

std::string
ShardedBackend::name() const
{
    return "sharded(" + shards_.front()->backend().name() + ")";
}

std::size_t
ShardedBackend::rows() const
{
    return offsets_.back() + shards_.back()->rows();
}

std::size_t
ShardedBackend::memoryBytes() const
{
    std::size_t total = 0;
    for (const auto &shard : shards_)
        total += shard->bytes();
    return total;
}

const AttentionBackend &
ShardedBackend::shard(std::size_t s) const
{
    a3Assert(s < shards_.size(), "shard index ", s, " out of ",
             shards_.size());
    return shards_[s]->backend();
}

const std::shared_ptr<ShardHandle> &
ShardedBackend::shardHandle(std::size_t s) const
{
    a3Assert(s < shards_.size(), "shard index ", s, " out of ",
             shards_.size());
    return shards_[s];
}

std::size_t
ShardedBackend::shardOffset(std::size_t s) const
{
    a3Assert(s < offsets_.size(), "shard index ", s, " out of ",
             offsets_.size());
    return offsets_[s];
}

void
ShardedBackend::computePartials(
    const Vector &query, std::vector<PartialResult> &partials) const
{
    partials.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s)
        shards_[s]->backend().runPartialInto(query, partials[s]);
}

std::size_t
ShardedBackend::workUnitCount() const
{
    // A single shard stays a single unit so the engine routes the
    // query through the wrapped backend's exact runInto() path.
    return shards_.size();
}

void
ShardedBackend::runUnitPartialInto(std::size_t unit,
                                   const Vector &query,
                                   PartialResult &out) const
{
    a3Assert(unit < shards_.size(), "work unit ", unit, " out of ",
             shards_.size());
    shards_[unit]->backend().runPartialInto(query, out);
}

void
ShardedBackend::mergeUnitsInto(
    const std::vector<PartialResult> &partials,
    AttentionResult &out) const
{
    a3Assert(partials.size() == shards_.size(),
             "expected one partial per shard");
    if (shards_.size() == 1) {
        finalizePartialInto(partials.front(), out);
        return;
    }
    thread_local PartialResult merged;
    mergePartials(partials, merged);
    finalizePartialInto(merged, out);
}

void
ShardedBackend::mergePartials(
    const std::vector<PartialResult> &partials,
    PartialResult &out) const
{
    // The shared fixed-order log-sum-exp combine — the same code
    // RemoteShardCoordinator merges worker partials through, which
    // is what keeps remote results bit-identical to local ones.
    mergeShardPartials(partials, offsets_, rows(), dims_, out);
}

void
ShardedBackend::runInto(const Vector &query, AttentionResult &out) const
{
    // Degenerate single shard: the wrapped backend IS the task, so
    // delegating keeps every kind — including the quantized paths,
    // whose partial roundtrip is not bit-tight — bit-identical to an
    // unsharded backend.
    if (shards_.size() == 1) {
        shards_.front()->backend().runInto(query, out);
        return;
    }
    thread_local PartialResult merged;
    runPartialInto(query, merged);
    finalizePartialInto(merged, out);
}

void
ShardedBackend::runPartialInto(const Vector &query,
                               PartialResult &out) const
{
    if (shards_.size() == 1) {
        shards_.front()->backend().runPartialInto(query, out);
        return;
    }
    // Per-thread partial slots keep the steady-state query path
    // allocation-free (each slot's buffers regrow only when the task
    // shape grows), while staying thread-compatible across
    // concurrent queries: every calling thread owns its own slots,
    // and the pool lanes only write into the caller's distinct
    // elements. Shards are never themselves sharded (makeBackend
    // produces only the four plain kinds), so the buffer cannot be
    // re-entered.
    thread_local std::vector<PartialResult> partials;
    computePartials(query, partials);
    mergePartials(partials, out);
}

void
ShardedBackend::queryDeadlineHint(double remainingSeconds) const
{
    for (const auto &shard : shards_)
        shard->backend().queryDeadlineHint(remainingSeconds);
}

void
ShardedBackend::freezeTail()
{
    std::shared_ptr<ShardHandle> &tail = shards_.back();
    tail->freeze();
    // The store may hand back another session's identical shard; the
    // swap releases ours and the sessions converge on one copy.
    tail = config_.store->adoptFrozen(std::move(tail));
}

void
ShardedBackend::append(const Matrix &keyRows, const Matrix &valueRows)
{
    a3Assert(keyRows.rows() == valueRows.rows() &&
                 keyRows.cols() == valueRows.cols(),
             "appended key/value shape mismatch");
    a3Assert(keyRows.cols() == dims_,
             "appended rows must match the task dimension");

    const bool storeBacked = config_.store != nullptr;
    const std::size_t total = keyRows.rows();
    std::size_t consumed = 0;
    while (consumed < total) {
        ShardHandle &last = *shards_.back();
        const std::size_t lastRows = last.rows();
        if (lastRows < config_.shardRows && !last.frozen()) {
            // Fill the mutable tail to capacity first.
            const std::size_t take = std::min(
                config_.shardRows - lastRows, total - consumed);
            last.appendRows(keyRows.rowSlice(consumed, take),
                            valueRows.rowSlice(consumed, take));
            consumed += take;
            if (storeBacked && last.rows() == config_.shardRows)
                freezeTail();
        } else {
            // Open a new tail for the overflow. Store-less mode
            // never freezes, so a full private tail just stays full.
            const std::size_t take =
                std::min(config_.shardRows, total - consumed);
            offsets_.push_back(offsets_.back() +
                               shards_.back()->rows());
            shards_.push_back(
                storeBacked
                    ? ShardHandle::bindTail(inner_, keyRows,
                                            valueRows, consumed, take)
                    : ShardHandle::bindPrivate(inner_, keyRows,
                                               valueRows, consumed,
                                               take));
            consumed += take;
            if (storeBacked && take == config_.shardRows)
                freezeTail();
        }
    }
}

std::unique_ptr<AttentionBackend>
makeShardedBackend(const EngineConfig &inner, Matrix key, Matrix value,
                   ShardedConfig config)
{
    return std::make_unique<ShardedBackend>(
        inner, std::move(key), std::move(value), config);
}

}  // namespace a3
