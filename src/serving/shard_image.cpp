#include "serving/shard_image.hpp"

#include <cstdio>
#include <cstring>

#include "net/wire.hpp"
#include "util/logging.hpp"

namespace a3 {

std::string
ShardKey::hex() const
{
    char buf[33];
    std::snprintf(buf, sizeof(buf), "%016llx%016llx",
                  static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(lo));
    return std::string(buf);
}

bool
ShardKey::parseHex(const std::string &text, ShardKey &out)
{
    if (text.size() != 32)
        return false;
    std::uint64_t parts[2] = {0, 0};
    for (std::size_t i = 0; i < 32; ++i) {
        const char c = text[i];
        std::uint64_t digit = 0;
        if (c >= '0' && c <= '9')
            digit = static_cast<std::uint64_t>(c - '0');
        else if (c >= 'a' && c <= 'f')
            digit = static_cast<std::uint64_t>(c - 'a' + 10);
        else
            return false;
        parts[i / 16] = (parts[i / 16] << 4) | digit;
    }
    out.hi = parts[0];
    out.lo = parts[1];
    return true;
}

void
ShardKeyHasher::mixBytes(const std::uint8_t *data, std::size_t size)
{
    // FNV-1a folding one 64-bit word per step instead of one byte:
    // the hasher sits on the warm acquire() path, where re-keying a
    // multi-megabyte shard byte-at-a-time would cost as much as the
    // preprocessing the spill tier exists to skip. Word folding keeps
    // the same two decorrelated streams and full input sensitivity;
    // only self-consistency matters (images store the key their
    // writer computed and the reader recomputes it the same way).
    constexpr std::uint64_t prime = 1099511628211ull;
    std::uint64_t hi = hi_;
    std::uint64_t lo = lo_;
    std::size_t i = 0;
    for (; i + sizeof(std::uint64_t) <= size;
         i += sizeof(std::uint64_t)) {
        std::uint64_t word;
        std::memcpy(&word, data + i, sizeof(word));
        hi = (hi ^ word) * prime;
        lo = (lo ^ word) * prime;
    }
    for (; i < size; ++i) {
        hi = (hi ^ data[i]) * prime;
        lo = (lo ^ data[i]) * prime;
    }
    hi_ = hi;
    lo_ = lo;
}

namespace {

/**
 * Image payload checksum: FNV-1a-64 folded one word per step (same
 * rationale as ShardKeyHasher::mixBytes — a byte loop over a
 * multi-megabyte payload would dominate the warm restore the spill
 * tier exists for), collapsed to the u32 the header stores. Images
 * are written and verified by the same code, so this needs no
 * compatibility with the byte-wise wire-frame fnv1a().
 */
std::uint32_t
imageChecksum(const std::uint8_t *data, std::size_t size)
{
    constexpr std::uint64_t prime = 1099511628211ull;
    std::uint64_t hash = 14695981039346656037ull;
    std::size_t i = 0;
    for (; i + sizeof(std::uint64_t) <= size;
         i += sizeof(std::uint64_t)) {
        std::uint64_t word;
        std::memcpy(&word, data + i, sizeof(word));
        hash = (hash ^ word) * prime;
    }
    for (; i < size; ++i)
        hash = (hash ^ data[i]) * prime;
    return static_cast<std::uint32_t>(hash ^ (hash >> 32));
}

/** Canonical fingerprint bytes of one config (see mixConfig). */
void
appendConfigFingerprint(const EngineConfig &config,
                        std::vector<std::uint8_t> &out)
{
    WireWriter w;
    w.u8(static_cast<std::uint8_t>(config.kind));
    const bool quantized =
        config.kind == EngineKind::ExactQuantized ||
        config.kind == EngineKind::ApproxQuantized;
    const bool approx = config.kind == EngineKind::ApproxFloat ||
                        config.kind == EngineKind::ApproxQuantized;
    if (quantized) {
        w.u8(static_cast<std::uint8_t>(config.intBits));
        w.u8(static_cast<std::uint8_t>(config.fracBits));
        w.u8(static_cast<std::uint8_t>(resolvePackedKvFormat(
            config.packedKv, config.intBits, config.fracBits)));
    }
    if (approx) {
        const ApproxConfig &a = config.approx;
        w.u8(a.candidateSelection ? 1 : 0);
        w.u8(a.postScoring ? 1 : 0);
        w.u8(a.skipHeuristic ? 1 : 0);
        w.f64(a.mFraction);
        w.u64(a.mAbsolute);
        w.f64(a.thresholdPercent);
    }
    const std::vector<std::uint8_t> &bytes = w.bytes();
    out.insert(out.end(), bytes.begin(), bytes.end());
}

}  // namespace

void
ShardKeyHasher::mixConfig(const EngineConfig &config)
{
    std::vector<std::uint8_t> fingerprint;
    appendConfigFingerprint(config, fingerprint);
    mixBytes(fingerprint.data(), fingerprint.size());
}

void
ShardKeyHasher::mixTaskRows(const Matrix &key, const Matrix &value,
                            std::size_t firstRow, std::size_t count)
{
    a3Assert(key.rows() == value.rows() && key.cols() == value.cols(),
             "key/value shape mismatch");
    a3Assert(firstRow + count <= key.rows(),
             "row range ", firstRow, "+", count, " out of ",
             key.rows());
    const std::size_t rowBytes = key.cols() * sizeof(float);
    for (std::size_t r = firstRow; r < firstRow + count; ++r) {
        mixBytes(reinterpret_cast<const std::uint8_t *>(
                     key.row(r).data()),
                 rowBytes);
        mixBytes(reinterpret_cast<const std::uint8_t *>(
                     value.row(r).data()),
                 rowBytes);
    }
}

std::vector<std::uint8_t>
encodeShardImage(const EngineConfig &config, const ShardKey &key,
                 const AttentionBackend &backend)
{
    a3Assert(backend.serializable(),
             "backend \"", backend.name(), "\" has no shard image");
    WireWriter payload;
    backend.serializeState(payload);
    const std::vector<std::uint8_t> &body = payload.bytes();

    WireWriter image;
    image.u32(kShardImageMagic);
    image.u16(kShardImageVersion);
    image.u8(static_cast<std::uint8_t>(config.kind));
    const bool quantized =
        config.kind == EngineKind::ExactQuantized ||
        config.kind == EngineKind::ApproxQuantized;
    image.u8(quantized
                 ? static_cast<std::uint8_t>(resolvePackedKvFormat(
                       config.packedKv, config.intBits,
                       config.fracBits))
                 : 0);
    image.u8(quantized ? static_cast<std::uint8_t>(config.intBits)
                       : 0);
    image.u8(quantized ? static_cast<std::uint8_t>(config.fracBits)
                       : 0);
    image.u64(key.hi);
    image.u64(key.lo);
    image.u64(backend.rows());
    image.u64(backend.dims());
    image.u64(body.size());
    image.u32(imageChecksum(body.data(), body.size()));
    std::vector<std::uint8_t> bytes = image.take();
    bytes.insert(bytes.end(), body.begin(), body.end());
    return bytes;
}

std::unique_ptr<AttentionBackend>
decodeShardImage(const EngineConfig &config, const ShardKey &expected,
                 const std::uint8_t *data, std::size_t size)
{
    WireReader header(data, size);
    if (header.u32() != kShardImageMagic)
        return nullptr;
    if (header.u16() != kShardImageVersion)
        return nullptr;
    const std::uint8_t kind = header.u8();
    const std::uint8_t packed = header.u8();
    const std::uint8_t intBits = header.u8();
    const std::uint8_t fracBits = header.u8();
    ShardKey stamped;
    stamped.hi = header.u64();
    stamped.lo = header.u64();
    const std::uint64_t rows = header.u64();
    const std::uint64_t dims = header.u64();
    const std::uint64_t payloadLen = header.u64();
    const std::uint32_t checksum = header.u32();
    if (!header.ok())
        return nullptr;

    if (kind != static_cast<std::uint8_t>(config.kind))
        return nullptr;
    const bool quantized =
        config.kind == EngineKind::ExactQuantized ||
        config.kind == EngineKind::ApproxQuantized;
    if (quantized) {
        if (intBits != static_cast<std::uint8_t>(config.intBits) ||
            fracBits != static_cast<std::uint8_t>(config.fracBits) ||
            packed != static_cast<std::uint8_t>(resolvePackedKvFormat(
                          config.packedKv, config.intBits,
                          config.fracBits)))
            return nullptr;
    }
    if (!(stamped == expected))
        return nullptr;
    if (payloadLen != header.remaining())
        return nullptr;

    const std::uint8_t *payload = data + (size - header.remaining());
    if (imageChecksum(payload,
                      static_cast<std::size_t>(payloadLen)) !=
        checksum)
        return nullptr;

    WireReader body(payload, static_cast<std::size_t>(payloadLen));
    std::unique_ptr<AttentionBackend> backend =
        deserializeBackend(config, body);
    if (backend == nullptr || !body.done())
        return nullptr;
    if (backend->rows() != rows || backend->dims() != dims)
        return nullptr;
    return backend;
}

}  // namespace a3
