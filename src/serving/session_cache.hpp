/**
 * @file
 * LRU cache of preprocessed attention backends keyed by session id.
 *
 * A deployed QA/BERT service answers many queries against the same
 * long-lived context — a loaded story, a document, a conversation.
 * Binding that context into an AttentionBackend is the expensive step
 * (the column sort of Section IV-A, the quantization of Section III),
 * which the paper amortizes across queries; the cache is the serving
 * tier's realization of that amortization. Bound backends stay alive
 * across requests, the least recently used session is evicted when the
 * configured byte budget overflows, and hit/miss/eviction counters
 * make the reuse measurable.
 *
 * The typed session API (PR 9): bindSession() / appendSession() /
 * lookupSession() operate on SessionHandle and return BindOutcome /
 * AppendOutcome result types (mirroring the scheduler's
 * AdmissionOutcome), replacing the bare-pointer + bool surface that
 * made callers invent their own error conventions. The raw find() /
 * bind() / insert() / append() entry points remain for existing
 * callers but are deprecated — new code should use the typed surface.
 *
 * Cross-session sharing: when constructed with a SessionCacheConfig
 * that carries shardRows and a ShardStore, sessions bind through
 * ShardedBackend's store-backed mode and identical frozen shards are
 * shared across sessions. The cache then charges each distinct
 * ShardHandle against the byte budget ONCE no matter how many bound
 * sessions reference it (bytesInUse() is charged bytes, not the sum
 * of per-session logical bytes), and eviction releases only the
 * evicted session's references — a shard shared with a live session
 * survives, so eviction never invalidates other sessions' results.
 *
 * Thread safety: every member function takes an internal lock, so
 * concurrent find()/bind()/erase() calls are safe. The backends handed
 * out are only thread-compatible for const queries; append() must not
 * race with queries against the same session (see
 * AttentionBackend::append).
 */

#ifndef A3_SERVING_SESSION_CACHE_HPP
#define A3_SERVING_SESSION_CACHE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "attention/backend.hpp"
#include "serving/shard_store.hpp"

namespace a3 {

/** Monotonic usage counters of one SessionCache. */
struct SessionCacheStats
{
    /**
     * Lookups served from an already-bound backend (no
     * preprocessing).
     */
    std::uint64_t hits = 0;

    /** Lookups that found no bound backend. */
    std::uint64_t misses = 0;

    /** Sessions dropped to fit the byte budget. */
    std::uint64_t evictions = 0;

    /** Incremental context extensions applied through append(). */
    std::uint64_t appends = 0;
};

/** Construction-time knobs of one SessionCache. */
struct SessionCacheConfig
{
    /**
     * Bytes of backend state the cache may retain; 0 means
     * unlimited. Charged bytes: a shard shared by k bound sessions
     * counts once, not k times. The most recently bound session is
     * never evicted, even when it alone exceeds the budget —
     * evicting it would make the bind that just paid for it useless.
     */
    std::size_t byteBudget = 0;

    /** Engine used by the bindSession() overload without a config. */
    EngineConfig engine;

    /**
     * Shard capacity for bindSession() backends; 0 binds unsharded
     * backends (the pre-PR-9 behavior).
     */
    std::size_t shardRows = 0;

    /**
     * Cross-session shard registry (non-owning; must outlive the
     * cache). Requires shardRows > 0. nullptr disables sharing —
     * sessions are fully private.
     */
    ShardStore *store = nullptr;
};

/**
 * Typed reference to one bound session: the id plus a weak reference
 * to the backend bound when the handle was issued. A handle goes
 * stale when its session is evicted or re-bound; stale handles fail
 * queries/appends explicitly (backend() == nullptr, AppendOutcome
 * SessionUnbound) instead of silently touching a different binding.
 */
class SessionHandle
{
  public:
    SessionHandle() = default;

    const std::string &id() const { return id_; }

    /** False for default-constructed (never-issued) handles. */
    bool valid() const { return !id_.empty(); }

    /**
     * The backend this handle was issued for, or nullptr once the
     * binding is gone (evicted / replaced / cache destroyed).
     */
    std::shared_ptr<AttentionBackend> backend() const
    {
        return backend_.lock();
    }

  private:
    friend class SessionCache;

    SessionHandle(std::string id,
                  const std::shared_ptr<AttentionBackend> &backend)
        : id_(std::move(id)), backend_(backend)
    {
    }

    std::string id_;
    std::weak_ptr<AttentionBackend> backend_;
};

/** How a bindSession() call was satisfied. */
enum class BindStatus
{
    AlreadyBound,   ///< session was bound; matrices ignored
    BoundFresh,     ///< every shard preprocessed from scratch
    BoundShared,    ///< >= 1 shard deduped against a live session
    BoundRestored,  ///< >= 1 shard restored from spill (none shared)
};

/** Stable lowercase name ("already_bound", ...). */
const char *bindStatusName(BindStatus status);

/** Result of SessionCache::bindSession(). */
struct BindOutcome
{
    BindStatus status = BindStatus::BoundFresh;

    /** Handle to the bound session (always valid on return). */
    SessionHandle handle;

    /** Shards backing the session (1 for unsharded binds). */
    std::size_t shardCount = 0;

    /** Shards deduped against live sessions at bind time. */
    std::size_t sharedShards = 0;

    /** Shards restored from the spill tier at bind time. */
    std::size_t restoredShards = 0;

    /** The session's full memoryBytes() footprint. */
    std::size_t logicalBytes = 0;

    /** Bytes this session actually charges the cache (shared shards
     *  another bound session already charged cost 0 here). */
    std::size_t chargedBytes = 0;

    bool bound() const { return handle.valid(); }
};

/** How an appendSession() call ended. */
enum class AppendStatus
{
    Appended,        ///< rows appended, budget re-charged
    SessionUnbound,  ///< stale handle: session evicted or re-bound
};

/** Stable lowercase name ("appended", ...). */
const char *appendStatusName(AppendStatus status);

/** Result of SessionCache::appendSession(). */
struct AppendOutcome
{
    AppendStatus status = AppendStatus::SessionUnbound;

    /** Rows actually appended (0 on SessionUnbound). */
    std::size_t rowsAppended = 0;

    /** Shards after the append (tail freezes may have grown it). */
    std::size_t shardCount = 0;

    /** The session's memoryBytes() after the append. */
    std::size_t logicalBytes = 0;

    /** Bytes the session charges the cache after the append. */
    std::size_t chargedBytes = 0;

    bool ok() const { return status == AppendStatus::Appended; }
};

/** LRU map from session id to a preprocessed, queryable backend. */
class SessionCache
{
  public:
    /**
     * Byte-budget-only constructor (legacy surface): unsharded
     * bindSession() backends, no sharing.
     */
    explicit SessionCache(std::size_t byteBudget = 0);

    /** Full configuration, including sharing via config.store. */
    explicit SessionCache(SessionCacheConfig config);

    // -- Typed session API ------------------------------------------

    /**
     * Bind `session` to (key, value) under `config`, or report the
     * existing binding (AlreadyBound — the matrices are ignored and
     * no preprocessing runs). With cache-level shardRows > 0 the
     * backend is sharded; with a ShardStore configured, full shards
     * dedup against live sessions and the spill tier, and the
     * outcome reports how many shards each tier served.
     */
    BindOutcome bindSession(const std::string &session,
                            const EngineConfig &config, Matrix key,
                            Matrix value);

    /** bindSession() under the cache-level default engine config. */
    BindOutcome bindSession(const std::string &session, Matrix key,
                            Matrix value);

    /**
     * Extend the session behind `handle`. Fails with SessionUnbound
     * when the handle is stale — its session was evicted or re-bound
     * since issue — so an append can never land on a binding the
     * caller has not seen. No queries may be in flight against the
     * session (see AttentionBackend::append).
     */
    AppendOutcome appendSession(const SessionHandle &handle,
                                const Matrix &keyRows,
                                const Matrix &valueRows);

    /**
     * Handle to `session`'s current binding; invalid handle on a
     * miss. Counts hits/misses and refreshes the LRU like find().
     */
    SessionHandle lookupSession(const std::string &session);

    // -- Raw surface (deprecated: prefer the typed API above) -------

    /**
     * Backend bound to `session`, or nullptr. A hit refreshes the
     * session's LRU position and counts in stats().hits; a miss
     * counts in stats().misses.
     * @deprecated Use lookupSession(); kept for existing callers.
     */
    std::shared_ptr<AttentionBackend> find(const std::string &session);

    /**
     * Return the backend bound to `session`, constructing one from
     * (config, key, value) through makeBackend() on a miss — always
     * unsharded, ignoring the cache-level shardRows/store. On a hit
     * the matrices are ignored and no preprocessing runs.
     * @deprecated Use bindSession(); kept for existing callers.
     */
    std::shared_ptr<AttentionBackend> bind(const std::string &session,
                                           const EngineConfig &config,
                                           Matrix key, Matrix value);

    /**
     * Insert a pre-built backend, replacing whatever `session` held.
     * Returns the inserted backend.
     */
    std::shared_ptr<AttentionBackend>
    insert(const std::string &session,
           std::shared_ptr<AttentionBackend> backend);

    /**
     * Extend a bound session's context through the backend's
     * incremental append() and re-charge its bytes against the
     * budget. Returns false when the session is not bound.
     * @deprecated Use appendSession(); a bare bool cannot distinguish
     * eviction from a wrong id, and re-binding raced appends was the
     * bug class the typed surface removes.
     */
    bool append(const std::string &session, const Matrix &keyRows,
                const Matrix &valueRows);

    /**
     * Bytes `session` charges the cache (shared shards another bound
     * session already charged are excluded), or 0 when unbound — the
     * admission-control cost estimate. Unlike find(), this touches
     * neither the LRU order nor the hit/miss counters: probing a
     * session's cost to decide admission must not make it look
     * recently used or skew the cache's reuse statistics.
     */
    std::size_t peekBytes(const std::string &session) const;

    /** Drop one session; returns whether it was bound. */
    bool erase(const std::string &session);

    /** Drop every session (counters are retained). */
    void clear();

    /** Sessions currently bound. */
    std::size_t sessionCount() const;

    /** Charged bytes over the bound backends (shared shards counted
     *  once across sessions). */
    std::size_t bytesInUse() const;

    /** Configured budget; 0 means unlimited. */
    std::size_t byteBudget() const { return config_.byteBudget; }

    /** Construction-time knobs. */
    const SessionCacheConfig &config() const { return config_; }

    /** Snapshot of the usage counters. */
    SessionCacheStats stats() const;

    /**
     * Zero the usage counters without touching the bound sessions —
     * benches and the CI regression gate reset after warm-up so the
     * reported numbers are steady-state, not cumulative.
     */
    void resetCounters();

  private:
    struct Entry
    {
        std::shared_ptr<AttentionBackend> backend;
        /** Bytes this entry charges the budget (see chargeLocked). */
        std::size_t bytes = 0;
        /** Shard handles snapshot backing the charge refcounts. */
        std::vector<std::shared_ptr<ShardHandle>> handles;
        std::list<std::string>::iterator lruPos;
    };

    /** Per-distinct-handle charge refcount across bound sessions. */
    struct HandleCharge
    {
        std::size_t bytes = 0;
        std::size_t refs = 0;
    };

    /** Move `session` (which must exist) to the LRU front. */
    void touchLocked(Entry &entry);

    /** Evict LRU sessions until the budget holds, sparing `keep`. */
    void enforceBudgetLocked(const std::string &keep);

    /**
     * Charge `entry`'s backend against the budget: unsharded
     * backends charge memoryBytes(); sharded backends charge each
     * distinct ShardHandle once across all bound sessions (refs in
     * charges_). Fills entry.bytes/handles.
     */
    void chargeLocked(Entry &entry);

    /** Undo chargeLocked (eviction, replacement, pre-append). */
    void releaseLocked(Entry &entry);

    std::shared_ptr<AttentionBackend>
    insertLocked(const std::string &session,
                 std::shared_ptr<AttentionBackend> backend);

    mutable std::mutex mutex_;
    SessionCacheConfig config_;
    std::size_t bytesInUse_ = 0;
    /** Most recently used session at the front. */
    std::list<std::string> lru_;
    std::unordered_map<std::string, Entry> entries_;
    std::unordered_map<const ShardHandle *, HandleCharge> charges_;
    SessionCacheStats stats_;
};

}  // namespace a3

#endif  // A3_SERVING_SESSION_CACHE_HPP
