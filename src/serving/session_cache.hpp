/**
 * @file
 * LRU cache of preprocessed attention backends keyed by session id.
 *
 * A deployed QA/BERT service answers many queries against the same
 * long-lived context — a loaded story, a document, a conversation.
 * Binding that context into an AttentionBackend is the expensive step
 * (the column sort of Section IV-A, the quantization of Section III),
 * which the paper amortizes across queries; the cache is the serving
 * tier's realization of that amortization. Bound backends stay alive
 * across requests, the least recently used session is evicted when the
 * configured byte budget overflows, and hit/miss/eviction counters
 * make the reuse measurable.
 *
 * Thread safety: every member function takes an internal lock, so
 * concurrent find()/bind()/erase() calls are safe. The backends handed
 * out are only thread-compatible for const queries; append() must not
 * race with queries against the same session (see
 * AttentionBackend::append).
 */

#ifndef A3_SERVING_SESSION_CACHE_HPP
#define A3_SERVING_SESSION_CACHE_HPP

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "attention/backend.hpp"

namespace a3 {

/** Monotonic usage counters of one SessionCache. */
struct SessionCacheStats
{
    /** Lookups served from an already-bound backend (no preprocessing). */
    std::uint64_t hits = 0;

    /** Lookups that found no bound backend. */
    std::uint64_t misses = 0;

    /** Sessions dropped to fit the byte budget. */
    std::uint64_t evictions = 0;

    /** Incremental context extensions applied through append(). */
    std::uint64_t appends = 0;
};

/** LRU map from session id to a preprocessed, queryable backend. */
class SessionCache
{
  public:
    /**
     * @param byteBudget bytes of backend state (memoryBytes() sums)
     *        the cache may retain; 0 means unlimited. The most
     *        recently bound session is never evicted, even when it
     *        alone exceeds the budget — evicting it would make the
     *        bind that just paid for it useless.
     */
    explicit SessionCache(std::size_t byteBudget = 0);

    /**
     * Backend bound to `session`, or nullptr. A hit refreshes the
     * session's LRU position and counts in stats().hits; a miss
     * counts in stats().misses.
     */
    std::shared_ptr<AttentionBackend> find(const std::string &session);

    /**
     * Return the backend bound to `session`, constructing one from
     * (config, key, value) through makeBackend() on a miss. On a hit
     * the matrices are ignored and no preprocessing runs — the
     * skipped work is exactly what stats().hits counts. The matrices
     * are taken by value, so the call site still pays for building
     * (or copying) them even on a hit: hot paths should try find()
     * first and fall back to bind() only on nullptr.
     */
    std::shared_ptr<AttentionBackend> bind(const std::string &session,
                                           const EngineConfig &config,
                                           Matrix key, Matrix value);

    /**
     * Insert a pre-built backend, replacing whatever `session` held.
     * Returns the inserted backend.
     */
    std::shared_ptr<AttentionBackend>
    insert(const std::string &session,
           std::shared_ptr<AttentionBackend> backend);

    /**
     * Extend a bound session's context through the backend's
     * incremental append() and re-charge its bytes against the
     * budget. Returns false when the session is not bound (it may
     * have been evicted concurrently — the caller re-binds and
     * retries); no queries may be in flight against the session.
     */
    bool append(const std::string &session, const Matrix &keyRows,
                const Matrix &valueRows);

    /**
     * Bytes of backend state bound to `session` (its cached
     * memoryBytes()), or 0 when unbound — the admission-control cost
     * estimate. Unlike find(), this touches neither the LRU order nor
     * the hit/miss counters: probing a session's cost to decide
     * admission must not make it look recently used or skew the
     * cache's reuse statistics.
     */
    std::size_t peekBytes(const std::string &session) const;

    /** Drop one session; returns whether it was bound. */
    bool erase(const std::string &session);

    /** Drop every session (counters are retained). */
    void clear();

    /** Sessions currently bound. */
    std::size_t sessionCount() const;

    /** Sum of memoryBytes() over the bound backends. */
    std::size_t bytesInUse() const;

    /** Configured budget; 0 means unlimited. */
    std::size_t byteBudget() const { return byteBudget_; }

    /** Snapshot of the usage counters. */
    SessionCacheStats stats() const;

    /**
     * Zero the usage counters without touching the bound sessions —
     * benches and the CI regression gate reset after warm-up so the
     * reported numbers are steady-state, not cumulative.
     */
    void resetCounters();

  private:
    struct Entry
    {
        std::shared_ptr<AttentionBackend> backend;
        std::size_t bytes = 0;
        std::list<std::string>::iterator lruPos;
    };

    /** Move `session` (which must exist) to the LRU front. */
    void touchLocked(Entry &entry);

    /** Evict LRU sessions until the budget holds, sparing `keep`. */
    void enforceBudgetLocked(const std::string &keep);

    std::shared_ptr<AttentionBackend>
    insertLocked(const std::string &session,
                 std::shared_ptr<AttentionBackend> backend);

    mutable std::mutex mutex_;
    std::size_t byteBudget_ = 0;
    std::size_t bytesInUse_ = 0;
    /** Most recently used session at the front. */
    std::list<std::string> lru_;
    std::unordered_map<std::string, Entry> entries_;
    SessionCacheStats stats_;
};

}  // namespace a3

#endif  // A3_SERVING_SESSION_CACHE_HPP
