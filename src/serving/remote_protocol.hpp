/**
 * @file
 * Typed payload codecs of the distributed-serving protocol.
 *
 * One encode/decode pair per frame kind, layered on the
 * bounds-checked wire primitives (net/wire.hpp). Decoders are
 * strict: a payload that underruns, overruns, or carries an
 * out-of-range enum value is rejected with a typed Malformed status
 * before any field is acted on — a corrupted-but-checksum-valid
 * frame (or a hostile peer) can fail a request, never crash a
 * worker or the coordinator.
 *
 * Floats travel as IEEE-754 bit patterns, so a PartialResult
 * decoded here is bit-identical to the one the worker computed —
 * the foundation of the coordinator's exactness guarantee.
 */

#ifndef A3_SERVING_REMOTE_PROTOCOL_HPP
#define A3_SERVING_REMOTE_PROTOCOL_HPP

#include <cstdint>
#include <string>

#include "attention/backend.hpp"
#include "attention/types.hpp"
#include "net/frame.hpp"
#include "tensor/matrix.hpp"

namespace a3 {

/** Hello / HelloAck: version handshake and peer naming. */
struct HelloPayload
{
    std::uint16_t version = kProtocolVersion;
    std::string peer;
};

/** BindShard: ship one shard's task to a worker. */
struct BindShardPayload
{
    std::uint32_t shardId = 0;

    /**
     * Bind epoch: rebinds (failover re-replication, appends) bump
     * it, and a worker answers queries only for the generation it
     * holds — a late query can never hit a stale binding silently.
     */
    std::uint64_t generation = 0;

    EngineConfig config;
    Matrix key;
    Matrix value;
};

/** BindAck: worker confirms (shardId, generation) is bound. */
struct BindAckPayload
{
    std::uint32_t shardId = 0;
    std::uint64_t generation = 0;
};

/** Query: one attention query against a bound shard. */
struct QueryPayload
{
    std::uint64_t requestId = 0;
    std::uint32_t shardId = 0;
    std::uint64_t generation = 0;

    /**
     * Request the full normalized result (ResultReply) instead of
     * softmax partials — the single-shard mode that mirrors
     * ShardedBackend's S = 1 runInto() delegation bit for bit
     * (the quantized kinds' partial roundtrip is not bit-tight).
     */
    bool wantFull = false;

    Vector query;
};

/** PartialReply: the shard's softmax partials for a request. */
struct PartialReplyPayload
{
    std::uint64_t requestId = 0;
    std::uint32_t shardId = 0;
    PartialResult partial;
};

/** ResultReply: full normalized result (wantFull queries). */
struct ResultReplyPayload
{
    std::uint64_t requestId = 0;
    std::uint32_t shardId = 0;
    AttentionResult result;
};

/** Heartbeat / HeartbeatAck: liveness probe and echo. */
struct HeartbeatPayload
{
    std::uint64_t sequence = 0;

    /** Shards the responder currently holds (ack only). */
    std::uint32_t shardsBound = 0;
};

/** ErrorReply: typed worker-side failure for one request. */
struct ErrorReplyPayload
{
    std::uint64_t requestId = 0;
    NetError code = NetError::WorkerError;
    std::string message;
};

Frame encodeHello(const HelloPayload &payload, bool ack);
Frame encodeBindShard(const BindShardPayload &payload);
Frame encodeBindAck(const BindAckPayload &payload);
Frame encodeQuery(const QueryPayload &payload);
Frame encodePartialReply(const PartialReplyPayload &payload);
Frame encodeResultReply(const ResultReplyPayload &payload);
Frame encodeHeartbeat(const HeartbeatPayload &payload, bool ack);
Frame encodeErrorReply(const ErrorReplyPayload &payload);
Frame encodeShutdown();

/**
 * Each decoder validates the frame type and strictly consumes the
 * whole payload; Malformed otherwise. Output fields are only
 * meaningful on success.
 */
NetStatus decodeHello(const Frame &frame, HelloPayload &out);
NetStatus decodeBindShard(const Frame &frame,
                          BindShardPayload &out);
NetStatus decodeBindAck(const Frame &frame, BindAckPayload &out);
NetStatus decodeQuery(const Frame &frame, QueryPayload &out);
NetStatus decodePartialReply(const Frame &frame,
                             PartialReplyPayload &out);
NetStatus decodeResultReply(const Frame &frame,
                            ResultReplyPayload &out);
NetStatus decodeHeartbeat(const Frame &frame,
                          HeartbeatPayload &out);
NetStatus decodeErrorReply(const Frame &frame,
                           ErrorReplyPayload &out);

}  // namespace a3

#endif  // A3_SERVING_REMOTE_PROTOCOL_HPP
