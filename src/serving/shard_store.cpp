#include "serving/shard_store.hpp"

#include <cerrno>
#include <cstdio>
#include <sys/stat.h>
#include <sys/types.h>
#include <dirent.h>
#include <unistd.h>
#include <utility>

#include "util/logging.hpp"
#include "util/mapped_file.hpp"

namespace a3 {

// -------------------------------------------------------------------
// ShardHandle

ShardHandle::ShardHandle(EngineConfig config,
                         std::unique_ptr<AttentionBackend> backend)
    : config_(config), backend_(std::move(backend))
{
    a3Assert(backend_ != nullptr, "shard handle needs a backend");
}

std::shared_ptr<ShardHandle>
ShardHandle::bindTail(const EngineConfig &config, const Matrix &key,
                      const Matrix &value, std::size_t firstRow,
                      std::size_t count)
{
    auto handle = std::shared_ptr<ShardHandle>(new ShardHandle(
        config, makeBackend(config, key.rowSlice(firstRow, count),
                            value.rowSlice(firstRow, count))));
    handle->tracking_ = true;
    handle->hasher_.mixConfig(config);
    handle->hasher_.mixTaskRows(key, value, firstRow, count);
    return handle;
}

std::shared_ptr<ShardHandle>
ShardHandle::bindPrivate(const EngineConfig &config, const Matrix &key,
                         const Matrix &value, std::size_t firstRow,
                         std::size_t count)
{
    return std::shared_ptr<ShardHandle>(new ShardHandle(
        config, makeBackend(config, key.rowSlice(firstRow, count),
                            value.rowSlice(firstRow, count))));
}

AttentionBackend &
ShardHandle::mutableBackend()
{
    a3Assert(!frozen_, "frozen shard handles are immutable");
    return *backend_;
}

void
ShardHandle::appendRows(const Matrix &keyRows, const Matrix &valueRows)
{
    a3Assert(!frozen_, "cannot append to a frozen shard");
    backend_->append(keyRows, valueRows);
    if (tracking_)
        hasher_.mixTaskRows(keyRows, valueRows, 0, keyRows.rows());
}

std::size_t
ShardHandle::freeze()
{
    a3Assert(tracking_, "private handles cannot be frozen");
    a3Assert(!frozen_, "handle is already frozen");
    const std::size_t reclaimed = backend_->compact();
    key_ = hasher_.key();
    frozen_ = true;
    return reclaimed;
}

const ShardKey &
ShardHandle::contentKey() const
{
    a3Assert(frozen_, "content key is only final once frozen");
    return key_;
}

// -------------------------------------------------------------------
// ShardStore

const char *
shardSourceName(ShardSource source)
{
    switch (source) {
    case ShardSource::ColdBound:
        return "cold_bound";
    case ShardSource::LiveShared:
        return "live_shared";
    case ShardSource::SpillRestored:
        return "spill_restored";
    }
    return "unknown";
}

namespace {

/** mkdir -p; false when a component exists as a non-directory or
 *  cannot be created. */
bool
ensureDirectory(const std::string &path)
{
    std::string partial;
    partial.reserve(path.size());
    for (std::size_t i = 0; i <= path.size(); ++i) {
        if (i < path.size() && path[i] != '/') {
            partial.push_back(path[i]);
            continue;
        }
        if (!partial.empty() && partial != "/" &&
            ::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST)
            return false;
        if (i < path.size())
            partial.push_back('/');
    }
    struct stat st;
    return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/** Atomically (write tmp + rename) publish `bytes` at `path`. */
bool
writeFileAtomic(const std::string &path,
                const std::vector<std::uint8_t> &bytes)
{
    const std::string tmp = path + ".tmp";
    std::FILE *f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return false;
    const bool wrote =
        bytes.empty() ||
        std::fwrite(bytes.data(), 1, bytes.size(), f) == bytes.size();
    const bool closed = std::fclose(f) == 0;
    if (!wrote || !closed ||
        std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    return true;
}

}  // namespace

ShardStore::ShardStore(ShardStoreConfig config)
    : config_(std::move(config))
{
    if (config_.spillDir.empty())
        return;
    a3Assert(ensureDirectory(config_.spillDir),
             "cannot create spill directory ", config_.spillDir);
    std::lock_guard<std::mutex> lock(mutex_);
    scanSpillDirLocked();
}

void
ShardStore::scanSpillDirLocked()
{
    DIR *dir = ::opendir(config_.spillDir.c_str());
    if (dir == nullptr)
        return;
    const std::string suffix = ".shard";
    while (dirent *entry = ::readdir(dir)) {
        const std::string name = entry->d_name;
        if (name.size() != 32 + suffix.size() ||
            name.compare(32, suffix.size(), suffix) != 0)
            continue;
        ShardKey key;
        if (!ShardKey::parseHex(name.substr(0, 32), key))
            continue;
        const std::string path = config_.spillDir + "/" + name;
        struct stat st;
        if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode))
            continue;
        SpillEntry spillEntry;
        spillEntry.path = path;
        spillEntry.bytes = static_cast<std::size_t>(st.st_size);
        spillLru_.push_front(key);
        spillEntry.lruPos = spillLru_.begin();
        spillBytes_ += spillEntry.bytes;
        spill_.emplace(key, std::move(spillEntry));
    }
    ::closedir(dir);
}

std::shared_ptr<ShardHandle>
ShardStore::liveLookupLocked(const ShardKey &key)
{
    auto it = live_.find(key);
    if (it == live_.end())
        return nullptr;
    std::shared_ptr<ShardHandle> handle = it->second.lock();
    if (handle == nullptr)
        live_.erase(it);
    return handle;
}

void
ShardStore::touchSpillLocked(SpillEntry &entry)
{
    spillLru_.splice(spillLru_.begin(), spillLru_, entry.lruPos);
}

void
ShardStore::dropSpillLocked(const ShardKey &key)
{
    auto it = spill_.find(key);
    if (it == spill_.end())
        return;
    ::unlink(it->second.path.c_str());
    spillBytes_ -= it->second.bytes;
    spillLru_.erase(it->second.lruPos);
    spill_.erase(it);
}

void
ShardStore::enforceSpillBudgetLocked(const ShardKey &keep)
{
    if (config_.spillBudgetBytes == 0)
        return;
    while (spillBytes_ > config_.spillBudgetBytes &&
           spillLru_.size() > 1) {
        ShardKey victim = spillLru_.back();
        if (victim == keep) {
            // The protected image is the LRU tail; rotate it to the
            // front so older images behind it become evictable.
            touchSpillLocked(spill_.find(victim)->second);
            continue;
        }
        dropSpillLocked(victim);
        ++stats_.spillEvictions;
    }
}

void
ShardStore::spillWriteLocked(const ShardHandle &handle)
{
    if (config_.spillDir.empty())
        return;
    const ShardKey &key = handle.key_;
    auto it = spill_.find(key);
    if (it != spill_.end()) {
        touchSpillLocked(it->second);
        return;
    }
    const std::vector<std::uint8_t> image = encodeShardImage(
        handle.config_, key, *handle.backend_);
    const std::string path =
        config_.spillDir + "/" + key.hex() + ".shard";
    if (!writeFileAtomic(path, image))
        return;
    SpillEntry entry;
    entry.path = path;
    entry.bytes = image.size();
    spillLru_.push_front(key);
    entry.lruPos = spillLru_.begin();
    spillBytes_ += entry.bytes;
    spill_.emplace(key, std::move(entry));
    ++stats_.spillWrites;
    enforceSpillBudgetLocked(key);
}

std::unique_ptr<AttentionBackend>
ShardStore::restoreFromSpill(const EngineConfig &config,
                             const ShardKey &key, bool &rejected)
{
    rejected = false;
    std::string path;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        auto it = spill_.find(key);
        if (it == spill_.end())
            return nullptr;
        path = it->second.path;
    }

    // Map + decode outside the lock: page faults and dequant-lane
    // copies are the expensive part of a warm restore.
    MappedFile image;
    std::unique_ptr<AttentionBackend> backend;
    if (image.open(path))
        backend =
            decodeShardImage(config, key, image.data(), image.size());
    if (backend == nullptr) {
        // Unreadable or failed validation: treat as a miss and drop
        // the image so the cold bind below rewrites a fresh one.
        std::lock_guard<std::mutex> lock(mutex_);
        dropSpillLocked(key);
        ++stats_.spillRejects;
        rejected = true;
        return nullptr;
    }
    return backend;
}

std::shared_ptr<ShardHandle>
ShardStore::acquire(const EngineConfig &config, const Matrix &key,
                    const Matrix &value, std::size_t firstRow,
                    std::size_t count, ShardSource *source)
{
    // Content-address the slice first (cheap relative to any bind).
    ShardKeyHasher hasher;
    hasher.mixConfig(config);
    hasher.mixTaskRows(key, value, firstRow, count);
    const ShardKey contentKey = hasher.key();

    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (std::shared_ptr<ShardHandle> live =
                liveLookupLocked(contentKey)) {
            ++stats_.liveHits;
            if (source != nullptr)
                *source = ShardSource::LiveShared;
            return live;
        }
    }

    bool rejected = false;
    std::unique_ptr<AttentionBackend> backend =
        restoreFromSpill(config, contentKey, rejected);
    ShardSource boundFrom = ShardSource::SpillRestored;
    if (backend == nullptr) {
        backend = makeBackend(config, key.rowSlice(firstRow, count),
                              value.rowSlice(firstRow, count));
        backend->compact();
        boundFrom = ShardSource::ColdBound;
    }

    auto handle = std::shared_ptr<ShardHandle>(
        new ShardHandle(config, std::move(backend)));
    handle->key_ = contentKey;
    handle->frozen_ = true;

    std::lock_guard<std::mutex> lock(mutex_);
    // Another thread may have bound the same shard while we worked
    // outside the lock; its handle is canonical.
    if (std::shared_ptr<ShardHandle> live =
            liveLookupLocked(contentKey)) {
        ++stats_.liveHits;
        if (source != nullptr)
            *source = ShardSource::LiveShared;
        return live;
    }
    live_[contentKey] = handle;
    if (boundFrom == ShardSource::SpillRestored) {
        ++stats_.spillRestores;
        auto it = spill_.find(contentKey);
        if (it != spill_.end())
            touchSpillLocked(it->second);
    } else {
        ++stats_.coldBinds;
        spillWriteLocked(*handle);
    }
    if (source != nullptr)
        *source = boundFrom;
    return handle;
}

std::shared_ptr<ShardHandle>
ShardStore::adoptFrozen(std::shared_ptr<ShardHandle> handle)
{
    a3Assert(handle != nullptr && handle->frozen(),
             "only frozen handles can be adopted");
    std::lock_guard<std::mutex> lock(mutex_);
    ++stats_.adoptions;
    if (std::shared_ptr<ShardHandle> live =
            liveLookupLocked(handle->key_)) {
        ++stats_.liveHits;
        return live;
    }
    live_[handle->key_] = handle;
    spillWriteLocked(*handle);
    return handle;
}

ShardStoreStats
ShardStore::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
}

std::size_t
ShardStore::liveCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::size_t alive = 0;
    for (const auto &entry : live_)
        if (!entry.second.expired())
            ++alive;
    return alive;
}

std::size_t
ShardStore::spillCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spill_.size();
}

std::size_t
ShardStore::spillBytesInUse() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return spillBytes_;
}

void
ShardStore::resetCounters()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stats_ = ShardStoreStats{};
}

}  // namespace a3
