/**
 * @file
 * Shard worker: the server half of the distributed serving tier.
 *
 * A ShardWorker binds row-slices shipped to it as BindShard frames
 * (building the same makeBackend() engines the coordinator would
 * build locally — the other half of the bit-identity guarantee) and
 * answers Query frames with softmax partials or, in wantFull mode,
 * full normalized results. One serve() loop handles one connection;
 * the worker is deliberately single-threaded per connection so
 * replies preserve query order (the FIFO property the coordinator's
 * reply matching relies on).
 *
 * Robustness contract: a frame that decodes but violates the
 * protocol (unknown shard, stale generation, config makeBackend()
 * would reject) yields a typed ErrorReply and the connection stays
 * up; only an unrecoverable transport failure (poisoned stream,
 * peer close) or an explicit Shutdown frame ends the loop. A worker
 * must never abort on anything a peer sent it.
 *
 * Two deployment shapes share this class: tools/shard_worker wraps
 * it in a process around a UnixServerSocket, and InProcessWorker
 * runs it on a thread over a socketpair — which is how tests and
 * the fault-injection harness exercise the exact production serve
 * loop without process management.
 */

#ifndef A3_SERVING_REMOTE_WORKER_HPP
#define A3_SERVING_REMOTE_WORKER_HPP

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "attention/backend.hpp"
#include "net/transport.hpp"
#include "serving/remote_protocol.hpp"

namespace a3 {

/**
 * Reject an EngineConfig that arrived over the wire if
 * makeBackend() would fatal() on it (non-positive quantization
 * widths, input word over the lane budget). The worker gates every
 * BindShard through this so a hostile or buggy peer gets a typed
 * ErrorReply instead of killing the process.
 */
NetStatus validateRemoteEngineConfig(const EngineConfig &config);

/** Serves BindShard/Query/Heartbeat frames on one connection. */
class ShardWorker
{
  public:
    explicit ShardWorker(std::string name);

    /**
     * Answer frames on `transport` until a Shutdown frame (returns
     * Ok), orderly peer close (returns Closed), or an unrecoverable
     * transport failure (returns that status). Recoverable protocol
     * errors — bad checksums, malformed payloads, unknown shards,
     * stale generations — are answered with ErrorReply frames and
     * the loop continues.
     */
    NetStatus serve(Transport &transport);

    /** Shards currently bound (distinct shard ids). */
    std::size_t shardsBound() const { return shards_.size(); }

    const std::string &name() const { return name_; }

  private:
    struct BoundShard
    {
        std::uint64_t generation = 0;
        std::unique_ptr<AttentionBackend> backend;
    };

    /** Dispatch one frame; false only when serve() must stop. */
    bool handleFrame(Transport &transport, const Frame &frame,
                     NetStatus &stop);

    void handleBind(Transport &transport, const Frame &frame);
    void handleQuery(Transport &transport, const Frame &frame);

    std::string name_;
    std::map<std::uint32_t, BoundShard> shards_;
};

/**
 * A ShardWorker on a dedicated thread over a socketpair — the
 * production serve loop without the process. clientTransport() is
 * the coordinator-side endpoint (wrap it in a FaultyTransport to
 * inject faults between coordinator and this worker). stop() closes
 * the worker side, which unblocks the serve loop and joins the
 * thread; the destructor stops implicitly.
 */
class InProcessWorker
{
  public:
    explicit InProcessWorker(std::string name);
    ~InProcessWorker();

    InProcessWorker(const InProcessWorker &) = delete;
    InProcessWorker &operator=(const InProcessWorker &) = delete;

    std::shared_ptr<Transport> clientTransport() { return client_; }

    /** Close both endpoints and join the serve thread. */
    void stop();

    const std::string &name() const { return worker_.name(); }

  private:
    ShardWorker worker_;
    std::shared_ptr<Transport> client_;
    std::shared_ptr<Transport> server_;
    std::thread thread_;
};

}  // namespace a3

#endif  // A3_SERVING_REMOTE_WORKER_HPP
