#!/usr/bin/env python3
"""Check that in-repo markdown links resolve.

Walks every tracked *.md file (or the files given on the command
line), extracts inline links and images ([text](target)), and fails
(exit 1) when a relative target does not exist on disk. External
links (http/https/mailto) are not fetched — CI must not depend on
network weather — and pure intra-document anchors (#section) are
skipped; a relative target's own "#fragment" suffix is stripped
before the existence check.

Usage, from the repository root:

    python3 tools/check_markdown_links.py            # all *.md
    python3 tools/check_markdown_links.py README.md docs/*.md
"""

import os
import re
import sys

# Inline links/images: [text](target) and ![alt](target). Targets
# with spaces are not used in this repo; <>-wrapped targets are.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(<?([^)<>\s]+)>?\)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "ftp://")


def markdown_files(root):
    found = []
    for base, dirs, names in os.walk(root):
        dirs[:] = [d for d in dirs
                   if d not in (".git", "build", ".github")]
        for name in names:
            if name.endswith(".md"):
                found.append(os.path.join(base, name))
    return sorted(found)


def check_file(path):
    broken = []
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    # Fenced code blocks contain example links that need not
    # resolve; drop them before extracting targets.
    text = re.sub(r"```.*?```", "", text, flags=re.DOTALL)
    for match in LINK_RE.finditer(text):
        target = match.group(1)
        if target.startswith(SKIP_SCHEMES) or target.startswith("#"):
            continue
        target = target.split("#", 1)[0]
        if not target:
            continue
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(path), target))
        if not os.path.exists(resolved):
            broken.append((target, resolved))
    return broken


def main():
    paths = sys.argv[1:] or markdown_files(".")
    failures = 0
    for path in paths:
        for target, resolved in check_file(path):
            print("FAIL %s: link %r -> missing %s"
                  % (path, target, resolved))
            failures += 1
    if failures:
        print("\n%d broken in-repo link(s)" % failures)
        return 1
    print("all in-repo markdown links resolve (%d file(s))"
          % len(paths))
    return 0


if __name__ == "__main__":
    sys.exit(main())
