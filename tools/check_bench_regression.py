#!/usr/bin/env python3
"""Gate bench JSON metrics against a committed baseline.

Reads the JSON emitted by bench/engine_throughput,
bench/serving_throughput, bench/overload_fairness,
bench/distributed_scaling, bench/prefix_sharing, and
bench/trace_replay plus a baseline file (default
bench/baselines/ci_baseline.json) describing the metrics to gate,
and fails (exit 1) when any metric regresses past the tolerance
factor: for higher-is-better metrics the current value must be at
least baseline / tolerance; for lower-is-better, at most baseline *
tolerance. The default tolerance of 2.0 means ">2x regressions
fail" while absorbing the noise of shared CI runners; count-derived
metrics (shed rate, fairness shares) are deterministic and carry
tighter per-metric tolerances in the baseline.

A metric that cannot be evaluated against its document — the
baseline names a path or field the run didn't emit, or the run's
shape drifted from what the baseline expects — is reported as a
named FAIL rather than crashing the gate, so a bench that silently
stops emitting a gated metric cannot turn the check green.

Baseline format (see bench/baselines/ci_baseline.json):

    {
      "tolerance": 2.0,            # global factor, per-metric override
      "metrics": [
        {
          "name": "...",           # label used in the report
          "file": "engine",        # which --engine/--serving doc
          "path": [],              # keys into the doc to reach a row
                                   # array ([] when the doc is one)
          "where": {"backend": "reference", "kernels": "!scalar"},
          "field": "speedup_vs_scalar",
          "aggregate": "max",      # max | min | mean over matches
          "baseline": 1.5,
          "direction": "higher",   # higher | lower is better
          "tolerance": 2.0         # optional override
        }, ...
      ]
    }

A "where" value starting with "!" matches rows whose field differs;
other values must compare equal after str() coercion.

Local usage, from the repository root:

    cmake --build build -j
    ./build/bench/engine_throughput --repeats 5 --batch 16 > eng.json
    ./build/bench/serving_throughput --repeats 5 --max-rows 512 \
        > srv.json
    ./build/bench/overload_fairness --rounds 20 > ovl.json
    ./build/bench/distributed_scaling --workers 2 --rows 512 \
        > dst.json
    ./build/bench/prefix_sharing --repeats 5 --max-rows 1536 \
        > pfx.json
    ./build/bench/trace_replay --duration 20 > trc.json
    python3 tools/check_bench_regression.py \
        --baseline bench/baselines/ci_baseline.json \
        --engine eng.json --serving srv.json --overload ovl.json \
        --distributed dst.json --prefix pfx.json --trace trc.json
"""

import argparse
import json
import sys


def load_json(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def rows_at(doc, path):
    """Descend `path` keys into `doc` and return the row array."""
    node = doc
    for key in path:
        if not isinstance(node, dict) or key not in node:
            raise KeyError("path %r not found in document" % (path,))
        node = node[key]
    if not isinstance(node, list):
        raise KeyError("path %r does not name a row array" % (path,))
    return node


def matches(row, where):
    for key, want in (where or {}).items():
        got = str(row.get(key))
        if isinstance(want, str) and want.startswith("!"):
            if got == want[1:]:
                return False
        elif got != str(want):
            return False
    return True


def aggregate(values, how):
    if how == "max":
        return max(values)
    if how == "min":
        return min(values)
    if how == "mean":
        return sum(values) / len(values)
    raise ValueError("unknown aggregate %r" % how)


def check_metric(metric, docs, default_tolerance):
    name = metric["name"]
    doc = docs.get(metric["file"])
    if doc is None:
        return (name, None, None, "skip",
                "no --%s document supplied" % metric["file"])
    rows = rows_at(doc, metric.get("path", []))
    values = [row[metric["field"]]
              for row in rows
              if matches(row, metric.get("where"))
              and metric["field"] in row]
    if not values:
        return (name, None, metric["baseline"], "fail",
                "no rows matched %r with field %r"
                % (metric.get("where"), metric["field"]))

    current = aggregate(values, metric.get("aggregate", "max"))
    baseline = metric["baseline"]
    tolerance = metric.get("tolerance", default_tolerance)
    direction = metric.get("direction", "higher")
    if direction == "higher":
        ok = current >= baseline / tolerance
        bound = "%.4g >= %.4g / %.2g" % (current, baseline, tolerance)
    elif direction == "lower":
        ok = current <= baseline * tolerance
        bound = "%.4g <= %.4g * %.2g" % (current, baseline, tolerance)
    else:
        raise ValueError("unknown direction %r" % direction)
    return (name, current, baseline, "ok" if ok else "fail", bound)


def main():
    parser = argparse.ArgumentParser(
        description="Compare bench JSON metrics against a baseline.")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline JSON")
    parser.add_argument("--engine",
                        help="engine_throughput JSON output")
    parser.add_argument("--serving",
                        help="serving_throughput JSON output")
    parser.add_argument("--overload",
                        help="overload_fairness JSON output")
    parser.add_argument("--distributed",
                        help="distributed_scaling JSON output")
    parser.add_argument("--prefix",
                        help="prefix_sharing JSON output")
    parser.add_argument("--trace",
                        help="trace_replay JSON output")
    parser.add_argument("--tolerance", type=float, default=None,
                        help="override the baseline's tolerance")
    args = parser.parse_args()

    baseline = load_json(args.baseline)
    default_tolerance = (args.tolerance
                         if args.tolerance is not None
                         else baseline.get("tolerance", 2.0))
    docs = {}
    if args.engine:
        docs["engine"] = load_json(args.engine)
    if args.serving:
        docs["serving"] = load_json(args.serving)
    if args.overload:
        docs["overload"] = load_json(args.overload)
    if args.distributed:
        docs["distributed"] = load_json(args.distributed)
    if args.prefix:
        docs["prefix"] = load_json(args.prefix)
    if args.trace:
        docs["trace"] = load_json(args.trace)

    failures = 0
    for metric in baseline["metrics"]:
        name = metric.get("name", "<unnamed metric>")
        try:
            name, current, base, status, detail = check_metric(
                metric, docs, default_tolerance)
        except (KeyError, TypeError, ValueError) as err:
            # A baseline/run shape mismatch (metric gated but not
            # emitted, or vice versa a malformed baseline entry) is
            # a gate failure, not a crash.
            status = "fail"
            detail = "could not evaluate metric: %s" % err
        marker = {"ok": "OK  ", "fail": "FAIL", "skip": "SKIP"}[status]
        print("%s %-48s %s" % (marker, name, detail))
        if status == "fail":
            failures += 1

    if failures:
        print("\n%d metric(s) regressed past the tolerance factor"
              % failures)
        return 1
    print("\nall gated metrics within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
