/**
 * @file
 * Shard worker process of the distributed serving tier.
 *
 * Usage: shard_worker <socket-path> [name]
 *
 * Listens on an AF_UNIX socket and serves one coordinator
 * connection at a time with the library's ShardWorker loop —
 * binding shards, answering queries, echoing heartbeats. A peer
 * that disconnects (or a poisoned stream) sends the worker back to
 * accept(); an explicit Shutdown frame exits the process. All
 * bound shards die with the connection's process state only when
 * the process does — which is exactly what the coordinator's
 * kill-recovery tests exercise with SIGKILL.
 */

#include <cstdio>

#include "net/transport.hpp"
#include "serving/remote_worker.hpp"

int
main(int argc, char **argv)
{
    if (argc < 2 || argc > 3) {
        std::fprintf(stderr,
                     "usage: %s <socket-path> [name]\n", argv[0]);
        return 2;
    }
    const std::string path = argv[1];
    const std::string name = argc == 3 ? argv[2] : "shard-worker";

    a3::UnixServerSocket server;
    a3::NetStatus status = server.listenOn(path);
    if (!status.ok()) {
        std::fprintf(stderr, "%s: cannot listen on %s: %s\n",
                     name.c_str(), path.c_str(),
                     status.str().c_str());
        return 1;
    }

    a3::ShardWorker worker(name);
    while (true) {
        auto transport = server.accept(-1.0, status);
        if (transport == nullptr) {
            std::fprintf(stderr, "%s: accept failed: %s\n",
                         name.c_str(), status.str().c_str());
            return 1;
        }
        status = worker.serve(*transport);
        if (status.ok())
            return 0;  // orderly Shutdown frame
        // Peer gone or stream poisoned: await the next
        // coordinator connection.
    }
}
