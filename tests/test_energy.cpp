/**
 * @file
 * Tests for the Table I power/area model and energy accounting.
 */

#include <gtest/gtest.h>

#include "energy/power_model.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(Table1, TotalsMatchPaper)
{
    const ModulePower total = table1::fullTotal();
    EXPECT_NEAR(total.areaMm2, 2.082, 1e-9);
    EXPECT_NEAR(total.dynamicMw, 98.917, 0.01);  // paper rounds 98.92
    EXPECT_NEAR(total.staticMw, 11.502, 1e-9);
}

TEST(Table1, BaseTotalExcludesApproximationModules)
{
    const ModulePower base = table1::baseTotal();
    const ModulePower full = table1::fullTotal();
    EXPECT_NEAR(full.areaMm2 - base.areaMm2,
                0.277 + 0.010 + 0.919, 1e-9);
    EXPECT_LT(base.dynamicMw, full.dynamicMw);
}

TEST(Table1, AllModulesListed)
{
    EXPECT_EQ(table1::allModules().size(), 8u);
}

TEST(ReferenceDevices, MatchSectionVID)
{
    const ReferenceDevice cpu = xeonGold6128();
    EXPECT_DOUBLE_EQ(cpu.tdpW, 115.0);
    EXPECT_DOUBLE_EQ(cpu.dieAreaMm2, 325.0);
    const ReferenceDevice gpu = titanV();
    EXPECT_DOUBLE_EQ(gpu.tdpW, 250.0);
    EXPECT_DOUBLE_EQ(gpu.dieAreaMm2, 815.0);
    // Paper: CPU die is 156x one A3 unit, GPU 391x.
    EXPECT_NEAR(cpu.dieAreaMm2 / table1::fullTotal().areaMm2, 156.0,
                1.0);
    EXPECT_NEAR(gpu.dieAreaMm2 / table1::fullTotal().areaMm2, 391.0,
                1.0);
}

TEST(EnergyBreakdown, FractionsSumToOne)
{
    EnergyBreakdown e;
    e.candidateSelection = 1.0;
    e.dotProduct = 2.0;
    e.exponentWithPostScoring = 3.0;
    e.output = 4.0;
    e.memory = 10.0;
    EXPECT_DOUBLE_EQ(e.total(), 20.0);
    const auto f = e.fractions();
    double sum = 0.0;
    for (double x : f)
        sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-12);
    EXPECT_DOUBLE_EQ(f[4], 0.5);
}

TEST(PowerModel, ReferenceEnergyIsTdpTimesTime)
{
    EXPECT_DOUBLE_EQ(
        PowerModel::referenceEnergy(xeonGold6128(), 2.0), 230.0);
}

TEST(PowerModel, OpsPerJoule)
{
    EXPECT_DOUBLE_EQ(PowerModel::opsPerJoule(1000.0, 2.0), 500.0);
}

TEST(PowerModel, SimulatedRunEnergyIsPositiveAndSplit)
{
    Rng rng(7000);
    const std::size_t n = 64;
    Matrix key(n, 64);
    Matrix value(n, 64);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < 64; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    Vector query(64);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());

    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = 64;
    cfg.mode = A3Mode::Approx;
    cfg.approx = ApproxConfig::conservative();
    A3Accelerator acc(cfg);
    acc.loadTask(key, value);
    acc.runAll({query, query, query});

    const EnergyBreakdown e = PowerModel::computeEnergy(acc);
    EXPECT_GT(e.total(), 0.0);
    EXPECT_GT(e.candidateSelection, 0.0);
    EXPECT_GT(e.dotProduct, 0.0);
    EXPECT_GT(e.exponentWithPostScoring, 0.0);
    EXPECT_GT(e.output, 0.0);
    EXPECT_GT(e.memory, 0.0);

    // Sanity scale: a few hundred cycles at <111 mW total power must
    // land in the nanojoule range.
    EXPECT_LT(e.total(), 1e-3);
}

TEST(PowerModel, BaseModeChargesNoApproximationModules)
{
    Rng rng(7001);
    const std::size_t n = 32;
    Matrix key(n, 64);
    Matrix value(n, 64);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < 64; ++c) {
            key(r, c) = static_cast<float>(rng.normal());
            value(r, c) = static_cast<float>(rng.normal());
        }
    }
    Vector query(64);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());

    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    A3Accelerator acc(cfg);
    acc.loadTask(key, value);
    acc.runAll({query});
    const EnergyBreakdown e = PowerModel::computeEnergy(acc);
    EXPECT_DOUBLE_EQ(e.candidateSelection, 0.0);
    EXPECT_GT(e.dotProduct, 0.0);
}

TEST(PowerModel, HandCheckedModuleEnergy)
{
    // 1000 active cycles of the dot-product module at 1 GHz:
    // dynamic 14.338 mW * 1 us = 14.338 nJ; plus static over elapsed.
    Rng rng(7002);
    const std::size_t n = 991;  // dot stage active = n + 9 = 1000
    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    Matrix key(n, 64);
    Matrix value(n, 64);
    Vector query(64);
    for (auto &x : query)
        x = 1.0f;
    A3Accelerator acc(cfg);
    acc.loadTask(key, value);
    acc.runAll({query});
    const EnergyBreakdown e = PowerModel::computeEnergy(acc);
    const double elapsedSec = static_cast<double>(acc.now()) / 1e9;
    const double expectedDot =
        14.338e-3 * 1000.0 / 1e9 + 1.265e-3 * elapsedSec;
    EXPECT_NEAR(e.dotProduct, expectedDot, expectedDot * 1e-9);
}

}  // namespace
}  // namespace a3
