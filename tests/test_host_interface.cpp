/**
 * @file
 * Tests for the host-interface driver model (Section VI-D test chip).
 */

#include <gtest/gtest.h>

#include <bit>

#include "sim/host_interface.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

struct RandomTask
{
    Matrix key;
    Matrix value;
    Vector query;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    t.query.resize(d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    for (auto &x : t.query)
        x = static_cast<float>(rng.normal());
    return t;
}

SimConfig
smallConfig()
{
    SimConfig cfg;
    cfg.maxRows = 32;
    cfg.dims = 64;
    cfg.mode = A3Mode::Base;
    return cfg;
}

TEST(HostInterface, EndToEndQueryMatchesDirectDevice)
{
    Rng rng(9500);
    const RandomTask t = makeTask(rng, 16, 64);

    // Via the serial driver.
    A3Accelerator device(smallConfig());
    HostInterface host(device);
    host.loadTask(t.key, t.value);
    host.submitQuery(t.query);
    const auto viaLink = host.readOutput();
    ASSERT_TRUE(viaLink.has_value());

    // Direct device access.
    A3Accelerator direct(smallConfig());
    direct.loadTask(t.key, t.value);
    direct.submitQuery(t.query);
    direct.drain();
    const auto out = direct.popOutput();
    ASSERT_TRUE(out.has_value());

    EXPECT_EQ(*viaLink, out->result.output);
}

TEST(HostInterface, RawProtocolWordsWork)
{
    Rng rng(9501);
    const RandomTask t = makeTask(rng, 4, 64);
    A3Accelerator device(smallConfig());
    HostInterface host(device);

    auto sendMatrix = [&host](HostOpcode op, const Matrix &m) {
        host.writeWord(static_cast<std::uint32_t>(op));
        host.writeWord(static_cast<std::uint32_t>(m.rows()));
        host.writeWord(static_cast<std::uint32_t>(m.cols()));
        for (float v : m.data())
            host.writeWord(std::bit_cast<std::uint32_t>(v));
    };
    sendMatrix(HostOpcode::LoadKey, t.key);
    sendMatrix(HostOpcode::LoadValue, t.value);

    host.writeWord(static_cast<std::uint32_t>(HostOpcode::Submit));
    for (float v : t.query)
        host.writeWord(std::bit_cast<std::uint32_t>(v));

    host.writeWord(static_cast<std::uint32_t>(HostOpcode::ReadOutput));
    Vector out(64);
    for (auto &x : out)
        x = std::bit_cast<float>(host.readWord());
    EXPECT_EQ(out.size(), 64u);
}

TEST(HostInterface, StatusReportsQueueDepths)
{
    Rng rng(9502);
    const RandomTask t = makeTask(rng, 8, 64);
    A3Accelerator device(smallConfig());
    HostInterface host(device);
    host.loadTask(t.key, t.value);

    auto [pending0, inflight0] = host.status();
    EXPECT_EQ(pending0, 0u);
    EXPECT_EQ(inflight0, 0u);

    host.submitQuery(t.query);
    auto [pending1, inflight1] = host.status();
    EXPECT_EQ(pending1, 0u);
    EXPECT_EQ(inflight1, 1u);

    device.drain();
    auto [pending2, inflight2] = host.status();
    EXPECT_EQ(pending2, 1u);
    EXPECT_EQ(inflight2, 0u);
}

TEST(HostInterface, ReadOutputEmptyWhenIdle)
{
    A3Accelerator device(smallConfig());
    HostInterface host(device);
    Matrix key(4, 64);
    Matrix value(4, 64);
    host.loadTask(key, value);
    EXPECT_FALSE(host.readOutput().has_value());
}

TEST(HostInterface, LinkCyclesAccumulate)
{
    Rng rng(9503);
    const RandomTask t = makeTask(rng, 4, 64);
    A3Accelerator device(smallConfig());
    HostInterface host(device, 10);
    host.loadTask(t.key, t.value);
    // Two matrices: 2 * (1 opcode + 2 shape + 4*64 payload) words.
    const Cycle expected = 10 * 2 * (1 + 2 + 4 * 64);
    EXPECT_EQ(host.linkCycles(), expected);

    host.submitQuery(t.query);
    EXPECT_EQ(host.linkCycles(),
              expected + host.queryTransferCycles());
}

TEST(HostInterface, QueryTransferIsTheOnlyCriticalPathCost)
{
    // Section III-C: matrices copy at comprehension time; the query
    // transfer (1 + d words) is the only link cost on the
    // query-response path, and at 32 cycles/word it is comparable to
    // the pipeline latency — motivating tighter host integration.
    A3Accelerator device(smallConfig());
    HostInterface host(device, 32);
    EXPECT_EQ(host.queryTransferCycles(), 32u * 65u);
}

}  // namespace
}  // namespace a3
