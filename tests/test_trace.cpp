/**
 * @file
 * Tests for the trace subsystem: seeded generation bit-identity,
 * Zipf / Poisson / bursty / diurnal arrival statistics against the
 * configured parameters, structural invariants of generated traces
 * (bind-before-query, chat-only appends, context-window cap),
 * content-stream prefix stability, and the virtual-clock replay
 * driver — trivial-trace bit-identity against direct backend runs,
 * cross-run determinism, deadline accounting, admission sheds under
 * overload, cross-session store reuse, and eviction churn without
 * query loss.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "serving/shard_store.hpp"
#include "trace/generator.hpp"
#include "trace/replay.hpp"
#include "trace/trace.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

/** Fresh unique spill directory; removed by the destructor. */
class TempDir
{
  public:
    TempDir()
    {
        char templ[] = "/tmp/a3_trace_test_XXXXXX";
        const char *made = mkdtemp(templ);
        if (made == nullptr)
            std::abort();
        path_ = made;
    }

    ~TempDir()
    {
        const std::string cmd = "rm -rf '" + path_ + "'";
        [[maybe_unused]] const int rc = std::system(cmd.c_str());
    }

    const std::string &path() const { return path_; }

  private:
    std::string path_;
};

bool
sameEvent(const TraceEvent &a, const TraceEvent &b)
{
    return a.timeSeconds == b.timeSeconds && a.session == b.session &&
           a.kind == b.kind && a.style == b.style &&
           a.document == b.document && a.rows == b.rows &&
           a.payloadSeed == b.payloadSeed &&
           a.deadlineSeconds == b.deadlineSeconds;
}

TraceConfig
smallConfig()
{
    TraceConfig config;
    config.seed = 7;
    config.durationSeconds = 5.0;
    config.arrivalsPerSecond = 80.0;
    config.sessionCount = 16;
    config.documentCount = 4;
    config.contextRows = {{64, 0.7}, {192, 0.3}};
    config.appendRows = 32;
    config.maxContextRows = 512;
    return config;
}

// ---------------------------------------------------------------
// Generator
// ---------------------------------------------------------------

TEST(TraceGenerator, SeededGenerationBitIdentical)
{
    const TraceConfig config = smallConfig();
    const Trace a = generateTrace(config);
    const Trace b = generateTrace(config);
    ASSERT_EQ(a.events.size(), b.events.size());
    for (std::size_t i = 0; i < a.events.size(); ++i)
        EXPECT_TRUE(sameEvent(a.events[i], b.events[i])) << i;

    TraceConfig other = config;
    other.seed = 8;
    const Trace c = generateTrace(other);
    bool differs = c.events.size() != a.events.size();
    for (std::size_t i = 0; !differs && i < a.events.size(); ++i)
        differs = !sameEvent(a.events[i], c.events[i]);
    EXPECT_TRUE(differs);
}

TEST(TraceGenerator, ZipfSamplerMatchesProbabilities)
{
    const std::size_t n = 8;
    ZipfSampler zipf(n, 1.2);
    double total = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
        EXPECT_GT(zipf.probability(k), 0.0);
        if (k > 0)
            EXPECT_LT(zipf.probability(k), zipf.probability(k - 1));
        total += zipf.probability(k);
    }
    EXPECT_NEAR(total, 1.0, 1e-12);

    Rng rng(123);
    const std::size_t draws = 50000;
    std::vector<std::size_t> counts(n, 0);
    for (std::size_t i = 0; i < draws; ++i)
        ++counts[zipf.sample(rng)];
    for (std::size_t k = 0; k < n; ++k) {
        const double expected =
            zipf.probability(k) * static_cast<double>(draws);
        EXPECT_NEAR(static_cast<double>(counts[k]), expected,
                    5.0 * std::sqrt(expected) + 5.0)
            << "rank " << k;
    }
}

TEST(TraceGenerator, QueryTrafficIsZipfSkewed)
{
    TraceConfig config = smallConfig();
    config.durationSeconds = 60.0;
    config.arrivalsPerSecond = 200.0;
    config.zipfExponent = 1.2;
    const Trace trace = generateTrace(config);

    std::vector<std::size_t> perSession(config.sessionCount, 0);
    std::size_t queries = 0;
    for (const TraceEvent &event : trace.events) {
        if (event.kind != TraceEventKind::Query)
            continue;
        ++perSession[event.session];
        ++queries;
    }
    ASSERT_GT(queries, 5000u);

    // The empirical frequency of the hottest sessions must match
    // the configured Zipf mass within sampling noise.
    ZipfSampler zipf(config.sessionCount, config.zipfExponent);
    for (std::size_t rank : {0u, 1u, 2u}) {
        const double expected = zipf.probability(rank);
        const double got = static_cast<double>(perSession[rank]) /
                           static_cast<double>(queries);
        EXPECT_NEAR(got, expected, 0.25 * expected) << rank;
    }
    EXPECT_GT(perSession[0], perSession[config.sessionCount - 1]);
}

TEST(TraceGenerator, PoissonArrivalsMatchConfiguredRate)
{
    TraceConfig config = smallConfig();
    config.arrivals = ArrivalProcess::Poisson;
    config.durationSeconds = 100.0;
    config.arrivalsPerSecond = 120.0;
    const Trace trace = generateTrace(config);

    std::vector<double> times;
    for (const TraceEvent &event : trace.events)
        if (event.kind == TraceEventKind::Query)
            times.push_back(event.timeSeconds);
    const auto count = static_cast<double>(times.size());
    const double expected =
        config.arrivalsPerSecond * config.durationSeconds;
    EXPECT_NEAR(count, expected, 4.0 * std::sqrt(expected));

    // Mean inter-arrival time ~ 1 / rate.
    double gaps = 0.0;
    for (std::size_t i = 1; i < times.size(); ++i)
        gaps += times[i] - times[i - 1];
    const double meanGap = gaps / (count - 1.0);
    EXPECT_NEAR(meanGap, 1.0 / config.arrivalsPerSecond,
                0.1 / config.arrivalsPerSecond);
}

TEST(TraceGenerator, BurstyArrivalsHitTheBurstFactor)
{
    TraceConfig config = smallConfig();
    config.arrivals = ArrivalProcess::Bursty;
    config.durationSeconds = 200.0;
    config.arrivalsPerSecond = 100.0;
    config.burstFactor = 4.0;
    config.burstDutyCycle = 0.25;
    config.burstPeriodSeconds = 10.0;
    const Trace trace = generateTrace(config);

    double onSeconds = 0.0;
    double offSeconds = 0.0;
    std::size_t onArrivals = 0;
    std::size_t offArrivals = 0;
    const double period = config.burstPeriodSeconds;
    const double duty = config.burstDutyCycle;
    onSeconds = config.durationSeconds * duty;
    offSeconds = config.durationSeconds * (1.0 - duty);
    for (const TraceEvent &event : trace.events) {
        if (event.kind != TraceEventKind::Query)
            continue;
        const double phase =
            std::fmod(event.timeSeconds, period) / period;
        if (phase < duty)
            ++onArrivals;
        else
            ++offArrivals;
    }
    const double onRate = static_cast<double>(onArrivals) / onSeconds;
    const double offRate =
        static_cast<double>(offArrivals) / offSeconds;
    EXPECT_NEAR(onRate / offRate, config.burstFactor,
                0.2 * config.burstFactor);

    // The duty-cycle-weighted mean stays at the configured rate.
    const double mean =
        static_cast<double>(onArrivals + offArrivals) /
        config.durationSeconds;
    EXPECT_NEAR(mean, config.arrivalsPerSecond,
                0.08 * config.arrivalsPerSecond);
}

TEST(TraceGenerator, DiurnalArrivalsFollowTheSinusoid)
{
    TraceConfig config = smallConfig();
    config.arrivals = ArrivalProcess::Diurnal;
    config.durationSeconds = 100.0;
    config.arrivalsPerSecond = 100.0;
    config.diurnalPeriodSeconds = 100.0;
    config.diurnalAmplitude = 0.9;
    const Trace trace = generateTrace(config);

    // First half-period carries the sinusoid's peak, second the
    // trough: (1 + A sin) integrates to 1 +- 2A/pi per half.
    std::size_t first = 0;
    std::size_t second = 0;
    for (const TraceEvent &event : trace.events) {
        if (event.kind != TraceEventKind::Query)
            continue;
        (event.timeSeconds < 50.0 ? first : second)++;
    }
    const double expectRatio =
        (1.0 + 2.0 * config.diurnalAmplitude / M_PI) /
        (1.0 - 2.0 * config.diurnalAmplitude / M_PI);
    const double gotRatio = static_cast<double>(first) /
                            static_cast<double>(second);
    EXPECT_NEAR(gotRatio, expectRatio, 0.25 * expectRatio);

    const double mean =
        static_cast<double>(first + second) / config.durationSeconds;
    EXPECT_NEAR(mean, config.arrivalsPerSecond,
                0.08 * config.arrivalsPerSecond);
}

TEST(TraceGenerator, ArrivalRateAtReflectsEveryProcess)
{
    TraceConfig config = smallConfig();
    config.arrivalsPerSecond = 100.0;

    config.arrivals = ArrivalProcess::Poisson;
    EXPECT_DOUBLE_EQ(arrivalRateAt(config, 3.0), 100.0);
    EXPECT_DOUBLE_EQ(peakArrivalRate(config), 100.0);

    config.arrivals = ArrivalProcess::Bursty;
    config.burstFactor = 4.0;
    config.burstDutyCycle = 0.25;
    config.burstPeriodSeconds = 8.0;
    const double base = 100.0 / (0.25 * 4.0 + 0.75);
    EXPECT_NEAR(arrivalRateAt(config, 0.5), base * 4.0, 1e-9);
    EXPECT_NEAR(arrivalRateAt(config, 4.0), base, 1e-9);
    EXPECT_NEAR(peakArrivalRate(config), base * 4.0, 1e-9);

    config.arrivals = ArrivalProcess::Diurnal;
    config.diurnalPeriodSeconds = 40.0;
    config.diurnalAmplitude = 0.5;
    EXPECT_NEAR(arrivalRateAt(config, 10.0), 150.0, 1e-9);
    EXPECT_NEAR(arrivalRateAt(config, 30.0), 50.0, 1e-9);
    EXPECT_NEAR(peakArrivalRate(config), 150.0, 1e-9);
}

TEST(TraceGenerator, ContextLengthMixtureMatchesWeights)
{
    TraceConfig config = smallConfig();
    config.durationSeconds = 30.0;
    config.arrivalsPerSecond = 100.0;
    config.sessionCount = 400;
    config.zipfExponent = 0.2;  // near-uniform: touch many sessions
    config.ragFraction = 0.0;   // chat only: rows drawn per session
    config.contextRows = {{64, 0.5}, {192, 0.5}};
    const Trace trace = generateTrace(config);

    std::size_t small = 0;
    std::size_t large = 0;
    for (const TraceEvent &event : trace.events) {
        if (event.kind != TraceEventKind::Bind)
            continue;
        if (event.rows == 64)
            ++small;
        else if (event.rows == 192)
            ++large;
        else
            FAIL() << "unexpected bind rows " << event.rows;
    }
    const double total = static_cast<double>(small + large);
    ASSERT_GT(total, 100.0);
    EXPECT_NEAR(static_cast<double>(small) / total, 0.5, 0.12);
}

TEST(TraceGenerator, ChatSessionsAppendRagSessionsDoNot)
{
    TraceConfig config = smallConfig();
    config.durationSeconds = 20.0;
    config.arrivalsPerSecond = 150.0;
    config.ragFraction = 0.5;
    config.appendEveryQueries = 3;
    const Trace trace = generateTrace(config);

    std::vector<std::uint32_t> rows(config.sessionCount, 0);
    bool sawChatAppend = false;
    for (const TraceEvent &event : trace.events) {
        if (event.kind == TraceEventKind::Bind) {
            rows[event.session] = event.rows;
            if (event.style == SessionStyle::Rag)
                EXPECT_LT(event.document, config.documentCount);
            else
                EXPECT_EQ(event.document, kPrivateDocument);
        } else if (event.kind == TraceEventKind::Append) {
            EXPECT_EQ(event.style, SessionStyle::Chat);
            sawChatAppend = true;
            rows[event.session] += event.rows;
            EXPECT_LE(rows[event.session], config.maxContextRows);
        }
    }
    EXPECT_TRUE(sawChatAppend);
}

TEST(TraceGenerator, EventsSortedAndWellFormed)
{
    const Trace trace = generateTrace(smallConfig());
    const TraceConfig config = smallConfig();
    ASSERT_FALSE(trace.events.empty());
    EXPECT_EQ(trace.sessionCount, config.sessionCount);

    std::vector<bool> bound(trace.sessionCount, false);
    double last = 0.0;
    for (const TraceEvent &event : trace.events) {
        EXPECT_GE(event.timeSeconds, last);
        last = event.timeSeconds;
        EXPECT_LT(event.timeSeconds, trace.durationSeconds);
        ASSERT_LT(event.session, trace.sessionCount);
        switch (event.kind) {
        case TraceEventKind::Bind:
            EXPECT_FALSE(bound[event.session]);
            EXPECT_GT(event.rows, 0u);
            bound[event.session] = true;
            break;
        case TraceEventKind::Append:
            EXPECT_TRUE(bound[event.session]);
            EXPECT_GT(event.rows, 0u);
            break;
        case TraceEventKind::Query:
            EXPECT_TRUE(bound[event.session]);
            EXPECT_EQ(event.rows, 0u);
            EXPECT_TRUE(event.deadlineSeconds ==
                            config.tightDeadlineSeconds ||
                        event.deadlineSeconds ==
                            config.looseDeadlineSeconds);
            break;
        }
    }
    EXPECT_EQ(trace.countOf(TraceEventKind::Bind) +
                  trace.countOf(TraceEventKind::Append) +
                  trace.countOf(TraceEventKind::Query),
              trace.events.size());
}

// ---------------------------------------------------------------
// Content streams
// ---------------------------------------------------------------

TEST(TraceContent, StreamsArePrefixStableAndDistinct)
{
    const Matrix full = traceContentMatrix(42, 10, 8);
    const Matrix prefix = traceContentMatrix(42, 6, 8);
    for (std::size_t r = 0; r < 6; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_EQ(full.at(r, c), prefix.at(r, c));

    const Matrix slice = traceContentRows(42, 6, 4, 8);
    for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 8; ++c)
            EXPECT_EQ(slice.at(r, c), full.at(r + 6, c));

    const Matrix value = traceValueMatrix(42, 10, 8);
    EXPECT_NE(value.at(0, 0), full.at(0, 0));

    const Vector q1 = traceQueryVector(9, 8);
    const Vector q2 = traceQueryVector(9, 8);
    const Vector q3 = traceQueryVector(10, 8);
    EXPECT_EQ(q1, q2);
    EXPECT_NE(q1, q3);
}

// ---------------------------------------------------------------
// Replay
// ---------------------------------------------------------------

/** A hand-built trace: one session, three spaced queries. */
Trace
trivialTrace()
{
    Trace trace;
    trace.seed = 5;
    trace.durationSeconds = 1.0;
    trace.sessionCount = 1;

    TraceEvent bind;
    bind.timeSeconds = 0.01;
    bind.kind = TraceEventKind::Bind;
    bind.rows = 96;
    bind.payloadSeed = 777;
    trace.events.push_back(bind);

    for (int i = 0; i < 3; ++i) {
        TraceEvent query;
        query.timeSeconds = 0.01 + 0.1 * i;
        query.kind = TraceEventKind::Query;
        query.payloadSeed = 1000 + static_cast<std::uint64_t>(i);
        query.deadlineSeconds = 5.0;
        trace.events.push_back(query);
    }
    return trace;
}

TEST(TraceReplay, TrivialTraceMatchesDirectBackendRuns)
{
    const Trace trace = trivialTrace();
    AttentionEngine engine(2);
    ReplayConfig config;
    config.dims = 16;
    config.captureResults = true;
    const ReplayReport report = replayTrace(trace, engine, config);

    EXPECT_EQ(report.queries, 3u);
    EXPECT_EQ(report.served, 3u);
    EXPECT_EQ(report.failedQueries, 0u);
    EXPECT_EQ(report.shed(), 0u);
    EXPECT_EQ(report.deadlineMissed, 0u);
    ASSERT_EQ(report.results.size(), 3u);

    // The replay's answers must be bit-identical to running the
    // same content through a standalone backend.
    const Matrix key = traceContentMatrix(777, 96, config.dims);
    const Matrix value = traceValueMatrix(777, 96, config.dims);
    const std::unique_ptr<AttentionBackend> backend =
        makeBackend(config.engine, key, value);
    std::uint64_t hash = 0xcbf29ce484222325ull;
    for (int i = 0; i < 3; ++i) {
        AttentionResult direct;
        backend->runInto(
            traceQueryVector(1000 + static_cast<std::uint64_t>(i),
                             config.dims),
            direct);
        EXPECT_EQ(report.results[i].output, direct.output) << i;
        EXPECT_EQ(report.results[i].kept, direct.kept) << i;
        hash = hashAttentionResult(hash, direct);
    }
    EXPECT_EQ(report.resultHash, hash);
}

TEST(TraceReplay, DeterministicAcrossRuns)
{
    TraceConfig traceConfig = smallConfig();
    traceConfig.durationSeconds = 2.0;
    traceConfig.arrivalsPerSecond = 60.0;
    const Trace trace = generateTrace(traceConfig);

    AttentionEngine engine(4);
    auto runOnce = [&]() {
        TempDir spill;
        ShardStoreConfig storeConfig;
        storeConfig.spillDir = spill.path();
        ShardStore store(storeConfig);
        ReplayConfig config;
        config.dims = 16;
        config.shardRows = 64;
        config.store = &store;
        config.maxBatch = 8;
        return replayTrace(trace, engine, config);
    };
    const ReplayReport a = runOnce();
    const ReplayReport b = runOnce();
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.shed(), b.shed());
    EXPECT_EQ(a.deadlineMet, b.deadlineMet);
    EXPECT_EQ(a.deadlineMissed, b.deadlineMissed);
    EXPECT_EQ(a.rebinds, b.rebinds);
    EXPECT_EQ(a.cacheEvictions, b.cacheEvictions);
    EXPECT_EQ(a.storeLiveHits, b.storeLiveHits);
    EXPECT_EQ(a.storeSpillRestores, b.storeSpillRestores);
    EXPECT_EQ(a.storeColdBinds, b.storeColdBinds);
    EXPECT_EQ(a.queueWaitP99Ms, b.queueWaitP99Ms);
    EXPECT_EQ(a.resultHash, b.resultHash);
}

TEST(TraceReplay, DeadlineAccountingInVirtualTime)
{
    TraceConfig traceConfig = smallConfig();
    traceConfig.durationSeconds = 2.0;
    traceConfig.arrivalsPerSecond = 100.0;
    traceConfig.tightDeadlineFraction = 1.0;
    traceConfig.tightDeadlineSeconds = 10.0;  // loose in disguise
    const Trace generous = generateTrace(traceConfig);

    AttentionEngine engine(2);
    ReplayConfig config;
    config.dims = 16;
    config.maxBatch = 4;               // 40 q/s capacity...
    config.drainPeriodSeconds = 0.1;   // ...vs 100 q/s offered
    const ReplayReport relaxed =
        replayTrace(generous, engine, config);
    EXPECT_EQ(relaxed.deadlineMissed, 0u);
    EXPECT_DOUBLE_EQ(relaxed.deadlineHitRate, 1.0);

    // Same load, but a budget the backlog cannot possibly meet.
    traceConfig.tightDeadlineSeconds = 0.05;
    const Trace tight = generateTrace(traceConfig);
    const ReplayReport missed = replayTrace(tight, engine, config);
    EXPECT_GT(missed.deadlineMissed, 0u);
    EXPECT_LT(missed.deadlineHitRate, 1.0);
    EXPECT_EQ(missed.failedQueries, 0u);
}

TEST(TraceReplay, AdmissionShedsUnderOverloadAndNothingIsLost)
{
    TraceConfig traceConfig = smallConfig();
    traceConfig.durationSeconds = 3.0;
    traceConfig.arrivalsPerSecond = 150.0;
    const Trace trace = generateTrace(traceConfig);

    AttentionEngine engine(2);
    ReplayConfig config;
    config.dims = 16;
    config.maxBatch = 4;  // 40 q/s capacity vs 150 q/s offered
    config.drainPeriodSeconds = 0.1;
    config.admission.maxQueueDepth = 12;
    const ReplayReport report = replayTrace(trace, engine, config);

    EXPECT_GT(report.shedQueueFull, 0u);
    EXPECT_EQ(report.failedQueries, 0u);
    EXPECT_EQ(report.served + report.shed(), report.queries);
    EXPECT_LE(report.maxPending, 12u + 4u);
}

TEST(TraceReplay, SharedDocumentsHitTheStoreAcrossSessions)
{
    TraceConfig traceConfig = smallConfig();
    traceConfig.durationSeconds = 2.0;
    traceConfig.arrivalsPerSecond = 80.0;
    traceConfig.ragFraction = 1.0;  // every session shares the docs
    traceConfig.documentCount = 2;
    traceConfig.sessionCount = 12;
    traceConfig.contextRows = {{128, 1.0}};
    const Trace trace = generateTrace(traceConfig);

    AttentionEngine engine(2);
    TempDir spill;
    ShardStoreConfig storeConfig;
    storeConfig.spillDir = spill.path();
    ShardStore store(storeConfig);
    ReplayConfig config;
    config.dims = 16;
    config.shardRows = 64;
    config.store = &store;
    const ReplayReport report = replayTrace(trace, engine, config);

    // 12 sessions over 2 documents: at most 2 sets of full shards
    // are cold-bound; every other bind dedups against the store.
    EXPECT_GT(report.storeLiveHits, 0u);
    EXPECT_GT(report.storeHitRate, 0.5);
    EXPECT_EQ(report.failedQueries, 0u);
}

TEST(TraceReplay, AdaptiveDepthAdmissionIsRejectedAsNondeterministic)
{
    const Trace trace = trivialTrace();
    AttentionEngine engine(1);
    ReplayConfig config;
    config.dims = 16;
    config.admission.targetLatencySeconds = 0.1;
    EXPECT_DEATH(replayTrace(trace, engine, config),
                 "nondeterministic");
}

TEST(TraceGenerator, InvalidConfigsAreFatal)
{
    TraceConfig config = smallConfig();
    config.durationSeconds = 0.0;
    EXPECT_DEATH(generateTrace(config), "durationSeconds");

    config = smallConfig();
    config.contextRows.clear();
    EXPECT_DEATH(generateTrace(config), "contextRows");
}

TEST(TraceReplay, EvictionChurnRebindsWithoutLosingQueries)
{
    TraceConfig traceConfig = smallConfig();
    traceConfig.durationSeconds = 3.0;
    traceConfig.arrivalsPerSecond = 80.0;
    traceConfig.zipfExponent = 0.4;  // flat: lots of LRU churn
    traceConfig.contextRows = {{128, 1.0}};
    const Trace trace = generateTrace(traceConfig);

    AttentionEngine engine(2);
    TempDir spill;
    ShardStoreConfig storeConfig;
    storeConfig.spillDir = spill.path();
    ShardStore store(storeConfig);
    ReplayConfig config;
    config.dims = 16;
    config.shardRows = 64;
    config.store = &store;

    // Budget for roughly two sessions out of sixteen.
    const Matrix key = traceContentMatrix(1, 128, config.dims);
    const Matrix value = traceValueMatrix(1, 128, config.dims);
    config.cacheByteBudget =
        makeBackend(config.engine, key, value)->memoryBytes() * 2;

    const ReplayReport report = replayTrace(trace, engine, config);
    EXPECT_GT(report.cacheEvictions, 0u);
    EXPECT_GT(report.rebinds, 0u);
    EXPECT_GT(report.storeSpillRestores, 0u);
    EXPECT_EQ(report.failedQueries, 0u);
    EXPECT_EQ(report.served + report.shed(), report.queries);
}

}  // namespace
}  // namespace a3
