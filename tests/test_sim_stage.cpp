/**
 * @file
 * Tests for the pipeline-stage framework and per-stage cycle models.
 */

#include <gtest/gtest.h>

#include "sim/modules.hpp"
#include "sim/sram.hpp"

namespace a3 {
namespace {

SimConfig
paperConfig(A3Mode mode)
{
    SimConfig cfg;
    cfg.maxRows = 320;
    cfg.dims = 64;
    cfg.mode = mode;
    return cfg;
}

std::unique_ptr<QueryJob>
makeJob(std::size_t n, std::size_t m, std::size_t c, std::size_t k)
{
    auto job = std::make_unique<QueryJob>();
    job->taskRows = n;
    job->iterM = m;
    job->candidatesC = c;
    job->keptK = k;
    return job;
}

TEST(StageCycles, DotProductIsRowsPlusNineAtD64)
{
    const SimConfig cfg = paperConfig(A3Mode::Base);
    DotProductStage stage(cfg, nullptr);
    EXPECT_EQ(stage.serviceTime(*makeJob(320, 0, 320, 320)), 329u);
    EXPECT_EQ(stage.serviceTime(*makeJob(20, 0, 20, 20)), 29u);
}

TEST(StageCycles, DotProductExtraScalesWithTreeDepth)
{
    EXPECT_EQ(dotProductExtraCycles(64), 9u);   // 1 + 6 + 1 + 1
    EXPECT_EQ(dotProductExtraCycles(16), 7u);   // 1 + 4 + 1 + 1
    EXPECT_EQ(dotProductExtraCycles(128), 10u);
}

TEST(StageCycles, ExponentBaseModeIsRowsPlusNine)
{
    const SimConfig cfg = paperConfig(A3Mode::Base);
    ExponentStage stage(cfg);
    EXPECT_EQ(stage.serviceTime(*makeJob(320, 0, 320, 320)), 329u);
}

TEST(StageCycles, ExponentApproxAddsPostScoringCompares)
{
    const SimConfig cfg = paperConfig(A3Mode::Approx);
    ExponentStage stage(cfg);
    // C = 100 candidates -> ceil(100/16) = 7 compare cycles, K = 40.
    EXPECT_EQ(stage.serviceTime(*makeJob(320, 160, 100, 40)),
              7u + 40u + 9u);
}

TEST(StageCycles, OutputIsKeptPlusNine)
{
    const SimConfig cfg = paperConfig(A3Mode::Base);
    OutputStage stage(cfg, nullptr);
    EXPECT_EQ(stage.serviceTime(*makeJob(320, 0, 320, 320)), 329u);
    EXPECT_EQ(outputExtraCycles(), 9u);  // 7 divide + 2 MAC
}

TEST(StageCycles, CandidateSelectionFormula)
{
    const SimConfig cfg = paperConfig(A3Mode::Approx);
    CandidateSelectionStage stage(cfg, nullptr);
    // init(1 + 4) + M + scan ceil(n/16).
    EXPECT_EQ(stage.serviceTime(*makeJob(320, 160, 0, 0)),
              5u + 160u + 20u);
    EXPECT_EQ(stage.serviceTime(*makeJob(20, 10, 0, 0)),
              5u + 10u + 2u);
}

TEST(Stage, AcceptReleaseLifecycle)
{
    const SimConfig cfg = paperConfig(A3Mode::Base);
    OutputStage stage(cfg, nullptr);
    EXPECT_TRUE(stage.idle());
    stage.accept(makeJob(10, 0, 10, 10), 100);
    EXPECT_FALSE(stage.idle());
    EXPECT_FALSE(stage.done(100));
    EXPECT_FALSE(stage.done(100 + 18));
    EXPECT_TRUE(stage.done(100 + 19));
    auto job = stage.release(100 + 19);
    ASSERT_NE(job, nullptr);
    EXPECT_TRUE(stage.idle());
    EXPECT_EQ(stage.stats().jobs, 1u);
    EXPECT_EQ(stage.stats().activeCycles, 19u);
}

TEST(Stage, StatsAccumulateAcrossJobs)
{
    const SimConfig cfg = paperConfig(A3Mode::Base);
    DotProductStage stage(cfg, nullptr);
    stage.accept(makeJob(10, 0, 10, 10), 0);
    (void)stage.release(19);
    stage.accept(makeJob(20, 0, 20, 20), 19);
    (void)stage.release(19 + 29);
    EXPECT_EQ(stage.stats().jobs, 2u);
    EXPECT_EQ(stage.stats().activeCycles, 19u + 29u);
    EXPECT_EQ(stage.stats().rowOps, 30u);
}

TEST(Stage, SramAccessAccounting)
{
    const SimConfig cfg = paperConfig(A3Mode::Base);
    Sram key("key", 20480, 64);
    DotProductStage stage(cfg, &key);
    stage.accept(makeJob(50, 0, 50, 50), 0);
    EXPECT_EQ(key.reads(), 50u);  // one row read per cycle
}

TEST(Sram, FillChecksCapacity)
{
    Sram s("buf", 1024, 16);
    s.fill(1024, 64);
    EXPECT_EQ(s.liveBytes(), 1024u);
    EXPECT_EQ(s.writes(), 64u);
    s.read(10);
    EXPECT_EQ(s.accesses(), 74u);
    s.resetCounters();
    EXPECT_EQ(s.accesses(), 0u);
    EXPECT_EQ(s.liveBytes(), 1024u);
}

TEST(ExponentStage, AuxCyclesTrackPostScoring)
{
    const SimConfig cfg = paperConfig(A3Mode::Approx);
    ExponentStage stage(cfg);
    stage.accept(makeJob(320, 160, 100, 40), 0);
    EXPECT_EQ(stage.stats().auxCycles, 7u);  // ceil(100/16)
}

}  // namespace
}  // namespace a3
