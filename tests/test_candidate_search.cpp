/**
 * @file
 * Tests for the greedy candidate search (Sections IV-B / IV-C),
 * including the paper's worked example (Figure 6) and the functional
 * equivalence of the naive and efficient implementations.
 */

#include <gtest/gtest.h>

#include "attention/candidate_search.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

/** The Figure 6 example: 4 x 3 key matrix and query [0.8 -0.3 0.4]. */
Matrix
figure6Key()
{
    return Matrix::fromRows({{-0.6f, 0.1f, 0.8f},
                             {0.1f, -0.2f, -0.9f},
                             {0.8f, 0.6f, 0.7f},
                             {0.5f, 0.7f, 0.5f}});
}

const Vector figure6Query{0.8f, -0.3f, 0.4f};

TEST(BaseGreedySearch, Figure6AfterThreeIterations)
{
    const CandidateSearchResult r =
        baseGreedySearch(figure6Key(), figure6Query, 3);
    // Greedy scores from the paper: [-0.16, -0.36, 0.64, 0.19].
    ASSERT_EQ(r.greedyScore.size(), 4u);
    EXPECT_NEAR(r.greedyScore[0], -0.16f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[1], -0.36f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[2], 0.64f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[3], 0.19f, 1e-5f);
    // Candidates: rows with positive greedy score.
    EXPECT_EQ(r.candidates, (std::vector<std::uint32_t>{2, 3}));
}

TEST(BaseGreedySearch, Figure6IntermediateIterations)
{
    // After one iteration: only the extremes are accumulated.
    const CandidateSearchResult r1 =
        baseGreedySearch(figure6Key(), figure6Query, 1);
    EXPECT_NEAR(r1.greedyScore[0], -0.48f, 1e-5f);
    EXPECT_NEAR(r1.greedyScore[2], 0.64f, 1e-5f);
    EXPECT_FLOAT_EQ(r1.greedyScore[1], 0.0f);
    EXPECT_FLOAT_EQ(r1.greedyScore[3], 0.0f);

    const CandidateSearchResult r2 =
        baseGreedySearch(figure6Key(), figure6Query, 2);
    EXPECT_NEAR(r2.greedyScore[3], 0.40f, 1e-5f);
    EXPECT_NEAR(r2.greedyScore[1], -0.36f, 1e-5f);
}

TEST(EfficientGreedySearch, MatchesFigure6)
{
    const SortedKey sk = SortedKey::build(figure6Key());
    const CandidateSearchResult r =
        efficientGreedySearch(sk, figure6Query, 3);
    EXPECT_NEAR(r.greedyScore[0], -0.16f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[1], -0.36f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[2], 0.64f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[3], 0.19f, 1e-5f);
    EXPECT_EQ(r.candidates, (std::vector<std::uint32_t>{2, 3}));
}

TEST(GreedySearch, SkipHeuristicTriggersOnNegativeSimilarity)
{
    // Query anti-aligned with every key row: all products of the max
    // pops are negative, so the cumulative sum goes negative and the
    // min-side pops are skipped.
    const Matrix key = Matrix::fromRows(
        {{1.0f, 1.0f}, {0.5f, 0.8f}, {0.9f, 0.3f}});
    const Vector query{-1.0f, -1.0f};
    const SortedKey sk = SortedKey::build(key);
    const CandidateSearchResult r =
        efficientGreedySearch(sk, query, 4, true);
    EXPECT_GT(r.skippedMinOps, 0u);

    const CandidateSearchResult noSkip =
        efficientGreedySearch(sk, query, 4, false);
    EXPECT_EQ(noSkip.skippedMinOps, 0u);
    EXPECT_GT(noSkip.minPops, r.minPops);
}

TEST(GreedySearch, ZeroQuerySelectsNothing)
{
    const Matrix key = figure6Key();
    const SortedKey sk = SortedKey::build(key);
    const CandidateSearchResult r =
        efficientGreedySearch(sk, {0.0f, 0.0f, 0.0f}, 6);
    EXPECT_TRUE(r.candidates.empty());
    for (float g : r.greedyScore)
        EXPECT_FLOAT_EQ(g, 0.0f);
}

TEST(GreedySearch, SingleRowAlwaysSelectedWhenAligned)
{
    const Matrix key = Matrix::fromRows({{1.0f, 2.0f}});
    const SortedKey sk = SortedKey::build(key);
    const CandidateSearchResult r =
        efficientGreedySearch(sk, {1.0f, 1.0f}, 1);
    EXPECT_EQ(r.candidates, (std::vector<std::uint32_t>{0}));
}

TEST(GreedySearch, PopCountsBoundedByIterations)
{
    Rng rng(1000);
    const std::size_t n = 16;
    const std::size_t d = 8;
    Matrix key(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            key(r, c) = static_cast<float>(rng.normal());
    Vector query(d);
    for (auto &x : query)
        x = static_cast<float>(rng.normal());

    const SortedKey sk = SortedKey::build(key);
    const CandidateSearchResult r =
        efficientGreedySearch(sk, query, 10);
    EXPECT_LE(r.maxPops, 10u);
    EXPECT_LE(r.minPops + r.skippedMinOps, 10u);
}

TEST(GreedySearch, ExhaustiveIterationsCoverEveryProduct)
{
    // With M = n*d and no skips possible (all-positive products), the
    // greedy score equals the true dot product for every row.
    const Matrix key =
        Matrix::fromRows({{0.5f, 1.0f}, {2.0f, 0.25f}, {1.5f, 1.5f}});
    const Vector query{1.0f, 1.0f};
    const SortedKey sk = SortedKey::build(key);
    const CandidateSearchResult r =
        efficientGreedySearch(sk, query, 6, false);
    EXPECT_NEAR(r.greedyScore[0], 1.5f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[1], 2.25f, 1e-5f);
    EXPECT_NEAR(r.greedyScore[2], 3.0f, 1e-5f);
}

/**
 * Functional equivalence of the base and efficient algorithms across
 * random instances, with and without the skip heuristic (the paper
 * states they are "functionally identical").
 */
class Equivalence
    : public ::testing::TestWithParam<std::tuple<int, int, double, bool>>
{
};

TEST_P(Equivalence, BaseAndEfficientAgree)
{
    const auto [n, d, mFrac, skip] = GetParam();
    Rng rng(2000 + static_cast<std::uint64_t>(n * 131 + d * 17 +
                                              (skip ? 1 : 0)));
    for (int trial = 0; trial < 20; ++trial) {
        Matrix key(static_cast<std::size_t>(n),
                   static_cast<std::size_t>(d));
        for (std::size_t r = 0; r < key.rows(); ++r)
            for (std::size_t c = 0; c < key.cols(); ++c)
                key(r, c) = static_cast<float>(rng.normal());
        Vector query(static_cast<std::size_t>(d));
        for (auto &x : query)
            x = static_cast<float>(rng.normal());

        const auto m = static_cast<std::size_t>(
            std::max(1.0, mFrac * static_cast<double>(n)));
        const CandidateSearchResult base =
            baseGreedySearch(key, query, m, skip);
        const CandidateSearchResult eff = efficientGreedySearch(
            SortedKey::build(key), query, m, skip);

        EXPECT_EQ(base.candidates, eff.candidates);
        EXPECT_EQ(base.maxPops, eff.maxPops);
        EXPECT_EQ(base.minPops, eff.minPops);
        EXPECT_EQ(base.skippedMinOps, eff.skippedMinOps);
        ASSERT_EQ(base.greedyScore.size(), eff.greedyScore.size());
        for (std::size_t r = 0; r < base.greedyScore.size(); ++r) {
            EXPECT_NEAR(base.greedyScore[r], eff.greedyScore[r], 1e-6f)
                << "row " << r;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, Equivalence,
    ::testing::Combine(::testing::Values(4, 20, 64, 150),   // n
                       ::testing::Values(3, 16, 64),        // d
                       ::testing::Values(0.125, 0.5, 1.0),  // M / n
                       ::testing::Bool()));                 // skip

}  // namespace
}  // namespace a3
