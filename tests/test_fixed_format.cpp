/**
 * @file
 * Unit and property tests for fixed-point formats (Section III-B).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "fixed/format.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

TEST(FixedFormat, RangeOfQ4_4)
{
    FixedFormat q{4, 4};
    EXPECT_EQ(q.totalBits(), 9);
    EXPECT_EQ(q.maxRaw(), 255);
    EXPECT_EQ(q.minRaw(), -255);  // symmetric quantization range
    EXPECT_DOUBLE_EQ(q.resolution(), 0.0625);
    EXPECT_DOUBLE_EQ(q.maxValue(), 15.9375);
    EXPECT_DOUBLE_EQ(q.minValue(), -15.9375);
}

TEST(FixedFormat, QuantizeRoundsToNearest)
{
    FixedFormat q{4, 4};
    EXPECT_EQ(q.quantize(1.0), 16);
    EXPECT_EQ(q.quantize(1.03), 16);    // 1.03 * 16 = 16.48 -> 16
    EXPECT_EQ(q.quantize(1.04), 17);    // 16.64 -> 17
    EXPECT_EQ(q.quantize(-0.5), -8);
}

TEST(FixedFormat, QuantizeSaturates)
{
    FixedFormat q{2, 2};
    EXPECT_EQ(q.quantize(100.0), q.maxRaw());
    EXPECT_EQ(q.quantize(-100.0), q.minRaw());
}

TEST(FixedFormat, ToDoubleInvertsQuantizeOnGrid)
{
    FixedFormat q{3, 5};
    for (std::int64_t raw = q.minRaw(); raw <= q.maxRaw(); raw += 7) {
        const double v = q.toDouble(raw);
        EXPECT_EQ(q.quantize(v), raw);
    }
}

TEST(FixedFormat, SaturateClamps)
{
    FixedFormat q{2, 2};
    EXPECT_EQ(q.saturate(1000), q.maxRaw());
    EXPECT_EQ(q.saturate(-1000), q.minRaw());
    EXPECT_EQ(q.saturate(5), 5);
}

TEST(FixedFormat, FitsPredicate)
{
    FixedFormat q{2, 2};
    EXPECT_TRUE(q.fits(q.maxRaw()));
    EXPECT_TRUE(q.fits(q.minRaw()));
    EXPECT_FALSE(q.fits(q.maxRaw() + 1));
    EXPECT_FALSE(q.fits(q.minRaw() - 1));
}

TEST(FixedFormat, StrIsReadable)
{
    EXPECT_EQ((FixedFormat{4, 4}).str(), "Q4.4");
    EXPECT_EQ((FixedFormat{0, 8}).str(), "Q0.8");
}

/** Quantization error is bounded by half a resolution step. */
class QuantizeErrorBound : public ::testing::TestWithParam<int>
{
};

TEST_P(QuantizeErrorBound, HalfUlpForInRangeValues)
{
    const int f = GetParam();
    FixedFormat q{4, f};
    Rng rng(100 + static_cast<std::uint64_t>(f));
    const double halfUlp = q.resolution() / 2.0;
    for (int i = 0; i < 5000; ++i) {
        const double v = rng.uniform(q.minValue(), q.maxValue());
        const double back = q.toDouble(q.quantize(v));
        EXPECT_LE(std::fabs(back - v), halfUlp + 1e-12)
            << "f=" << f << " v=" << v;
    }
}

INSTANTIATE_TEST_SUITE_P(FractionBits, QuantizeErrorBound,
                         ::testing::Values(1, 2, 3, 4, 6, 8, 12));

}  // namespace
}  // namespace a3
