/**
 * @file
 * Tests for sharded attention over huge contexts: the partial-output
 * backend contract (runPartialInto + finalizePartialInto ==
 * runInto), the ShardedBackend's log-sum-exp merge (S = 1 bit-
 * identity, ULP-bounded reference equivalence, statistical accuracy
 * for the approx/quantized kinds), append routing across the shard
 * boundary, fixed-order merge determinism under parallel fan-out,
 * and the serving-tier integration (SessionCache byte accounting,
 * BatchScheduler coalescing over sharded sessions).
 */

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "attention/backend.hpp"
#include "attention/quantized.hpp"
#include "engine/engine.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "serving/sharded_backend.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::ExactFloat, EngineKind::ApproxFloat,
    EngineKind::ExactQuantized, EngineKind::ApproxQuantized};

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

void
expectBitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.iterations, b.iterations);
}

/** Map a float onto the lexicographically ordered integer line. */
std::int64_t
orderedBits(float f)
{
    const auto bits = std::bit_cast<std::int32_t>(f);
    if (bits >= 0)
        return bits;
    constexpr std::int64_t signFloor =
        std::numeric_limits<std::int32_t>::min();
    return signFloor - bits;
}

/** Units-in-the-last-place distance between two finite floats. */
std::int64_t
ulpDistance(float a, float b)
{
    if (!std::isfinite(a) || !std::isfinite(b))
        return std::numeric_limits<std::int64_t>::max();
    return std::abs(orderedBits(a) - orderedBits(b));
}

/**
 * The documented sharded-reference bound (README "Sharding"): within
 * kMaxUlps ULPs or the absolute floor, whichever is looser. Weights
 * are cancellation-free (sums of positives), so their floor only
 * absorbs subnormals; output components are signed sums whose
 * cancellation is not relative-error-bounded, hence the 1e-6 floor.
 */
constexpr std::int64_t kMaxUlps = 256;
constexpr float kWeightAbsFloor = 1e-9f;
constexpr float kOutputAbsFloor = 1e-6f;

void
expectWithinUlps(const Vector &got, const Vector &want, float absFloor)
{
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
        if (std::abs(got[i] - want[i]) <= absFloor)
            continue;
        EXPECT_LE(ulpDistance(got[i], want[i]), kMaxUlps)
            << "component " << i << ": " << got[i] << " vs "
            << want[i];
    }
}

float
relativeL2(const Vector &got, const Vector &want)
{
    double err = 0.0;
    double norm = 0.0;
    for (std::size_t i = 0; i < got.size(); ++i) {
        err += static_cast<double>(got[i] - want[i]) *
               (got[i] - want[i]);
        norm += static_cast<double>(want[i]) * want[i];
    }
    return norm > 0.0 ? static_cast<float>(std::sqrt(err / norm))
                      : 0.0f;
}

TEST(PartialResultContract, FinalizeMatchesRunIntoFloatKinds)
{
    Rng rng(11000);
    const std::size_t d = 12;
    for (const EngineKind kind :
         {EngineKind::ExactFloat, EngineKind::ApproxFloat}) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        const auto backend = makeBackend(cfg, randomMatrix(rng, 40, d),
                                         randomMatrix(rng, 40, d));
        for (int trial = 0; trial < 4; ++trial) {
            const Vector q = randomQuery(rng, d);
            PartialResult partial;
            backend->runPartialInto(q, partial);
            AttentionResult finalized;
            finalizePartialInto(partial, finalized);
            expectBitIdentical(finalized, backend->run(q));
        }
    }
}

TEST(PartialResultContract, DerivedFallbackPreservesWeighting)
{
    // The quantized kinds use the base-class fallback: partials are
    // scaled-up copies of the normalized result, so finalizing them
    // must recover the pipeline's own weights within a ULP-level
    // roundtrip (x * Z / Z).
    Rng rng(11100);
    const std::size_t d = 8;
    for (const EngineKind kind :
         {EngineKind::ExactQuantized, EngineKind::ApproxQuantized}) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        cfg.intBits = 6;
        cfg.fracBits = 10;
        const auto backend = makeBackend(cfg, randomMatrix(rng, 24, d),
                                         randomMatrix(rng, 24, d));
        const Vector q = randomQuery(rng, d);
        PartialResult partial;
        backend->runPartialInto(q, partial);
        AttentionResult finalized;
        finalizePartialInto(partial, finalized);
        const AttentionResult direct = backend->run(q);
        EXPECT_EQ(finalized.scores, direct.scores);
        EXPECT_EQ(finalized.kept, direct.kept);
        expectWithinUlps(finalized.weights, direct.weights,
                         kWeightAbsFloor);
        expectWithinUlps(finalized.output, direct.output,
                         kOutputAbsFloor);
    }
}

TEST(ShardedBackend, SingleShardBitIdenticalAllKinds)
{
    Rng rng(11200);
    const std::size_t d = 16;
    for (const EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        const Matrix key = randomMatrix(rng, 48, d);
        const Matrix value = randomMatrix(rng, 48, d);
        ShardedConfig sharding;
        sharding.shardRows = 64;  // >= n: one degenerate shard
        const ShardedBackend sharded(cfg, key, value, sharding);
        EXPECT_EQ(sharded.shardCount(), 1u);
        const auto plain = makeBackend(cfg, key, value);
        for (int trial = 0; trial < 4; ++trial) {
            const Vector q = randomQuery(rng, d);
            expectBitIdentical(sharded.run(q), plain->run(q));
        }
    }
}

TEST(ShardedBackend, ReferenceMatchesUnshardedWithinUlps)
{
    Rng rng(11300);
    const std::size_t n = 257;  // odd: exercises the balanced split
    const std::size_t d = 16;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    const ReferenceAttention plain(key, value);

    for (const std::size_t shardRows : {32u, 100u, 256u}) {
        SCOPED_TRACE("shardRows " + std::to_string(shardRows));
        ShardedConfig sharding;
        sharding.shardRows = shardRows;
        const ShardedBackend sharded(cfg, key, value, sharding);
        EXPECT_EQ(sharded.shardCount(),
                  (n + shardRows - 1) / shardRows);
        EXPECT_EQ(sharded.rows(), n);

        for (int trial = 0; trial < 6; ++trial) {
            const Vector q = randomQuery(rng, d);
            const AttentionResult got = sharded.run(q);
            const AttentionResult want = plain.run(q);
            // Per-row dot products see identical data row by row, so
            // scores and the selection lists are exactly equal; only
            // the softmax terms pick up shard-boundary rounding.
            EXPECT_EQ(got.scores, want.scores);
            EXPECT_EQ(got.candidates, want.candidates);
            EXPECT_EQ(got.kept, want.kept);
            expectWithinUlps(got.weights, want.weights,
                             kWeightAbsFloor);
            expectWithinUlps(got.output, want.output,
                             kOutputAbsFloor);

            float weightSum = 0.0f;
            for (const float w : got.weights)
                weightSum += w;
            EXPECT_NEAR(weightSum, 1.0f, 1e-4f);
        }
    }
}

TEST(ShardedBackend, AllKindsAccuracyBoundedVsReference)
{
    Rng rng(11400);
    const std::size_t n = 192;
    const std::size_t d = 16;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);
    const ReferenceAttention reference(key, value);

    for (const EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        cfg.intBits = 6;
        cfg.fracBits = 10;
        ShardedConfig sharding;
        sharding.shardRows = 48;
        const ShardedBackend sharded(cfg, key, value, sharding);
        ASSERT_EQ(sharded.shardCount(), 4u);

        float worst = 0.0f;
        for (int trial = 0; trial < 8; ++trial) {
            const Vector q = randomQuery(rng, d);
            worst = std::max(
                worst, relativeL2(sharded.run(q).output,
                                  reference.run(q).output));
        }
        // Exact float shards reproduce the reference; approximation
        // and quantization are shard-local, so their sharded error
        // stays in the same statistical band the unsharded flows are
        // validated to (the harness' accuracy studies).
        const float bound =
            kind == EngineKind::ExactFloat ? 1e-5f : 0.5f;
        EXPECT_LE(worst, bound);
    }
}

TEST(ShardedBackend, PackedQuantizedShardsMatchWord32AndShrink)
{
    // The EngineConfig's packedKv knob rides into every shard via
    // makeBackend: shards store packed lanes, the aggregate
    // memoryBytes() reports the packed footprint, and — packing being
    // lossless — the merged results are bit-identical to the Word32
    // layout of the same configuration.
    Rng rng(11950);
    const std::size_t n = 96;
    const std::size_t d = 64;  // per-row scale overhead amortizes at
                               // the paper-default dimension
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    EngineConfig cfg;
    cfg.kind = EngineKind::ExactQuantized;
    cfg.intBits = 1;
    cfg.fracBits = 2;  // 4-bit word: Auto resolves to Int4
    ShardedConfig sharding;
    sharding.shardRows = 25;
    const ShardedBackend packed(cfg, key, value, sharding);

    EngineConfig word32Cfg = cfg;
    word32Cfg.packedKv = PackedKvFormat::Word32;
    const ShardedBackend word32(word32Cfg, key, value, sharding);

    ASSERT_EQ(packed.shardCount(), word32.shardCount());
    std::size_t total = 0;
    for (std::size_t s = 0; s < packed.shardCount(); ++s) {
        const auto *qa = dynamic_cast<const QuantizedAttention *>(
            &packed.shard(s));
        ASSERT_NE(qa, nullptr) << "shard " << s;
        EXPECT_EQ(qa->packedFormat(), PackedKvFormat::Int4);
        total += packed.shard(s).memoryBytes();
    }
    EXPECT_EQ(packed.memoryBytes(), total);
    // The 4-8x shrink survives aggregation (int4 + per-row scales
    // against the format-independent 8 bytes/element Word32 layout).
    EXPECT_LE(packed.memoryBytes() * 6, word32.memoryBytes());

    for (int trial = 0; trial < 6; ++trial) {
        const Vector q = randomQuery(rng, d);
        expectBitIdentical(packed.run(q), word32.run(q));
    }
}

TEST(ShardedBackend, ParallelMergeBitIdenticalToSerial)
{
    // Parallelism now comes from the engine's flattened (query,
    // shard) work list, not from a pool plumbed into the backend:
    // the engine decomposes each query into per-shard units and the
    // fixed-order merge makes who computed a partial irrelevant.
    Rng rng(11500);
    const std::size_t n = 300;
    const std::size_t d = 16;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    ShardedConfig sharding;
    sharding.shardRows = 64;
    const ShardedBackend sharded(cfg, key, value, sharding);
    ASSERT_GT(sharded.shardCount(), 1u);
    EXPECT_EQ(sharded.workUnitCount(), sharded.shardCount());

    const AttentionEngine parallel(4);
    const AttentionEngine serial(1);
    std::vector<Vector> queries;
    for (int i = 0; i < 8; ++i)
        queries.push_back(randomQuery(rng, d));
    const std::vector<AttentionResult> wide =
        parallel.run(sharded, queries);
    const std::vector<AttentionResult> narrow =
        serial.run(sharded, queries);
    ASSERT_EQ(wide.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        // Engine (any thread count) == engine (1 thread) == direct
        // sequential backend call, bit for bit.
        expectBitIdentical(wide[i], narrow[i]);
        expectBitIdentical(wide[i], sharded.run(queries[i]));
    }
}

TEST(ShardedBackend, ParallelMergeUnderConcurrentEngineQueries)
{
    // The old TSan shape — engine lanes triggering nested
    // parallelFor calls on a borrowed pool — is gone: the engine
    // flattens every (query, shard) unit of the batch into its own
    // work list, so shard partials of many concurrent queries share
    // lanes with no nesting. Batched results must stay bit-identical
    // to sequential ones.
    Rng rng(11600);
    const std::size_t n = 256;
    const std::size_t d = 12;
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxFloat;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    ShardedConfig sharding;
    sharding.shardRows = 64;
    const ShardedBackend sharded(cfg, key, value, sharding);

    AttentionEngine engine(4);
    std::vector<Vector> queries;
    for (int i = 0; i < 24; ++i)
        queries.push_back(randomQuery(rng, d));
    const std::vector<AttentionResult> batched =
        engine.run(sharded, queries);
    ASSERT_EQ(batched.size(), queries.size());
    for (std::size_t i = 0; i < queries.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        expectBitIdentical(batched[i], sharded.run(queries[i]));
    }
}

TEST(ShardedBackend, AppendRoutesToLastShardThenOpensNew)
{
    Rng rng(11700);
    const std::size_t d = 8;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    Matrix key = randomMatrix(rng, 12, d);
    Matrix value = randomMatrix(rng, 12, d);
    ShardedConfig sharding;
    sharding.shardRows = 8;
    ShardedBackend sharded(cfg, key, value, sharding);
    ASSERT_EQ(sharded.shardCount(), 2u);  // balanced 6 + 6
    EXPECT_EQ(sharded.shard(0).rows(), 6u);
    EXPECT_EQ(sharded.shard(1).rows(), 6u);

    // 2 rows top the last shard up to its 8-row capacity.
    const auto appendBoth = [&](std::size_t rows) {
        const Matrix keyRows = randomMatrix(rng, rows, d);
        const Matrix valueRows = randomMatrix(rng, rows, d);
        sharded.append(keyRows, valueRows);
        key.appendRows(keyRows);
        value.appendRows(valueRows);
    };
    appendBoth(2);
    EXPECT_EQ(sharded.shardCount(), 2u);
    EXPECT_EQ(sharded.shard(1).rows(), 8u);

    // 11 more: the full last shard opens a new 8-row shard plus a
    // 3-row tail, with ascending global ids across the boundary.
    appendBoth(11);
    EXPECT_EQ(sharded.shardCount(), 4u);
    EXPECT_EQ(sharded.shard(2).rows(), 8u);
    EXPECT_EQ(sharded.shard(3).rows(), 3u);
    EXPECT_EQ(sharded.shardOffset(3), 22u);
    EXPECT_EQ(sharded.rows(), key.rows());

    // memoryBytes aggregates the shards.
    std::size_t total = 0;
    for (std::size_t s = 0; s < sharded.shardCount(); ++s)
        total += sharded.shard(s).memoryBytes();
    EXPECT_EQ(sharded.memoryBytes(), total);

    // Queries after the appends match the unsharded reference over
    // the concatenated task within the documented bound.
    const ReferenceAttention plain(key, value);
    for (int trial = 0; trial < 4; ++trial) {
        const Vector q = randomQuery(rng, d);
        const AttentionResult got = sharded.run(q);
        const AttentionResult want = plain.run(q);
        EXPECT_EQ(got.scores, want.scores);
        expectWithinUlps(got.weights, want.weights,
                         kWeightAbsFloor);
        expectWithinUlps(got.output, want.output,
                         kOutputAbsFloor);
    }
}

TEST(ShardedBackend, SingleShardGrowsIntoMultipleViaAppend)
{
    Rng rng(11800);
    const std::size_t d = 8;
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxFloat;
    ShardedConfig sharding;
    sharding.shardRows = 8;
    ShardedBackend sharded(cfg, randomMatrix(rng, 4, d),
                           randomMatrix(rng, 4, d), sharding);
    EXPECT_EQ(sharded.shardCount(), 1u);

    // 10 rows: 4 fill the only shard to capacity, 6 open a second.
    sharded.append(randomMatrix(rng, 10, d), randomMatrix(rng, 10, d));
    EXPECT_EQ(sharded.shardCount(), 2u);
    EXPECT_EQ(sharded.shard(0).rows(), 8u);
    EXPECT_EQ(sharded.shard(1).rows(), 6u);
    EXPECT_EQ(sharded.rows(), 14u);
}

TEST(ShardedBackend, RejectsInvalidConfig)
{
    Rng rng(11900);
    const Matrix key = randomMatrix(rng, 8, 4);
    const Matrix value = randomMatrix(rng, 8, 4);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    ShardedConfig sharding;
    sharding.shardRows = 0;
    EXPECT_DEATH(ShardedBackend(cfg, key, value, sharding),
                 "shardRows");
}

TEST(ShardedBackend, ServesThroughSessionCacheAndScheduler)
{
    Rng rng(12000);
    const std::size_t d = 12;
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxFloat;
    ShardedConfig sharding;
    sharding.shardRows = 32;

    AttentionEngine engine(4);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);

    // A sharded session rides the serving tier through insert():
    // byte accounting, coalescing, and appends all see one backend.
    const auto backend = cache.insert(
        "huge", makeShardedBackend(cfg, randomMatrix(rng, 96, d),
                                   randomMatrix(rng, 96, d),
                                   sharding));
    EXPECT_EQ(cache.bytesInUse(), backend->memoryBytes());

    std::vector<Vector> queries;
    std::vector<std::uint64_t> tickets;
    for (int i = 0; i < 6; ++i) {
        queries.push_back(randomQuery(rng, d));
        tickets.push_back(
            scheduler.submit("huge", queries.back()).ticket);
    }
    const std::vector<ServingResult> completions = scheduler.drain();
    ASSERT_EQ(completions.size(), queries.size());
    for (std::size_t i = 0; i < completions.size(); ++i) {
        EXPECT_EQ(completions[i].ticket, tickets[i]);
        expectBitIdentical(completions[i].result,
                           backend->run(queries[i]));
    }

    // A cache-routed append lands in the sharded routing: the last
    // 32-row shard is full, so a new shard opens and the accounting
    // follows the grown task.
    cache.append("huge", randomMatrix(rng, 5, d),
                 randomMatrix(rng, 5, d));
    const auto &sharded =
        dynamic_cast<const ShardedBackend &>(*backend);
    EXPECT_EQ(sharded.shardCount(), 4u);
    EXPECT_EQ(backend->rows(), 101u);
    EXPECT_EQ(cache.bytesInUse(), backend->memoryBytes());
}

}  // namespace
}  // namespace a3
