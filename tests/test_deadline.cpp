/**
 * @file
 * Tests for deadline-aware scheduling in the serving tier: drain-time
 * shedding of requests whose queue wait blew their deadline (typed
 * DeadlineExpired completions that consume no batch slot), submit-time
 * rejection of deadlines the queue already makes unmeetable, the
 * adaptive queue depth derived from target latency over observed p95
 * service time, per-class drain slots on top of per-session weights,
 * and the persistence of the admission signal across resetCounters().
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "serving/admission.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

/** Bind `count` sessions named s0, s1, ... of `rows` rows each. */
void
bindSessions(SessionCache &cache, Rng &rng, std::size_t count,
             std::size_t rows, std::size_t d)
{
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    for (std::size_t s = 0; s < count; ++s) {
        cache.bind("s" + std::to_string(s), cfg,
                   randomMatrix(rng, rows, d),
                   randomMatrix(rng, rows, d));
    }
}

SubmitOptions
withDeadline(double seconds)
{
    SubmitOptions options;
    options.deadlineSeconds = seconds;
    return options;
}

SubmitOptions
withClass(std::string klass)
{
    SubmitOptions options;
    options.requestClass = std::move(klass);
    return options;
}

TEST(Deadline, ExpiredRequestShedWithTypedOutcome)
{
    Rng rng(31000);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 12, d);
    BatchScheduler scheduler(engine, cache);

    // An effectively-instant deadline: any real queue wait blows it.
    const AdmissionOutcome expired = scheduler.submit(
        "s0", randomQuery(rng, d), withDeadline(1e-9));
    ASSERT_TRUE(expired.admitted());
    const AdmissionOutcome live =
        scheduler.submit("s0", randomQuery(rng, d));
    ASSERT_TRUE(live.admitted());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

    const std::vector<ServingResult> completions = scheduler.drain();
    ASSERT_EQ(completions.size(), 2u);
    EXPECT_EQ(completions[0].ticket, expired.ticket);
    EXPECT_FALSE(completions[0].ok());
    EXPECT_EQ(completions[0].error, ServingError::DeadlineExpired);
    EXPECT_TRUE(completions[0].result.output.empty());
    EXPECT_EQ(completions[1].ticket, live.ticket);
    EXPECT_TRUE(completions[1].ok());

    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.shedDeadlineExpired, 1u);
    EXPECT_EQ(scheduler.pending(), 0u);
    EXPECT_STREQ(servingErrorName(ServingError::DeadlineExpired),
                 "deadline_expired");
    EXPECT_STREQ(admissionDecisionName(
                     AdmissionDecision::ShedDeadlineExpired),
                 "shed_deadline_expired");
}

TEST(Deadline, GenerousDeadlineAnswersBitIdentical)
{
    Rng rng(31100);
    const std::size_t d = 8;
    AttentionEngine engine(2);
    SessionCache cache;
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    const Matrix key = randomMatrix(rng, 24, d);
    const Matrix value = randomMatrix(rng, 24, d);
    const auto backend = cache.bind("s0", cfg, key, value);
    BatchScheduler scheduler(engine, cache);

    const Vector query = randomQuery(rng, d);
    ASSERT_TRUE(scheduler
                    .submit("s0", query, withDeadline(3600.0))
                    .admitted());
    const std::vector<ServingResult> completions = scheduler.drain();
    ASSERT_EQ(completions.size(), 1u);
    ASSERT_TRUE(completions[0].ok());
    const AttentionResult want = backend->run(query);
    EXPECT_EQ(completions[0].result.output, want.output);
    EXPECT_EQ(completions[0].result.weights, want.weights);
    EXPECT_EQ(scheduler.stats().shedDeadlineExpired, 0u);
}

TEST(Deadline, ShedConsumesNoBatchSlot)
{
    // With maxBatch = 2 and an expired request at the head of the
    // lane, both live requests are still answered in the same drain:
    // the shed rides along as a typed completion without crowding
    // them out of the pass.
    Rng rng(31200);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 12, d);
    BatchScheduler scheduler(engine, cache, 2);

    const AdmissionOutcome doomed = scheduler.submit(
        "s0", randomQuery(rng, d), withDeadline(1e-9));
    ASSERT_TRUE(doomed.admitted());
    ASSERT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    ASSERT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

    const std::vector<ServingResult> completions = scheduler.drain();
    ASSERT_EQ(completions.size(), 3u);
    EXPECT_EQ(completions[0].error, ServingError::DeadlineExpired);
    EXPECT_TRUE(completions[1].ok());
    EXPECT_TRUE(completions[2].ok());
    EXPECT_EQ(scheduler.pending(), 0u);
}

TEST(Deadline, FullyExpiredQueueDrainsCleanly)
{
    // Every claimed request sheds: the drain returns only typed
    // completions, runs no engine pass, and leaves no pending state
    // behind (the progress invariant holds through pure sheds).
    Rng rng(31300);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 2, 12, d);
    BatchScheduler scheduler(engine, cache);
    for (int i = 0; i < 3; ++i) {
        ASSERT_TRUE(scheduler
                        .submit("s0", randomQuery(rng, d),
                                withDeadline(1e-9))
                        .admitted());
        ASSERT_TRUE(scheduler
                        .submit("s1", randomQuery(rng, d),
                                withDeadline(1e-9))
                        .admitted());
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));

    const std::vector<ServingResult> completions = scheduler.drain();
    ASSERT_EQ(completions.size(), 6u);
    for (const ServingResult &completion : completions)
        EXPECT_EQ(completion.error, ServingError::DeadlineExpired);
    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.shedDeadlineExpired, 6u);
    EXPECT_EQ(stats.drains, 0u);  // no engine pass ran
    EXPECT_EQ(scheduler.pending(), 0u);
    EXPECT_EQ(scheduler.trackedSessions(), 0u);
}

TEST(Deadline, UnmeetableDeadlineRejectedAtSubmit)
{
    Rng rng(31400);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 64, d);
    BatchScheduler scheduler(engine, cache);

    // Cold scheduler: no service signal yet, so even an absurd
    // deadline is admitted behind queued work (shed-at-drain remains
    // the backstop for it).
    ASSERT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    ASSERT_TRUE(scheduler
                    .submit("s0", randomQuery(rng, d),
                            withDeadline(1e-12))
                    .admitted());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    const std::vector<ServingResult> warmup = scheduler.drain();
    ASSERT_EQ(warmup.size(), 2u);
    EXPECT_TRUE(warmup[0].ok());
    EXPECT_EQ(warmup[1].error, ServingError::DeadlineExpired);
    ASSERT_GT(scheduler.stats().requestServiceP95, 0.0);

    // Into an EMPTY queue the same deadline is still admitted: the
    // expected wait ahead of it is zero.
    const AdmissionOutcome head = scheduler.submit(
        "s0", randomQuery(rng, d), withDeadline(1e-12));
    EXPECT_TRUE(head.admitted());

    // With work queued ahead, pending × p95 dwarfs the deadline.
    const AdmissionOutcome rejected = scheduler.submit(
        "s0", randomQuery(rng, d), withDeadline(1e-12));
    EXPECT_FALSE(rejected.admitted());
    EXPECT_EQ(rejected.decision,
              AdmissionDecision::RejectedDeadlineUnmeetable);
    EXPECT_EQ(rejected.ticket, 0u);
    // A deadline-free request is untouched by the estimate.
    EXPECT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());

    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.rejectedDeadlineUnmeetable, 1u);
    EXPECT_EQ(stats.rejected(), 1u);
    EXPECT_STREQ(admissionDecisionName(
                     AdmissionDecision::RejectedDeadlineUnmeetable),
                 "rejected_deadline_unmeetable");
}

TEST(Deadline, AdaptiveDepthEngagesAfterServiceSignal)
{
    Rng rng(31500);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 64, d);
    AdmissionPolicy policy;
    // A target far below any real service time drives the derived
    // depth to its floor — deterministic regardless of machine speed.
    policy.targetLatencySeconds = 1e-9;
    BatchScheduler scheduler(engine, cache, 0, policy);

    // Cold: the adaptive bound is inactive until a drain lands a
    // service sample, so a burst is admitted in full.
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(
            scheduler.submit("s0", randomQuery(rng, d)).admitted());
    EXPECT_EQ(scheduler.adaptiveQueueDepth(), 0u);
    ASSERT_EQ(scheduler.drain().size(), 4u);
    EXPECT_EQ(scheduler.adaptiveQueueDepth(), 1u);

    // Warm: depth 1 admits one queued request and sheds the second.
    ASSERT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    const AdmissionOutcome rejected =
        scheduler.submit("s0", randomQuery(rng, d));
    EXPECT_FALSE(rejected.admitted());
    EXPECT_EQ(rejected.decision,
              AdmissionDecision::RejectedAdaptiveDepth);

    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.rejectedAdaptiveDepth, 1u);
    EXPECT_EQ(stats.adaptiveQueueDepth, 1u);
    EXPECT_GT(stats.requestServiceP95, 0.0);
    EXPECT_STREQ(admissionDecisionName(
                     AdmissionDecision::RejectedAdaptiveDepth),
                 "rejected_adaptive_depth");
}

TEST(Deadline, AdaptiveDepthHonorsConfiguredFloor)
{
    Rng rng(31600);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 32, d);
    AdmissionPolicy policy;
    policy.targetLatencySeconds = 1e-9;
    policy.minAdaptiveQueueDepth = 3;
    BatchScheduler scheduler(engine, cache, 0, policy);

    ASSERT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    scheduler.drain();
    EXPECT_EQ(scheduler.adaptiveQueueDepth(), 3u);
    for (int i = 0; i < 3; ++i)
        ASSERT_TRUE(
            scheduler.submit("s0", randomQuery(rng, d)).admitted());
    EXPECT_EQ(scheduler.submit("s0", randomQuery(rng, d)).decision,
              AdmissionDecision::RejectedAdaptiveDepth);
}

TEST(Deadline, ResetCountersPreservesAdmissionSignal)
{
    Rng rng(31700);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 32, d);
    AdmissionPolicy policy;
    policy.targetLatencySeconds = 1e-9;
    BatchScheduler scheduler(engine, cache, 0, policy);

    ASSERT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    scheduler.drain();
    ASSERT_EQ(scheduler.adaptiveQueueDepth(), 1u);

    scheduler.resetCounters();
    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, 0u);
    EXPECT_EQ(stats.answered, 0u);
    EXPECT_EQ(stats.drains, 0u);
    EXPECT_EQ(stats.rejectedAdaptiveDepth, 0u);
    EXPECT_EQ(stats.shedDeadlineExpired, 0u);
    EXPECT_EQ(stats.queueWaitP50, 0.0);
    // The admission signal survives: counters are an observation
    // window, the learned service time is load-bearing control state.
    EXPECT_EQ(stats.adaptiveQueueDepth, 1u);
    EXPECT_GT(stats.requestServiceP95, 0.0);
    ASSERT_TRUE(
        scheduler.submit("s0", randomQuery(rng, d)).admitted());
    EXPECT_EQ(scheduler.submit("s0", randomQuery(rng, d)).decision,
              AdmissionDecision::RejectedAdaptiveDepth);
}

TEST(Deadline, ClassWeightSplitsTruncatedDrain)
{
    Rng rng(31800);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 1, 16, d);
    BatchScheduler scheduler(engine, cache, 4);
    scheduler.setClassWeight("premium", 3);
    EXPECT_EQ(scheduler.classWeight("premium"), 3u);
    EXPECT_EQ(scheduler.classWeight("bulk"), 1u);

    std::vector<std::uint64_t> premiumTickets;
    std::vector<std::uint64_t> defaultTickets;
    for (int i = 0; i < 6; ++i) {
        const AdmissionOutcome outcome = scheduler.submit(
            "s0", randomQuery(rng, d), withClass("premium"));
        ASSERT_TRUE(outcome.admitted());
        premiumTickets.push_back(outcome.ticket);
    }
    for (int i = 0; i < 6; ++i) {
        const AdmissionOutcome outcome =
            scheduler.submit("s0", randomQuery(rng, d));
        ASSERT_TRUE(outcome.admitted());
        defaultTickets.push_back(outcome.ticket);
    }

    // One truncated drain claims 3 premium slots for every default
    // slot within the session.
    const std::vector<ServingResult> first = scheduler.drain();
    ASSERT_EQ(first.size(), 4u);
    std::set<std::uint64_t> got;
    for (const ServingResult &completion : first) {
        EXPECT_TRUE(completion.ok());
        got.insert(completion.ticket);
    }
    const std::set<std::uint64_t> want = {
        premiumTickets[0], premiumTickets[1], premiumTickets[2],
        defaultTickets[0]};
    EXPECT_EQ(got, want);

    // Later drains keep per-class ticket order until the queue is
    // empty (the per-lane ordering assert fires otherwise).
    std::size_t remaining = 0;
    while (true) {
        const std::vector<ServingResult> next = scheduler.drain();
        if (next.empty())
            break;
        remaining += next.size();
    }
    EXPECT_EQ(remaining, 8u);
    EXPECT_EQ(scheduler.pending(), 0u);

    // Weight 1 restores the default single-lane arithmetic.
    scheduler.setClassWeight("premium", 1);
    EXPECT_EQ(scheduler.classWeight("premium"), 1u);
}

TEST(Deadline, ClassLanesComposeWithSessionWeights)
{
    // Slots are session-weight × class-weight: a weight-2 session's
    // premium lane claims 4 per pass against a weight-1 session's
    // default lane claiming 1.
    Rng rng(31900);
    const std::size_t d = 8;
    AttentionEngine engine(1);
    SessionCache cache;
    bindSessions(cache, rng, 2, 16, d);
    BatchScheduler scheduler(engine, cache, 5);
    scheduler.setSessionWeight("s0", 2);
    scheduler.setClassWeight("premium", 2);

    std::vector<std::uint64_t> heavy;
    for (int i = 0; i < 6; ++i) {
        const AdmissionOutcome outcome = scheduler.submit(
            "s0", randomQuery(rng, d), withClass("premium"));
        ASSERT_TRUE(outcome.admitted());
        heavy.push_back(outcome.ticket);
    }
    std::vector<std::uint64_t> light;
    for (int i = 0; i < 6; ++i) {
        const AdmissionOutcome outcome =
            scheduler.submit("s1", randomQuery(rng, d));
        ASSERT_TRUE(outcome.admitted());
        light.push_back(outcome.ticket);
    }

    const std::vector<ServingResult> first = scheduler.drain();
    ASSERT_EQ(first.size(), 5u);
    std::set<std::uint64_t> got;
    for (const ServingResult &completion : first)
        got.insert(completion.ticket);
    const std::set<std::uint64_t> want = {heavy[0], heavy[1],
                                          heavy[2], heavy[3],
                                          light[0]};
    EXPECT_EQ(got, want);
    while (!scheduler.drain().empty()) {
    }
    EXPECT_EQ(scheduler.pending(), 0u);
}

}  // namespace
}  // namespace a3
