/**
 * @file
 * Tests for the SIMD kernel layer (kernels/kernels.hpp) and the
 * zero-allocation steady-state contract of AttentionBackend::runInto().
 *
 *  - Order-preserving kernels (axpy, maxReduce, expSumInPlace, scale,
 *    divideBy, gatherWeightedSum) must match the scalar table bit for
 *    bit on every available ISA, across sizes that exercise every
 *    vector-width tail.
 *  - Reassociating kernels (dot, gatherDot) must match within 1e-6
 *    relative tolerance and be run-to-run deterministic per table.
 *  - A3_FORCE_SCALAR_KERNELS pins selectKernels() to the scalar table.
 *  - Steady-state runInto() on every backend performs zero heap
 *    allocations, verified by a counting global operator new.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

#include "attention/backend.hpp"
#include "attention/reference.hpp"
#include "engine/engine.hpp"
#include "fixed/packed.hpp"
#include "kernels/kernels.hpp"
#include "kernels/scratch.hpp"
#include "util/random.hpp"

// ---------------------------------------------------------------------
// Counting allocator hook: every path through the global operator new
// bumps one relaxed atomic. The zero-allocation tests measure deltas
// around steady-state runInto() calls; all other tests are unaffected
// beyond one extra increment per allocation.
// ---------------------------------------------------------------------

namespace {

std::atomic<std::size_t> g_newCalls{0};

std::size_t
allocationCount()
{
    return g_newCalls.load(std::memory_order_relaxed);
}

void *
countedAlloc(std::size_t size)
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(size != 0 ? size : 1))
        return p;
    throw std::bad_alloc();
}

}  // namespace

void *
operator new(std::size_t size)
{
    return countedAlloc(size);
}

void *
operator new[](std::size_t size)
{
    return countedAlloc(size);
}

// The nothrow pair must be replaced alongside the throwing forms:
// std::inplace_merge / std::stable_sort temporary buffers allocate
// through operator new(size, nothrow), and a half-replaced set would
// pair the default nothrow new with our free() — an alloc/dealloc
// mismatch under ASan.
void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size != 0 ? size : 1);
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    g_newCalls.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(size != 0 ? size : 1);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

namespace a3 {
namespace {

/** Sizes hitting sub-vector, exact-vector, and tail cases for 4/8/16. */
const std::size_t kSizes[] = {1,  2,  3,  4,  5,  7,  8,   9,   15, 16,
                              17, 31, 32, 33, 63, 64, 65, 100, 257};

std::vector<float>
randomVec(Rng &rng, std::size_t n)
{
    std::vector<float> v(n);
    for (auto &x : v)
        x = static_cast<float>(rng.normal());
    return v;
}

/** A row-major (rows x dims) matrix buffer plus a gather index list. */
struct GatherCase
{
    std::vector<float> mat;
    std::vector<std::uint32_t> rows;
    std::size_t dims = 0;
};

GatherCase
makeGatherCase(Rng &rng, std::size_t matRows, std::size_t dims,
               std::size_t count)
{
    GatherCase c;
    c.dims = dims;
    c.mat = randomVec(rng, matRows * dims);
    c.rows.resize(count);
    for (auto &r : c.rows) {
        r = static_cast<std::uint32_t>(
            rng.uniformInt(0, static_cast<int>(matRows) - 1));
    }
    return c;
}

TEST(KernelDispatch, ScalarTableComplete)
{
    const Kernels &k = scalarKernels();
    EXPECT_EQ(k.isa, KernelIsa::Scalar);
    EXPECT_NE(k.dot, nullptr);
    EXPECT_NE(k.axpy, nullptr);
    EXPECT_NE(k.maxReduce, nullptr);
    EXPECT_NE(k.expSumInPlace, nullptr);
    EXPECT_NE(k.scale, nullptr);
    EXPECT_NE(k.divideBy, nullptr);
    EXPECT_NE(k.gatherDot, nullptr);
    EXPECT_NE(k.gatherWeightedSum, nullptr);
}

TEST(KernelDispatch, EveryAvailableTableComplete)
{
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        EXPECT_EQ(k.isa, isa) << kernelIsaName(isa);
        EXPECT_NE(k.dot, nullptr) << kernelIsaName(isa);
        EXPECT_NE(k.gatherWeightedSum, nullptr) << kernelIsaName(isa);
    }
}

TEST(KernelDispatch, ForceScalarEnvRespected)
{
    const char *old = std::getenv("A3_FORCE_SCALAR_KERNELS");
    const std::string saved = old != nullptr ? old : "";

    ::setenv("A3_FORCE_SCALAR_KERNELS", "1", 1);
    EXPECT_EQ(selectKernels().isa, KernelIsa::Scalar);
    ::setenv("A3_FORCE_SCALAR_KERNELS", "yes", 1);
    EXPECT_EQ(selectKernels().isa, KernelIsa::Scalar);

    // "0" and unset mean "do not force": the widest table wins.
    ::setenv("A3_FORCE_SCALAR_KERNELS", "0", 1);
    const KernelIsa unforced = selectKernels().isa;
    ::unsetenv("A3_FORCE_SCALAR_KERNELS");
    EXPECT_EQ(selectKernels().isa, unforced);
    EXPECT_EQ(unforced, availableKernelIsas().back());

    if (old != nullptr)
        ::setenv("A3_FORCE_SCALAR_KERNELS", saved.c_str(), 1);
}

TEST(KernelDispatch, ActiveTableOverride)
{
    const Kernels &original = activeKernels();
    setActiveKernels(scalarKernels());
    EXPECT_EQ(activeKernels().isa, KernelIsa::Scalar);
    setActiveKernels(original);
    EXPECT_EQ(activeKernels().isa, original.isa);
}

TEST(KernelEquivalence, OrderPreservingOpsBitExact)
{
    const Kernels &scalar = scalarKernels();
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &simd = kernelsFor(isa);
        Rng rng(1234);
        for (std::size_t n : kSizes) {
            SCOPED_TRACE(std::string(kernelIsaName(isa)) + " n=" +
                         std::to_string(n));
            const std::vector<float> x = randomVec(rng, n);
            const float a = static_cast<float>(rng.normal());

            // axpy
            std::vector<float> yS = randomVec(rng, n);
            std::vector<float> yV = yS;
            scalar.axpy(a, x.data(), yS.data(), n);
            simd.axpy(a, x.data(), yV.data(), n);
            EXPECT_EQ(yS, yV);

            // maxReduce
            EXPECT_EQ(scalar.maxReduce(x.data(), n),
                      simd.maxReduce(x.data(), n));

            const float maxVal = scalar.maxReduce(x.data(), n);
            std::vector<float> eS = x;
            const float sumS =
                scalar.expSumInPlace(eS.data(), n, maxVal);

            // scale and divideBy
            std::vector<float> sS = x;
            std::vector<float> sV = x;
            scalar.scale(sS.data(), n, a);
            simd.scale(sV.data(), n, a);
            EXPECT_EQ(sS, sV);
            std::vector<float> dS = x;
            std::vector<float> dV = x;
            scalar.divideBy(dS.data(), n, sumS);
            simd.divideBy(dV.data(), n, sumS);
            EXPECT_EQ(dS, dV);
        }

        // gatherWeightedSum across dim tails
        for (std::size_t dims : {1u, 3u, 7u, 8u, 13u, 16u, 64u}) {
            SCOPED_TRACE(std::string(kernelIsaName(isa)) + " dims=" +
                         std::to_string(dims));
            const GatherCase c = makeGatherCase(rng, 40, dims, 25);
            const std::vector<float> w = randomVec(rng, c.rows.size());
            std::vector<float> outS(dims, 0.0f);
            std::vector<float> outV(dims, 0.0f);
            scalar.gatherWeightedSum(c.mat.data(), dims, c.rows.data(),
                                     c.rows.size(), w.data(),
                                     outS.data());
            simd.gatherWeightedSum(c.mat.data(), dims, c.rows.data(),
                                   c.rows.size(), w.data(),
                                   outV.data());
            EXPECT_EQ(outS, outV);
        }
    }
}

TEST(KernelEquivalence, ExpSumWithinRelativeTolerance)
{
    // expSumInPlace is tolerance-class: SIMD tables may substitute a
    // polynomial exp. Check every element and the sum against a
    // double-precision libm reference.
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        Rng rng(4321);
        for (std::size_t n : kSizes) {
            SCOPED_TRACE(std::string(kernelIsaName(isa)) + " n=" +
                         std::to_string(n));
            std::vector<float> v = randomVec(rng, n);
            // Softmax-shaped inputs: shift so the max maps to 0 and
            // everything else is negative, including deep underflow.
            const float maxVal =
                scalarKernels().maxReduce(v.data(), n);
            v[0] = maxVal - 50.0f;  // ~2e-22 after exp
            std::vector<float> e = v;
            const float sum = k.expSumInPlace(e.data(), n, maxVal);

            double exactSum = 0.0;
            for (std::size_t i = 0; i < n; ++i) {
                // Subtract in float first — that is the operation every
                // kernel performs — so the tolerance measures only the
                // exp approximation itself.
                const float shifted = v[i] - maxVal;
                const double exact =
                    std::exp(static_cast<double>(shifted));
                exactSum += exact;
                const double tol = 1e-6 * (std::fabs(exact) + 1e-30);
                EXPECT_NEAR(static_cast<double>(e[i]), exact, tol)
                    << "element " << i;
            }
            EXPECT_NEAR(static_cast<double>(sum), exactSum,
                        1e-6 * (exactSum + 1e-30));
        }
    }
}

TEST(KernelEquivalence, DotWithinRelativeTolerance)
{
    const Kernels &scalar = scalarKernels();
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &simd = kernelsFor(isa);
        Rng rng(5678);
        for (std::size_t n : kSizes) {
            SCOPED_TRACE(std::string(kernelIsaName(isa)) + " n=" +
                         std::to_string(n));
            const std::vector<float> a = randomVec(rng, n);
            const std::vector<float> b = randomVec(rng, n);

            // Double-precision ground truth bounds both variants.
            double exact = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                exact += static_cast<double>(a[i]) *
                         static_cast<double>(b[i]);

            const float ds = scalar.dot(a.data(), b.data(), n);
            const float dv = simd.dot(a.data(), b.data(), n);
            // Tolerance scales with the accumulated magnitude, not the
            // (possibly cancelled) final value.
            double magnitude = 0.0;
            for (std::size_t i = 0; i < n; ++i)
                magnitude += std::fabs(static_cast<double>(a[i]) *
                                       static_cast<double>(b[i]));
            const double tol = 1e-6 * (magnitude + 1.0);
            EXPECT_NEAR(ds, exact, tol);
            EXPECT_NEAR(dv, exact, tol);
            EXPECT_NEAR(ds, dv, tol);
        }

        // gatherDot agrees with per-row dot of the same table.
        Rng rng2(91);
        const GatherCase c = makeGatherCase(rng2, 30, 64, 20);
        const std::vector<float> q = randomVec(rng2, 64);
        std::vector<float> out(c.rows.size(), 0.0f);
        simd.gatherDot(c.mat.data(), c.dims, c.rows.data(),
                       c.rows.size(), q.data(), out.data());
        for (std::size_t i = 0; i < c.rows.size(); ++i) {
            EXPECT_EQ(out[i], simd.dot(c.mat.data() + c.rows[i] * c.dims,
                                       q.data(), c.dims))
                << kernelIsaName(isa) << " row " << i;
        }
    }
}

// ---------------------------------------------------------------------
// Packed integer kernels: exact on every table (integer addition is
// associative), so agreement is EXPECT_EQ, not a tolerance.
// ---------------------------------------------------------------------

std::vector<std::int8_t>
randomI8(Rng &rng, std::size_t n, int magnitude)
{
    std::vector<std::int8_t> v(n);
    for (auto &x : v)
        x = static_cast<std::int8_t>(
            rng.uniformInt(-magnitude, magnitude));
    return v;
}

/** Pack int4 lanes (values in [-7, 7]) into the nibble layout. */
std::vector<std::uint8_t>
packI4(const std::vector<std::int8_t> &lanes)
{
    std::vector<std::uint8_t> packed((lanes.size() + 1) / 2);
    for (std::size_t i = 0; i < lanes.size(); i += 2) {
        const std::int8_t hi =
            i + 1 < lanes.size() ? lanes[i + 1] : std::int8_t{0};
        packed[i / 2] = packNibblePair(lanes[i], hi);
    }
    return packed;
}

TEST(PackedKernels, EveryAvailableTableComplete)
{
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        EXPECT_NE(k.dotI8, nullptr) << kernelIsaName(isa);
        EXPECT_NE(k.gatherDotI8, nullptr) << kernelIsaName(isa);
        EXPECT_NE(k.dotI4, nullptr) << kernelIsaName(isa);
        EXPECT_NE(k.gatherDotI4, nullptr) << kernelIsaName(isa);
        EXPECT_NE(k.axpyI8, nullptr) << kernelIsaName(isa);
        EXPECT_NE(k.axpyI4, nullptr) << kernelIsaName(isa);
    }
}

TEST(PackedKernels, DotI8MatchesWideReferenceOnEveryIsa)
{
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        Rng rng(8101);
        for (std::size_t n : kSizes) {
            SCOPED_TRACE(std::string(kernelIsaName(isa)) + " n=" +
                         std::to_string(n));
            // Full symmetric range: -128 is excluded by the storage
            // contract, -127..127 must all work.
            const std::vector<std::int8_t> a = randomI8(rng, n, 127);
            const std::vector<std::int8_t> b = randomI8(rng, n, 127);
            std::int64_t exact = 0;
            for (std::size_t i = 0; i < n; ++i)
                exact += static_cast<std::int64_t>(a[i]) * b[i];
            EXPECT_EQ(k.dotI8(a.data(), b.data(), n), exact);
        }
    }
}

TEST(PackedKernels, DotI4MatchesWideReferenceOnEveryIsa)
{
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        Rng rng(8102);
        for (std::size_t n : kSizes) {
            SCOPED_TRACE(std::string(kernelIsaName(isa)) + " n=" +
                         std::to_string(n));
            // Odd n exercises the trailing low-nibble lane.
            const std::vector<std::int8_t> lanes = randomI8(rng, n, 7);
            const std::vector<std::uint8_t> packed = packI4(lanes);
            const std::vector<std::int8_t> q = randomI8(rng, n, 127);
            std::int64_t exact = 0;
            for (std::size_t i = 0; i < n; ++i)
                exact += static_cast<std::int64_t>(lanes[i]) * q[i];
            EXPECT_EQ(k.dotI4(packed.data(), q.data(), n), exact);
        }
    }
}

TEST(PackedKernels, NibbleHelpersRoundTripEveryLane)
{
    for (int lo = -8; lo <= 7; ++lo) {
        for (int hi = -8; hi <= 7; ++hi) {
            const std::uint8_t byte =
                packNibblePair(static_cast<std::int8_t>(lo),
                               static_cast<std::int8_t>(hi));
            EXPECT_EQ(unpackNibbleLow(byte), lo);
            EXPECT_EQ(unpackNibbleHigh(byte), hi);
        }
    }
}

TEST(PackedKernels, GatherVariantsMatchPerRowDots)
{
    Rng rng(8103);
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        // Odd dims exercise nibble row alignment (each row starts on
        // its own byte; the pad nibble must not leak into neighbors).
        for (std::size_t dims : {1u, 3u, 7u, 16u, 33u, 64u, 65u}) {
            SCOPED_TRACE(std::string(kernelIsaName(isa)) + " dims=" +
                         std::to_string(dims));
            const std::size_t matRows = 24;
            const std::size_t count = 17;
            const std::vector<std::int8_t> mat8 =
                randomI8(rng, matRows * dims, 127);
            const std::vector<std::int8_t> lanes4 =
                randomI8(rng, matRows * dims, 7);
            // Pack row by row so each row is byte-aligned.
            std::vector<std::uint8_t> mat4;
            const std::size_t rowBytes = (dims + 1) / 2;
            for (std::size_t r = 0; r < matRows; ++r) {
                const std::vector<std::int8_t> row(
                    lanes4.begin() + r * dims,
                    lanes4.begin() + (r + 1) * dims);
                const std::vector<std::uint8_t> packedRow = packI4(row);
                mat4.insert(mat4.end(), packedRow.begin(),
                            packedRow.end());
            }
            ASSERT_EQ(mat4.size(), matRows * rowBytes);
            const std::vector<std::int8_t> q = randomI8(rng, dims, 127);
            // Repeated rows included: gathers may revisit a row.
            std::vector<std::uint32_t> rows(count);
            for (auto &r : rows)
                r = static_cast<std::uint32_t>(rng.uniformInt(
                    0, static_cast<int>(matRows) - 1));
            rows[count - 1] = rows[0];

            std::vector<std::int32_t> out8(count);
            std::vector<std::int32_t> out4(count);
            k.gatherDotI8(mat8.data(), dims, rows.data(), count,
                          q.data(), out8.data());
            k.gatherDotI4(mat4.data(), dims, rows.data(), count,
                          q.data(), out4.data());
            for (std::size_t i = 0; i < count; ++i) {
                EXPECT_EQ(out8[i], k.dotI8(mat8.data() + rows[i] * dims,
                                           q.data(), dims))
                    << "row " << i;
                EXPECT_EQ(out4[i],
                          k.dotI4(mat4.data() + rows[i] * rowBytes,
                                  q.data(), dims))
                    << "row " << i;
            }
        }
    }
}

TEST(PackedKernels, AxpyMatchesWideReferenceOnEveryIsa)
{
    const std::int64_t weights[] = {0, 1, -1, 4095, -4095, (1 << 24) - 1,
                                    -((1 << 24) - 1)};
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        Rng rng(8104);
        for (std::size_t n : kSizes) {
            for (const std::int64_t w : weights) {
                SCOPED_TRACE(std::string(kernelIsaName(isa)) + " n=" +
                             std::to_string(n) + " w=" +
                             std::to_string(w));
                const std::vector<std::int8_t> x8 =
                    randomI8(rng, n, 127);
                const std::vector<std::int8_t> lanes4 =
                    randomI8(rng, n, 7);
                const std::vector<std::uint8_t> x4 = packI4(lanes4);
                std::vector<std::int64_t> seed(n);
                for (auto &y : seed)
                    y = static_cast<std::int64_t>(
                            rng.uniformInt(-1000000, 1000000))
                        << 8;

                std::vector<std::int64_t> got8 = seed;
                std::vector<std::int64_t> want8 = seed;
                k.axpyI8(w, x8.data(), got8.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    want8[i] += w * static_cast<std::int64_t>(x8[i]);
                EXPECT_EQ(got8, want8);

                std::vector<std::int64_t> got4 = seed;
                std::vector<std::int64_t> want4 = seed;
                k.axpyI4(w, x4.data(), got4.data(), n);
                for (std::size_t i = 0; i < n; ++i)
                    want4[i] += w * static_cast<std::int64_t>(lanes4[i]);
                EXPECT_EQ(got4, want4);
            }
        }
    }
}

TEST(PackedKernels, AllIsasBitIdenticalToScalar)
{
    const Kernels &scalar = scalarKernels();
    Rng rng(8105);
    const std::size_t n = 257;
    const std::vector<std::int8_t> a = randomI8(rng, n, 127);
    const std::vector<std::int8_t> b = randomI8(rng, n, 127);
    const std::vector<std::int8_t> lanes = randomI8(rng, n, 7);
    const std::vector<std::uint8_t> packed = packI4(lanes);
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        SCOPED_TRACE(kernelIsaName(isa));
        EXPECT_EQ(k.dotI8(a.data(), b.data(), n),
                  scalar.dotI8(a.data(), b.data(), n));
        EXPECT_EQ(k.dotI4(packed.data(), b.data(), n),
                  scalar.dotI4(packed.data(), b.data(), n));
    }
}

TEST(KernelDeterminism, RunToRunIdenticalPerTable)
{
    for (KernelIsa isa : availableKernelIsas()) {
        const Kernels &k = kernelsFor(isa);
        Rng rng(24601);
        const std::vector<float> a = randomVec(rng, 257);
        const std::vector<float> b = randomVec(rng, 257);
        const float first = k.dot(a.data(), b.data(), a.size());
        for (int repeat = 0; repeat < 10; ++repeat) {
            EXPECT_EQ(first, k.dot(a.data(), b.data(), a.size()))
                << kernelIsaName(isa);
        }
    }
}

/** The scalar kernel path reproduces the historic softmax loop. */
TEST(KernelEquivalence, ScalarSoftmaxMatchesHistoricLoop)
{
    const Kernels &original = activeKernels();
    setActiveKernels(scalarKernels());
    Rng rng(777);
    for (std::size_t n : {1u, 5u, 17u, 320u}) {
        const std::vector<float> input = randomVec(rng, n);
        // The exact pre-kernel-layer implementation.
        float maxVal = -std::numeric_limits<float>::infinity();
        for (float v : input)
            maxVal = std::max(maxVal, v);
        std::vector<float> expected(n);
        float sum = 0.0f;
        for (std::size_t i = 0; i < n; ++i) {
            expected[i] = std::exp(input[i] - maxVal);
            sum += expected[i];
        }
        for (auto &v : expected)
            v /= sum;

        EXPECT_EQ(softmax(input), expected) << "n=" << n;
    }
    setActiveKernels(original);
}

// ---------------------------------------------------------------------
// Zero-allocation steady state
// ---------------------------------------------------------------------

struct TestTask
{
    Matrix key;
    Matrix value;
    std::vector<Vector> queries;
};

TestTask
makeTask(std::uint64_t seed, std::size_t n, std::size_t d,
         std::size_t queryCount)
{
    Rng rng(seed);
    TestTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    t.queries.resize(queryCount);
    for (auto &q : t.queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }
    return t;
}

TEST(ZeroAllocation, SteadyStateRunIntoEveryBackend)
{
    const TestTask t = makeTask(4242, 48, 16, 4);
    for (EngineKind kind :
         {EngineKind::ExactFloat, EngineKind::ApproxFloat,
          EngineKind::ExactQuantized, EngineKind::ApproxQuantized}) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        const auto backend = makeBackend(cfg, t.key, t.value);

        AttentionResult out;
        // Warm-up: grows the thread-local Scratch and out's buffers to
        // task size.
        for (int pass = 0; pass < 3; ++pass)
            for (const Vector &q : t.queries)
                backend->runInto(q, out);

        const std::size_t before = allocationCount();
        for (int pass = 0; pass < 10; ++pass)
            for (const Vector &q : t.queries)
                backend->runInto(q, out);
        const std::size_t after = allocationCount();
        EXPECT_EQ(after - before, 0u)
            << (after - before) << " allocations in steady state";
    }
}

TEST(ZeroAllocation, SteadyStateEngineBatch)
{
    const TestTask t = makeTask(555, 48, 16, 8);
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxFloat;
    const auto backend = makeBackend(cfg, t.key, t.value);

    const AttentionEngine engine(2);
    std::vector<AttentionResult> results;
    // Warm-up: spins the pool, sizes every lane's Scratch and every
    // result slot's buffers.
    for (int pass = 0; pass < 3; ++pass)
        engine.runInto(*backend, t.queries, results);

    const std::size_t before = allocationCount();
    for (int pass = 0; pass < 10; ++pass)
        engine.runInto(*backend, t.queries, results);
    const std::size_t after = allocationCount();
    EXPECT_EQ(after - before, 0u)
        << (after - before) << " allocations in steady state";
    ASSERT_EQ(results.size(), t.queries.size());
}

/** Reusing one dirty result object across backends must not leak
 *  state between runs: every field is rewritten. */
TEST(ZeroAllocation, ReusedResultMatchesFreshResult)
{
    const TestTask t = makeTask(99, 32, 8, 3);
    EngineConfig approxCfg;
    approxCfg.kind = EngineKind::ApproxFloat;
    EngineConfig exactCfg;
    exactCfg.kind = EngineKind::ExactFloat;
    const auto approx = makeBackend(approxCfg, t.key, t.value);
    const auto exact = makeBackend(exactCfg, t.key, t.value);

    AttentionResult reused;
    for (const Vector &q : t.queries) {
        // Dirty the reused object with a different backend's result
        // before every comparison.
        exact->runInto(q, reused);
        approx->runInto(q, reused);
        const AttentionResult fresh = approx->run(q);
        EXPECT_EQ(reused.output, fresh.output);
        EXPECT_EQ(reused.weights, fresh.weights);
        EXPECT_EQ(reused.scores, fresh.scores);
        EXPECT_EQ(reused.candidates, fresh.candidates);
        EXPECT_EQ(reused.kept, fresh.kept);
        EXPECT_EQ(reused.iterations, fresh.iterations);
    }
}

/** SIMD and scalar end-to-end attention agree within tolerance. */
TEST(KernelEquivalence, EndToEndSimdMatchesScalarWithinTolerance)
{
    const Kernels &best = selectKernels();
    if (best.isa == KernelIsa::Scalar)
        GTEST_SKIP() << "no SIMD table available on this host";

    const TestTask t = makeTask(31337, 64, 32, 8);
    const auto backend = [&](const Kernels &k) {
        setActiveKernels(k);
        EngineConfig cfg;
        cfg.kind = EngineKind::ApproxFloat;
        const auto b = makeBackend(cfg, t.key, t.value);
        std::vector<AttentionResult> results;
        results.reserve(t.queries.size());
        for (const Vector &q : t.queries)
            results.push_back(b->run(q));
        return results;
    };
    const auto scalarResults = backend(scalarKernels());
    const auto simdResults = backend(best);
    setActiveKernels(selectKernels());

    for (std::size_t i = 0; i < t.queries.size(); ++i) {
        SCOPED_TRACE("query " + std::to_string(i));
        ASSERT_EQ(scalarResults[i].output.size(),
                  simdResults[i].output.size());
        for (std::size_t j = 0; j < scalarResults[i].output.size();
             ++j) {
            EXPECT_NEAR(scalarResults[i].output[j],
                        simdResults[i].output[j], 1e-5f);
        }
        for (std::size_t r = 0; r < scalarResults[i].weights.size();
             ++r) {
            EXPECT_NEAR(scalarResults[i].weights[r],
                        simdResults[i].weights[r], 1e-5f);
        }
    }
}

}  // namespace
}  // namespace a3
