/**
 * @file
 * Tests for the distributed serving tier: wire primitives and frame
 * codecs (round trips, strict malformed rejection, checksums),
 * deterministic fault injection, the shard worker protocol loop,
 * and the RemoteShardCoordinator's exactness and robustness — bit
 * identity with the in-process ShardedBackend for every engine
 * kind, and the deadline/retry/failover/rebind/local escalation
 * ladder under injected faults and real SIGKILLed worker
 * processes.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <unistd.h>
#include <vector>

#include "attention/backend.hpp"
#include "engine/engine.hpp"
#include "net/fault_injector.hpp"
#include "net/frame.hpp"
#include "net/process.hpp"
#include "net/transport.hpp"
#include "net/wire.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/remote_coordinator.hpp"
#include "serving/remote_worker.hpp"
#include "serving/sharded_backend.hpp"
#include "serving/session_cache.hpp"
#include "util/random.hpp"

#ifndef A3_SHARD_WORKER_BIN
#define A3_SHARD_WORKER_BIN ""
#endif

namespace a3 {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::ExactFloat, EngineKind::ApproxFloat,
    EngineKind::ExactQuantized, EngineKind::ApproxQuantized};

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

void
expectBitIdentical(const AttentionResult &a,
                   const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.iterations, b.iterations);
}

EngineConfig
configFor(EngineKind kind)
{
    EngineConfig config;
    config.kind = kind;
    config.intBits = 5;
    config.fracBits = 6;
    return config;
}

// ------------------------------------------------------------ wire

TEST(RemoteWireTest, RoundTripsEveryPrimitive)
{
    WireWriter w;
    w.u8(0xAB);
    w.u16(0xBEEF);
    w.u32(0xDEADBEEFu);
    w.u64(0x0123456789ABCDEFull);
    w.f32(-1.5f);
    w.f64(2.25);
    w.str("hello");
    const float floats[] = {1.0f, -0.0f, 3.5f};
    w.floats(floats, 3);
    const std::uint32_t ids[] = {7, 11};
    w.u32s(ids, 2);

    WireReader r(w.bytes());
    EXPECT_EQ(r.u8(), 0xAB);
    EXPECT_EQ(r.u16(), 0xBEEF);
    EXPECT_EQ(r.u32(), 0xDEADBEEFu);
    EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
    EXPECT_EQ(r.f32(), -1.5f);
    EXPECT_EQ(r.f64(), 2.25);
    EXPECT_EQ(r.str(), "hello");
    std::vector<float> gotFloats;
    r.floats(gotFloats);
    EXPECT_EQ(gotFloats, std::vector<float>({1.0f, -0.0f, 3.5f}));
    std::vector<std::uint32_t> gotIds;
    r.u32s(gotIds);
    EXPECT_EQ(gotIds, std::vector<std::uint32_t>({7, 11}));
    EXPECT_TRUE(r.done());
}

TEST(RemoteWireTest, OverrunLatchesFailure)
{
    WireWriter w;
    w.u16(42);
    WireReader r(w.bytes());
    r.u32();  // 4 bytes from a 2-byte buffer
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.u8(), 0u);  // stays failed
    EXPECT_FALSE(r.done());
}

TEST(RemoteWireTest, HostileLengthPrefixIsRejected)
{
    // A length prefix claiming far more elements than the buffer
    // holds must fail cleanly instead of allocating gigabytes.
    WireWriter w;
    w.u64(0x7FFFFFFFFFFFull);
    WireReader r(w.bytes());
    std::vector<float> out;
    r.floats(out);
    EXPECT_FALSE(r.ok());
    EXPECT_TRUE(out.empty());
}

// ----------------------------------------------------------- frame

TEST(RemoteFrameTest, HeaderRoundTrip)
{
    Frame frame{FrameType::Query, {1, 2, 3, 4}};
    const std::vector<std::uint8_t> bytes = encodeFrame(frame);
    ASSERT_GE(bytes.size(), kFrameHeaderBytes);

    FrameHeader header;
    EXPECT_TRUE(
        decodeFrameHeader(bytes.data(), bytes.size(), header)
            .ok());
    EXPECT_EQ(header.type, FrameType::Query);
    EXPECT_EQ(header.payloadLength, 4u);
    const std::vector<std::uint8_t> payload(
        bytes.begin() +
            static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
        bytes.end());
    EXPECT_TRUE(verifyFramePayload(header, payload).ok());
}

TEST(RemoteFrameTest, RejectsBadMagicVersionTypeAndLength)
{
    const Frame frame{FrameType::Heartbeat, {9, 9}};
    FrameHeader header;

    std::vector<std::uint8_t> bad = encodeFrame(frame);
    bad[0] ^= 0xFF;  // magic
    EXPECT_EQ(
        decodeFrameHeader(bad.data(), bad.size(), header).error,
        NetError::Malformed);

    bad = encodeFrame(frame);
    bad[4] ^= 0xFF;  // version
    EXPECT_EQ(
        decodeFrameHeader(bad.data(), bad.size(), header).error,
        NetError::BadVersion);

    bad = encodeFrame(frame);
    bad[6] = 0x77;  // unknown type
    EXPECT_EQ(
        decodeFrameHeader(bad.data(), bad.size(), header).error,
        NetError::Malformed);

    bad = encodeFrame(frame);
    bad[11] = 0x41;  // absurd payload length
    EXPECT_EQ(
        decodeFrameHeader(bad.data(), bad.size(), header).error,
        NetError::Malformed);
}

TEST(RemoteFrameTest, ChecksumMismatchIsTyped)
{
    const Frame frame{FrameType::Query, {5, 6, 7}};
    std::vector<std::uint8_t> bytes = encodeFrame(frame);
    bytes[kFrameHeaderBytes + 1] ^= 0x10;  // corrupt payload
    FrameHeader header;
    ASSERT_TRUE(
        decodeFrameHeader(bytes.data(), bytes.size(), header)
            .ok());
    const std::vector<std::uint8_t> payload(
        bytes.begin() +
            static_cast<std::ptrdiff_t>(kFrameHeaderBytes),
        bytes.end());
    EXPECT_EQ(verifyFramePayload(header, payload).error,
              NetError::BadChecksum);
}

// -------------------------------------------------------- protocol

TEST(RemoteProtocolTest, BindShardRoundTrip)
{
    Rng rng(3);
    BindShardPayload bind;
    bind.shardId = 3;
    bind.generation = 17;
    bind.config = configFor(EngineKind::ApproxQuantized);
    bind.key = randomMatrix(rng, 6, 4);
    bind.value = randomMatrix(rng, 6, 4);

    BindShardPayload out;
    ASSERT_TRUE(decodeBindShard(encodeBindShard(bind), out).ok());
    EXPECT_EQ(out.shardId, 3u);
    EXPECT_EQ(out.generation, 17u);
    EXPECT_EQ(out.config.kind, EngineKind::ApproxQuantized);
    EXPECT_EQ(out.config.intBits, 5);
    EXPECT_EQ(out.config.fracBits, 6);
    EXPECT_TRUE(out.key == bind.key);
    EXPECT_TRUE(out.value == bind.value);
}

TEST(RemoteProtocolTest, PartialReplyRoundTripIsBitExact)
{
    PartialReplyPayload reply;
    reply.requestId = 99;
    reply.shardId = 2;
    reply.partial.maxScore = 1.25f;
    reply.partial.expSum = 0.875f;
    reply.partial.iterations = 12;
    reply.partial.accum = {0.1f, -2.5f};
    reply.partial.expWeights = {0.5f, 0.25f, 0.0f};
    reply.partial.scores = {1.0f, -1.0f, 0.0f};
    reply.partial.candidates = {0, 1};
    reply.partial.kept = {1};

    PartialReplyPayload out;
    ASSERT_TRUE(
        decodePartialReply(encodePartialReply(reply), out).ok());
    EXPECT_EQ(out.requestId, 99u);
    EXPECT_EQ(out.partial.maxScore, 1.25f);
    EXPECT_EQ(out.partial.expSum, 0.875f);
    EXPECT_EQ(out.partial.accum, reply.partial.accum);
    EXPECT_EQ(out.partial.expWeights, reply.partial.expWeights);
    EXPECT_EQ(out.partial.scores, reply.partial.scores);
    EXPECT_EQ(out.partial.candidates, reply.partial.candidates);
    EXPECT_EQ(out.partial.kept, reply.partial.kept);
}

TEST(RemoteProtocolTest, RejectsTruncatedAndTrailingPayloads)
{
    QueryPayload query;
    query.requestId = 5;
    query.query = {1.0f, 2.0f};
    Frame frame = encodeQuery(query);

    Frame truncated = frame;
    truncated.payload.pop_back();
    QueryPayload out;
    EXPECT_EQ(decodeQuery(truncated, out).error,
              NetError::Malformed);

    Frame trailing = frame;
    trailing.payload.push_back(0);
    EXPECT_EQ(decodeQuery(trailing, out).error,
              NetError::Malformed);

    Frame wrongType = frame;
    wrongType.type = FrameType::Heartbeat;
    EXPECT_EQ(decodeQuery(wrongType, out).error,
              NetError::Malformed);
}

TEST(RemoteProtocolTest, RejectsOutOfRangeEnums)
{
    // An ErrorReply whose code is outside NetError's range must
    // not be cast blindly.
    WireWriter w;
    w.u64(1);
    w.u32(200);
    w.str("boom");
    Frame frame{FrameType::ErrorReply, w.take()};
    ErrorReplyPayload out;
    EXPECT_EQ(decodeErrorReply(frame, out).error,
              NetError::Malformed);
}

TEST(RemoteProtocolTest, WorkerConfigValidationMatchesMakeBackend)
{
    EngineConfig config = configFor(EngineKind::ExactQuantized);
    EXPECT_TRUE(validateRemoteEngineConfig(config).ok());

    config.intBits = 0;
    EXPECT_FALSE(validateRemoteEngineConfig(config).ok());

    config = configFor(EngineKind::ExactQuantized);
    config.intBits = 20;
    config.fracBits = 20;  // 41-bit word over the 32-bit lane
    EXPECT_FALSE(validateRemoteEngineConfig(config).ok());

    // Float kinds ignore the quantization fields entirely.
    config = configFor(EngineKind::ExactFloat);
    config.intBits = -3;
    EXPECT_TRUE(validateRemoteEngineConfig(config).ok());
}

// -------------------------------------------------- fault injector

TEST(FaultInjectorTest, SameSeedSameDecisions)
{
    const std::vector<FaultRule> rules = {
        {FrameType::Query, false, FaultAction::Drop,
         FaultDirection::Send, 0.5, 0.0, 100}};
    FaultInjector a(42, rules);
    FaultInjector b(42, rules);
    for (int i = 0; i < 200; ++i) {
        const bool hitA =
            a.decide(FrameType::Query, FaultDirection::Send) !=
            nullptr;
        const bool hitB =
            b.decide(FrameType::Query, FaultDirection::Send) !=
            nullptr;
        EXPECT_EQ(hitA, hitB) << "decision " << i;
    }
    EXPECT_EQ(a.stats().dropped, b.stats().dropped);
    EXPECT_GT(a.stats().dropped, 0u);
    EXPECT_LT(a.stats().dropped, 200u);
}

TEST(FaultInjectorTest, RespectsTypeDirectionAndBudget)
{
    const std::vector<FaultRule> rules = {
        {FrameType::Query, false, FaultAction::Corrupt,
         FaultDirection::Send, 1.0, 0.0, 2}};
    FaultInjector injector(7, rules);

    EXPECT_EQ(injector.decide(FrameType::Heartbeat,
                              FaultDirection::Send),
              nullptr);
    EXPECT_EQ(injector.decide(FrameType::Query,
                              FaultDirection::Recv),
              nullptr);
    EXPECT_NE(injector.decide(FrameType::Query,
                              FaultDirection::Send),
              nullptr);
    EXPECT_NE(injector.decide(FrameType::Query,
                              FaultDirection::Send),
              nullptr);
    // Budget of 2 is exhausted.
    EXPECT_EQ(injector.decide(FrameType::Query,
                              FaultDirection::Send),
              nullptr);
    EXPECT_EQ(injector.stats().corrupted, 2u);
}

TEST(FaultInjectorTest, CorruptedFrameFailsRealChecksum)
{
    auto [client, server] = transportPair();
    ASSERT_NE(client, nullptr);
    auto injector = std::make_shared<FaultInjector>(
        1, std::vector<FaultRule>{{FrameType::Query, false,
                                   FaultAction::Corrupt,
                                   FaultDirection::Send, 1.0, 0.0,
                                   1}});
    FaultyTransport faulty(client, injector);

    ASSERT_TRUE(
        faulty.send(Frame{FrameType::Query, {1, 2, 3, 4}}).ok());
    Frame got;
    EXPECT_EQ(server->recv(got, 1.0).error, NetError::BadChecksum);

    // The budget is spent: the next frame arrives intact.
    ASSERT_TRUE(
        faulty.send(Frame{FrameType::Query, {5, 6}}).ok());
    ASSERT_TRUE(server->recv(got, 1.0).ok());
    EXPECT_EQ(got.payload, std::vector<std::uint8_t>({5, 6}));
    client->close();
    server->close();
}

// ------------------------------------------------------- transport

TEST(RemoteTransportTest, FirstByteTimeoutLeavesStreamUsable)
{
    auto [client, server] = transportPair();
    ASSERT_NE(client, nullptr);
    Frame got;
    EXPECT_EQ(server->recv(got, 0.02).error, NetError::Timeout);
    EXPECT_TRUE(server->isOpen());

    ASSERT_TRUE(
        client->send(Frame{FrameType::Heartbeat, {1}}).ok());
    EXPECT_TRUE(server->recv(got, 1.0).ok());
    EXPECT_EQ(got.type, FrameType::Heartbeat);
    client->close();
    server->close();
}

TEST(RemoteTransportTest, PeerCloseIsTyped)
{
    auto [client, server] = transportPair();
    ASSERT_NE(client, nullptr);
    client->close();
    Frame got;
    EXPECT_EQ(server->recv(got, 1.0).error, NetError::Closed);
    server->close();
}

// ---------------------------------------------------------- worker

/** Fixture pairing an in-process worker with a client transport. */
class RemoteWorkerTest : public ::testing::Test
{
  protected:
    RemoteWorkerTest() : worker_("w0")
    {
        client_ = worker_.clientTransport();
    }

    NetStatus
    roundTrip(const Frame &frame, Frame &reply)
    {
        NetStatus status = client_->send(frame);
        if (!status.ok())
            return status;
        return client_->recv(reply, 2.0);
    }

    InProcessWorker worker_;
    std::shared_ptr<Transport> client_;
};

TEST_F(RemoteWorkerTest, AnswersHelloAndHeartbeat)
{
    Frame reply;
    HelloPayload hello;
    ASSERT_TRUE(
        roundTrip(encodeHello(hello, false), reply).ok());
    HelloPayload ack;
    ASSERT_TRUE(decodeHello(reply, ack).ok());
    EXPECT_EQ(ack.peer, "w0");

    HeartbeatPayload beat;
    beat.sequence = 5;
    ASSERT_TRUE(
        roundTrip(encodeHeartbeat(beat, false), reply).ok());
    HeartbeatPayload beatAck;
    ASSERT_TRUE(decodeHeartbeat(reply, beatAck).ok());
    EXPECT_EQ(beatAck.sequence, 5u);
    EXPECT_EQ(beatAck.shardsBound, 0u);
}

TEST_F(RemoteWorkerTest, BindsAndAnswersBitIdenticalPartials)
{
    Rng rng(11);
    const Matrix key = randomMatrix(rng, 10, 8);
    const Matrix value = randomMatrix(rng, 10, 8);
    const EngineConfig config = configFor(EngineKind::ExactFloat);

    BindShardPayload bind;
    bind.shardId = 0;
    bind.generation = 1;
    bind.config = config;
    bind.key = key;
    bind.value = value;
    Frame reply;
    ASSERT_TRUE(roundTrip(encodeBindShard(bind), reply).ok());
    BindAckPayload ack;
    ASSERT_TRUE(decodeBindAck(reply, ack).ok());
    EXPECT_EQ(ack.generation, 1u);

    const auto local = makeBackend(config, key, value);
    const Vector query = randomQuery(rng, 8);
    QueryPayload q;
    q.requestId = 1;
    q.generation = 1;
    q.query = query;
    ASSERT_TRUE(roundTrip(encodeQuery(q), reply).ok());
    PartialReplyPayload partial;
    ASSERT_TRUE(decodePartialReply(reply, partial).ok());

    PartialResult want;
    local->runPartialInto(query, want);
    EXPECT_EQ(partial.partial.maxScore, want.maxScore);
    EXPECT_EQ(partial.partial.expSum, want.expSum);
    EXPECT_EQ(partial.partial.accum, want.accum);
    EXPECT_EQ(partial.partial.expWeights, want.expWeights);
}

TEST_F(RemoteWorkerTest, RejectsStaleGenerationAndUnknownShard)
{
    Rng rng(13);
    BindShardPayload bind;
    bind.shardId = 4;
    bind.generation = 3;
    bind.config = configFor(EngineKind::ExactFloat);
    bind.key = randomMatrix(rng, 4, 4);
    bind.value = randomMatrix(rng, 4, 4);
    Frame reply;
    ASSERT_TRUE(roundTrip(encodeBindShard(bind), reply).ok());

    QueryPayload q;
    q.requestId = 9;
    q.shardId = 4;
    q.generation = 2;  // stale
    q.query = randomQuery(rng, 4);
    ASSERT_TRUE(roundTrip(encodeQuery(q), reply).ok());
    ErrorReplyPayload error;
    ASSERT_TRUE(decodeErrorReply(reply, error).ok());
    EXPECT_EQ(error.code, NetError::StaleShard);
    EXPECT_EQ(error.requestId, 9u);

    q.shardId = 77;  // never bound
    q.generation = 3;
    q.requestId = 10;
    ASSERT_TRUE(roundTrip(encodeQuery(q), reply).ok());
    ASSERT_TRUE(decodeErrorReply(reply, error).ok());
    EXPECT_EQ(error.code, NetError::WorkerError);
}

TEST_F(RemoteWorkerTest, RejectsLethalConfigWithoutDying)
{
    Rng rng(17);
    BindShardPayload bind;
    bind.shardId = 0;
    bind.generation = 1;
    bind.config = configFor(EngineKind::ExactQuantized);
    bind.config.intBits = 0;  // makeBackend would fatal() on this
    bind.key = randomMatrix(rng, 4, 4);
    bind.value = randomMatrix(rng, 4, 4);
    Frame reply;
    ASSERT_TRUE(roundTrip(encodeBindShard(bind), reply).ok());
    ErrorReplyPayload error;
    ASSERT_TRUE(decodeErrorReply(reply, error).ok());
    EXPECT_EQ(error.code, NetError::WorkerError);

    // The worker survived and still answers.
    HeartbeatPayload beat;
    ASSERT_TRUE(
        roundTrip(encodeHeartbeat(beat, false), reply).ok());
    EXPECT_EQ(reply.type, FrameType::HeartbeatAck);
}

// ----------------------------------------------------- coordinator

/** In-process worker fleet + coordinator factory for the tests. */
struct Fleet
{
    std::vector<std::unique_ptr<InProcessWorker>> workers;
    std::shared_ptr<FaultInjector> injector;

    std::vector<RemoteWorkerSpec>
    specs()
    {
        std::vector<RemoteWorkerSpec> result;
        for (auto &worker : workers) {
            RemoteWorkerSpec spec;
            spec.name = worker->name();
            spec.connect = [&worker](NetStatus &) {
                return worker->clientTransport();
            };
            result.push_back(std::move(spec));
        }
        return result;
    }
};

Fleet
makeFleet(std::size_t count)
{
    Fleet fleet;
    for (std::size_t w = 0; w < count; ++w)
        fleet.workers.push_back(std::make_unique<InProcessWorker>(
            "w" + std::to_string(w)));
    return fleet;
}

RemoteShardConfig
fastConfig()
{
    RemoteShardConfig config;
    config.shardRows = 16;
    config.queryDeadlineSeconds = 0.25;
    config.heartbeatTimeoutSeconds = 0.1;
    config.retryBackoffSeconds = 0.001;
    config.retryBackoffMaxSeconds = 0.004;
    return config;
}

TEST(RemoteCoordinatorTest, BitIdenticalToShardedForEveryKind)
{
    Rng rng(101);
    const std::size_t n = 70;  // 5 shards of 14 at shardRows 16
    const std::size_t d = 16;
    const Matrix key = randomMatrix(rng, n, d);
    const Matrix value = randomMatrix(rng, n, d);

    for (const EngineKind kind : kAllKinds) {
        const EngineConfig inner = configFor(kind);
        Fleet fleet = makeFleet(3);
        RemoteShardConfig config = fastConfig();
        RemoteShardCoordinator remote(inner, key, value,
                                      fleet.specs(), config);
        ShardedBackend sharded(inner, key, value,
                               ShardedConfig{config.shardRows});
        ASSERT_EQ(remote.rows(), sharded.rows());
        ASSERT_EQ(remote.shardCount(), 5u);

        for (int i = 0; i < 8; ++i) {
            const Vector query = randomQuery(rng, d);
            expectBitIdentical(remote.run(query),
                               sharded.run(query));
        }
        const RemoteCoordinatorStats stats = remote.stats();
        EXPECT_EQ(stats.localFallbacks, 0u);
        EXPECT_EQ(stats.failovers, 0u);
    }
}

TEST(RemoteCoordinatorTest, SingleShardMatchesUnshardedBitExactly)
{
    Rng rng(103);
    const Matrix key = randomMatrix(rng, 12, 8);
    const Matrix value = randomMatrix(rng, 12, 8);

    // The quantized kinds are the reason wantFull exists: their
    // partial roundtrip is not bit-tight, so single-shard queries
    // must travel as full results.
    for (const EngineKind kind : kAllKinds) {
        const EngineConfig inner = configFor(kind);
        Fleet fleet = makeFleet(1);
        RemoteShardConfig config = fastConfig();
        config.shardRows = 64;
        RemoteShardCoordinator remote(inner, key, value,
                                      fleet.specs(), config);
        ASSERT_EQ(remote.shardCount(), 1u);
        const auto plain = makeBackend(inner, key, value);
        for (int i = 0; i < 4; ++i) {
            const Vector query = randomQuery(rng, 8);
            expectBitIdentical(remote.run(query),
                               plain->run(query));
        }
    }
}

TEST(RemoteCoordinatorTest, AppendTracksShardedLayout)
{
    Rng rng(107);
    const std::size_t d = 8;
    Matrix key = randomMatrix(rng, 20, d);
    Matrix value = randomMatrix(rng, 20, d);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(2);
    RemoteShardConfig config = fastConfig();
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ShardedBackend sharded(inner, key, value,
                           ShardedConfig{config.shardRows});

    // Crosses the capacity of the last shard and opens a new one.
    const Matrix moreKey = randomMatrix(rng, 18, d);
    const Matrix moreValue = randomMatrix(rng, 18, d);
    remote.append(moreKey, moreValue);
    sharded.append(moreKey, moreValue);
    ASSERT_EQ(remote.rows(), sharded.rows());

    for (int i = 0; i < 6; ++i) {
        const Vector query = randomQuery(rng, d);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
}

TEST(RemoteCoordinatorTest, ServesEverythingLocallyWithNoWorkers)
{
    Rng rng(109);
    const Matrix key = randomMatrix(rng, 40, 8);
    const Matrix value = randomMatrix(rng, 40, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    RemoteShardCoordinator remote(inner, key, value, {},
                                  fastConfig());
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});
    const Vector query = randomQuery(rng, 8);
    expectBitIdentical(remote.run(query), sharded.run(query));
    EXPECT_GT(remote.stats().localFallbacks, 0u);
}

// ------------------------------------------------- fault tolerance

TEST(RemoteFaultToleranceTest, RetriesThroughDroppedQueries)
{
    Rng rng(211);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(2);
    auto injector = std::make_shared<FaultInjector>(
        5, std::vector<FaultRule>{{FrameType::Query, false,
                                   FaultAction::Drop,
                                   FaultDirection::Send, 1.0, 0.0,
                                   2}});
    RemoteShardConfig config = fastConfig();
    config.queryDeadlineSeconds = 0.05;
    config.decorateTransport =
        [injector](std::shared_ptr<Transport> inner) {
            return std::make_shared<FaultyTransport>(
                std::move(inner), injector);
        };
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    for (int i = 0; i < 4; ++i) {
        const Vector query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    const RemoteCoordinatorStats stats = remote.stats();
    EXPECT_EQ(injector->stats().dropped, 2u);
    EXPECT_GT(stats.timeouts, 0u);
    EXPECT_GT(stats.retries, 0u);
    EXPECT_EQ(stats.localFallbacks, 0u);
}

TEST(RemoteFaultToleranceTest, RecoversFromCorruptedQueries)
{
    Rng rng(223);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ApproxFloat);

    Fleet fleet = makeFleet(2);
    auto injector = std::make_shared<FaultInjector>(
        6, std::vector<FaultRule>{{FrameType::Query, false,
                                   FaultAction::Corrupt,
                                   FaultDirection::Send, 1.0, 0.0,
                                   3}});
    RemoteShardConfig config = fastConfig();
    config.decorateTransport =
        [injector](std::shared_ptr<Transport> inner) {
            return std::make_shared<FaultyTransport>(
                std::move(inner), injector);
        };
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    for (int i = 0; i < 4; ++i) {
        const Vector query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_EQ(injector->stats().corrupted, 3u);
    EXPECT_GT(remote.stats().retries, 0u);
    EXPECT_EQ(remote.stats().localFallbacks, 0u);
}

TEST(RemoteFaultToleranceTest, FailsOverWhenAConnectionCloses)
{
    Rng rng(227);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(3);
    RemoteShardConfig config = fastConfig();
    config.replication = 2;
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    // Sanity, then kill worker 0 mid-service.
    Vector query = randomQuery(rng, 8);
    expectBitIdentical(remote.run(query), sharded.run(query));
    fleet.workers[0]->stop();

    for (int i = 0; i < 6; ++i) {
        query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_EQ(remote.workerHealth(0), WorkerHealth::Dead);
    EXPECT_GT(remote.stats().failovers +
                  remote.stats().rebinds,
              0u);
    EXPECT_EQ(remote.stats().localFallbacks, 0u);
}

TEST(RemoteFaultToleranceTest, HeartbeatMarksDeadAndReReplicates)
{
    Rng rng(229);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(2);
    RemoteShardConfig config = fastConfig();
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ASSERT_EQ(remote.workerHealth(0), WorkerHealth::Healthy);
    ASSERT_EQ(remote.workerHealth(1), WorkerHealth::Healthy);

    remote.heartbeat();
    EXPECT_EQ(remote.workerHealth(0), WorkerHealth::Healthy);

    fleet.workers[1]->stop();
    remote.heartbeat();  // recv on a closed socketpair: dead
    EXPECT_EQ(remote.workerHealth(1), WorkerHealth::Dead);

    // Worker 1's shards were re-replicated onto worker 0, so
    // queries proceed without local fallback.
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});
    const Vector query = randomQuery(rng, 8);
    expectBitIdentical(remote.run(query), sharded.run(query));
    EXPECT_GT(remote.stats().rebinds, 0u);
    EXPECT_EQ(remote.stats().localFallbacks, 0u);
}

TEST(RemoteFaultToleranceTest, FallsBackLocallyWhenAllWorkersDie)
{
    Rng rng(233);
    const Matrix key = randomMatrix(rng, 32, 8);
    const Matrix value = randomMatrix(rng, 32, 8);
    const EngineConfig inner = configFor(EngineKind::ExactQuantized);

    Fleet fleet = makeFleet(2);
    RemoteShardConfig config = fastConfig();
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    for (auto &worker : fleet.workers)
        worker->stop();

    for (int i = 0; i < 3; ++i) {
        const Vector query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_GT(remote.stats().localFallbacks, 0u);
    EXPECT_EQ(remote.workerHealth(0), WorkerHealth::Dead);
    EXPECT_EQ(remote.workerHealth(1), WorkerHealth::Dead);
}

TEST(RemoteFaultToleranceTest, DelayedRepliesAreStaleNotWrong)
{
    Rng rng(239);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(2);
    // Delay shard replies past their deadline: each delayed reply
    // limps in during the retry's wait, exercising the stale-reply
    // discard rather than result corruption.
    auto injector = std::make_shared<FaultInjector>(
        8, std::vector<FaultRule>{{FrameType::PartialReply, false,
                                   FaultAction::Delay,
                                   FaultDirection::Recv, 1.0, 0.0,
                                   2}});
    RemoteShardConfig config = fastConfig();
    config.decorateTransport =
        [injector](std::shared_ptr<Transport> inner) {
            return std::make_shared<FaultyTransport>(
                std::move(inner), injector);
        };
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    for (int i = 0; i < 4; ++i) {
        const Vector query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_EQ(injector->stats().delayed, 2u);
    EXPECT_GT(remote.stats().timeouts, 0u);
}

/**
 * The serving tier above the coordinator: a BatchScheduler drains a
 * session whose backend is a RemoteShardCoordinator while one of
 * its workers dies between submit and drain. The failover happens
 * inside the drain's engine pass; completions must stay in ticket
 * order across the boundary and bit-identical to the in-process
 * ShardedBackend.
 */
TEST(RemoteFaultToleranceTest, SchedulerDrainSurvivesFailover)
{
    Rng rng(401);
    const std::size_t d = 8;
    const Matrix key = randomMatrix(rng, 48, d);
    const Matrix value = randomMatrix(rng, 48, d);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(3);
    RemoteShardConfig config = fastConfig();
    config.replication = 2;
    auto remote = std::make_shared<RemoteShardCoordinator>(
        inner, key, value, fleet.specs(), config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    AttentionEngine engine(2);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);
    cache.insert("remote", remote);

    std::vector<std::uint64_t> tickets;
    std::vector<Vector> queries;
    const auto submitWave = [&](int count) {
        for (int i = 0; i < count; ++i) {
            Vector q = randomQuery(rng, d);
            const AdmissionOutcome outcome =
                scheduler.submit("remote", q);
            ASSERT_TRUE(outcome.admitted());
            tickets.push_back(outcome.ticket);
            queries.push_back(std::move(q));
        }
    };
    const auto expectWave =
        [&](const std::vector<ServingResult> &completions,
            std::size_t firstIndex) {
            for (std::size_t i = 0; i < completions.size(); ++i) {
                SCOPED_TRACE("completion " + std::to_string(i));
                const std::size_t at = firstIndex + i;
                EXPECT_EQ(completions[i].ticket, tickets[at]);
                EXPECT_TRUE(completions[i].ok());
                expectBitIdentical(completions[i].result,
                                   sharded.run(queries[at]));
            }
        };

    submitWave(4);
    const auto healthy = scheduler.drain();
    ASSERT_EQ(healthy.size(), 4u);
    expectWave(healthy, 0);

    // Worker death lands between submit and drain: the coordinator
    // fails over / rebinds inside the drain's engine pass.
    submitWave(4);
    fleet.workers[0]->stop();
    const auto failedOver = scheduler.drain();
    ASSERT_EQ(failedOver.size(), 4u);
    expectWave(failedOver, 4);
    EXPECT_GT(remote->stats().failovers + remote->stats().rebinds,
              0u);

    // Tickets stay globally ordered across the failover boundary,
    // and the recovered backend keeps answering further drains.
    EXPECT_LT(healthy.back().ticket, failedOver.front().ticket);
    submitWave(2);
    const auto recovered = scheduler.drain();
    ASSERT_EQ(recovered.size(), 2u);
    expectWave(recovered, 8);
    EXPECT_EQ(remote->workerHealth(0), WorkerHealth::Dead);
}

// -------------------------------------------------- real processes

bool
workerBinaryAvailable()
{
    const std::string bin = A3_SHARD_WORKER_BIN;
    return !bin.empty() && access(bin.c_str(), X_OK) == 0;
}

std::string
socketPath(const std::string &tag)
{
    return "/tmp/a3_remote_test_" + tag + "_" +
           std::to_string(getpid()) + ".sock";
}

TEST(RemoteProcessTest, RealWorkersAreBitIdentical)
{
    if (!workerBinaryAvailable())
        GTEST_SKIP() << "shard_worker binary not built";
    Rng rng(307);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ApproxQuantized);

    std::vector<ChildProcess> procs(2);
    std::vector<RemoteWorkerSpec> specs;
    for (std::size_t w = 0; w < procs.size(); ++w) {
        const std::string path =
            socketPath("ident" + std::to_string(w));
        ASSERT_TRUE(procs[w]
                        .spawn(A3_SHARD_WORKER_BIN,
                               {path, "p" + std::to_string(w)})
                        .ok());
        specs.push_back(
            unixWorkerSpec("p" + std::to_string(w), path, 3.0));
    }

    RemoteShardConfig config = fastConfig();
    config.queryDeadlineSeconds = 2.0;
    RemoteShardCoordinator remote(inner, key, value, specs,
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});
    for (int i = 0; i < 6; ++i) {
        const Vector query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_EQ(remote.stats().localFallbacks, 0u);
}

TEST(RemoteProcessTest, SurvivesSigkilledWorker)
{
    if (!workerBinaryAvailable())
        GTEST_SKIP() << "shard_worker binary not built";
    Rng rng(311);
    const Matrix key = randomMatrix(rng, 64, 8);
    const Matrix value = randomMatrix(rng, 64, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    std::vector<ChildProcess> procs(3);
    std::vector<RemoteWorkerSpec> specs;
    for (std::size_t w = 0; w < procs.size(); ++w) {
        const std::string path =
            socketPath("kill" + std::to_string(w));
        ASSERT_TRUE(procs[w]
                        .spawn(A3_SHARD_WORKER_BIN,
                               {path, "k" + std::to_string(w)})
                        .ok());
        specs.push_back(
            unixWorkerSpec("k" + std::to_string(w), path, 3.0));
    }

    RemoteShardConfig config = fastConfig();
    config.queryDeadlineSeconds = 0.5;
    RemoteShardCoordinator remote(inner, key, value, specs,
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    Vector query = randomQuery(rng, 8);
    expectBitIdentical(remote.run(query), sharded.run(query));

    // SIGKILL one worker: the kernel closes its sockets, and the
    // next queries must fail over with zero wrong answers.
    procs[1].kill();
    procs[1].wait();

    for (int i = 0; i < 8; ++i) {
        query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_EQ(remote.workerHealth(1), WorkerHealth::Dead);
    EXPECT_GT(remote.stats().failovers + remote.stats().rebinds,
              0u);
    EXPECT_EQ(remote.stats().localFallbacks, 0u);
}

// ---------------------------------------------- background heartbeat

TEST(RemoteFaultToleranceTest, BackgroundHeartbeatDetectsDeadWorker)
{
    Rng rng(307);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(2);
    RemoteShardConfig config = fastConfig();
    config.heartbeatPeriodSeconds = 0.005;
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ASSERT_EQ(remote.workerHealth(1), WorkerHealth::Healthy);

    // Kill a worker and wait for the coordinator's OWN thread to
    // notice — the caller never invokes heartbeat().
    fleet.workers[1]->stop();
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::seconds(10);
    while (remote.workerHealth(1) != WorkerHealth::Dead &&
           std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(remote.workerHealth(1), WorkerHealth::Dead);

    // The same thread re-replicated the dead worker's shards, so
    // queries proceed bit-identically with no local fallback.
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});
    for (int i = 0; i < 4; ++i) {
        const Vector query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_GT(remote.stats().rebinds, 0u);
    EXPECT_EQ(remote.stats().localFallbacks, 0u);
}

TEST(RemoteFaultToleranceTest, BackgroundHeartbeatStopsPromptly)
{
    Rng rng(311);
    const Matrix key = randomMatrix(rng, 32, 8);
    const Matrix value = randomMatrix(rng, 32, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    // A period much longer than the test: the destructor must
    // interrupt the sleep instead of waiting a full period out, and
    // must still shut the workers down cleanly afterwards.
    Fleet fleet = makeFleet(2);
    RemoteShardConfig config = fastConfig();
    config.heartbeatPeriodSeconds = 30.0;
    const auto start = std::chrono::steady_clock::now();
    {
        RemoteShardCoordinator remote(inner, key, value,
                                      fleet.specs(), config);
        const Vector query = randomQuery(rng, 8);
        ShardedBackend sharded(inner, key, value, ShardedConfig{16});
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    const double elapsed =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - start)
            .count();
    EXPECT_LT(elapsed, 10.0);
}

TEST(RemoteFaultToleranceTest,
     BackgroundHeartbeatCoexistsWithExplicitCalls)
{
    Rng rng(313);
    const Matrix key = randomMatrix(rng, 48, 8);
    const Matrix value = randomMatrix(rng, 48, 8);
    const EngineConfig inner = configFor(EngineKind::ExactFloat);

    Fleet fleet = makeFleet(2);
    RemoteShardConfig config = fastConfig();
    config.heartbeatPeriodSeconds = 0.002;
    RemoteShardCoordinator remote(inner, key, value, fleet.specs(),
                                  config);
    ShardedBackend sharded(inner, key, value, ShardedConfig{16});

    // Caller-driven heartbeats and queries interleave with the
    // background prober; health stays consistent and every answer
    // stays bit-identical.
    for (int i = 0; i < 10; ++i) {
        remote.heartbeat();
        const Vector query = randomQuery(rng, 8);
        expectBitIdentical(remote.run(query), sharded.run(query));
    }
    EXPECT_EQ(remote.workerHealth(0), WorkerHealth::Healthy);
    EXPECT_EQ(remote.workerHealth(1), WorkerHealth::Healthy);
    EXPECT_EQ(remote.stats().localFallbacks, 0u);
}

}  // namespace
}  // namespace a3
