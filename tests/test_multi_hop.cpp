/**
 * @file
 * Tests for multi-hop attention (the MemN2N usage pattern).
 */

#include <gtest/gtest.h>

#include "attention/multi_hop.hpp"
#include "attention/reference.hpp"
#include "util/random.hpp"
#include "workloads/embedding.hpp"

namespace a3 {
namespace {

TEST(MultiHop, OneHopMatchesSingleAttention)
{
    Rng rng(9100);
    const EmbeddingEpisode ep =
        generateEpisode(rng, EmbeddingParams{}, 16, 1);
    const MultiHopAttention multi(ep.key, ep.value,
                                  ApproxConfig::exact(), 1);
    const ApproxAttention single(ep.key, ep.value,
                                 ApproxConfig::exact());
    const MultiHopResult m = multi.run(ep.query);
    const AttentionResult s = single.run(ep.query);
    ASSERT_EQ(m.hops.size(), 1u);
    EXPECT_EQ(m.finalHop().output, s.output);
}

TEST(MultiHop, QueryUpdateIsAdditive)
{
    Rng rng(9101);
    const EmbeddingEpisode ep =
        generateEpisode(rng, EmbeddingParams{}, 12, 1);
    const MultiHopAttention multi(ep.key, ep.value,
                                  ApproxConfig::exact(), 2);
    const MultiHopResult m = multi.run(ep.query);
    ASSERT_EQ(m.hops.size(), 2u);
    // Hop 2's result equals attention run with u1 = q + o0.
    Vector u1 = ep.query;
    for (std::size_t j = 0; j < u1.size(); ++j)
        u1[j] += m.hops[0].output[j];
    const AttentionResult expected =
        referenceAttention(ep.key, ep.value, u1);
    EXPECT_EQ(m.hops[1].output, expected.output);
    // Final query is u1 + o1.
    for (std::size_t j = 0; j < u1.size(); ++j)
        u1[j] += m.hops[1].output[j];
    EXPECT_EQ(m.finalQuery, u1);
}

TEST(MultiHop, ThreeHopsProduceThreeResults)
{
    Rng rng(9102);
    const EmbeddingEpisode ep =
        generateEpisode(rng, EmbeddingParams{}, 20, 2);
    const MultiHopAttention multi(ep.key, ep.value,
                                  ApproxConfig::conservative(), 3);
    const MultiHopResult m = multi.run(ep.query);
    EXPECT_EQ(m.hops.size(), 3u);
    EXPECT_EQ(multi.hopCount(), 3u);
    for (const AttentionResult &hop : m.hops)
        EXPECT_FALSE(hop.kept.empty());
}

TEST(MultiHop, ApproxHopsShareThePreprocessedKey)
{
    // The same engine (and sorted key) serves every hop; candidate
    // sets may differ per hop because the query evolves.
    Rng rng(9103);
    const EmbeddingEpisode ep =
        generateEpisode(rng, EmbeddingParams{}, 30, 1);
    ApproxConfig cfg = ApproxConfig::conservative();
    const MultiHopAttention multi(ep.key, ep.value, cfg, 2);
    const MultiHopResult m = multi.run(ep.query);
    EXPECT_EQ(multi.engine().sortedKey().rows(), 30u);
    EXPECT_LE(m.hops[0].candidates.size(), 30u);
    EXPECT_LE(m.hops[1].candidates.size(), 30u);
}

TEST(MultiHop, RelevantRowUsuallySurvivesHops)
{
    // With a planted relevant row and random value rows, the additive
    // query update perturbs but should not catastrophically lose the
    // relevant row: it stays argmax in at least half the episodes.
    Rng rng(9104);
    int kept = 0;
    const int trials = 40;
    for (int t = 0; t < trials; ++t) {
        const EmbeddingEpisode ep =
            generateEpisode(rng, EmbeddingParams{}, 20, 1);
        const MultiHopAttention multi(ep.key, ep.value,
                                      ApproxConfig::exact(), 3);
        const MultiHopResult m = multi.run(ep.query);
        std::size_t top = 0;
        const Vector &w = m.finalHop().weights;
        for (std::size_t r = 1; r < w.size(); ++r) {
            if (w[r] > w[top])
                top = r;
        }
        kept += (top == ep.relevantRows[0]);
    }
    EXPECT_GE(kept, trials / 2);
}

}  // namespace
}  // namespace a3
