/**
 * @file
 * Cross-module integration tests: workloads through the device stack,
 * float vs fixed-point approximate flows, cluster aggregation, and
 * misuse guards.
 */

#include <gtest/gtest.h>

#include "attention/quantized.hpp"
#include "attention/reference.hpp"
#include "harness/accuracy.hpp"
#include "sim/host_interface.hpp"
#include "sim/multi_unit.hpp"
#include "workloads/babi_like.hpp"
#include "workloads/embedding.hpp"
#include "workloads/wikimovies_like.hpp"
#include "workloads/metrics.hpp"
#include "workloads/squad_like.hpp"

namespace a3 {
namespace {

TEST(Integration, WorkloadThroughHostInterfaceScoresLikeDirectRun)
{
    BabiLikeWorkload workload;
    Rng rng(9600);
    double viaLinkScore = 0.0;
    double directScore = 0.0;
    const int episodes = 30;
    for (int e = 0; e < episodes; ++e) {
        const AttentionTask task = workload.sample(rng);

        SimConfig cfg;
        cfg.maxRows = 64;
        cfg.dims = 64;
        cfg.mode = A3Mode::Base;
        A3Accelerator device(cfg);
        HostInterface host(device);
        host.loadTask(task.key, task.value);
        host.submitQuery(task.queries[0]);
        const auto output = host.readOutput();
        ASSERT_TRUE(output.has_value());

        // The device returns the quantized pipeline's output; score
        // the retrieval by recomputing weights from the same datapath.
        const AttentionResult direct = device.datapath().run(
            task.key, task.value, task.queries[0]);
        EXPECT_EQ(*output, direct.output);
        viaLinkScore +=
            argmaxAccuracy(direct.weights, task.relevant[0]);

        const AttentionResult ref = referenceAttention(
            task.key, task.value, task.queries[0]);
        directScore += argmaxAccuracy(ref.weights, task.relevant[0]);
    }
    // Quantized device retrieval tracks the float reference closely.
    EXPECT_NEAR(viaLinkScore / episodes, directScore / episodes,
                0.11);
}

TEST(Integration, FloatAndQuantizedApproxSelectSameCandidates)
{
    // Candidate selection runs pre-quantization in both flows, so the
    // candidate sets are identical; post-scoring may differ by rows
    // whose fixed-point score sits within an LSB of the threshold.
    WikiMoviesLikeWorkload workload;
    Rng rng(9601);
    for (int e = 0; e < 10; ++e) {
        const AttentionTask task = workload.sample(rng);
        const ApproxAttention engine(task.key, task.value,
                                     ApproxConfig::conservative());
        const AttentionResult fl = engine.run(task.queries[0]);

        QuantizedAttention datapath(4, 8, task.key.rows(),
                                    task.key.cols());
        const CandidateSearchResult search =
            engine.selectCandidates(task.queries[0]);
        EXPECT_EQ(fl.candidates, search.candidates);
    }
}

TEST(Integration, ClusterOnSelfAttentionMatchesSingleUnitResults)
{
    SquadLikeWorkload workload;
    Rng rng(9602);
    const AttentionTask task = workload.sample(rng);
    std::vector<Vector> queries(task.queries.begin(),
                                task.queries.begin() + 32);

    SimConfig cfg;
    cfg.maxRows = 320;
    cfg.dims = 64;
    cfg.mode = A3Mode::Approx;
    cfg.approx = ApproxConfig::conservative();

    // Functional outputs must be unit-count invariant.
    A3Accelerator solo(cfg);
    solo.loadTask(task.key, task.value);
    solo.runAll(queries);
    std::vector<Vector> soloOutputs;
    while (auto out = solo.popOutput())
        soloOutputs.push_back(out->result.output);

    A3Cluster cluster(cfg, 4);
    cluster.loadTask(task.key, task.value);
    const ClusterStats stats = cluster.runAll(queries);
    EXPECT_EQ(stats.queries, 32u);
    EXPECT_EQ(soloOutputs.size(), 32u);

    // Unit 0 received queries 0, 4, 8, ... in order.
    A3Accelerator probe(cfg);
    probe.loadTask(task.key, task.value);
    probe.submitQuery(queries[4]);
    probe.drain();
    const auto probeOut = probe.popOutput();
    ASSERT_TRUE(probeOut.has_value());
    EXPECT_EQ(probeOut->result.output, soloOutputs[4]);
}

TEST(Integration, HarnessEnginesAgreeOnEasyEpisodes)
{
    // On wide-margin episodes every engine retrieves the same row.
    EmbeddingParams params;
    params.relevantMargin = 8.0;
    params.marginJitter = 0.2;
    params.spikeProb = 0.0;
    Rng rng(9603);
    for (int e = 0; e < 20; ++e) {
        const EmbeddingEpisode ep =
            generateEpisode(rng, params, 24, 1);
        const AttentionResult ref =
            referenceAttention(ep.key, ep.value, ep.query);
        const ApproxAttention approx(ep.key, ep.value,
                                     ApproxConfig::conservative());
        const AttentionResult ap = approx.run(ep.query);
        QuantizedAttention q(4, 4, 24, 64);
        const AttentionResult qr = q.run(ep.key, ep.value, ep.query);
        const auto top = [](const Vector &w) {
            return topKIndices(w, 1)[0];
        };
        EXPECT_EQ(top(ref.weights), ep.relevantRows[0]);
        EXPECT_EQ(top(ap.weights), ep.relevantRows[0]);
        EXPECT_EQ(top(qr.weights), ep.relevantRows[0]);
    }
}

TEST(IntegrationDeath, SubmitBeforeLoadPanics)
{
    SimConfig cfg;
    cfg.maxRows = 16;
    cfg.dims = 64;
    A3Accelerator acc(cfg);
    Vector query(64, 0.5f);
    EXPECT_DEATH(acc.submitQuery(query), "before loadTask");
}

TEST(IntegrationDeath, WrongQueryDimensionPanics)
{
    SimConfig cfg;
    cfg.maxRows = 16;
    cfg.dims = 64;
    A3Accelerator acc(cfg);
    Matrix key(8, 64);
    Matrix value(8, 64);
    key(0, 0) = 1.0f;
    acc.loadTask(key, value);
    Vector narrow(32, 0.5f);
    EXPECT_DEATH(acc.submitQuery(narrow), "dimension");
}

TEST(IntegrationDeath, ReloadWhileInFlightPanics)
{
    SimConfig cfg;
    cfg.maxRows = 16;
    cfg.dims = 64;
    A3Accelerator acc(cfg);
    Matrix key(8, 64);
    Matrix value(8, 64);
    key(0, 0) = 1.0f;
    acc.loadTask(key, value);
    acc.submitQuery(Vector(64, 0.5f));
    EXPECT_DEATH(acc.loadTask(key, value), "in flight");
}

TEST(IntegrationDeath, MismatchedTaskShapesPanic)
{
    Matrix key(4, 8);
    Matrix value(5, 8);
    EXPECT_DEATH(ApproxAttention(key, value, ApproxConfig::exact()),
                 "shape mismatch");
}

}  // namespace
}  // namespace a3
