/**
 * @file
 * Integration tests for the A3 accelerator model: the paper's latency
 * and throughput formulas, functional equivalence with the fixed-point
 * datapath model, and activity accounting.
 */

#include <gtest/gtest.h>

#include "attention/post_scoring.hpp"
#include "sim/accelerator.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

struct RandomTask
{
    Matrix key;
    Matrix value;
    std::vector<Vector> queries;
};

RandomTask
makeTask(Rng &rng, std::size_t n, std::size_t d, std::size_t queries)
{
    RandomTask t;
    t.key = Matrix(n, d);
    t.value = Matrix(n, d);
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < d; ++c) {
            t.key(r, c) = static_cast<float>(rng.normal());
            t.value(r, c) = static_cast<float>(rng.normal());
        }
    }
    t.queries.resize(queries);
    for (auto &q : t.queries) {
        q.resize(d);
        for (auto &x : q)
            x = static_cast<float>(rng.normal());
    }
    return t;
}

SimConfig
baseConfig(std::size_t n, std::size_t d)
{
    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = d;
    cfg.mode = A3Mode::Base;
    return cfg;
}

TEST(BaseA3, SingleQueryLatencyIs3NPlus27)
{
    Rng rng(6000);
    for (std::size_t n : {20u, 64u, 186u, 320u}) {
        const RandomTask t = makeTask(rng, n, 64, 1);
        A3Accelerator acc(baseConfig(n, 64));
        acc.loadTask(t.key, t.value);
        const RunStats stats = acc.runAll(t.queries);
        EXPECT_EQ(static_cast<Cycle>(stats.avgLatency), 3 * n + 27)
            << "n=" << n;
    }
}

TEST(BaseA3, SteadyStateThroughputIsNPlus9)
{
    Rng rng(6001);
    const std::size_t n = 100;
    const RandomTask t = makeTask(rng, n, 64, 12);
    A3Accelerator acc(baseConfig(n, 64));
    acc.loadTask(t.key, t.value);
    const RunStats stats = acc.runAll(t.queries);
    EXPECT_DOUBLE_EQ(stats.cyclesPerQuery, static_cast<double>(n + 9));
}

TEST(BaseA3, ThreeQueriesPipelineOverlap)
{
    // Total time for q queries in steady state: 3(n+9) + (q-1)(n+9).
    Rng rng(6002);
    const std::size_t n = 50;
    const std::size_t q = 5;
    const RandomTask t = makeTask(rng, n, 64, q);
    A3Accelerator acc(baseConfig(n, 64));
    acc.loadTask(t.key, t.value);
    const RunStats stats = acc.runAll(t.queries);
    EXPECT_EQ(stats.totalCycles, (3 + q - 1) * (n + 9));
}

TEST(BaseA3, OutputsMatchFixedPointDatapath)
{
    Rng rng(6003);
    const RandomTask t = makeTask(rng, 24, 64, 3);
    A3Accelerator acc(baseConfig(24, 64));
    acc.loadTask(t.key, t.value);
    acc.runAll(t.queries);
    for (std::size_t i = 0; i < t.queries.size(); ++i) {
        auto out = acc.popOutput();
        ASSERT_TRUE(out.has_value());
        const AttentionResult expected =
            acc.datapath().run(t.key, t.value, t.queries[i]);
        EXPECT_EQ(out->result.output, expected.output);
        EXPECT_EQ(out->id, i);
    }
    EXPECT_FALSE(acc.popOutput().has_value());
}

TEST(BaseA3, KeySramReadsOneRowPerCycle)
{
    Rng rng(6004);
    const std::size_t n = 40;
    const std::size_t q = 4;
    const RandomTask t = makeTask(rng, n, 64, q);
    A3Accelerator acc(baseConfig(n, 64));
    acc.loadTask(t.key, t.value);
    acc.runAll(t.queries);
    EXPECT_EQ(acc.keySram().reads(), n * q);
    EXPECT_EQ(acc.valueSram().reads(), n * q);
    EXPECT_EQ(acc.sortedKeySram().reads(), 0u);  // base mode
}

SimConfig
approxConfig(std::size_t n, std::size_t d, ApproxConfig approx)
{
    SimConfig cfg;
    cfg.maxRows = n;
    cfg.dims = d;
    cfg.mode = A3Mode::Approx;
    cfg.approx = approx;
    return cfg;
}

TEST(ApproxA3, SingleQueryLatencyMatchesFormula)
{
    Rng rng(6005);
    const std::size_t n = 128;
    const RandomTask t = makeTask(rng, n, 64, 1);
    A3Accelerator acc(
        approxConfig(n, 64, ApproxConfig::conservative()));
    acc.loadTask(t.key, t.value);
    acc.runAll(t.queries);
    auto out = acc.popOutput();
    ASSERT_TRUE(out.has_value());

    const std::size_t m = out->iterM;
    const std::size_t c = out->candidatesC;
    const std::size_t k = out->keptK;
    // latency = [5 + M + ceil(n/16)] + [C + 9]
    //         + [ceil(C/16) + K + 9] + [K + 9]  (Section V-C shape
    //           M + C + 2K + alpha).
    const Cycle expected = (5 + m + (n + 15) / 16) + (c + 9) +
                           ((c + 15) / 16 + k + 9) + (k + 9);
    EXPECT_EQ(out->latency(), expected);
    EXPECT_EQ(m, 64u);  // M = n/2
    EXPECT_LE(c, n);
    EXPECT_LE(k, c);
}

TEST(ApproxA3, ThroughputLimitedByCandidateSelector)
{
    Rng rng(6006);
    const std::size_t n = 320;
    const RandomTask t = makeTask(rng, n, 64, 10);
    A3Accelerator acc(
        approxConfig(n, 64, ApproxConfig::conservative()));
    acc.loadTask(t.key, t.value);
    const RunStats stats = acc.runAll(t.queries);
    // Candidate stage service: 5 + M + ceil(320/16) = 5 + 160 + 20.
    const double candidateService = 5.0 + 160.0 + 20.0;
    // The selector dominates unless some C+9 exceeds it; allow the
    // bottleneck to be within a few cycles of it.
    EXPECT_GE(stats.cyclesPerQuery, candidateService - 1.0);
    EXPECT_LE(stats.cyclesPerQuery, candidateService + 40.0);
}

TEST(ApproxA3, FasterThanBaseOnSameTask)
{
    Rng rng(6007);
    const std::size_t n = 320;
    const RandomTask t = makeTask(rng, n, 64, 8);

    A3Accelerator base(baseConfig(n, 64));
    base.loadTask(t.key, t.value);
    const RunStats baseStats = base.runAll(t.queries);

    A3Accelerator aggr(
        approxConfig(n, 64, ApproxConfig::aggressive()));
    aggr.loadTask(t.key, t.value);
    const RunStats aggrStats = aggr.runAll(t.queries);

    EXPECT_LT(aggrStats.cyclesPerQuery, baseStats.cyclesPerQuery);
    EXPECT_LT(aggrStats.avgLatency, baseStats.avgLatency);
}

TEST(ApproxA3, OutputsMatchQuantizedSubsetFlow)
{
    Rng rng(6008);
    const RandomTask t = makeTask(rng, 64, 64, 2);
    A3Accelerator acc(
        approxConfig(64, 64, ApproxConfig::conservative()));
    acc.loadTask(t.key, t.value);
    acc.runAll(t.queries);
    for (std::size_t i = 0; i < t.queries.size(); ++i) {
        auto out = acc.popOutput();
        ASSERT_TRUE(out.has_value());
        // Recompute the expected flow by hand.
        ApproxAttention task(t.key, t.value,
                             ApproxConfig::conservative());
        auto search = task.selectCandidates(t.queries[i]);
        ASSERT_FALSE(search.candidates.empty());
        auto pass = acc.datapath().run(t.key, t.value, t.queries[i],
                                       search.candidates);
        Vector scores(search.candidates.size());
        for (std::size_t j = 0; j < search.candidates.size(); ++j)
            scores[j] = pass.scores[search.candidates[j]];
        auto kept = postScoringSelect(
            search.candidates, scores,
            ApproxConfig::conservative().scoreGap());
        auto expected =
            acc.datapath().run(t.key, t.value, t.queries[i], kept);
        EXPECT_EQ(out->result.output, expected.output);
        EXPECT_EQ(out->keptK, kept.size());
    }
}

TEST(ApproxA3, SortedKeySramIsUsed)
{
    Rng rng(6009);
    const RandomTask t = makeTask(rng, 64, 64, 2);
    A3Accelerator acc(
        approxConfig(64, 64, ApproxConfig::conservative()));
    acc.loadTask(t.key, t.value);
    acc.runAll(t.queries);
    EXPECT_GT(acc.sortedKeySram().reads(), 0u);
    EXPECT_GT(acc.sortedKeySram().writes(), 0u);
}

TEST(Accelerator, StagesExposedInPipelineOrder)
{
    A3Accelerator base(baseConfig(32, 64));
    EXPECT_EQ(base.stages().size(), 3u);
    A3Accelerator approx(
        approxConfig(32, 64, ApproxConfig::conservative()));
    const auto stages = approx.stages();
    ASSERT_EQ(stages.size(), 4u);
    EXPECT_EQ(stages[0]->name(), "candidate_selection");
    EXPECT_EQ(stages[3]->name(), "output");
}

TEST(Accelerator, DeterministicAcrossRuns)
{
    Rng rng(6010);
    const RandomTask t = makeTask(rng, 48, 64, 4);
    RunStats first;
    RunStats second;
    for (int pass = 0; pass < 2; ++pass) {
        A3Accelerator acc(
            approxConfig(48, 64, ApproxConfig::aggressive()));
        acc.loadTask(t.key, t.value);
        const RunStats stats = acc.runAll(t.queries);
        (pass == 0 ? first : second) = stats;
    }
    EXPECT_EQ(first.totalCycles, second.totalCycles);
    EXPECT_EQ(first.avgLatency, second.avgLatency);
    EXPECT_EQ(first.avgCandidates, second.avgCandidates);
}

TEST(Accelerator, QueueDrainsInFifoOrder)
{
    Rng rng(6011);
    const RandomTask t = makeTask(rng, 16, 64, 6);
    A3Accelerator acc(baseConfig(16, 64));
    acc.loadTask(t.key, t.value);
    acc.runAll(t.queries);
    std::uint64_t expected = 0;
    while (auto out = acc.popOutput())
        EXPECT_EQ(out->id, expected++);
    EXPECT_EQ(expected, 6u);
}

}  // namespace
}  // namespace a3
