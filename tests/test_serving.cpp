/**
 * @file
 * Tests for the streaming serving layer: incremental task binding
 * (backend append vs full re-bind bit-identity), the SessionCache
 * (hit/miss counters, LRU byte-budget eviction), and the
 * BatchScheduler (ticket-ordered completions bit-identical to
 * sequential per-query runs, across cache hits and appends).
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attention/approx_attention.hpp"
#include "attention/backend.hpp"
#include "attention/quantized.hpp"
#include "attention/sorted_key.hpp"
#include "engine/engine.hpp"
#include "serving/batch_scheduler.hpp"
#include "serving/session_cache.hpp"
#include "util/random.hpp"

namespace a3 {
namespace {

constexpr EngineKind kAllKinds[] = {
    EngineKind::ExactFloat, EngineKind::ApproxFloat,
    EngineKind::ExactQuantized, EngineKind::ApproxQuantized};

Matrix
randomMatrix(Rng &rng, std::size_t n, std::size_t d)
{
    Matrix m(n, d);
    for (std::size_t r = 0; r < n; ++r)
        for (std::size_t c = 0; c < d; ++c)
            m(r, c) = static_cast<float>(rng.normal());
    return m;
}

Vector
randomQuery(Rng &rng, std::size_t d)
{
    Vector q(d);
    for (auto &x : q)
        x = static_cast<float>(rng.normal());
    return q;
}

void
expectBitIdentical(const AttentionResult &a, const AttentionResult &b)
{
    EXPECT_EQ(a.output, b.output);
    EXPECT_EQ(a.weights, b.weights);
    EXPECT_EQ(a.scores, b.scores);
    EXPECT_EQ(a.candidates, b.candidates);
    EXPECT_EQ(a.kept, b.kept);
    EXPECT_EQ(a.iterations, b.iterations);
}

/** Concatenate b's rows below a's. */
Matrix
concatRows(const Matrix &a, const Matrix &b)
{
    Matrix out = a;
    out.appendRows(b);
    return out;
}

TEST(MatrixAppendRows, GrowsAndPreservesContent)
{
    Matrix a = Matrix::fromRows({{1.0f, 2.0f}, {3.0f, 4.0f}});
    const Matrix b = Matrix::fromRows({{5.0f, 6.0f}});
    a.appendRows(b);
    EXPECT_EQ(a.rows(), 3u);
    EXPECT_EQ(a.cols(), 2u);
    EXPECT_FLOAT_EQ(a(0, 1), 2.0f);
    EXPECT_FLOAT_EQ(a(2, 0), 5.0f);

    Matrix empty;
    empty.appendRows(b);
    EXPECT_EQ(empty, b);

    Matrix unchanged = b;
    unchanged.appendRows(Matrix());
    EXPECT_EQ(unchanged, b);

    // A zero-row matrix with a declared width enforces it.
    Matrix zeroRows(0, 5);
    EXPECT_DEATH(zeroRows.appendRows(b), "width mismatch");
}

TEST(SortedKeyAppend, MatchesFullBuild)
{
    Rng rng(9100);
    for (const std::size_t base : {1u, 7u, 32u}) {
        for (const std::size_t extra : {1u, 5u}) {
            const std::size_t d = 6;
            const Matrix head = randomMatrix(rng, base, d);
            const Matrix tail = randomMatrix(rng, extra, d);
            SortedKey incremental = SortedKey::build(head);
            incremental.append(tail,
                               static_cast<std::uint32_t>(base));
            const SortedKey rebuilt =
                SortedKey::build(concatRows(head, tail));
            ASSERT_EQ(incremental.rows(), rebuilt.rows());
            ASSERT_EQ(incremental.cols(), rebuilt.cols());
            for (std::size_t c = 0; c < d; ++c) {
                for (std::size_t p = 0; p < base + extra; ++p) {
                    EXPECT_EQ(incremental.at(p, c).val,
                              rebuilt.at(p, c).val)
                        << "col " << c << " pos " << p;
                    EXPECT_EQ(incremental.at(p, c).rowId,
                              rebuilt.at(p, c).rowId)
                        << "col " << c << " pos " << p;
                }
            }
        }
    }
}

TEST(SortedKeyAppend, DuplicateValuesKeepRowIdOrder)
{
    // Every element equal: ordering is decided purely by row id, the
    // worst case for the merge's tie handling.
    const Matrix head = Matrix::fromRows({{1.0f}, {1.0f}});
    const Matrix tail = Matrix::fromRows({{1.0f}, {1.0f}});
    SortedKey sk = SortedKey::build(head);
    sk.append(tail, 2);
    for (std::uint32_t p = 0; p < 4; ++p)
        EXPECT_EQ(sk.at(p, 0).rowId, p);
}

/**
 * The incremental-binding contract: append() then query must be
 * bit-identical to a backend freshly bound to the concatenated task,
 * for every backend kind, including repeated appends.
 */
TEST(BackendAppend, BitIdenticalToRebindAllKinds)
{
    Rng rng(9200);
    const std::size_t d = 16;
    for (const EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        Matrix key = randomMatrix(rng, 24, d);
        Matrix value = randomMatrix(rng, 24, d);
        const auto incremental = makeBackend(cfg, key, value);
        for (int step = 0; step < 3; ++step) {
            const std::size_t extra = step == 0 ? 1 : 4;
            const Matrix keyRows = randomMatrix(rng, extra, d);
            const Matrix valueRows = randomMatrix(rng, extra, d);
            incremental->append(keyRows, valueRows);
            key.appendRows(keyRows);
            value.appendRows(valueRows);
            const auto rebound = makeBackend(cfg, key, value);
            ASSERT_EQ(incremental->rows(), key.rows());
            for (int trial = 0; trial < 3; ++trial) {
                const Vector q = randomQuery(rng, d);
                expectBitIdentical(incremental->run(q),
                                   rebound->run(q));
            }
        }
    }
}

TEST(BackendAppend, MemoryBytesGrowsWithTask)
{
    Rng rng(9300);
    for (const EngineKind kind : kAllKinds) {
        SCOPED_TRACE(engineKindName(kind));
        EngineConfig cfg;
        cfg.kind = kind;
        const auto backend = makeBackend(cfg, randomMatrix(rng, 16, 8),
                                         randomMatrix(rng, 16, 8));
        const std::size_t before = backend->memoryBytes();
        EXPECT_GT(before, 0u);
        backend->append(randomMatrix(rng, 8, 8),
                        randomMatrix(rng, 8, 8));
        EXPECT_GT(backend->memoryBytes(), before);
    }
}

TEST(SessionCache, HitSkipsPreprocessingAndCounts)
{
    Rng rng(9400);
    SessionCache cache;
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxFloat;
    const Matrix key = randomMatrix(rng, 32, 8);
    const Matrix value = randomMatrix(rng, 32, 8);

    const auto first = cache.bind("story-1", cfg, key, value);
    ASSERT_NE(first, nullptr);
    EXPECT_EQ(cache.stats().misses, 1u);
    EXPECT_EQ(cache.stats().hits, 0u);

    // Second bind of the same session: the very same backend object
    // comes back — the preprocessing (column sort) did not rerun.
    const auto second = cache.bind("story-1", cfg, key, value);
    EXPECT_EQ(second.get(), first.get());
    EXPECT_EQ(cache.stats().hits, 1u);
    EXPECT_EQ(cache.stats().misses, 1u);

    EXPECT_EQ(cache.find("story-1").get(), first.get());
    EXPECT_EQ(cache.find("unknown"), nullptr);
    EXPECT_EQ(cache.stats().hits, 2u);
    EXPECT_EQ(cache.stats().misses, 2u);
    EXPECT_EQ(cache.sessionCount(), 1u);
    EXPECT_EQ(cache.bytesInUse(), first->memoryBytes());
}

TEST(SessionCache, EvictsLeastRecentlyUsedUnderByteBudget)
{
    Rng rng(9500);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    // Each 16 x 8 reference backend holds 2 * 16 * 8 * 4 = 1024 bytes;
    // budget fits exactly two.
    SessionCache cache(2048);
    for (const char *id : {"a", "b"})
        cache.bind(id, cfg, randomMatrix(rng, 16, 8),
                   randomMatrix(rng, 16, 8));
    EXPECT_EQ(cache.sessionCount(), 2u);

    // Touch "a" so "b" is least recently used, then overflow.
    EXPECT_NE(cache.find("a"), nullptr);
    cache.bind("c", cfg, randomMatrix(rng, 16, 8),
               randomMatrix(rng, 16, 8));
    EXPECT_EQ(cache.sessionCount(), 2u);
    EXPECT_EQ(cache.stats().evictions, 1u);
    EXPECT_EQ(cache.find("b"), nullptr);
    EXPECT_NE(cache.find("a"), nullptr);
    EXPECT_NE(cache.find("c"), nullptr);
    EXPECT_LE(cache.bytesInUse(), cache.byteBudget());

    // A session larger than the whole budget still binds (evicting
    // everything else) — the freshly bound session is never evicted.
    cache.bind("huge", cfg, randomMatrix(rng, 64, 8),
               randomMatrix(rng, 64, 8));
    EXPECT_EQ(cache.sessionCount(), 1u);
    EXPECT_NE(cache.find("huge"), nullptr);
}

TEST(SessionCache, AppendUpdatesAccountingAndBackend)
{
    Rng rng(9600);
    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxQuantized;
    SessionCache cache;
    const auto backend = cache.bind("s", cfg, randomMatrix(rng, 20, 8),
                                    randomMatrix(rng, 20, 8));
    const std::size_t before = cache.bytesInUse();
    EXPECT_TRUE(cache.append("s", randomMatrix(rng, 4, 8),
                             randomMatrix(rng, 4, 8)));
    EXPECT_EQ(backend->rows(), 24u);
    EXPECT_GT(cache.bytesInUse(), before);
    EXPECT_EQ(cache.bytesInUse(), backend->memoryBytes());
    EXPECT_EQ(cache.stats().appends, 1u);
    // An unbound (e.g. concurrently evicted) session is a typed
    // refusal the caller handles by re-binding, not an abort.
    EXPECT_FALSE(cache.append("missing", randomMatrix(rng, 1, 8),
                              randomMatrix(rng, 1, 8)));
    EXPECT_EQ(cache.stats().appends, 1u);
}

TEST(SessionCache, EraseAndClear)
{
    Rng rng(9700);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    SessionCache cache;
    cache.bind("x", cfg, randomMatrix(rng, 8, 4),
               randomMatrix(rng, 8, 4));
    EXPECT_TRUE(cache.erase("x"));
    EXPECT_FALSE(cache.erase("x"));
    EXPECT_EQ(cache.bytesInUse(), 0u);
    cache.bind("y", cfg, randomMatrix(rng, 8, 4),
               randomMatrix(rng, 8, 4));
    cache.clear();
    EXPECT_EQ(cache.sessionCount(), 0u);
    EXPECT_EQ(cache.bytesInUse(), 0u);
}

/**
 * End-to-end determinism of the serving tier: interleaved multi-
 * session requests, drained in batches, must complete in ticket order
 * with results bit-identical to sequential per-query run() calls —
 * including requests answered from cache hits and requests issued
 * after incremental appends.
 */
TEST(BatchScheduler, TicketOrderedBitIdenticalCompletions)
{
    Rng rng(9800);
    const std::size_t d = 12;
    AttentionEngine engine(4);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);

    EngineConfig cfg;
    cfg.kind = EngineKind::ApproxFloat;
    const std::vector<std::string> sessions{"alpha", "beta", "gamma"};
    for (std::size_t s = 0; s < sessions.size(); ++s) {
        cache.bind(sessions[s], cfg,
                   randomMatrix(rng, 16 + 8 * s, d),
                   randomMatrix(rng, 16 + 8 * s, d));
    }

    struct Expected
    {
        std::uint64_t ticket;
        std::string session;
        Vector query;
    };
    std::vector<Expected> submitted;
    for (int round = 0; round < 12; ++round) {
        const std::string &session = sessions[round % sessions.size()];
        Vector q = randomQuery(rng, d);
        const AdmissionOutcome outcome = scheduler.submit(session, q);
        ASSERT_TRUE(outcome.admitted());
        submitted.push_back({outcome.ticket, session, std::move(q)});
    }
    EXPECT_EQ(scheduler.pending(), 12u);

    const std::vector<ServingResult> completions = scheduler.drain();
    EXPECT_EQ(scheduler.pending(), 0u);
    ASSERT_EQ(completions.size(), submitted.size());
    for (std::size_t i = 0; i < completions.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        EXPECT_EQ(completions[i].ticket, submitted[i].ticket);
        EXPECT_EQ(completions[i].session, submitted[i].session);
        const auto backend = cache.find(submitted[i].session);
        ASSERT_NE(backend, nullptr);
        expectBitIdentical(completions[i].result,
                           backend->run(submitted[i].query));
    }

    // Second wave after an incremental append: cache hits serve the
    // grown task, and completions stay bit-identical to sequential
    // runs against it.
    cache.append("beta", randomMatrix(rng, 3, d),
                 randomMatrix(rng, 3, d));
    std::vector<Expected> wave2;
    for (int round = 0; round < 6; ++round) {
        const std::string &session = sessions[round % 2];  // alpha/beta
        Vector q = randomQuery(rng, d);
        const AdmissionOutcome outcome = scheduler.submit(session, q);
        ASSERT_TRUE(outcome.admitted());
        wave2.push_back({outcome.ticket, session, std::move(q)});
    }
    const std::vector<ServingResult> completions2 = scheduler.drain();
    ASSERT_EQ(completions2.size(), wave2.size());
    for (std::size_t i = 0; i < completions2.size(); ++i) {
        SCOPED_TRACE("wave2 request " + std::to_string(i));
        EXPECT_EQ(completions2[i].ticket, wave2[i].ticket);
        const auto backend = cache.find(wave2[i].session);
        ASSERT_NE(backend, nullptr);
        expectBitIdentical(completions2[i].result,
                           backend->run(wave2[i].query));
    }
}

TEST(BatchScheduler, MaxBatchLeavesExcessQueued)
{
    Rng rng(9900);
    const std::size_t d = 8;
    AttentionEngine engine(2);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache, 4);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    cache.bind("s", cfg, randomMatrix(rng, 10, d),
               randomMatrix(rng, 10, d));
    for (int i = 0; i < 6; ++i)
        scheduler.submit("s", randomQuery(rng, d));
    const auto first = scheduler.drain();
    EXPECT_EQ(first.size(), 4u);
    EXPECT_EQ(scheduler.pending(), 2u);
    const auto second = scheduler.drain();
    EXPECT_EQ(second.size(), 2u);
    EXPECT_EQ(scheduler.pending(), 0u);
    // Tickets across drains stay globally ordered.
    EXPECT_LT(first.back().ticket, second.front().ticket);
    EXPECT_TRUE(scheduler.drain().empty());
}

TEST(BatchScheduler, ConcurrentSubmittersGetDistinctTickets)
{
    Rng rng(10000);
    const std::size_t d = 8;
    AttentionEngine engine(4);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    cache.bind("s", cfg, randomMatrix(rng, 12, d),
               randomMatrix(rng, 12, d));

    const Vector query = randomQuery(rng, d);
    constexpr int kThreads = 4;
    constexpr int kPerThread = 25;
    std::vector<std::thread> submitters;
    submitters.reserve(kThreads);
    for (int t = 0; t < kThreads; ++t) {
        submitters.emplace_back([&scheduler, &query] {
            for (int i = 0; i < kPerThread; ++i)
                scheduler.submit("s", query);
        });
    }
    for (std::thread &t : submitters)
        t.join();
    const auto completions = scheduler.drain();
    ASSERT_EQ(completions.size(),
              static_cast<std::size_t>(kThreads * kPerThread));
    for (std::size_t i = 1; i < completions.size(); ++i)
        EXPECT_LT(completions[i - 1].ticket, completions[i].ticket);
}

/**
 * A session evicted (or failed over and not yet re-bound) between
 * submit and drain must not abort the server: its requests complete
 * with a typed SessionUnbound error, bound sessions in the same
 * batch still get bit-identical answers, and a retry after
 * re-binding is answered in ticket order.
 */
TEST(BatchScheduler, UnboundSessionCompletesWithTypedError)
{
    Rng rng(10100);
    const std::size_t d = 8;
    AttentionEngine engine(2);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    cache.bind("bound", cfg, randomMatrix(rng, 12, d),
               randomMatrix(rng, 12, d));

    std::vector<std::uint64_t> ghostTickets;
    std::vector<Vector> ghostQueries;
    std::vector<std::uint64_t> boundTickets;
    std::vector<Vector> boundQueries;
    for (int i = 0; i < 6; ++i) {
        Vector q = randomQuery(rng, d);
        const bool ghost = i % 2 == 0;
        const AdmissionOutcome outcome =
            scheduler.submit(ghost ? "ghost" : "bound", q);
        ASSERT_TRUE(outcome.admitted());
        (ghost ? ghostTickets : boundTickets)
            .push_back(outcome.ticket);
        (ghost ? ghostQueries : boundQueries)
            .push_back(std::move(q));
    }

    const auto completions = scheduler.drain();
    ASSERT_EQ(completions.size(), 6u);
    std::size_t unbound = 0;
    for (std::size_t i = 0; i < completions.size(); ++i) {
        SCOPED_TRACE("request " + std::to_string(i));
        if (i > 0)
            EXPECT_LT(completions[i - 1].ticket,
                      completions[i].ticket);
        const ServingResult &r = completions[i];
        if (r.session == "ghost") {
            ++unbound;
            EXPECT_FALSE(r.ok());
            EXPECT_EQ(r.error, ServingError::SessionUnbound);
            EXPECT_TRUE(r.result.output.empty());
        } else {
            EXPECT_TRUE(r.ok());
            EXPECT_EQ(r.error, ServingError::None);
            EXPECT_FALSE(r.result.output.empty());
        }
    }
    EXPECT_EQ(unbound, ghostTickets.size());
    EXPECT_EQ(scheduler.pending(), 0u);

    // The caller's recovery: bind the session and resubmit. The
    // retry is answered in ticket order, bit-identical to a direct
    // run against the freshly bound backend.
    const auto backend =
        cache.bind("ghost", cfg, randomMatrix(rng, 10, d),
                   randomMatrix(rng, 10, d));
    std::vector<std::uint64_t> retryTickets;
    for (const Vector &q : ghostQueries) {
        const AdmissionOutcome outcome =
            scheduler.submit("ghost", q);
        ASSERT_TRUE(outcome.admitted());
        retryTickets.push_back(outcome.ticket);
    }
    const auto retried = scheduler.drain();
    ASSERT_EQ(retried.size(), ghostQueries.size());
    for (std::size_t i = 0; i < retried.size(); ++i) {
        SCOPED_TRACE("retry " + std::to_string(i));
        EXPECT_EQ(retried[i].ticket, retryTickets[i]);
        EXPECT_GT(retried[i].ticket, completions.back().ticket);
        EXPECT_TRUE(retried[i].ok());
        expectBitIdentical(retried[i].result,
                           backend->run(ghostQueries[i]));
    }
    EXPECT_STREQ(servingErrorName(ServingError::SessionUnbound),
                 "session_unbound");
    EXPECT_STREQ(servingErrorName(ServingError::None), "none");
}

/**
 * The remote-reachable error paths return typed errors; what
 * remains fatal is exactly the programmer-contract surface. Pin
 * those contracts here so a refactor that silently downgrades (or
 * widens) an abort shows up as a test failure.
 */
TEST(FatalContractDeathTest, CacheRejectsNullBackendInsert)
{
    SessionCache cache;
    EXPECT_DEATH(cache.insert("s", nullptr), "null backend");
}

TEST(FatalContractDeathTest, SchedulerRejectsZeroSessionWeight)
{
    AttentionEngine engine(1);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);
    EXPECT_DEATH(scheduler.setSessionWeight("s", 0),
                 "weight must be positive");
}

TEST(FatalContractDeathTest, ReservoirRejectsZeroCapacity)
{
    EXPECT_DEATH(LatencyReservoir reservoir(0),
                 "positive capacity");
}

TEST(SessionCache, ResetCountersKeepsSessions)
{
    Rng rng(10200);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    SessionCache cache;
    cache.bind("s", cfg, randomMatrix(rng, 8, 4),
               randomMatrix(rng, 8, 4));
    cache.find("s");
    cache.find("missing");
    cache.append("s", randomMatrix(rng, 1, 4), randomMatrix(rng, 1, 4));
    EXPECT_GT(cache.stats().hits + cache.stats().misses, 0u);

    cache.resetCounters();
    const SessionCacheStats zeroed = cache.stats();
    EXPECT_EQ(zeroed.hits, 0u);
    EXPECT_EQ(zeroed.misses, 0u);
    EXPECT_EQ(zeroed.evictions, 0u);
    EXPECT_EQ(zeroed.appends, 0u);
    // Sessions and accounting survive: only the counters reset.
    EXPECT_EQ(cache.sessionCount(), 1u);
    EXPECT_NE(cache.find("s"), nullptr);
    EXPECT_EQ(cache.stats().hits, 1u);
}

TEST(BatchScheduler, StatsCountAndReset)
{
    Rng rng(10300);
    const std::size_t d = 8;
    AttentionEngine engine(2);
    SessionCache cache;
    BatchScheduler scheduler(engine, cache);
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    cache.bind("a", cfg, randomMatrix(rng, 10, d),
               randomMatrix(rng, 10, d));
    cache.bind("b", cfg, randomMatrix(rng, 10, d),
               randomMatrix(rng, 10, d));

    for (int i = 0; i < 3; ++i) {
        scheduler.submit("a", randomQuery(rng, d));
        scheduler.submit("b", randomQuery(rng, d));
    }
    EXPECT_EQ(scheduler.drain().size(), 6u);
    scheduler.drain();  // empty: no batch executed, no drain counted

    const BatchSchedulerStats stats = scheduler.stats();
    EXPECT_EQ(stats.submitted, 6u);
    EXPECT_EQ(stats.answered, 6u);
    EXPECT_EQ(stats.drains, 1u);
    EXPECT_EQ(stats.groups, 2u);  // six requests coalesced into two

    // Reset zeroes the counters but not the ticket clock: benches
    // measure steady-state after warm-up without perturbing order.
    const std::uint64_t before =
        scheduler.submit("a", randomQuery(rng, d)).ticket;
    scheduler.resetCounters();
    const BatchSchedulerStats zeroed = scheduler.stats();
    EXPECT_EQ(zeroed.submitted, 0u);
    EXPECT_EQ(zeroed.answered, 0u);
    EXPECT_EQ(zeroed.drains, 0u);
    EXPECT_EQ(zeroed.groups, 0u);
    const std::uint64_t after =
        scheduler.submit("a", randomQuery(rng, d)).ticket;
    EXPECT_LT(before, after);
    EXPECT_EQ(scheduler.drain().size(), 2u);
    EXPECT_EQ(scheduler.stats().answered, 2u);
}

TEST(MakeBackend, RejectsInvalidQuantizerBits)
{
    Rng rng(10100);
    const Matrix key = randomMatrix(rng, 8, 4);
    const Matrix value = randomMatrix(rng, 8, 4);
    for (const EngineKind kind :
         {EngineKind::ExactQuantized, EngineKind::ApproxQuantized}) {
        EngineConfig cfg;
        cfg.kind = kind;
        cfg.intBits = 0;
        EXPECT_EXIT(makeBackend(cfg, key, value),
                    ::testing::ExitedWithCode(1), "must be positive");
        cfg.intBits = 4;
        cfg.fracBits = -1;
        EXPECT_EXIT(makeBackend(cfg, key, value),
                    ::testing::ExitedWithCode(1), "must be positive");
        cfg.fracBits = 28;  // 4 + 28 + 1 = 33 > 32
        EXPECT_EXIT(makeBackend(cfg, key, value),
                    ::testing::ExitedWithCode(1), "lane budget");
    }
    // The float kinds ignore the quantizer bits entirely.
    EngineConfig cfg;
    cfg.kind = EngineKind::ExactFloat;
    cfg.intBits = 0;
    EXPECT_NE(makeBackend(cfg, key, value), nullptr);
    // A word at exactly the 32-bit lane budget still binds.
    cfg.kind = EngineKind::ExactQuantized;
    cfg.intBits = 25;
    cfg.fracBits = 6;
    EXPECT_NE(makeBackend(cfg, key, value), nullptr);
}

}  // namespace
}  // namespace a3
