/**
 * @file
 * Tests for the synthetic workloads and task metrics.
 */

#include <gtest/gtest.h>

#include <set>

#include "attention/reference.hpp"
#include "baseline/device_models.hpp"
#include "workloads/babi_like.hpp"
#include "workloads/metrics.hpp"
#include "workloads/squad_like.hpp"
#include "workloads/wikimovies_like.hpp"
#include "workloads/workload.hpp"

namespace a3 {
namespace {

TEST(Metrics, TopKIndicesOrderedAndDeterministic)
{
    const Vector v{0.1f, 0.5f, 0.3f, 0.5f, 0.0f};
    const auto top = topKIndices(v, 3);
    // Ties broken by index: 1 before 3.
    EXPECT_EQ(top, (std::vector<std::uint32_t>{1, 3, 2}));
}

TEST(Metrics, ArgmaxAccuracy)
{
    EXPECT_EQ(argmaxAccuracy({0.1f, 0.9f}, {1}), 1.0);
    EXPECT_EQ(argmaxAccuracy({0.1f, 0.9f}, {0}), 0.0);
    EXPECT_EQ(argmaxAccuracy({0.9f, 0.1f}, {0, 1}), 1.0);
}

TEST(Metrics, AveragePrecisionHandCase)
{
    // Ranking by weight: 3, 1, 0, 2. Relevant = {1, 2}.
    // AP = (1/2) * (1/2 + 2/4) = 0.5.
    const Vector w{0.2f, 0.3f, 0.1f, 0.4f};
    EXPECT_NEAR(averagePrecision(w, {1, 2}), 0.5, 1e-12);
}

TEST(Metrics, AveragePrecisionPerfectRanking)
{
    const Vector w{0.5f, 0.3f, 0.1f, 0.05f};
    EXPECT_NEAR(averagePrecision(w, {0, 1}), 1.0, 1e-12);
}

TEST(Metrics, AveragePrecisionIgnoresZeroWeightRows)
{
    // Relevant row 2 has zero weight (excluded by approximation): it
    // must count as not retrieved, not as ranked by index order.
    const Vector w{0.6f, 0.4f, 0.0f};
    EXPECT_NEAR(averagePrecision(w, {0, 2}), 0.5, 1e-12);
}

TEST(Metrics, F1TopKHandCase)
{
    // Top-2 = {1, 0}; relevant = {1, 2}: precision 1/2, recall 1/2.
    const Vector w{0.4f, 0.5f, 0.1f};
    EXPECT_NEAR(f1TopK(w, {1, 2}, 2), 0.5, 1e-12);
}

TEST(Metrics, F1CountsOnlyPositiveWeightPredictions)
{
    // Only one positive weight; top-5 must not pad with zero rows.
    const Vector w{0.0f, 1.0f, 0.0f, 0.0f, 0.0f, 0.0f};
    // Predicted = {1}; relevant = {1, 2}: P = 1, R = 1/2, F1 = 2/3.
    EXPECT_NEAR(f1TopK(w, {1, 2}, 5), 2.0 / 3.0, 1e-12);
}

TEST(Metrics, TopKRecall)
{
    const Vector scores{5.0f, 4.0f, 3.0f, 2.0f};
    EXPECT_DOUBLE_EQ(topKRecall(scores, {0, 1}, 2), 1.0);
    EXPECT_DOUBLE_EQ(topKRecall(scores, {0, 3}, 2), 0.5);
    EXPECT_DOUBLE_EQ(topKRecall(scores, {3}, 2), 0.0);
}

TEST(Workloads, FactoryReturnsPaperOrder)
{
    const auto all = makeAllWorkloads();
    ASSERT_EQ(all.size(), 3u);
    EXPECT_EQ(all[0]->name(), "MemN2N");
    EXPECT_EQ(all[1]->name(), "KV-MemN2N");
    EXPECT_EQ(all[2]->name(), "BERT");
}

TEST(BabiLike, EpisodeShapesMatchPaper)
{
    BabiLikeWorkload w;
    Rng rng(8000);
    double nSum = 0.0;
    std::size_t nMax = 0;
    const int episodes = 300;
    for (int e = 0; e < episodes; ++e) {
        const AttentionTask t = w.sample(rng);
        EXPECT_GE(t.key.rows(), 5u);
        EXPECT_LE(t.key.rows(), 50u);
        EXPECT_EQ(t.key.cols(), 64u);
        EXPECT_EQ(t.queries.size(), 1u);
        ASSERT_EQ(t.relevant.size(), 1u);
        EXPECT_EQ(t.relevant[0].size(), 1u);
        EXPECT_LT(t.relevant[0][0], t.key.rows());
        nSum += static_cast<double>(t.key.rows());
        nMax = std::max(nMax, t.key.rows());
    }
    // Average n near the paper's 20.
    EXPECT_NEAR(nSum / episodes, 20.0, 3.0);
    EXPECT_GT(nMax, 35u);
}

TEST(WikiMoviesLike, EpisodeShapesMatchPaper)
{
    WikiMoviesLikeWorkload w;
    Rng rng(8001);
    double nSum = 0.0;
    const int episodes = 200;
    for (int e = 0; e < episodes; ++e) {
        const AttentionTask t = w.sample(rng);
        EXPECT_GE(t.key.rows(), 80u);
        EXPECT_LE(t.key.rows(), 292u);
        EXPECT_GE(t.relevant[0].size(), 2u);
        EXPECT_LE(t.relevant[0].size(), 6u);
        // Relevant rows are distinct and in range.
        std::set<std::uint32_t> unique(t.relevant[0].begin(),
                                       t.relevant[0].end());
        EXPECT_EQ(unique.size(), t.relevant[0].size());
        nSum += static_cast<double>(t.key.rows());
    }
    EXPECT_NEAR(nSum / episodes, 186.0, 10.0);
}

TEST(SquadLike, EpisodeShapesMatchPaper)
{
    SquadLikeWorkload w;
    Rng rng(8002);
    const AttentionTask t = w.sample(rng);
    EXPECT_EQ(t.key.rows(), 320u);
    EXPECT_EQ(t.queries.size(), 320u);
    EXPECT_TRUE(w.selfAttention());

    std::size_t scored = 0;
    for (const auto &rel : t.relevant) {
        if (!rel.empty()) {
            ++scored;
            EXPECT_EQ(rel.size(), SquadLikeWorkload::spanLength);
            // Contiguous span.
            for (std::size_t i = 1; i < rel.size(); ++i)
                EXPECT_EQ(rel[i], rel[i - 1] + 1);
        }
    }
    EXPECT_EQ(scored, SquadLikeWorkload::questionTokens);
}

TEST(Workloads, SamplingIsDeterministicInSeed)
{
    BabiLikeWorkload w;
    Rng a(42);
    Rng b(42);
    const AttentionTask ta = w.sample(a);
    const AttentionTask tb = w.sample(b);
    EXPECT_TRUE(ta.key == tb.key);
    EXPECT_EQ(ta.queries[0], tb.queries[0]);
    EXPECT_EQ(ta.relevant[0], tb.relevant[0]);
}

TEST(Workloads, ExactAttentionNearPaperBaseline)
{
    // Loose guard band; the tight comparison lives in EXPERIMENTS.md.
    const auto all = makeAllWorkloads();
    for (const auto &w : all) {
        Rng rng(8003);
        double sum = 0.0;
        std::size_t count = 0;
        const int episodes = w->selfAttention() ? 10 : 120;
        for (int e = 0; e < episodes; ++e) {
            const AttentionTask t = w->sample(rng);
            for (std::size_t qi = 0; qi < t.queries.size(); ++qi) {
                if (t.relevant[qi].empty())
                    continue;
                const AttentionResult r = referenceAttention(
                    t.key, t.value, t.queries[qi]);
                sum += w->score(t, qi, r);
                ++count;
            }
        }
        const double metric = sum / static_cast<double>(count);
        EXPECT_NEAR(metric, w->paperBaselineMetric(), 0.06)
            << w->name();
    }
}

TEST(Workloads, TimeShareProfilesMatchFigure3Shape)
{
    const auto all = makeAllWorkloads();
    for (const auto &w : all) {
        const TimeShareProfile p = w->timeShare();
        TimeShareModel m;
        m.attentionSec = 1.0;
        m.comprehensionSec = p.comprehensionOverAttention;
        m.otherQuerySec = p.otherQueryOverAttention;
        // Paper: attention is >35% of inference for every workload.
        EXPECT_GT(m.attentionShareTotal(), 0.35) << w->name();
        if (!w->selfAttention()) {
            // And >70% of query-response time for the memory networks.
            EXPECT_GT(m.attentionShareQueryTime(), 0.70) << w->name();
        }
    }
}

}  // namespace
}  // namespace a3
